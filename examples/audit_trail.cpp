// Audit-trail demo (paper challenge 3): tamper-evident session forensics.
//
// A full twin session is recorded through the policy enforcer's hash-chained
// audit log, whose head is sealed inside the simulated SGX enclave. The demo
// then plays auditor: verifies the chain + attestation, and shows that
// in-place edits, deletions, and truncation are all detected.
//
// Run:  ./build/examples/audit_trail
#include <cstdio>

#include "analysis/engine.hpp"
#include "enforcer/enforcer.hpp"
#include "scenarios/enterprise.hpp"
#include "twin/twin.hpp"

int main() {
  using namespace heimdall;
  net::Network production = scen::build_enterprise();
  std::vector<spec::Policy> policies = scen::enterprise_policies(production);
  production.device(net::DeviceId("r7")).interface(net::InterfaceId("Fa0/2")).access_vlan = 10;

  enforce::PolicyEnforcer enforcer(spec::PolicyVerifier(policies),
                                   enforce::SimulatedEnclave("heimdall-enforcer-v1", "hw-root"));
  util::VirtualClock clock;

  // --- a recorded session -------------------------------------------------
  analysis::Engine engine;
  analysis::Snapshot snapshot = engine.analyze_dataplane(production);
  const dp::Dataplane& dataplane = *snapshot.dataplane;
  msp::Ticket ticket = msp::Ticket::connectivity(12, net::DeviceId("h2"), net::DeviceId("h4"),
                                                 "h2 down", priv::TaskClass::VlanIssue);
  twin::TwinNetwork twin = twin::TwinNetwork::create(production, dataplane, ticket);
  enforcer.audit_event(clock, "tech-3", enforce::AuditCategory::Session,
                       "twin session opened for ticket #12");
  for (const char* command : {"ping h2 h4", "erase r7",  // denied, and it shows in the trail
                              "interface r7 Fa0/2 switchport-access-vlan 20", "ping h2 h4"}) {
    clock.advance(3000);
    twin::CommandResult result = twin.run(command);
    enforcer.audit_event(clock, "tech-3", enforce::AuditCategory::Command,
                         std::string(command) + (result.ok ? " [ok]" : " [denied/failed]"));
  }
  enforcer.enforce(production, twin.extract_changes(), twin.privileges(), clock, "tech-3");

  std::printf("recorded audit trail (%zu entries):\n", enforcer.audit().size());
  for (const enforce::AuditEntry& entry : enforcer.audit().entries()) {
    std::printf("  [%2llu] t=%6lldms %-10s %-9s %s\n",
                static_cast<unsigned long long>(entry.sequence),
                static_cast<long long>(entry.timestamp_ms), entry.actor.c_str(),
                to_string(entry.category).c_str(), entry.message.c_str());
  }

  // --- auditor view ---------------------------------------------------------
  std::printf("\nauditor checks:\n");
  std::printf("  chain verifies: %s\n", enforcer.audit().verify_chain() ? "yes" : "NO");
  std::printf("  sealed head matches: %s\n", enforcer.audit_intact() ? "yes" : "NO");
  enforce::AttestationReport attestation = enforcer.attest();
  std::printf("  enclave attestation over head %.16s... verifies: %s\n",
              attestation.report_data.c_str(),
              enforcer.enclave().verify_report(attestation, enforcer.enclave().measurement())
                  ? "yes"
                  : "NO");

  // --- tamper experiments ----------------------------------------------------
  std::printf("\ntamper experiments (on copies of the log):\n");
  {
    enforce::AuditLog copy = enforcer.audit();
    copy.mutable_entries_for_test()[2].message = "nothing to see here";
    std::printf("  edit entry 2 in place  -> chain verifies: %s (first corrupt index: %zu)\n",
                copy.verify_chain() ? "yes" : "no", copy.first_corrupt_index());
  }
  {
    enforce::AuditLog copy = enforcer.audit();
    auto& entries = copy.mutable_entries_for_test();
    entries.erase(entries.begin() + 3);
    std::printf("  delete entry 3         -> chain verifies: %s\n",
                copy.verify_chain() ? "yes" : "no");
  }
  {
    enforce::AuditLog copy = enforcer.audit();
    copy.mutable_entries_for_test().pop_back();
    bool chain_ok = copy.verify_chain();
    bool head_ok = copy.matches_head(enforcer.audit().head());
    std::printf("  truncate last entry    -> chain verifies: %s, but sealed head matches: %s\n",
                chain_ok ? "yes" : "no", head_ok ? "yes" : "NO (truncation detected)");
  }

  std::printf("\nJSON export (first 2 entries):\n");
  util::Json json = enforcer.audit().to_json();
  util::Json preview{util::JsonArray{json.at("audit_log").as_array()[0],
                                     json.at("audit_log").as_array()[1]}};
  std::printf("%s\n", preview.dump(2).c_str());
  return enforcer.audit_intact() ? 0 : 1;
}
