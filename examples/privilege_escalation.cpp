// Privilege-escalation demo (paper §7): a ticket's privileges evolve as the
// diagnosis narrows. The technician starts with routing-scoped privileges,
// discovers the problem is actually a firewall rule, and escalates —
// legitimately — to ACL editing, while illegitimate escalation attempts are
// rejected.
//
// Run:  ./build/examples/privilege_escalation
#include <cstdio>

#include "analysis/engine.hpp"
#include "enforcer/enforcer.hpp"
#include "scenarios/enterprise.hpp"
#include "twin/twin.hpp"

namespace {

using namespace heimdall;

void attempt(twin::TwinNetwork& twin, const char* command) {
  twin::CommandResult result = twin.run(command);
  bool denied = result.output.find("DENIED") != std::string::npos;
  std::printf("  twin> %-66s [%s]\n", command,
              denied ? "DENIED" : (result.ok ? "ok" : "failed"));
}

void escalate(twin::TwinNetwork& twin, priv::Action action, priv::Resource resource,
              const char* why, bool admin_approved = false) {
  priv::EscalationResult result =
      twin.request_escalation({action, resource, why}, admin_approved);
  std::printf("  escalation: %-22s on %-28s -> %s (%s)\n",
              priv::to_string(action).c_str(), resource.to_string().c_str(),
              priv::to_string(result.verdict).c_str(), result.reason.c_str());
}

}  // namespace

int main() {
  net::Network production = scen::build_enterprise();
  std::vector<spec::Policy> policies = scen::enterprise_policies(production);

  // The real problem: a deny entry in the DMZ firewall blocks h1 -> h7,
  // but the ticket was filed as a *routing* issue.
  net::AclEntry bogus;
  bogus.action = net::AclEntry::Action::Deny;
  bogus.src = net::Ipv4Prefix::parse("10.0.10.0/24");
  bogus.dst = net::Ipv4Prefix::parse("10.0.7.0/24");
  auto& entries = production.device(net::DeviceId("r9")).find_acl("DMZ_IN")->entries;
  entries.insert(entries.begin(), bogus);

  msp::Ticket ticket = msp::Ticket::connectivity(
      77, net::DeviceId("h1"), net::DeviceId("h7"),
      "h1 cannot reach the DMZ app server - suspected routing problem",
      priv::TaskClass::OspfIssue);

  analysis::Engine engine;
  analysis::Snapshot snapshot = engine.analyze_dataplane(production);
  const dp::Dataplane& dataplane = *snapshot.dataplane;
  twin::TwinNetwork twin = twin::TwinNetwork::create(production, dataplane, ticket);
  std::printf("ticket filed as %s; twin covers %zu devices\n\n",
              to_string(ticket.task).c_str(), twin.slice().devices.size());

  std::printf("phase 1: routing diagnosis (granted by the task class)\n");
  attempt(twin, "ping h1 h7");
  attempt(twin, "show routes r2");
  attempt(twin, "show ospf r9");
  std::printf("\n");

  std::printf("phase 2: routing is fine; the ACL is suspect - but ACL edits are\n"
              "out of class for an OSPF ticket:\n");
  attempt(twin, "show acls r9");
  attempt(twin, "acl r9 DMZ_IN remove 0");
  std::printf("\n");

  std::printf("phase 3: escalation requests\n");
  // Legitimate: read + edit the suspect ACL, inside the slice, with a
  // justification. The mutation needs customer approval (out of class).
  escalate(twin, priv::Action::AclEdit, priv::Resource::acl(net::DeviceId("r9"), "DMZ_IN"),
           "routing verified clean; deny entry in DMZ_IN matches the broken flow",
           /*admin_approved=*/true);
  // Illegitimate: a device outside the slice.
  escalate(twin, priv::Action::ShowConfig, priv::Resource::whole_device(net::DeviceId("r6")),
           "just curious");
  // Illegitimate: high-impact action.
  escalate(twin, priv::Action::EraseConfig, priv::Resource::whole_device(net::DeviceId("r9")),
           "fastest way to clear the ACL");
  // Illegitimate: secrets.
  escalate(twin, priv::Action::ChangeSecret,
           priv::Resource::secret(net::DeviceId("r9"), "enable_password"), "lost the password");
  std::printf("\n");

  std::printf("phase 4: fix with the escalated privilege\n");
  attempt(twin, "acl r9 DMZ_IN remove 0");
  attempt(twin, "ping h1 h7");
  std::printf("\n");

  enforce::PolicyEnforcer enforcer(spec::PolicyVerifier(policies),
                                   enforce::SimulatedEnclave("heimdall-enforcer-v1", "hw-root"));
  util::VirtualClock clock;
  enforce::EnforcementReport report =
      enforcer.enforce(production, twin.extract_changes(), twin.privileges(), clock, "tech");
  bool healthy = spec::PolicyVerifier(policies).verify_network(production).ok();
  std::printf("enforcer applied the fix: %s; production healthy: %s\n",
              report.applied ? "yes" : "no", healthy ? "yes" : "no");
  return (report.applied && healthy) ? 0 : 1;
}
