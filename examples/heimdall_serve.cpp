// heimdall_serve: the enforcement service end to end.
//
// Demonstrates the session-owned architecture on the enterprise network:
// concurrent technician sessions (one thread each) open pooled twins, work
// their tickets, and submit changesets to the shared enforcement queue,
// which batches them, coalesces verification across disjoint submissions,
// and keeps one quorum-replicated tamper-evident audit ledger over
// everything — including three attackers:
//   * the insider whose "fix" tries to open the DMZ (privilege/policy
//     quarantine),
//   * the colluding technician who social-engineers one admin in the twin
//     but ships a self-approved m=1 approval set, caught by the enforcer's
//     m-of-n gate,
//   * the compromised audit replica that rewrites its own sealed history,
//     caught by cross-replica verification.
// An honest counterpart shows the m-of-n happy path: two distinct
// principals (one customer-side) co-sign the ticket content hash and the
// same out-of-class change goes through.
//
// Telemetry flags (--journal-out, --statusz-out, --flight-dir, --trace-out,
// --metrics-out, --prom-out, --audit-out) turn the run into an observable
// one: every quarantine and the tampered ledger fire the flight recorder,
// and obs_report can join the exported journal/trace/audit into per-ticket
// timelines and re-verify all replica chains.
#include <future>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "obs/journal.hpp"
#include "obs/telemetry.hpp"
#include "scenarios/adversary.hpp"
#include "scenarios/enterprise.hpp"
#include "service/manager.hpp"

using namespace heimdall;

int main(int argc, char** argv) {
  obs::TelemetryFlags telemetry;
  for (int i = 1; i < argc; ++i) {
    if (telemetry.consume(argc, argv, i)) continue;
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cerr << "usage: heimdall_serve\n" << obs::TelemetryFlags::usage();
      return 0;
    }
    std::cerr << "unknown flag: " << arg << "\n"
              << "usage: heimdall_serve\n" << obs::TelemetryFlags::usage();
    return 2;
  }
  telemetry.apply();

  net::Network production = scen::build_enterprise();
  std::vector<spec::Policy> policies = scen::enterprise_policies(production);
  std::cout << "enterprise network: " << production.devices().size() << " devices, "
            << policies.size() << " policies pinned\n\n";

  service::ServiceOptions options;
  options.max_batch = 16;
  options.keep_journal = true;
  options.journal_enabled = obs::EventJournal::global().enabled();
  service::SessionManager manager(production, policies, options);
  std::unique_ptr<service::StatuszWriter> statusz;
  if (!telemetry.statusz_out.empty()) {
    statusz = std::make_unique<service::StatuszWriter>(manager, telemetry.statusz_out,
                                                       telemetry.statusz_period_ms);
  }

  // Eight technicians work tickets concurrently. Seven harden edge routers
  // with benign documentation-prefix filters; one (tech-3) also tries to
  // permit the finance subnet straight into the DMZ data store.
  const std::vector<std::string> routers = {"r1", "r2", "r3", "r4", "r5", "r6", "r9", "r9"};
  std::vector<std::thread> technicians;
  std::mutex print_mutex;
  for (std::size_t t = 0; t < routers.size(); ++t) {
    technicians.emplace_back([&, t] {
      const std::string& router = routers[t];
      const bool insider = t == 6;  // first r9 session plays the insider
      msp::Ticket ticket;
      ticket.id = static_cast<int>(t + 1);
      ticket.task = priv::TaskClass::AclChange;
      ticket.description = insider ? "emergency: finance needs DMZ data access"
                                   : "harden " + router + " ingress filtering";
      ticket.affected = {net::DeviceId(router)};

      auto session = manager.open(ticket, "tech-" + std::to_string(t + 1));
      std::string acl = "EDGE" + std::to_string(t + 1);
      if (insider) {
        // The twin accepts this — it has no policies. The enforcer must not.
        session->run("acl r9 DMZ_IN add 0 permit ip 10.0.20.0 0.0.0.255 10.0.8.0 0.0.0.255");
      } else {
        session->run("acl " + router + " create " + acl);
        session->run("acl " + router + " " + acl +
                     " add deny ip 198.51.100.0 0.0.0.255 192.0.2.0 0.0.0.255");
      }
      service::SubmitOutcome outcome = session->submit().get();
      session->close();

      std::lock_guard<std::mutex> lock(print_mutex);
      std::cout << "session #" << session->id() << " (" << session->actor() << ", " << router
                << ", batch " << outcome.batch_id << "/" << outcome.batch_size << " subs): "
                << outcome.report.applied_changes.size() << " applied, "
                << outcome.report.quarantined.size() << " quarantined\n";
      for (const auto& [change, reason] : outcome.report.quarantined)
        std::cout << "    QUARANTINED " << change.summary() << "\n      reason: " << reason
                  << "\n";
    });
  }
  for (std::thread& technician : technicians) technician.join();
  manager.drain();

  // Multi-party authorization: an out-of-class change (a static route on an
  // ACL ticket) needs m-of-n approvals over the ticket content hash. The
  // honest path gathers two distinct principals, one customer-side; the
  // colluding path social-engineers a single admin inside the twin but can
  // only mint a self-approved m=1 set for the enforcer — which re-checks
  // the signatures in the enclave and quarantines the change.
  std::cout << "\n--- multi-party authorization ---\n";
  auto route_ticket = [](int id, const std::string& description) {
    msp::Ticket ticket;
    ticket.id = id;
    ticket.task = priv::TaskClass::AclChange;
    ticket.description = description;
    ticket.affected = {net::DeviceId("r6")};
    return ticket;
  };
  priv::EscalationRequest route_request{priv::Action::StaticRouteAdd,
                                        priv::Resource::routes(net::DeviceId("r6")),
                                        "null-route a scanner prefix at the border"};

  {
    msp::Ticket ticket = route_ticket(101, "border hardening needs a scanner null-route");
    auto session = manager.open(ticket, "tech-honest");
    priv::ApprovalSet approvals;
    approvals.required = 2;
    approvals.approvals = {
        manager.attest_approval("customer-admin", priv::PrincipalRole::Customer, ticket),
        manager.attest_approval("msp-supervisor", priv::PrincipalRole::Msp, ticket),
    };
    priv::EscalationResult escalation = session->request_escalation(route_request, approvals);
    std::cout << "tech-honest escalation: " << priv::to_string(escalation.verdict) << " ("
              << escalation.reason << ")\n";
    session->run("route r6 add 203.0.113.0 255.255.255.0 10.1.16.1");
    session->set_approvals(approvals);
    service::SubmitOutcome outcome = session->submit().get();
    session->close();
    std::cout << "tech-honest submit: " << outcome.report.applied_changes.size()
              << " applied, " << outcome.report.quarantined.size() << " quarantined\n";
  }

  {
    msp::Ticket ticket = route_ticket(102, "emergency: reroute monitoring traffic");
    auto session = manager.open(ticket, "tech-colluder");
    // Inside the twin the colluder gets one admin to click approve (the
    // legacy single-admin path), so the twin lets the command through...
    priv::EscalationResult escalation =
        session->request_escalation(route_request, /*admin_approved=*/true);
    std::cout << "tech-colluder twin escalation: " << priv::to_string(escalation.verdict)
              << " (" << escalation.reason << ")\n";
    session->run("route r6 add 198.18.0.0 255.255.0.0 10.1.16.1");
    // ...but the enforcer's m-of-n gate sees only a self-approved m=1 set.
    session->set_approvals(scen::colluding_approval_set(
        manager.enforcer().enclave(), "tech-colluder", twin::ticket_content_hash(ticket)));
    service::SubmitOutcome outcome = session->submit().get();
    session->close();
    std::cout << "tech-colluder submit: " << outcome.report.applied_changes.size()
              << " applied, " << outcome.report.quarantined.size() << " quarantined\n";
    for (const auto& [change, reason] : outcome.report.quarantined)
      std::cout << "    QUARANTINED " << change.summary() << "\n      reason: " << reason
                << "\n";
  }
  manager.drain();

  // Replica equivocation: a compromised audit replica rewrites one sealed
  // entry and re-chains + reseals so every single-replica check passes.
  // Only the cross-replica comparison exposes the fork; drain() journals a
  // TamperAlert and fires the flight recorder.
  std::cout << "\n--- replica equivocation ---\n";
  enforce::ReplicatedAuditLedger& ledger = manager.enforcer().mutable_ledger_for_test();
  std::cout << "ledger: " << ledger.replica_count() << " replicas, intact="
            << (manager.enforcer().audit_intact() ? "yes" : "NO") << "\n";
  auto pristine = scen::equivocate_replica(ledger, 1, 2, "session #1 opened by ghost-tech");
  std::cout << "replica 1 rewrote sequence 2 and resealed through its own enclave\n";
  for (const std::string& problem : manager.enforcer().audit_problems())
    std::cout << "  DETECTED: " << problem << "\n";
  manager.drain();  // journals the TamperAlert + flight dump
  // Restore the pristine replica so the final integrity verdict (and the
  // process exit code) reflects the healthy service again.
  scen::restore_replica(ledger, 1, std::move(pristine));
  std::cout << "replica 1 restored from quorum copy, intact="
            << (manager.enforcer().audit_intact() ? "yes" : "NO") << "\n";

  service::ServiceStats stats = manager.stats();
  std::cout << "\nservice: " << stats.sessions_opened << " sessions, " << stats.submissions
            << " submissions in " << stats.batches << " batches (largest "
            << stats.max_observed_batch << ")\n";
  std::cout << "artifact cache: " << stats.artifact_hits << " hits, " << stats.artifact_misses
            << " misses\n";
  std::cout << "audit chain: " << manager.enforcer().audit().size() << " entries, intact="
            << (manager.enforcer().audit_intact() ? "yes" : "NO") << "\n";

  // The last word belongs to the audit trail: every session event and
  // enforcement verdict, one hash chain, sealed in the enclave.
  std::cout << "\nlast audit entries:\n";
  const auto& entries = manager.enforcer().audit().entries();
  std::size_t start = entries.size() > 8 ? entries.size() - 8 : 0;
  for (std::size_t i = start; i < entries.size(); ++i)
    std::cout << "  [" << to_string(entries[i].category) << "] " << entries[i].actor << ": "
              << entries[i].message << "\n";

  // Telemetry exports happen while the manager (and its sealed audit chain)
  // is still alive: final statusz snapshot, then the joined-report inputs.
  statusz.reset();
  bool telemetry_ok = telemetry.write_outputs();
  if (!telemetry.audit_out.empty()) {
    telemetry_ok &= obs::write_string_file(
        telemetry.audit_out, manager.enforcer().ledger().to_json().dump(), "audit ledger");
  }
  if (!telemetry_ok) {
    std::cerr << "FATAL: failed to write telemetry outputs\n";
    return 1;
  }
  return manager.enforcer().audit_intact() ? 0 : 1;
}
