// Careless-technician demo (paper §2.2, Figure 3): the "sudo rm -rf *"
// moment. A technician with a routine ticket erases the border router's
// configuration by accident.
//
//   * Baseline RMM: the command executes on production; the enterprise
//     loses its uplink and most of its reachability policies fail.
//   * Heimdall, twin path: the erase is denied by the Privilege_msp before
//     it touches even the emulated network.
//   * Heimdall, emergency mode (paper §7): a privileged erase is executed
//     on a shadow first, fails post-state verification, and is rolled back.
//
// Run:  ./build/examples/outage_prevention
#include <cstdio>

#include "analysis/engine.hpp"
#include "enforcer/enforcer.hpp"
#include "msp/attacker.hpp"
#include "msp/rmm.hpp"
#include "scenarios/enterprise.hpp"
#include "twin/twin.hpp"

int main() {
  using namespace heimdall;
  std::vector<spec::Policy> policies = scen::enterprise_policies(scen::build_enterprise());
  spec::PolicyVerifier verifier(policies);
  msp::AttackScript accident = msp::careless_erase(net::DeviceId("r6"));
  std::printf("the accident-in-waiting: '%s'\n\n", accident.commands.front().c_str());

  // ---------------------------------------------------------- baseline ----
  std::printf("=== baseline RMM ===\n");
  net::Network rmm_production = scen::build_enterprise();
  msp::RmmServer server(rmm_production);
  server.register_user({"tech", "pw", false});
  msp::RmmSession session = server.open_session({"tech", "pw", false});
  session.execute(accident.commands.front());
  session.commit();
  spec::VerificationReport damage = verifier.verify_network(rmm_production);
  std::printf("  erase executed; %zu of %zu policies now violated "
              "(network outage, paper Figure 3)\n\n",
              damage.violations.size(), damage.checked);

  // ------------------------------------------------- heimdall twin path ----
  std::printf("=== Heimdall twin ===\n");
  net::Network production = scen::build_enterprise();
  analysis::Engine engine;
  analysis::Snapshot snapshot = engine.analyze_dataplane(production);
  const dp::Dataplane& dataplane = *snapshot.dataplane;
  msp::Ticket ticket = msp::Ticket::connectivity(55, net::DeviceId("ext"), net::DeviceId("h1"),
                                                 "routine border maintenance",
                                                 priv::TaskClass::IspReconfig);
  twin::TwinNetwork twin = twin::TwinNetwork::create(production, dataplane, ticket);
  twin::CommandResult result = twin.run(accident.commands.front());
  std::printf("  twin> %s\n  %s\n", accident.commands.front().c_str(), result.output.c_str());
  std::printf("  production untouched; %zu policies still hold\n\n",
              verifier.verify_network(production).checked);

  // -------------------------------------------- heimdall emergency mode ----
  std::printf("=== Heimdall emergency mode ===\n");
  enforce::PolicyEnforcer enforcer(verifier,
                                   enforce::SimulatedEnclave("heimdall-enforcer-v1", "hw-root"));
  util::VirtualClock clock;
  // Emergency mode runs with broader privileges (the admin has approved
  // direct access) - but verification still gates production.
  priv::PrivilegeSpec emergency_privileges;
  emergency_privileges.allow(priv::all_actions(),
                             priv::Resource{"*", priv::ObjectKind::Device, ""});
  enforce::EmergencyResult emergency = enforcer.emergency_execute(
      production, accident.commands.front(), emergency_privileges, clock, "tech");
  std::printf("  permitted=%s applied=%s\n", emergency.permitted ? "yes" : "no",
              emergency.applied ? "yes" : "no (rolled back)");
  for (const std::string& reason : emergency.rejection_reasons)
    std::printf("    - %s\n", reason.c_str());

  bool still_healthy = verifier.verify_network(production).ok();
  std::printf("\nproduction after all three attempts: %s\n",
              still_healthy ? "healthy (outage prevented twice)" : "BROKEN");
  return still_healthy ? 0 : 1;
}
