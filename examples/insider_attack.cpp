// Insider attack demo (paper §2.2 Figure 2 + §4.3 Figure 6): a technician
// with a legitimate ticket tries to (a) harvest credentials APT10-style and
// (b) smuggle a malicious permit into the DMZ firewall next to a real fix.
//
// The same script is run twice:
//   * through the baseline RMM with root agents - everything succeeds;
//   * through Heimdall - the recon is scrubbed/denied and the malicious
//     rule is intercepted by the policy enforcer, while the fix lands.
//
// Run:  ./build/examples/insider_attack
#include <cstdio>

#include "analysis/engine.hpp"
#include "enforcer/enforcer.hpp"
#include "msp/attacker.hpp"
#include "msp/rmm.hpp"
#include "scenarios/enterprise.hpp"
#include "twin/twin.hpp"

namespace {

using namespace heimdall;

/// The combined session: legitimate ACL fix + recon + malicious rule.
std::vector<std::string> insider_session() {
  return {
      // Legitimate work: the ticket says h1 lost access to the DMZ app; the
      // technician (correctly) removes a bogus deny that "someone" added.
      "show acls r9",
      "acl r9 DMZ_IN remove 0",
      // Recon: pull configs hoping for credentials.
      "show config r9",
      "show config r6",
      // Persistence: rotate a password to an attacker-known value.
      "secret r9 enable_password attacker-owned",
      // The malicious payload: open the sensitive store h8 to h2's subnet.
      "acl r9 DMZ_IN add 0 permit ip 10.0.20.0 0.0.0.255 10.0.8.0 0.0.0.255",
  };
}

net::Network broken_enterprise() {
  net::Network production = scen::build_enterprise();
  // Injected problem for the cover ticket: a stray deny blocking h1 -> DMZ.
  net::AclEntry bogus;
  bogus.action = net::AclEntry::Action::Deny;
  bogus.src = net::Ipv4Prefix::parse("10.0.10.0/24");
  bogus.dst = net::Ipv4Prefix::parse("10.0.7.0/24");
  auto& entries = production.device(net::DeviceId("r9")).find_acl("DMZ_IN")->entries;
  entries.insert(entries.begin(), bogus);
  return production;
}

}  // namespace

int main() {
  std::vector<spec::Policy> policies = scen::enterprise_policies(scen::build_enterprise());
  spec::PolicyVerifier verifier(policies);

  // ---------------------------------------------------------- baseline ----
  std::printf("=== baseline: RMM with root agents (the current approach) ===\n");
  net::Network rmm_production = broken_enterprise();
  msp::RmmServer server(rmm_production);
  server.register_user({"tech", "hunter2", false});
  msp::RmmSession session = server.open_session({"tech", "hunter2", false});

  std::string harvested;
  for (const std::string& command : insider_session()) {
    twin::CommandResult result = session.execute(command);
    if (result.output.find("snmp-server community") != std::string::npos)
      harvested = "credentials visible in plaintext";
    std::printf("  rmm> %-68s [%s]\n", command.c_str(), result.ok ? "ok" : "failed");
  }
  session.commit();
  bool baseline_breached = !verifier.verify_network(rmm_production).ok();
  std::printf("  -> %s; policy check on production: %s\n\n",
              harvested.empty() ? "no credentials seen" : harvested.c_str(),
              baseline_breached ? "VIOLATED (h2 can now reach the sensitive store h8)"
                                : "clean");

  // ---------------------------------------------------------- heimdall ----
  std::printf("=== Heimdall: twin network + policy enforcer ===\n");
  net::Network production = broken_enterprise();
  analysis::Engine engine;
  analysis::Snapshot snapshot = engine.analyze_dataplane(production);
  const dp::Dataplane& dataplane = *snapshot.dataplane;
  msp::Ticket ticket = msp::Ticket::connectivity(99, net::DeviceId("h1"), net::DeviceId("h7"),
                                                 "h1 lost access to the DMZ app server",
                                                 priv::TaskClass::AclChange);
  twin::TwinNetwork twin = twin::TwinNetwork::create(production, dataplane, ticket);

  for (const std::string& command : insider_session()) {
    twin::CommandResult result = twin.run(command);
    bool denied = result.output.find("DENIED") != std::string::npos;
    std::printf("  twin> %-67s [%s]\n", command.c_str(),
                denied ? "DENIED" : (result.ok ? "ok" : "failed"));
  }
  std::printf("  (configs shown in the twin are scrubbed: secrets read '%s')\n",
              twin::kScrubToken);

  enforce::PolicyEnforcer enforcer(verifier,
                                   enforce::SimulatedEnclave("heimdall-enforcer-v1", "hw-root"));
  util::VirtualClock clock;
  // Quarantine mode: legitimate changes are applied, violations intercepted
  // per change (paper §3).
  enforce::QuarantineReport report = enforcer.enforce_with_quarantine(
      production, twin.extract_changes(), twin.privileges(), clock, "tech");

  std::printf("  enforcer: %zu change(s) applied, %zu intercepted\n",
              report.applied_changes.size(), report.quarantined.size());
  for (const auto& [change, reason] : report.quarantined)
    std::printf("    intercepted: %s  (%s)\n", change.summary().c_str(), reason.c_str());
  for (const cfg::ConfigChange& change : report.applied_changes)
    std::printf("    applied:     %s\n", change.summary().c_str());

  bool heimdall_clean = verifier.verify_network(production).ok();
  std::printf("  -> policy check on production: %s\n",
              heimdall_clean ? "clean (fix landed, attack intercepted)" : "VIOLATED");

  std::printf("\naudit trail (tamper-evident, head sealed in the enclave):\n");
  for (const enforce::AuditEntry& entry : enforcer.audit().entries()) {
    if (entry.category == enforce::AuditCategory::Violation)
      std::printf("  [%llu] %s\n", static_cast<unsigned long long>(entry.sequence),
                  entry.message.c_str());
  }
  return (baseline_breached && heimdall_clean) ? 0 : 1;
}
