// Interactive Heimdall session: drive a full twin-network workflow from a
// terminal (or a piped script). This is the closest thing to the web console
// an MSP technician would see.
//
// Usage:
//   ./build/examples/heimdall_repl [enterprise|university] [vlan|ospf|isp|acl|route]
//                                  [--trace-out <file>] [--metrics-out <file>] [...]
//
// Accepts the shared telemetry flags (obs::TelemetryFlags): --trace-out
// writes a Chrome trace_event JSON file (load it in Perfetto or
// chrome://tracing) covering the whole session; --metrics-out dumps the
// global metrics registry (counters, gauges, latency histograms) as JSON on
// exit; --prom-out/--journal-out export the Prometheus text form and the
// structured event journal.
//
// Meta-commands on top of the twin console grammar:
//   .slice       show the slice and its rationale
//   .privileges  dump the active Privilege_msp (JSON)
//   .escalate <action> <device> [<kind> <name>]   request an escalation
//   .submit      extract changes and run the policy enforcer
//   .audit       print the audit trail
//   .help        list commands
//   .quit        leave without submitting
//
// Example scripted run:
//   printf 'ping h2 h4\ninterface r7 Fa0/2 switchport-access-vlan 20\n.submit\n' |
// ./build/examples/heimdall_repl enterprise vlan
#include <cstdio>
#include <iostream>
#include <string>

#include "analysis/engine.hpp"
#include "enforcer/enforcer.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "twin/presentation.hpp"
#include "twin/twin.hpp"
#include "privilege/explain.hpp"
#include "privilege/json_frontend.hpp"
#include "scenarios/enterprise.hpp"
#include "scenarios/university.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace {

using namespace heimdall;

scen::IssueSpec find_issue(const std::string& network, const std::string& key) {
  bool enterprise = network == "enterprise";
  auto issues = enterprise ? scen::enterprise_issues() : scen::university_issues();
  auto extended =
      enterprise ? scen::enterprise_extended_issues() : scen::university_extended_issues();
  issues.insert(issues.end(), std::make_move_iterator(extended.begin()),
                std::make_move_iterator(extended.end()));
  for (scen::IssueSpec& issue : issues) {
    if (issue.key == key) return issue;
  }
  std::fprintf(stderr, "unknown issue '%s' (try: vlan ospf isp acl route)\n", key.c_str());
  std::exit(2);
}

void print_help() {
  std::printf(
      "twin console commands:\n"
      "  show config|interfaces|routes|acls|ospf|vlans <device>\n"
      "  show topology\n"
      "  ping|traceroute <src> <dst>\n"
      "  interface <dev> <if> up|down | address <ip> <mask> | access-group <acl> in|out\n"
      "            | no-access-group in|out | switchport-access-vlan <n> | ospf-cost <n>\n"
      "  acl <dev> <name> add [<idx>] <entry...> | remove <idx>; acl <dev> create|delete <name>\n"
      "  route <dev> add|remove <net> <mask> <nh>\n"
      "  ospf <dev> network-add|network-remove <addr> <wild> area <n>\n"
      "  vlan <dev> add|remove <n>; save <dev>\n"
      "meta: .slice .privileges .explain .inventory .dot .escalate .submit .audit .help .quit\n");
}

}  // namespace

int main(int argc, char** argv) {
  obs::TelemetryFlags telemetry;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (telemetry.consume(argc, argv, i)) continue;
    positional.emplace_back(argv[i]);
  }
  std::string network_name = positional.size() > 0 ? positional[0] : "enterprise";
  std::string issue_key = positional.size() > 1 ? positional[1] : "vlan";
  if (network_name != "enterprise" && network_name != "university") {
    std::fprintf(stderr, "unknown network '%s'\n", network_name.c_str());
    return 2;
  }
  telemetry.apply();

  net::Network production =
      network_name == "enterprise" ? scen::build_enterprise() : scen::build_university();
  std::vector<spec::Policy> policies = network_name == "enterprise"
                                           ? scen::enterprise_policies(production)
                                           : scen::university_policies(production);
  scen::IssueSpec issue = find_issue(network_name, issue_key);
  issue.inject(production);

  // Every span begun during the session carries the ticket ID, so trace rows
  // line up with "ticket #N" audit-trail entries.
  obs::ScopedContext ticket_context("ticket", std::to_string(issue.ticket.id));
  // Ended by hand before the trace file is written, so the export includes it.
  obs::SpanId session_span = obs::tracer().begin(
      "repl.session", "repl", {{"network", network_name}, {"issue", issue_key}});

  analysis::Engine engine;
  analysis::Snapshot snapshot = engine.analyze_dataplane(production);
  const dp::Dataplane& dataplane = *snapshot.dataplane;
  twin::TwinNetwork sandbox = twin::TwinNetwork::create(production, dataplane, issue.ticket);
  enforce::PolicyEnforcer enforcer(spec::PolicyVerifier(policies),
                                   enforce::SimulatedEnclave("heimdall-enforcer-v1", "hw-root"));
  util::VirtualClock clock;
  enforcer.audit_event(clock, "repl", enforce::AuditCategory::Session,
                       "session opened for ticket #" + std::to_string(issue.ticket.id));

  std::printf("Heimdall twin session — %s / %s\n", network_name.c_str(), issue_key.c_str());
  std::printf("ticket #%d: %s\n", issue.ticket.id, issue.ticket.description.c_str());
  std::printf("twin: %zu of %zu devices visible, %zu secrets scrubbed — '.help' for commands\n\n",
              sandbox.slice().devices.size(), production.devices().size(),
              sandbox.scrubbed_secret_count());

  bool submitted = false;
  std::string line;
  while (std::printf("heimdall> "), std::fflush(stdout), std::getline(std::cin, line)) {
    auto trimmed = std::string(util::trim(line));
    if (trimmed.empty()) continue;
    clock.advance(3000);

    if (trimmed == ".quit") break;
    if (trimmed == ".help") {
      print_help();
      continue;
    }
    if (trimmed == ".slice") {
      std::printf("%s\n", sandbox.slice().rationale.c_str());
      continue;
    }
    if (trimmed == ".privileges") {
      std::printf("%s\n", priv::privilege_to_json(sandbox.privileges()).dump(2).c_str());
      continue;
    }
    if (trimmed == ".explain") {
      std::printf("%s", priv::explain_privileges(sandbox.privileges()).c_str());
      continue;
    }
    if (trimmed == ".inventory") {
      std::printf("%s", twin::render_inventory(sandbox.emulation().network()).c_str());
      continue;
    }
    if (trimmed == ".dot") {
      std::printf("%s", twin::render_topology_dot(sandbox.emulation().network()).c_str());
      continue;
    }
    if (trimmed == ".audit") {
      for (const enforce::AuditEntry& entry : enforcer.audit().entries()) {
        std::printf("[%2llu] %-9s %s\n", static_cast<unsigned long long>(entry.sequence),
                    to_string(entry.category).c_str(), entry.message.c_str());
      }
      std::printf("chain intact: %s\n", enforcer.audit_intact() ? "yes" : "NO");
      continue;
    }
    if (util::starts_with(trimmed, ".escalate")) {
      auto tokens = util::split_ws(trimmed);
      if (tokens.size() < 3) {
        std::printf("usage: .escalate <action> <device> [<kind> <name>]\n");
        continue;
      }
      try {
        priv::EscalationRequest request;
        request.action = priv::parse_action(tokens[1]);
        request.resource =
            tokens.size() >= 5
                ? priv::Resource{tokens[2], priv::parse_object_kind(tokens[3]), tokens[4]}
                : priv::Resource::whole_device(net::DeviceId(tokens[2]));
        request.justification = "requested interactively";
        priv::EscalationResult result = sandbox.request_escalation(request, true);
        std::printf("escalation -> %s (%s)\n", to_string(result.verdict).c_str(),
                    result.reason.c_str());
        enforcer.audit_event(clock, "repl", enforce::AuditCategory::Escalation,
                             trimmed + " -> " + to_string(result.verdict));
      } catch (const util::Error& error) {
        std::printf("error: %s\n", error.what());
      }
      continue;
    }
    if (trimmed == ".submit") {
      enforce::QuarantineReport report = enforcer.enforce_with_quarantine(
          production, sandbox.extract_changes(), sandbox.privileges(), clock, "repl");
      std::printf("enforcer: %zu applied, %zu intercepted\n", report.applied_changes.size(),
                  report.quarantined.size());
      for (const auto& [change, reason] : report.quarantined)
        std::printf("  intercepted: %s (%s)\n", change.summary().c_str(), reason.c_str());
      for (const cfg::ConfigChange& change : report.applied_changes)
        std::printf("  applied: %s\n", change.summary().c_str());
      std::printf("issue resolved on production: %s\n",
                  issue.resolved(production) ? "YES" : "not yet");
      submitted = true;
      continue;
    }

    try {
      twin::CommandResult result = sandbox.run(trimmed);
      std::printf("%s", result.output.c_str());
      enforcer.audit_event(clock, "repl", enforce::AuditCategory::Command,
                           trimmed + (result.ok ? " [ok]" : " [denied/failed]"));
    } catch (const util::Error& error) {
      std::printf("parse error: %s\n", error.what());
    }
  }

  std::printf("\nsession ended; %zu commands audited; issue resolved: %s\n",
              enforcer.audit().size(),
              issue.resolved(production) ? "yes" : (submitted ? "no" : "never submitted"));

  obs::tracer().end(session_span);
  if (!telemetry.trace_out.empty())
    std::printf("writing trace to %s (%zu spans)\n", telemetry.trace_out.c_str(),
                obs::tracer().span_count());
  if (!telemetry.metrics_out.empty())
    std::printf("writing metrics to %s\n", telemetry.metrics_out.c_str());
  return telemetry.write_outputs() ? 0 : 1;
}
