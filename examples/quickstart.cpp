// Quickstart: the complete Heimdall workflow in ~80 lines.
//
//   1. Build (or load) a production network and mine its policies.
//   2. A ticket arrives; production is broken.
//   3. Create the twin network (task-driven slice, scrubbed, mediated).
//   4. The technician troubleshoots and fixes the issue inside the twin.
//   5. The policy enforcer verifies, schedules and applies the changes.
//
// Run:  ./build/examples/quickstart
#include <cstdio>

#include "analysis/engine.hpp"
#include "enforcer/enforcer.hpp"
#include "msp/ticket.hpp"
#include "scenarios/enterprise.hpp"
#include "twin/twin.hpp"

int main() {
  using namespace heimdall;

  // 1. The customer's production network + its pinned policies.
  net::Network production = scen::build_enterprise();
  std::vector<spec::Policy> policies = scen::enterprise_policies(production);
  std::printf("production: %zu devices, %zu policies pinned\n\n", production.devices().size(),
              policies.size());

  // 2. Overnight, a change window left h2's access port in the wrong VLAN.
  production.device(net::DeviceId("r7")).interface(net::InterfaceId("Fa0/2")).access_vlan = 10;
  msp::Ticket ticket = msp::Ticket::connectivity(
      4711, net::DeviceId("h2"), net::DeviceId("h4"),
      "web clients on h2 cannot reach the app server h4", priv::TaskClass::VlanIssue);
  std::printf("ticket #%d: %s\n\n", ticket.id, ticket.description.c_str());

  // 3. Twin network: sliced to the task, secrets scrubbed, every command
  //    mediated against a generated Privilege_msp.
  analysis::Engine engine;
  analysis::Snapshot snapshot = engine.analyze_dataplane(production);
  const dp::Dataplane& dataplane = *snapshot.dataplane;
  twin::TwinNetwork twin = twin::TwinNetwork::create(production, dataplane, ticket);
  std::printf("twin created: %zu of %zu devices visible, %zu secrets scrubbed\n",
              twin.slice().devices.size(), production.devices().size(),
              twin.scrubbed_secret_count());
  std::printf("slice rationale:\n%s\n", twin.slice().rationale.c_str());

  // 4. The technician works inside the twin.
  for (const char* command : {
           "ping h2 h4",                                    // reproduce the issue
           "show interfaces r7",                            // inspect the access switch
           "interface r7 Fa0/2 switchport-access-vlan 20",  // fix
           "ping h2 h4",                                    // confirm
       }) {
    twin::CommandResult result = twin.run(command);
    std::printf("twin> %s\n%s\n", command, result.output.c_str());
  }

  // 5. Enforce: verify the changeset against the policies, schedule, apply.
  enforce::PolicyEnforcer enforcer(spec::PolicyVerifier(policies),
                                   enforce::SimulatedEnclave("heimdall-enforcer-v1", "hw-root"));
  util::VirtualClock clock;
  enforce::EnforcementReport report =
      enforcer.enforce(production, twin.extract_changes(), twin.privileges(), clock, "tech-7");

  std::printf("enforcer: changeset %s (%zu policies checked)\n",
              report.applied ? "APPROVED and applied" : "REJECTED",
              report.verification.policy_report.checked);
  for (const enforce::ScheduledStep& step : report.plan.steps)
    std::printf("  applied: %s\n", step.change.summary().c_str());

  bool healthy = spec::PolicyVerifier(policies).verify_network(production).ok();
  std::printf("\nproduction healthy again: %s; audit trail intact: %s (%zu entries)\n",
              healthy ? "yes" : "NO", enforcer.audit_intact() ? "yes" : "NO",
              enforcer.audit().size());
  return healthy ? 0 : 1;
}
