file(REMOVE_RECURSE
  "CMakeFiles/heimdall_msp.dir/attacker.cpp.o"
  "CMakeFiles/heimdall_msp.dir/attacker.cpp.o.d"
  "CMakeFiles/heimdall_msp.dir/metrics.cpp.o"
  "CMakeFiles/heimdall_msp.dir/metrics.cpp.o.d"
  "CMakeFiles/heimdall_msp.dir/rmm.cpp.o"
  "CMakeFiles/heimdall_msp.dir/rmm.cpp.o.d"
  "CMakeFiles/heimdall_msp.dir/technician.cpp.o"
  "CMakeFiles/heimdall_msp.dir/technician.cpp.o.d"
  "CMakeFiles/heimdall_msp.dir/ticketing.cpp.o"
  "CMakeFiles/heimdall_msp.dir/ticketing.cpp.o.d"
  "CMakeFiles/heimdall_msp.dir/workflow.cpp.o"
  "CMakeFiles/heimdall_msp.dir/workflow.cpp.o.d"
  "libheimdall_msp.a"
  "libheimdall_msp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heimdall_msp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
