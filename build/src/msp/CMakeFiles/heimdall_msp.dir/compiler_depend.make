# Empty compiler generated dependencies file for heimdall_msp.
# This may be replaced when dependencies are built.
