file(REMOVE_RECURSE
  "libheimdall_msp.a"
)
