file(REMOVE_RECURSE
  "libheimdall_netmodel.a"
)
