# Empty compiler generated dependencies file for heimdall_netmodel.
# This may be replaced when dependencies are built.
