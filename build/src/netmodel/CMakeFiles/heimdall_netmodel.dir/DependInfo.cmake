
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netmodel/acl.cpp" "src/netmodel/CMakeFiles/heimdall_netmodel.dir/acl.cpp.o" "gcc" "src/netmodel/CMakeFiles/heimdall_netmodel.dir/acl.cpp.o.d"
  "/root/repo/src/netmodel/device.cpp" "src/netmodel/CMakeFiles/heimdall_netmodel.dir/device.cpp.o" "gcc" "src/netmodel/CMakeFiles/heimdall_netmodel.dir/device.cpp.o.d"
  "/root/repo/src/netmodel/ipv4.cpp" "src/netmodel/CMakeFiles/heimdall_netmodel.dir/ipv4.cpp.o" "gcc" "src/netmodel/CMakeFiles/heimdall_netmodel.dir/ipv4.cpp.o.d"
  "/root/repo/src/netmodel/network.cpp" "src/netmodel/CMakeFiles/heimdall_netmodel.dir/network.cpp.o" "gcc" "src/netmodel/CMakeFiles/heimdall_netmodel.dir/network.cpp.o.d"
  "/root/repo/src/netmodel/topology.cpp" "src/netmodel/CMakeFiles/heimdall_netmodel.dir/topology.cpp.o" "gcc" "src/netmodel/CMakeFiles/heimdall_netmodel.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/heimdall_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
