file(REMOVE_RECURSE
  "CMakeFiles/heimdall_netmodel.dir/acl.cpp.o"
  "CMakeFiles/heimdall_netmodel.dir/acl.cpp.o.d"
  "CMakeFiles/heimdall_netmodel.dir/device.cpp.o"
  "CMakeFiles/heimdall_netmodel.dir/device.cpp.o.d"
  "CMakeFiles/heimdall_netmodel.dir/ipv4.cpp.o"
  "CMakeFiles/heimdall_netmodel.dir/ipv4.cpp.o.d"
  "CMakeFiles/heimdall_netmodel.dir/network.cpp.o"
  "CMakeFiles/heimdall_netmodel.dir/network.cpp.o.d"
  "CMakeFiles/heimdall_netmodel.dir/topology.cpp.o"
  "CMakeFiles/heimdall_netmodel.dir/topology.cpp.o.d"
  "libheimdall_netmodel.a"
  "libheimdall_netmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heimdall_netmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
