
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataplane/dataplane.cpp" "src/dataplane/CMakeFiles/heimdall_dataplane.dir/dataplane.cpp.o" "gcc" "src/dataplane/CMakeFiles/heimdall_dataplane.dir/dataplane.cpp.o.d"
  "/root/repo/src/dataplane/fib.cpp" "src/dataplane/CMakeFiles/heimdall_dataplane.dir/fib.cpp.o" "gcc" "src/dataplane/CMakeFiles/heimdall_dataplane.dir/fib.cpp.o.d"
  "/root/repo/src/dataplane/l2.cpp" "src/dataplane/CMakeFiles/heimdall_dataplane.dir/l2.cpp.o" "gcc" "src/dataplane/CMakeFiles/heimdall_dataplane.dir/l2.cpp.o.d"
  "/root/repo/src/dataplane/ospf.cpp" "src/dataplane/CMakeFiles/heimdall_dataplane.dir/ospf.cpp.o" "gcc" "src/dataplane/CMakeFiles/heimdall_dataplane.dir/ospf.cpp.o.d"
  "/root/repo/src/dataplane/reachability.cpp" "src/dataplane/CMakeFiles/heimdall_dataplane.dir/reachability.cpp.o" "gcc" "src/dataplane/CMakeFiles/heimdall_dataplane.dir/reachability.cpp.o.d"
  "/root/repo/src/dataplane/route.cpp" "src/dataplane/CMakeFiles/heimdall_dataplane.dir/route.cpp.o" "gcc" "src/dataplane/CMakeFiles/heimdall_dataplane.dir/route.cpp.o.d"
  "/root/repo/src/dataplane/trace.cpp" "src/dataplane/CMakeFiles/heimdall_dataplane.dir/trace.cpp.o" "gcc" "src/dataplane/CMakeFiles/heimdall_dataplane.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netmodel/CMakeFiles/heimdall_netmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/heimdall_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
