file(REMOVE_RECURSE
  "CMakeFiles/heimdall_dataplane.dir/dataplane.cpp.o"
  "CMakeFiles/heimdall_dataplane.dir/dataplane.cpp.o.d"
  "CMakeFiles/heimdall_dataplane.dir/fib.cpp.o"
  "CMakeFiles/heimdall_dataplane.dir/fib.cpp.o.d"
  "CMakeFiles/heimdall_dataplane.dir/l2.cpp.o"
  "CMakeFiles/heimdall_dataplane.dir/l2.cpp.o.d"
  "CMakeFiles/heimdall_dataplane.dir/ospf.cpp.o"
  "CMakeFiles/heimdall_dataplane.dir/ospf.cpp.o.d"
  "CMakeFiles/heimdall_dataplane.dir/reachability.cpp.o"
  "CMakeFiles/heimdall_dataplane.dir/reachability.cpp.o.d"
  "CMakeFiles/heimdall_dataplane.dir/route.cpp.o"
  "CMakeFiles/heimdall_dataplane.dir/route.cpp.o.d"
  "CMakeFiles/heimdall_dataplane.dir/trace.cpp.o"
  "CMakeFiles/heimdall_dataplane.dir/trace.cpp.o.d"
  "libheimdall_dataplane.a"
  "libheimdall_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heimdall_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
