file(REMOVE_RECURSE
  "libheimdall_dataplane.a"
)
