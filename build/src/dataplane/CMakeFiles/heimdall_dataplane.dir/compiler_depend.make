# Empty compiler generated dependencies file for heimdall_dataplane.
# This may be replaced when dependencies are built.
