file(REMOVE_RECURSE
  "libheimdall_twin.a"
)
