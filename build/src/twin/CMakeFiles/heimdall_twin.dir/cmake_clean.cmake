file(REMOVE_RECURSE
  "CMakeFiles/heimdall_twin.dir/console.cpp.o"
  "CMakeFiles/heimdall_twin.dir/console.cpp.o.d"
  "CMakeFiles/heimdall_twin.dir/emulation.cpp.o"
  "CMakeFiles/heimdall_twin.dir/emulation.cpp.o.d"
  "CMakeFiles/heimdall_twin.dir/monitor.cpp.o"
  "CMakeFiles/heimdall_twin.dir/monitor.cpp.o.d"
  "CMakeFiles/heimdall_twin.dir/presentation.cpp.o"
  "CMakeFiles/heimdall_twin.dir/presentation.cpp.o.d"
  "CMakeFiles/heimdall_twin.dir/scrub.cpp.o"
  "CMakeFiles/heimdall_twin.dir/scrub.cpp.o.d"
  "CMakeFiles/heimdall_twin.dir/slice.cpp.o"
  "CMakeFiles/heimdall_twin.dir/slice.cpp.o.d"
  "CMakeFiles/heimdall_twin.dir/twin.cpp.o"
  "CMakeFiles/heimdall_twin.dir/twin.cpp.o.d"
  "libheimdall_twin.a"
  "libheimdall_twin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heimdall_twin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
