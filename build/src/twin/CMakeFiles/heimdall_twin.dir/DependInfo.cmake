
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/twin/console.cpp" "src/twin/CMakeFiles/heimdall_twin.dir/console.cpp.o" "gcc" "src/twin/CMakeFiles/heimdall_twin.dir/console.cpp.o.d"
  "/root/repo/src/twin/emulation.cpp" "src/twin/CMakeFiles/heimdall_twin.dir/emulation.cpp.o" "gcc" "src/twin/CMakeFiles/heimdall_twin.dir/emulation.cpp.o.d"
  "/root/repo/src/twin/monitor.cpp" "src/twin/CMakeFiles/heimdall_twin.dir/monitor.cpp.o" "gcc" "src/twin/CMakeFiles/heimdall_twin.dir/monitor.cpp.o.d"
  "/root/repo/src/twin/presentation.cpp" "src/twin/CMakeFiles/heimdall_twin.dir/presentation.cpp.o" "gcc" "src/twin/CMakeFiles/heimdall_twin.dir/presentation.cpp.o.d"
  "/root/repo/src/twin/scrub.cpp" "src/twin/CMakeFiles/heimdall_twin.dir/scrub.cpp.o" "gcc" "src/twin/CMakeFiles/heimdall_twin.dir/scrub.cpp.o.d"
  "/root/repo/src/twin/slice.cpp" "src/twin/CMakeFiles/heimdall_twin.dir/slice.cpp.o" "gcc" "src/twin/CMakeFiles/heimdall_twin.dir/slice.cpp.o.d"
  "/root/repo/src/twin/twin.cpp" "src/twin/CMakeFiles/heimdall_twin.dir/twin.cpp.o" "gcc" "src/twin/CMakeFiles/heimdall_twin.dir/twin.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/config/CMakeFiles/heimdall_config.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/heimdall_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/privilege/CMakeFiles/heimdall_privilege.dir/DependInfo.cmake"
  "/root/repo/build/src/netmodel/CMakeFiles/heimdall_netmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/heimdall_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
