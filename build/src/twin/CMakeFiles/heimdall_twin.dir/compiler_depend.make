# Empty compiler generated dependencies file for heimdall_twin.
# This may be replaced when dependencies are built.
