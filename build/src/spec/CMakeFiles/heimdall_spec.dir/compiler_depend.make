# Empty compiler generated dependencies file for heimdall_spec.
# This may be replaced when dependencies are built.
