file(REMOVE_RECURSE
  "libheimdall_spec.a"
)
