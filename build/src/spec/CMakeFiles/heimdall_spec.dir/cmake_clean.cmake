file(REMOVE_RECURSE
  "CMakeFiles/heimdall_spec.dir/json_frontend.cpp.o"
  "CMakeFiles/heimdall_spec.dir/json_frontend.cpp.o.d"
  "CMakeFiles/heimdall_spec.dir/mine.cpp.o"
  "CMakeFiles/heimdall_spec.dir/mine.cpp.o.d"
  "CMakeFiles/heimdall_spec.dir/policy.cpp.o"
  "CMakeFiles/heimdall_spec.dir/policy.cpp.o.d"
  "CMakeFiles/heimdall_spec.dir/verify.cpp.o"
  "CMakeFiles/heimdall_spec.dir/verify.cpp.o.d"
  "libheimdall_spec.a"
  "libheimdall_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heimdall_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
