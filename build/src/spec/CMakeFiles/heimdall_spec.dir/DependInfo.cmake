
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spec/json_frontend.cpp" "src/spec/CMakeFiles/heimdall_spec.dir/json_frontend.cpp.o" "gcc" "src/spec/CMakeFiles/heimdall_spec.dir/json_frontend.cpp.o.d"
  "/root/repo/src/spec/mine.cpp" "src/spec/CMakeFiles/heimdall_spec.dir/mine.cpp.o" "gcc" "src/spec/CMakeFiles/heimdall_spec.dir/mine.cpp.o.d"
  "/root/repo/src/spec/policy.cpp" "src/spec/CMakeFiles/heimdall_spec.dir/policy.cpp.o" "gcc" "src/spec/CMakeFiles/heimdall_spec.dir/policy.cpp.o.d"
  "/root/repo/src/spec/verify.cpp" "src/spec/CMakeFiles/heimdall_spec.dir/verify.cpp.o" "gcc" "src/spec/CMakeFiles/heimdall_spec.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataplane/CMakeFiles/heimdall_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/netmodel/CMakeFiles/heimdall_netmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/heimdall_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
