file(REMOVE_RECURSE
  "CMakeFiles/heimdall_enforcer.dir/audit.cpp.o"
  "CMakeFiles/heimdall_enforcer.dir/audit.cpp.o.d"
  "CMakeFiles/heimdall_enforcer.dir/compliance.cpp.o"
  "CMakeFiles/heimdall_enforcer.dir/compliance.cpp.o.d"
  "CMakeFiles/heimdall_enforcer.dir/enclave.cpp.o"
  "CMakeFiles/heimdall_enforcer.dir/enclave.cpp.o.d"
  "CMakeFiles/heimdall_enforcer.dir/enforcer.cpp.o"
  "CMakeFiles/heimdall_enforcer.dir/enforcer.cpp.o.d"
  "CMakeFiles/heimdall_enforcer.dir/scheduler.cpp.o"
  "CMakeFiles/heimdall_enforcer.dir/scheduler.cpp.o.d"
  "CMakeFiles/heimdall_enforcer.dir/verifier.cpp.o"
  "CMakeFiles/heimdall_enforcer.dir/verifier.cpp.o.d"
  "libheimdall_enforcer.a"
  "libheimdall_enforcer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heimdall_enforcer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
