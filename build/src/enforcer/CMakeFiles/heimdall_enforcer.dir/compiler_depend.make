# Empty compiler generated dependencies file for heimdall_enforcer.
# This may be replaced when dependencies are built.
