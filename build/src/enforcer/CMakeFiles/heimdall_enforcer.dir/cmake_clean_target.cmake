file(REMOVE_RECURSE
  "libheimdall_enforcer.a"
)
