# CMake generated Testfile for 
# Source directory: /root/repo/src/enforcer
# Build directory: /root/repo/build/src/enforcer
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
