file(REMOVE_RECURSE
  "CMakeFiles/heimdall_scenarios.dir/builder.cpp.o"
  "CMakeFiles/heimdall_scenarios.dir/builder.cpp.o.d"
  "CMakeFiles/heimdall_scenarios.dir/enterprise.cpp.o"
  "CMakeFiles/heimdall_scenarios.dir/enterprise.cpp.o.d"
  "CMakeFiles/heimdall_scenarios.dir/issues.cpp.o"
  "CMakeFiles/heimdall_scenarios.dir/issues.cpp.o.d"
  "CMakeFiles/heimdall_scenarios.dir/university.cpp.o"
  "CMakeFiles/heimdall_scenarios.dir/university.cpp.o.d"
  "libheimdall_scenarios.a"
  "libheimdall_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heimdall_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
