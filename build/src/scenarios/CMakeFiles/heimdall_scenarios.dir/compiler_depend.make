# Empty compiler generated dependencies file for heimdall_scenarios.
# This may be replaced when dependencies are built.
