file(REMOVE_RECURSE
  "libheimdall_scenarios.a"
)
