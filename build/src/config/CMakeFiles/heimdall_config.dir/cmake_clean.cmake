file(REMOVE_RECURSE
  "CMakeFiles/heimdall_config.dir/diff.cpp.o"
  "CMakeFiles/heimdall_config.dir/diff.cpp.o.d"
  "CMakeFiles/heimdall_config.dir/parse.cpp.o"
  "CMakeFiles/heimdall_config.dir/parse.cpp.o.d"
  "CMakeFiles/heimdall_config.dir/serialize.cpp.o"
  "CMakeFiles/heimdall_config.dir/serialize.cpp.o.d"
  "libheimdall_config.a"
  "libheimdall_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heimdall_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
