file(REMOVE_RECURSE
  "libheimdall_config.a"
)
