# Empty dependencies file for heimdall_config.
# This may be replaced when dependencies are built.
