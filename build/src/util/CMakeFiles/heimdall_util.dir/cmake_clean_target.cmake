file(REMOVE_RECURSE
  "libheimdall_util.a"
)
