file(REMOVE_RECURSE
  "CMakeFiles/heimdall_util.dir/clock.cpp.o"
  "CMakeFiles/heimdall_util.dir/clock.cpp.o.d"
  "CMakeFiles/heimdall_util.dir/json.cpp.o"
  "CMakeFiles/heimdall_util.dir/json.cpp.o.d"
  "CMakeFiles/heimdall_util.dir/random.cpp.o"
  "CMakeFiles/heimdall_util.dir/random.cpp.o.d"
  "CMakeFiles/heimdall_util.dir/sha256.cpp.o"
  "CMakeFiles/heimdall_util.dir/sha256.cpp.o.d"
  "CMakeFiles/heimdall_util.dir/strings.cpp.o"
  "CMakeFiles/heimdall_util.dir/strings.cpp.o.d"
  "libheimdall_util.a"
  "libheimdall_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heimdall_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
