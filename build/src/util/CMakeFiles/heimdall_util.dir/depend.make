# Empty dependencies file for heimdall_util.
# This may be replaced when dependencies are built.
