file(REMOVE_RECURSE
  "CMakeFiles/heimdall_privilege.dir/action.cpp.o"
  "CMakeFiles/heimdall_privilege.dir/action.cpp.o.d"
  "CMakeFiles/heimdall_privilege.dir/escalation.cpp.o"
  "CMakeFiles/heimdall_privilege.dir/escalation.cpp.o.d"
  "CMakeFiles/heimdall_privilege.dir/explain.cpp.o"
  "CMakeFiles/heimdall_privilege.dir/explain.cpp.o.d"
  "CMakeFiles/heimdall_privilege.dir/generator.cpp.o"
  "CMakeFiles/heimdall_privilege.dir/generator.cpp.o.d"
  "CMakeFiles/heimdall_privilege.dir/json_frontend.cpp.o"
  "CMakeFiles/heimdall_privilege.dir/json_frontend.cpp.o.d"
  "CMakeFiles/heimdall_privilege.dir/resource.cpp.o"
  "CMakeFiles/heimdall_privilege.dir/resource.cpp.o.d"
  "CMakeFiles/heimdall_privilege.dir/spec.cpp.o"
  "CMakeFiles/heimdall_privilege.dir/spec.cpp.o.d"
  "libheimdall_privilege.a"
  "libheimdall_privilege.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heimdall_privilege.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
