# Empty compiler generated dependencies file for heimdall_privilege.
# This may be replaced when dependencies are built.
