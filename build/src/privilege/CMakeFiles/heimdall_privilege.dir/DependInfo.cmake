
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/privilege/action.cpp" "src/privilege/CMakeFiles/heimdall_privilege.dir/action.cpp.o" "gcc" "src/privilege/CMakeFiles/heimdall_privilege.dir/action.cpp.o.d"
  "/root/repo/src/privilege/escalation.cpp" "src/privilege/CMakeFiles/heimdall_privilege.dir/escalation.cpp.o" "gcc" "src/privilege/CMakeFiles/heimdall_privilege.dir/escalation.cpp.o.d"
  "/root/repo/src/privilege/explain.cpp" "src/privilege/CMakeFiles/heimdall_privilege.dir/explain.cpp.o" "gcc" "src/privilege/CMakeFiles/heimdall_privilege.dir/explain.cpp.o.d"
  "/root/repo/src/privilege/generator.cpp" "src/privilege/CMakeFiles/heimdall_privilege.dir/generator.cpp.o" "gcc" "src/privilege/CMakeFiles/heimdall_privilege.dir/generator.cpp.o.d"
  "/root/repo/src/privilege/json_frontend.cpp" "src/privilege/CMakeFiles/heimdall_privilege.dir/json_frontend.cpp.o" "gcc" "src/privilege/CMakeFiles/heimdall_privilege.dir/json_frontend.cpp.o.d"
  "/root/repo/src/privilege/resource.cpp" "src/privilege/CMakeFiles/heimdall_privilege.dir/resource.cpp.o" "gcc" "src/privilege/CMakeFiles/heimdall_privilege.dir/resource.cpp.o.d"
  "/root/repo/src/privilege/spec.cpp" "src/privilege/CMakeFiles/heimdall_privilege.dir/spec.cpp.o" "gcc" "src/privilege/CMakeFiles/heimdall_privilege.dir/spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netmodel/CMakeFiles/heimdall_netmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/heimdall_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
