file(REMOVE_RECURSE
  "libheimdall_privilege.a"
)
