# Empty compiler generated dependencies file for fig8_enterprise_tradeoff.
# This may be replaced when dependencies are built.
