file(REMOVE_RECURSE
  "CMakeFiles/fig9_university_tradeoff.dir/fig9_university_tradeoff.cpp.o"
  "CMakeFiles/fig9_university_tradeoff.dir/fig9_university_tradeoff.cpp.o.d"
  "fig9_university_tradeoff"
  "fig9_university_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_university_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
