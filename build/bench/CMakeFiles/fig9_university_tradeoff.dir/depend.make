# Empty dependencies file for fig9_university_tradeoff.
# This may be replaced when dependencies are built.
