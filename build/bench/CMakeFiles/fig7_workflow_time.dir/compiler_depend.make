# Empty compiler generated dependencies file for fig7_workflow_time.
# This may be replaced when dependencies are built.
