file(REMOVE_RECURSE
  "CMakeFiles/table1_networks.dir/table1_networks.cpp.o"
  "CMakeFiles/table1_networks.dir/table1_networks.cpp.o.d"
  "table1_networks"
  "table1_networks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_networks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
