# Empty dependencies file for heimdall_repl.
# This may be replaced when dependencies are built.
