file(REMOVE_RECURSE
  "CMakeFiles/heimdall_repl.dir/heimdall_repl.cpp.o"
  "CMakeFiles/heimdall_repl.dir/heimdall_repl.cpp.o.d"
  "heimdall_repl"
  "heimdall_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heimdall_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
