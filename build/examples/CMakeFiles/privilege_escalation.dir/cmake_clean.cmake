file(REMOVE_RECURSE
  "CMakeFiles/privilege_escalation.dir/privilege_escalation.cpp.o"
  "CMakeFiles/privilege_escalation.dir/privilege_escalation.cpp.o.d"
  "privilege_escalation"
  "privilege_escalation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privilege_escalation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
