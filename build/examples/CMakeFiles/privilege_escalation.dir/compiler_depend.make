# Empty compiler generated dependencies file for privilege_escalation.
# This may be replaced when dependencies are built.
