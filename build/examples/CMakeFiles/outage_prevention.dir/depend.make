# Empty dependencies file for outage_prevention.
# This may be replaced when dependencies are built.
