file(REMOVE_RECURSE
  "CMakeFiles/outage_prevention.dir/outage_prevention.cpp.o"
  "CMakeFiles/outage_prevention.dir/outage_prevention.cpp.o.d"
  "outage_prevention"
  "outage_prevention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outage_prevention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
