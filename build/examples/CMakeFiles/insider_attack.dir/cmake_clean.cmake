file(REMOVE_RECURSE
  "CMakeFiles/insider_attack.dir/insider_attack.cpp.o"
  "CMakeFiles/insider_attack.dir/insider_attack.cpp.o.d"
  "insider_attack"
  "insider_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insider_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
