# Empty compiler generated dependencies file for insider_attack.
# This may be replaced when dependencies are built.
