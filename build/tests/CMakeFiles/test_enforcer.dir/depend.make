# Empty dependencies file for test_enforcer.
# This may be replaced when dependencies are built.
