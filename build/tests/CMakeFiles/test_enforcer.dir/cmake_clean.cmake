file(REMOVE_RECURSE
  "CMakeFiles/test_enforcer.dir/test_enforcer.cpp.o"
  "CMakeFiles/test_enforcer.dir/test_enforcer.cpp.o.d"
  "test_enforcer"
  "test_enforcer.pdb"
  "test_enforcer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_enforcer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
