
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ipv4.cpp" "tests/CMakeFiles/test_ipv4.dir/test_ipv4.cpp.o" "gcc" "tests/CMakeFiles/test_ipv4.dir/test_ipv4.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/heimdall_util.dir/DependInfo.cmake"
  "/root/repo/build/src/netmodel/CMakeFiles/heimdall_netmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/heimdall_config.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/heimdall_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/heimdall_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/privilege/CMakeFiles/heimdall_privilege.dir/DependInfo.cmake"
  "/root/repo/build/src/twin/CMakeFiles/heimdall_twin.dir/DependInfo.cmake"
  "/root/repo/build/src/enforcer/CMakeFiles/heimdall_enforcer.dir/DependInfo.cmake"
  "/root/repo/build/src/msp/CMakeFiles/heimdall_msp.dir/DependInfo.cmake"
  "/root/repo/build/src/scenarios/CMakeFiles/heimdall_scenarios.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
