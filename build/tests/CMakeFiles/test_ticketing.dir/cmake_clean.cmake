file(REMOVE_RECURSE
  "CMakeFiles/test_ticketing.dir/test_ticketing.cpp.o"
  "CMakeFiles/test_ticketing.dir/test_ticketing.cpp.o.d"
  "test_ticketing"
  "test_ticketing.pdb"
  "test_ticketing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ticketing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
