file(REMOVE_RECURSE
  "CMakeFiles/test_msp.dir/test_msp.cpp.o"
  "CMakeFiles/test_msp.dir/test_msp.cpp.o.d"
  "test_msp"
  "test_msp.pdb"
  "test_msp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_msp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
