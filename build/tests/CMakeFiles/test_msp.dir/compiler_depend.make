# Empty compiler generated dependencies file for test_msp.
# This may be replaced when dependencies are built.
