# Empty dependencies file for test_privilege.
# This may be replaced when dependencies are built.
