# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_ipv4[1]_include.cmake")
include("/root/repo/build/tests/test_netmodel[1]_include.cmake")
include("/root/repo/build/tests/test_config[1]_include.cmake")
include("/root/repo/build/tests/test_dataplane[1]_include.cmake")
include("/root/repo/build/tests/test_spec[1]_include.cmake")
include("/root/repo/build/tests/test_privilege[1]_include.cmake")
include("/root/repo/build/tests/test_twin[1]_include.cmake")
include("/root/repo/build/tests/test_enforcer[1]_include.cmake")
include("/root/repo/build/tests/test_msp[1]_include.cmake")
include("/root/repo/build/tests/test_scenarios[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_ticketing[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
