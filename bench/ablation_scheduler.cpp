// Ablation for the §4.3 scheduler: dependency-ordered (make-before-break)
// change application vs naive session order, measured as transient policy
// violations across intermediate production states ("updating routers in
// the wrong order can result in inconsistent behavior").
//
// Workload: an uplink migration on a static-routed edge. The technician's
// session order removes the old route before adding the new one (the
// natural typing order); the scheduler flips that, so both routes coexist
// during the update and connectivity never drops.
#include <cstdio>

#include "enforcer/scheduler.hpp"
#include "scenarios/builder.hpp"
#include "util/clock.hpp"

namespace {

using namespace heimdall;

/// edge router `e` dual-homed to core `c`; host h behind e, server s behind
/// c; purely static routing.
net::Network migration_network() {
  net::Network network("migration");
  network.add_device(scen::make_router("c"));
  network.add_device(scen::make_router("e"));
  scen::connect_routers(network, "c", "d0", net::Ipv4Address::parse("10.1.1.1"), "e", "u0",
                        net::Ipv4Address::parse("10.1.1.2"));
  scen::connect_routers(network, "c", "d1", net::Ipv4Address::parse("10.1.2.1"), "e", "u1",
                        net::Ipv4Address::parse("10.1.2.2"));
  network.add_device(scen::make_host("h", net::Ipv4Address::parse("10.0.1.10"), 24,
                                     net::Ipv4Address::parse("10.0.1.1")));
  network.add_device(scen::make_host("s", net::Ipv4Address::parse("10.0.2.10"), 24,
                                     net::Ipv4Address::parse("10.0.2.1")));
  scen::attach_host_routed(network, "e", "h0", net::Ipv4Address::parse("10.0.1.1"), 24, "h");
  scen::attach_host_routed(network, "c", "s0", net::Ipv4Address::parse("10.0.2.1"), 24, "s");

  auto add_route = [&](const char* device, const char* prefix, const char* via) {
    net::StaticRoute route;
    route.prefix = net::Ipv4Prefix::parse(prefix);
    route.next_hop = net::Ipv4Address::parse(via);
    network.device(net::DeviceId(device)).static_routes().push_back(route);
  };
  add_route("e", "10.0.2.0/24", "10.1.1.1");  // to server, via uplink 0
  add_route("c", "10.0.1.0/24", "10.1.1.2");  // return path, via downlink 0
  network.validate();
  return network;
}

/// The migration session as typed: remove old, add new — on both routers —
/// then shut the retired link.
std::vector<cfg::ConfigChange> migration_session() {
  using namespace heimdall::cfg;
  auto route = [](const char* prefix, const char* via) {
    net::StaticRoute r;
    r.prefix = net::Ipv4Prefix::parse(prefix);
    r.next_hop = net::Ipv4Address::parse(via);
    return r;
  };
  std::vector<ConfigChange> session;
  session.push_back({net::DeviceId("e"), StaticRouteRemove{route("10.0.2.0/24", "10.1.1.1")}});
  session.push_back({net::DeviceId("e"), StaticRouteAdd{route("10.0.2.0/24", "10.1.2.1")}});
  session.push_back({net::DeviceId("c"), StaticRouteRemove{route("10.0.1.0/24", "10.1.1.2")}});
  session.push_back({net::DeviceId("c"), StaticRouteAdd{route("10.0.1.0/24", "10.1.2.2")}});
  session.push_back({net::DeviceId("e"),
                     InterfaceAdminChange{net::InterfaceId("u0"), false, true}});
  session.push_back({net::DeviceId("c"),
                     InterfaceAdminChange{net::InterfaceId("d0"), false, true}});
  return session;
}

std::size_t report(const char* label, const enforce::SchedulePlan& plan) {
  std::printf("  %s:\n", label);
  for (const enforce::ScheduledStep& step : plan.steps) {
    std::printf("    %-60s %zu transient violation(s)\n", step.change.summary().c_str(),
                step.transient_violations.size());
  }
  std::printf("    => total transient violations: %zu\n\n", plan.transient_violation_count());
  return plan.transient_violation_count();
}

}  // namespace

int main() {
  std::printf("Ablation: change scheduler ordering (paper SS4.3)\n");
  std::printf("workload: dual-uplink migration on a static-routed edge\n\n");

  net::Network production = migration_network();
  spec::PolicyVerifier invariants(
      {spec::Policy{spec::PolicyType::Reachability, net::DeviceId("h"), net::DeviceId("s"),
                    net::DeviceId{}},
       spec::Policy{spec::PolicyType::Reachability, net::DeviceId("s"), net::DeviceId("h"),
                    net::DeviceId{}}});

  std::vector<cfg::ConfigChange> session = migration_session();

  util::Stopwatch naive_watch;
  enforce::SchedulePlan naive = enforce::check_plan_order(production, session, invariants);
  double naive_ms = naive_watch.elapsed_ms();

  util::Stopwatch scheduled_watch;
  enforce::SchedulePlan scheduled =
      enforce::build_plan(production, session, invariants, /*check_transients=*/true);
  double scheduled_ms = scheduled_watch.elapsed_ms();

  std::size_t naive_violations = report("naive session order", naive);
  std::size_t scheduled_violations = report("dependency-scheduled order", scheduled);

  // Both orders must land on the same final state.
  net::Network via_naive = production;
  cfg::apply_changes(via_naive, naive.ordered_changes());
  net::Network via_scheduled = production;
  cfg::apply_changes(via_scheduled, scheduled.ordered_changes());
  bool same_final = via_naive == via_scheduled;

  std::printf("naive: %zu transient violations (%.2f ms); scheduled: %zu (%.2f ms); "
              "same final state: %s\n",
              naive_violations, naive_ms, scheduled_violations, scheduled_ms,
              same_final ? "yes" : "NO");
  return (same_final && scheduled_violations < naive_violations) ? 0 : 1;
}
