// Reproduces Figure 8: feasibility and attack surface for the enterprise
// network under All / Neighbor / Heimdall access strategies.
#include "scenarios/enterprise.hpp"
#include "tradeoff_common.hpp"

int main() {
  using namespace heimdall;
  net::Network network = scen::build_enterprise();
  bench::run_tradeoff("Figure 8 (enterprise)", network, scen::enterprise_policies(network));
  return 0;
}
