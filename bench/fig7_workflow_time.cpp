// Reproduces Figure 7: time to solve the three pilot-study issues (vlan,
// ospf, isp) on the enterprise network, comparing the current (direct RMM
// access) workflow against Heimdall, with a per-step breakdown.
//
// Time composition (see EXPERIMENTS.md): human think/type/read latencies run
// on a deterministic virtual clock (the paper scripts the command list the
// same way); Heimdall's machine steps (twin provisioning, verification,
// scheduled push) combine a modeled provisioning cost with measured compute.
// The paper reports ~+28 s average overhead (15 s simple, 42 s complex),
// with operations dominating — the same shape this harness prints.
#include <cstdio>

#include "msp/workflow.hpp"
#include "scenarios/enterprise.hpp"
#include "scenarios/university.hpp"

namespace {

using namespace heimdall;

void print_result(const char* issue, const msp::WorkflowResult& result) {
  std::printf("  %-8s %-9s total %7.1f s  resolved=%s  |", issue, result.workflow.c_str(),
              result.total_ms() / 1000.0, result.issue_resolved ? "yes" : "NO");
  for (const msp::StepTiming& step : result.steps) {
    std::printf("  %s=%.1fs", step.step.c_str(), step.total_ms() / 1000.0);
  }
  std::printf("\n");
}

void run_network(const char* name, const net::Network& healthy,
                 const std::vector<spec::Policy>& policies,
                 const std::vector<scen::IssueSpec>& issues) {
  std::printf("%s network:\n", name);
  double overhead_sum = 0;
  for (const scen::IssueSpec& issue : issues) {
    msp::Technician technician;

    net::Network current_production = healthy;
    issue.inject(current_production);
    msp::WorkflowResult current = msp::run_current_workflow(
        current_production, issue.ticket, issue.fix_script, technician, issue.resolved);
    print_result(issue.key.c_str(), current);

    net::Network heimdall_production = healthy;
    issue.inject(heimdall_production);
    enforce::PolicyEnforcer enforcer(spec::PolicyVerifier(policies),
                                     enforce::SimulatedEnclave("heimdall-enforcer-v1", "hw"));
    msp::WorkflowResult heimdall = msp::run_heimdall_workflow(
        heimdall_production, enforcer, issue.ticket, issue.fix_script, technician,
        issue.resolved);
    print_result(issue.key.c_str(), heimdall);

    double overhead = (heimdall.total_ms() - current.total_ms()) / 1000.0;
    overhead_sum += overhead;
    std::printf("  %-8s Heimdall overhead: %+.1f s\n\n", issue.key.c_str(), overhead);
  }
  std::printf("  average Heimdall overhead: %+.1f s (paper: +28 s avg, 15-42 s range)\n\n",
              overhead_sum / static_cast<double>(issues.size()));
}

}  // namespace

int main() {
  std::printf("Figure 7: time to solve three real issues, current vs Heimdall\n\n");
  net::Network enterprise = scen::build_enterprise();
  run_network("Enterprise", enterprise, scen::enterprise_policies(enterprise),
              scen::enterprise_issues());
  // The paper omits the university plot "due to similarity"; we print it too.
  net::Network university = scen::build_university();
  run_network("University", university, scen::university_policies(university),
              scen::university_issues());
  return 0;
}
