// Micro-benchmarks (google-benchmark) for the substrates every experiment
// rides on: the analysis engine (full, incremental, memoized, parallel),
// LPM lookups, flow tracing, policy verification, twin creation, config
// round-trips, audit appends, SHA-256 throughput.
//
// Engines that measure real compute use cache_capacity = 0 so memoization
// cannot turn the loop body into a lookup.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "analysis/engine.hpp"
#include "config/diff.hpp"
#include "dataplane/compiled.hpp"
#include "config/parse.hpp"
#include "config/serialize.hpp"
#include "enforcer/audit.hpp"
#include "enforcer/audit_sink.hpp"
#include "enforcer/enforcer.hpp"
#include "enforcer/ledger.hpp"
#include "service/manager.hpp"
#include "obs/journal.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "dataplane/sharded.hpp"
#include "scenarios/enterprise.hpp"
#include "scenarios/fabric.hpp"
#include "scenarios/university.hpp"
#include "spec/verify.hpp"
#include "twin/twin.hpp"
#include "util/random.hpp"
#include "util/sha256.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace heimdall;

const net::Network& enterprise() {
  static const net::Network network = scen::build_enterprise();
  return network;
}

const net::Network& university() {
  static const net::Network network = scen::build_university();
  return network;
}

const net::Network& pick(int index) { return index == 0 ? enterprise() : university(); }

analysis::Options uncached() {
  analysis::Options options;
  options.cache_capacity = 0;
  return options;
}

/// A static route on `router_id` towards an unused prefix, with a next hop
/// inside one of the router's connected subnets (so the FIB installs it).
cfg::ConfigChange make_static_route_change(const net::Network& network,
                                           const net::DeviceId& router_id) {
  const net::Device& router = network.device(router_id);
  for (const net::Interface& iface : router.interfaces()) {
    if (!iface.address || iface.shutdown) continue;
    std::uint32_t candidate = iface.address->ip.value() + 1;
    if (!iface.address->subnet().contains(net::Ipv4Address(candidate)))
      candidate = iface.address->ip.value() - 1;
    net::StaticRoute route;
    route.prefix = net::Ipv4Prefix::parse("203.0.113.0/24");
    route.next_hop = net::Ipv4Address(candidate);
    return {router_id, cfg::StaticRouteAdd{route}};
  }
  throw std::runtime_error("no usable interface on " + router_id.str());
}

void BM_EngineAnalyzeDataplane(benchmark::State& state) {
  const net::Network& network = pick(static_cast<int>(state.range(0)));
  analysis::Engine engine(uncached());
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.analyze_dataplane(network));
  }
}
BENCHMARK(BM_EngineAnalyzeDataplane)->Arg(0)->Arg(1)->ArgNames({"net"});

void BM_EngineAnalyzeFull(benchmark::State& state) {
  const net::Network& network = pick(static_cast<int>(state.range(0)));
  analysis::Engine engine(uncached());
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.analyze(network));
  }
}
BENCHMARK(BM_EngineAnalyzeFull)->Arg(0)->Arg(1)->ArgNames({"net"});

void BM_EngineAnalyzeFullParallel(benchmark::State& state) {
  const net::Network& network = university();
  analysis::Options options = uncached();
  options.trace_threads = static_cast<std::size_t>(state.range(0));
  analysis::Engine engine(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.analyze(network));
  }
}
BENCHMARK(BM_EngineAnalyzeFullParallel)->Arg(2)->Arg(4)->ArgNames({"threads"});

void BM_EngineCacheHit(benchmark::State& state) {
  const net::Network& network = university();
  analysis::Engine engine;
  engine.analyze(network);  // warm the memo
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.analyze(network));
  }
}
BENCHMARK(BM_EngineCacheHit);

/// Per-iteration deltas of the engine's registry counters, attached to the
/// benchmark row so incremental-vs-full runs show cache and dirty-set
/// behaviour alongside wall time.
class EngineCounterProbe {
 public:
  EngineCounterProbe()
      : hits0_(counter("engine.cache_hits")),
        misses0_(counter("engine.cache_misses")),
        full0_(counter("engine.full_recomputes")),
        incremental0_(counter("engine.incremental_recomputes")),
        retraced0_(counter("engine.retraced_pairs")) {
    const obs::HistogramSnapshot dirty = dirty_histogram();
    dirty_count0_ = dirty.count;
    dirty_sum0_ = dirty.sum;
  }

  void annotate(benchmark::State& state) const {
    const double iterations = static_cast<double>(state.iterations());
    if (iterations <= 0) return;
    state.counters["cache_hits"] = (counter("engine.cache_hits") - hits0_) / iterations;
    state.counters["cache_misses"] = (counter("engine.cache_misses") - misses0_) / iterations;
    state.counters["full_recomputes"] =
        (counter("engine.full_recomputes") - full0_) / iterations;
    state.counters["incr_recomputes"] =
        (counter("engine.incremental_recomputes") - incremental0_) / iterations;
    state.counters["retraced_pairs"] =
        (counter("engine.retraced_pairs") - retraced0_) / iterations;
    const obs::HistogramSnapshot dirty = dirty_histogram();
    if (dirty.count > dirty_count0_)
      state.counters["dirty_devices"] =
          (dirty.sum - dirty_sum0_) / static_cast<double>(dirty.count - dirty_count0_);
  }

 private:
  static double counter(const std::string& name) {
    return static_cast<double>(obs::Registry::global().counter(name).value());
  }
  static obs::HistogramSnapshot dirty_histogram() {
    return obs::Registry::global().histogram("engine.dirty_devices").snapshot();
  }

  double hits0_, misses0_, full0_, incremental0_, retraced0_;
  std::uint64_t dirty_count0_ = 0;
  double dirty_sum0_ = 0;
};

// The incremental-vs-full pair: one static-route edit on the university
// network (13 routers / 17 hosts / 92 links). The incremental path rebuilds
// one FIB and re-traces only pairs crossing the edited router; the full path
// recomputes L2 + OSPF + every FIB and re-traces all 272 pairs.
void BM_EngineFullAfterStaticRoute(benchmark::State& state) {
  const net::Network& base_net = university();
  net::Network changed = base_net;
  cfg::apply_change(changed, make_static_route_change(base_net, net::DeviceId("u1")));
  analysis::Engine engine(uncached());
  EngineCounterProbe probe;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.analyze(changed));
  }
  probe.annotate(state);
}
BENCHMARK(BM_EngineFullAfterStaticRoute);

void BM_EngineIncrementalStaticRoute(benchmark::State& state) {
  const net::Network& base_net = university();
  std::vector<cfg::ConfigChange> changes{
      make_static_route_change(base_net, net::DeviceId("u1"))};
  net::Network changed = base_net;
  cfg::apply_change(changed, changes.front());

  analysis::Engine engine(uncached());
  analysis::Snapshot base = engine.analyze(base_net);
  EngineCounterProbe probe;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.analyze(changed, base, changes));
  }
  probe.annotate(state);
}
BENCHMARK(BM_EngineIncrementalStaticRoute);

// ---------------------------------------------------------------- raw LPM --
// BM_FibLookup (trie) and BM_CompiledFibLookup (DIR-24-8 tables) share one
// fixture: the same 1000-route table and the same probe sequence sampled
// FROM that table — ~45% addresses inside a random installed route, ~30%
// inside sub-/24 refinements (the chunk path the multibit scheme must not
// lose on), ~25% rejection-sampled misses. A uniform-random probe stream
// would mostly hit short prefixes or nothing, letting either implementation
// win on the default/miss fast path instead of on real matches.

struct LpmFixture {
  dp::Fib fib;
  dp::CompiledFib compiled;
  std::vector<net::Ipv4Address> probes;
};

const LpmFixture& lpm_fixture() {
  static const LpmFixture fixture = [] {
    LpmFixture f;
    util::Rng rng(99);
    for (int i = 0; i < 1000; ++i) {
      dp::Route route;
      route.prefix = net::Ipv4Prefix(net::Ipv4Address(static_cast<std::uint32_t>(rng.next())),
                                     static_cast<unsigned>(rng.next_in(8, 32)));
      route.protocol = dp::RouteProtocol::Static;
      route.out_iface = net::InterfaceId("e0");
      f.fib.insert(route);
    }
    f.compiled = dp::CompiledFib::build(f.fib);

    const std::vector<dp::Route> installed = f.fib.routes();
    std::vector<const dp::Route*> refined;  // longer than /24: chunk-path hits
    for (const dp::Route& route : installed)
      if (route.prefix.length() > 24) refined.push_back(&route);
    auto inside = [&](const net::Ipv4Prefix& prefix) {
      const std::uint32_t span =
          prefix.length() >= 32 ? 1u : (1u << (32u - prefix.length()));
      return net::Ipv4Address(prefix.network().value() +
                              static_cast<std::uint32_t>(rng.next_below(span)));
    };
    f.probes.reserve(4096);
    for (int i = 0; i < 4096; ++i) {
      const int bucket = i % 16;
      net::Ipv4Address probe;
      if (bucket < 7) {
        probe = inside(installed[rng.next_below(installed.size())].prefix);
      } else if (bucket < 12 && !refined.empty()) {
        probe = inside(refined[rng.next_below(refined.size())]->prefix);
      } else {
        // Miss: rejection-sample against the trie (bounded; keep the last
        // candidate if the table covers everything we draw).
        for (int attempt = 0; attempt < 64; ++attempt) {
          probe = net::Ipv4Address(static_cast<std::uint32_t>(rng.next()));
          if (!f.fib.lookup(probe)) break;
        }
      }
      f.probes.push_back(probe);
    }
    return f;
  }();
  return fixture;
}

void BM_FibLookup(benchmark::State& state) {
  const LpmFixture& f = lpm_fixture();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.fib.lookup(f.probes[i]));
    if (++i == f.probes.size()) i = 0;
  }
}
BENCHMARK(BM_FibLookup);

void BM_FlowTrace(benchmark::State& state) {
  const net::Network& network = pick(static_cast<int>(state.range(0)));
  analysis::Engine engine;
  analysis::Snapshot snapshot = engine.analyze_dataplane(network);
  auto hosts = network.device_ids(net::DeviceKind::Host);
  std::size_t i = 0;
  for (auto _ : state) {
    const net::DeviceId& src = hosts[i % hosts.size()];
    const net::DeviceId& dst = hosts[(i + 1) % hosts.size()];
    benchmark::DoNotOptimize(dp::trace_hosts(network, *snapshot.dataplane, src, dst));
    ++i;
  }
}
BENCHMARK(BM_FlowTrace)->Arg(0)->Arg(1)->ArgNames({"net"});

// ----------------------------------------------- compiled forwarding plane --
// The reference/compiled pair below is the PR's headline comparison: the
// same all-pairs reachability computed on the string-keyed object model vs
// the compiled plane (sequential, no memoization in either).

void BM_AllPairsReference(benchmark::State& state) {
  const net::Network& network = pick(static_cast<int>(state.range(0)));
  dp::Dataplane dataplane = dp::Dataplane::compute(network);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp::ReachabilityMatrix::compute(network, dataplane));
  }
}
BENCHMARK(BM_AllPairsReference)->Arg(0)->Arg(1)->ArgNames({"net"});

void BM_AllPairsCompiled(benchmark::State& state) {
  const net::Network& network = pick(static_cast<int>(state.range(0)));
  dp::Dataplane dataplane = dp::Dataplane::compute(network);
  dp::CompiledPlane plane = dp::CompiledPlane::compile(network, dataplane);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp::ReachabilityMatrix::compute(plane));
  }
}
BENCHMARK(BM_AllPairsCompiled)->Arg(0)->Arg(1)->ArgNames({"net"});

// Compile + all-pairs together: what the engine actually pays per snapshot.
void BM_AllPairsCompiledWithCompile(benchmark::State& state) {
  const net::Network& network = pick(static_cast<int>(state.range(0)));
  dp::Dataplane dataplane = dp::Dataplane::compute(network);
  for (auto _ : state) {
    dp::CompiledPlane plane = dp::CompiledPlane::compile(network, dataplane);
    benchmark::DoNotOptimize(dp::ReachabilityMatrix::compute(plane));
  }
}
BENCHMARK(BM_AllPairsCompiledWithCompile)->Arg(0)->Arg(1)->ArgNames({"net"});

// Rebuild cost per snapshot (every undo-log replay pays this):
// tools/bench_baseline.py holds the university row under an absolute
// ceiling so the lookup win is never bought with pathological compiles.
// The fib_bytes/fib_overflow_chunks counters mirror the dp.* gauges.
void BM_CompilePlane(benchmark::State& state) {
  const net::Network& network = pick(static_cast<int>(state.range(0)));
  dp::Dataplane dataplane = dp::Dataplane::compute(network);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp::CompiledPlane::compile(network, dataplane));
  }
  const dp::CompiledPlane plane = dp::CompiledPlane::compile(network, dataplane);
  state.counters["fib_bytes"] = static_cast<double>(plane.fib_bytes());
  state.counters["fib_overflow_chunks"] = static_cast<double>(plane.fib_overflow_chunks());
}
BENCHMARK(BM_CompilePlane)->Arg(0)->Arg(1)->ArgNames({"net"});

void BM_CompiledFibLookup(benchmark::State& state) {
  // Same table and probe sequence as BM_FibLookup so the two are comparable;
  // tools/bench_baseline.py holds this row at >= 2x the trie.
  const LpmFixture& f = lpm_fixture();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.compiled.lookup_index(f.probes[i]));
    if (++i == f.probes.size()) i = 0;
  }
  state.counters["stride"] = static_cast<double>(f.compiled.stride());
  state.counters["table_bytes"] = static_cast<double>(f.compiled.table_bytes());
}
BENCHMARK(BM_CompiledFibLookup);

void BM_CompiledFibLookupMany(benchmark::State& state) {
  // The batched entry point the all-pairs prewarm uses; reported per probe.
  const LpmFixture& f = lpm_fixture();
  std::vector<std::uint32_t> out(f.probes.size());
  for (auto _ : state) {
    f.compiled.lookup_many(f.probes, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.probes.size()));
}
BENCHMARK(BM_CompiledFibLookupMany);

void BM_CompiledFlowTrace(benchmark::State& state) {
  const net::Network& network = pick(static_cast<int>(state.range(0)));
  analysis::Engine engine;
  analysis::Snapshot snapshot = engine.analyze_dataplane(network);
  auto hosts = network.device_ids(net::DeviceKind::Host);
  std::vector<net::Ipv4Address> ips;
  for (const net::DeviceId& host : hosts) ips.push_back(*network.primary_ip(host));
  std::size_t i = 0;
  for (auto _ : state) {
    net::Flow flow;
    flow.src_ip = ips[i % ips.size()];
    flow.dst_ip = ips[(i + 1) % ips.size()];
    flow.protocol = net::IpProtocol::Icmp;
    benchmark::DoNotOptimize(snapshot.compiled->trace_flow(flow));
    ++i;
  }
}
BENCHMARK(BM_CompiledFlowTrace)->Arg(0)->Arg(1)->ArgNames({"net"});

// ------------------------------------------------------------ fabric scale --
// The sharded all-pairs path on fat-tree fabrics. BM_AllPairsSharded is the
// multi-core scaling row (k=6, destination-class columns across a
// ThreadPool; tools/bench_baseline.py holds the 4-thread speedup floor on
// multi-core hosts). The BM_FabricAllPairs{Dense,Sharded} pair is the
// representation comparison at identical k — the sharded rows carry the
// matrix_bytes / equiv_classes / hosts counters that feed the committed
// BENCH_micro.json memory ceiling.

const dp::CompiledPlane& fabric_plane(unsigned k) {
  auto build = [](unsigned arity) {
    scen::FabricOptions options;
    options.k = arity;
    net::Network network = scen::build_fabric(options);
    dp::Dataplane dataplane = dp::Dataplane::compute(network);
    return dp::CompiledPlane::compile(network, dataplane);
  };
  static const dp::CompiledPlane k6 = build(6);
  static const dp::CompiledPlane k8 = build(8);
  return k == 6 ? k6 : k8;
}

void annotate_sharded(benchmark::State& state, const dp::ShardedReachability& result) {
  state.counters["matrix_bytes"] = static_cast<double>(result.bytes());
  state.counters["equiv_classes"] = static_cast<double>(result.class_count());
  state.counters["hosts"] = static_cast<double>(result.hosts().size());
}

void BM_AllPairsSharded(benchmark::State& state) {
  const dp::CompiledPlane& plane = fabric_plane(6);
  const auto threads = static_cast<std::size_t>(state.range(0));
  std::unique_ptr<util::ThreadPool> pool;
  dp::ShardOptions options;
  if (threads > 1) {
    pool = std::make_unique<util::ThreadPool>(threads);
    options.pool = pool.get();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp::ShardedReachability::compute(plane, options));
  }
  annotate_sharded(state, dp::ShardedReachability::compute(plane, options));
}
BENCHMARK(BM_AllPairsSharded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgNames({"threads"})
    ->UseRealTime();

void BM_FabricAllPairsDense(benchmark::State& state) {
  const dp::CompiledPlane& plane = fabric_plane(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp::ReachabilityMatrix::compute(plane));
  }
  state.counters["matrix_bytes"] =
      static_cast<double>(dp::ReachabilityMatrix::compute(plane).bytes());
}
BENCHMARK(BM_FabricAllPairsDense)->Arg(6)->Arg(8)->ArgNames({"k"});

void BM_FabricAllPairsSharded(benchmark::State& state) {
  const dp::CompiledPlane& plane = fabric_plane(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp::ShardedReachability::compute(plane));
  }
  annotate_sharded(state, dp::ShardedReachability::compute(plane));
}
BENCHMARK(BM_FabricAllPairsSharded)->Arg(6)->Arg(8)->ArgNames({"k"});

void BM_PolicyVerifyFullPipeline(benchmark::State& state) {
  const net::Network& network = pick(static_cast<int>(state.range(0)));
  spec::PolicyVerifier verifier(state.range(0) == 0 ? scen::enterprise_policies(network)
                                                    : scen::university_policies(network));
  for (auto _ : state) {
    verifier.engine().clear();  // force the full pipeline every iteration
    benchmark::DoNotOptimize(verifier.verify_network(network));
  }
}
BENCHMARK(BM_PolicyVerifyFullPipeline)->Arg(0)->Arg(1)->ArgNames({"net"});

void BM_PolicyVerifyMemoized(benchmark::State& state) {
  const net::Network& network = pick(static_cast<int>(state.range(0)));
  spec::PolicyVerifier verifier(state.range(0) == 0 ? scen::enterprise_policies(network)
                                                    : scen::university_policies(network));
  verifier.verify_network(network);  // warm the engine memo
  for (auto _ : state) {
    benchmark::DoNotOptimize(verifier.verify_network(network));
  }
}
BENCHMARK(BM_PolicyVerifyMemoized)->Arg(0)->Arg(1)->ArgNames({"net"});

// ------------------------------------------------------------- quarantine --
// Copy-per-change vs undo-log quarantine enforcement: the same session
// (four benign changes plus one policy-violating permit) through the
// reference pipeline (fresh shadow network + from-scratch verification per
// candidate) and the incremental one (single shadow, apply/invert replay,
// delta verification over re-traced pairs). The two produce bit-identical
// reports (property-tested); verifiers run uncached so neither row hides
// behind the engine memo.

cfg::ConfigChange violating_acl_change(int which) {
  net::AclEntry permit;
  permit.action = net::AclEntry::Action::Permit;
  if (which == 0) {
    permit.src = net::Ipv4Prefix::parse("10.0.20.0/24");
    permit.dst = net::Ipv4Prefix::parse("10.0.8.0/24");
    return {net::DeviceId("r9"), cfg::AclEntryAdd{"DMZ_IN", 0, permit}};
  }
  permit.src = net::Ipv4Prefix::parse("10.20.7.0/24");
  permit.dst = net::Ipv4Prefix::parse("10.20.15.0/24");
  return {net::DeviceId("u13"), cfg::AclEntryAdd{"SEC_IN", 0, permit}};
}

/// An ACL/route-centric session (the workload quarantine attribution sees in
/// practice): four benign changes plus the violating permit. The benign ACL
/// entries deny documentation prefixes no host uses, so reachability is
/// unchanged but every candidate still has to be attributed.
std::vector<cfg::ConfigChange> quarantine_session(int which) {
  const net::Network& network = pick(which);
  const net::DeviceId guard(which == 0 ? "r9" : "u13");
  const std::string guard_acl = which == 0 ? "DMZ_IN" : "SEC_IN";
  std::vector<const net::Device*> routers;
  for (const net::Device& device : network.devices())
    if (device.is_router()) routers.push_back(&device);

  net::AclEntry noop_a;
  noop_a.action = net::AclEntry::Action::Deny;
  noop_a.src = net::Ipv4Prefix::parse("198.51.100.0/24");
  net::AclEntry noop_b;
  noop_b.action = net::AclEntry::Action::Deny;
  noop_b.src = net::Ipv4Prefix::parse("192.0.2.0/24");
  net::Acl unused;
  unused.name = "BENCH_UNUSED";
  unused.entries.push_back(noop_a);

  std::vector<cfg::ConfigChange> session;
  session.push_back({guard, cfg::AclEntryAdd{guard_acl, 0, noop_a}});
  session.push_back({guard, cfg::AclEntryAdd{guard_acl, 1, noop_b}});
  session.push_back({guard, cfg::AclCreate{unused}});
  session.push_back(make_static_route_change(network, routers.front()->id()));
  session.push_back(violating_acl_change(which));
  return session;
}

template <bool Incremental>
void run_quarantine_bench(benchmark::State& state) {
  const int which = static_cast<int>(state.range(0));
  const net::Network& network = pick(which);
  const std::vector<cfg::ConfigChange> session = quarantine_session(which);
  priv::PrivilegeSpec root;
  root.allow(priv::all_actions(), priv::Resource{"*", priv::ObjectKind::Device, ""});
  enforce::PolicyEnforcer enforcer(
      spec::PolicyVerifier(which == 0 ? scen::enterprise_policies(network)
                                      : scen::university_policies(network),
                           uncached()),
      enforce::SimulatedEnclave("bench", "hw"));
  util::VirtualClock clock;
  auto enforce_once = [&](net::Network& production) {
    return Incremental
               ? enforcer.enforce_with_quarantine(production, session, root, clock, "bench")
               : enforcer.enforce_with_quarantine_reference(production, session, root, clock,
                                                            "bench");
  };
  {
    // The measured session must actually exercise attribution: exactly the
    // violating permit quarantined, the benign remainder applied.
    net::Network production = network;
    enforce::QuarantineReport report = enforce_once(production);
    if (report.quarantined.size() != 1 || !report.applied_any) {
      state.SkipWithError("quarantine session lost its expected shape");
      return;
    }
  }
  for (auto _ : state) {
    net::Network production = network;
    benchmark::DoNotOptimize(enforce_once(production));
  }
}

void BM_QuarantineCopy(benchmark::State& state) { run_quarantine_bench<false>(state); }
BENCHMARK(BM_QuarantineCopy)->Arg(0)->Arg(1)->ArgNames({"net"});

void BM_QuarantineIncremental(benchmark::State& state) { run_quarantine_bench<true>(state); }
BENCHMARK(BM_QuarantineIncremental)->Arg(0)->Arg(1)->ArgNames({"net"});

void BM_TwinCreate(benchmark::State& state) {
  const net::Network& network = enterprise();
  analysis::Engine engine;
  analysis::Snapshot snapshot = engine.analyze_dataplane(network);
  msp::Ticket ticket = msp::Ticket::connectivity(1, net::DeviceId("h2"), net::DeviceId("h4"),
                                                 "bench", priv::TaskClass::VlanIssue);
  for (auto _ : state) {
    benchmark::DoNotOptimize(twin::TwinNetwork::create(network, *snapshot.dataplane, ticket,
                                                       twin::SliceStrategy::TaskDriven));
  }
}
BENCHMARK(BM_TwinCreate);

void BM_ConfigSerializeParse(benchmark::State& state) {
  const net::Network& network = pick(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::string text = cfg::serialize_network(network);
    benchmark::DoNotOptimize(cfg::parse_network(text));
  }
}
BENCHMARK(BM_ConfigSerializeParse)->Arg(0)->Arg(1)->ArgNames({"net"});

void BM_AuditAppend(benchmark::State& state) {
  enforce::AuditLog log;
  std::int64_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        log.append(++t, "tech", enforce::AuditCategory::Command, "interface r1 Gi0/0 down"));
  }
}
BENCHMARK(BM_AuditAppend);

// Quorum-replicated append: one leader append + commit_appended() across 3
// replicas (leader reseal, two followers each verifying their seal, the
// chain extension and the entry hash, then resealing). The price of
// rollback/equivocation detection over the bare chain append above;
// tools/bench_baseline.py holds the ratio under a ceiling so replication
// cost never silently grows past "a handful of hashes per entry".
void BM_QuorumAppend(benchmark::State& state) {
  enforce::ReplicatedAuditLedger ledger(
      enforce::SimulatedEnclave("bench-enclave", "bench-hw-key"), 3);
  std::int64_t t = 0;
  for (auto _ : state) {
    ledger.leader_log().append(++t, "tech", enforce::AuditCategory::Command,
                               "interface r1 Gi0/0 down");
    benchmark::DoNotOptimize(ledger.commit_appended());
  }
  if (!ledger.intact()) state.SkipWithError("ledger not intact after append loop");
}
BENCHMARK(BM_QuorumAppend);

// Contended audit recording: the pre-service architecture (every session
// thread takes one mutex and appends + hashes into the chain inline) versus
// the sharded AuditSink (atomic stamp + striped push, hash walk deferred to
// seal time). Fixed iteration counts keep the staged/chained entry volume
// bounded. tools/bench_baseline.py asserts the sink's win at 8 threads on
// multi-core hosts (the floor is annotated-skipped on single-CPU runners).

// ---------------------------------------------------------- observability --
// What an instrumentation site costs. Disabled is the floor every call pays
// in the default configuration (one relaxed load and, for spans, the
// argument construction); enabled journal appends are the price of running
// the service observable. tools/bench_baseline.py holds both under generous
// ceilings so instrumentation creep shows up as a red build, not a shrug.

void BM_SpanDisabled(benchmark::State& state) {
  obs::Tracer tracer;  // default: disabled
  for (auto _ : state) {
    obs::ScopedSpan span(tracer, "bench.noop", "bench");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_JournalAppendDisabled(benchmark::State& state) {
  obs::EventJournal journal;  // default: disabled
  std::int64_t ticket = 0;
  for (auto _ : state) {
    journal.append(obs::EventType::QueueEnqueue, ++ticket, 1, "bench", "2 changes", 7);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_JournalAppendDisabled);

void BM_JournalAppend(benchmark::State& state) {
  obs::EventJournal journal;
  journal.set_enabled(true);
  std::int64_t ticket = 0;
  for (auto _ : state) {
    journal.append(obs::EventType::QueueEnqueue, ++ticket, 1, "bench", "2 changes", 7);
    benchmark::ClobberMemory();
  }
  state.counters["dropped"] = static_cast<double>(journal.dropped());
}
BENCHMARK(BM_JournalAppend);

void BM_AuditAppendContended(benchmark::State& state) {
  struct SharedChain {
    std::mutex mutex;
    enforce::AuditLog log;
    std::int64_t t = 0;
  };
  static SharedChain chain;
  for (auto _ : state) {
    std::lock_guard<std::mutex> lock(chain.mutex);
    benchmark::DoNotOptimize(
        chain.log.append(++chain.t, "tech", enforce::AuditCategory::Command, "if r1 down"));
  }
}
BENCHMARK(BM_AuditAppendContended)
    ->Threads(4)
    ->Threads(8)
    ->Iterations(20000)
    ->UseRealTime();

void BM_AuditSinkRecord(benchmark::State& state) {
  static enforce::AuditSink sink(8);
  std::int64_t t = 0;
  for (auto _ : state) {
    sink.record(++t, "tech", enforce::AuditCategory::Command, "if r1 down");
  }
  if (state.thread_index() == 0) {
    // Seal everything staged this run so memory stays bounded across
    // repetitions; outside the measured loop.
    enforce::AuditLog chain;
    sink.flush_into(chain);
  }
}
BENCHMARK(BM_AuditSinkRecord)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->Iterations(20000)
    ->UseRealTime();

// ---------------------------------------------------------------- service --
// End-to-end service throughput: eight concurrent technician sessions are
// opened and staged against a paused queue (untimed), then released; the
// measured interval is release -> every submission's future resolved. The
// serialized variant (max_batch 1, no wave coalescing) is the
// one-enforcement-per-ticket pre-service pipeline: it pays a full baseline
// analysis per submission. The batched variant amortizes one baseline
// across the batch and coalesces disjoint submissions' joint verification —
// that amortization (not thread-level parallelism: enforcement is one
// worker either way) is the service's throughput win, so the floor holds on
// single-CPU hosts too.
//
// Both variants run their verifier uncached (the BM_Quarantine* convention):
// the engine memo would otherwise hand the serialized variant each batch's
// baseline for free — precisely the amortization the service architecture
// makes explicit — and the comparison would measure the memo, not the
// architecture.

template <bool Batched>
void run_serve_bench(benchmark::State& state) {
  constexpr std::size_t kSessions = 8;
  const int which = static_cast<int>(state.range(0));
  const net::Network& network = pick(which);
  const std::vector<spec::Policy> policies =
      which == 0 ? scen::enterprise_policies(network) : scen::university_policies(network);
  const net::DeviceId guard(which == 0 ? "r9" : "u13");
  std::vector<std::string> routers;
  for (const net::Device& device : network.devices())
    if (device.is_router() && device.id() != guard) routers.push_back(device.id().str());

  for (auto _ : state) {
    service::ServiceOptions options;
    options.max_batch = Batched ? kSessions * 2 : 1;
    options.coalesce_waves = Batched;
    options.engine_options = uncached();
    service::SessionManager manager(network, policies, options);
    manager.set_queue_paused(true);

    std::vector<std::unique_ptr<service::TicketSession>> sessions;
    for (std::size_t s = 0; s < kSessions; ++s) {
      const std::string& router = routers[s % routers.size()];
      msp::Ticket ticket;
      ticket.id = static_cast<int>(s + 1);
      ticket.task = priv::TaskClass::AclChange;
      ticket.description = "serve bench " + std::to_string(s);
      ticket.affected = {net::DeviceId(router)};
      auto session = manager.open(ticket, "bench-" + std::to_string(s));
      const std::string acl = "SV" + std::to_string(s);
      session->run("acl " + router + " create " + acl);
      session->run("acl " + router + " " + acl +
                   " add deny ip 198.51.100.0 0.0.0.255 192.0.2.0 0.0.0.255");
      sessions.push_back(std::move(session));
    }
    std::vector<std::future<service::SubmitOutcome>> futures;
    futures.reserve(sessions.size());
    for (auto& session : sessions) futures.push_back(session->submit());

    const auto start = std::chrono::steady_clock::now();
    manager.set_queue_paused(false);
    bool all_applied = true;
    for (auto& future : futures) all_applied &= future.get().report.applied_any;
    const auto stop = std::chrono::steady_clock::now();
    state.SetIterationTime(std::chrono::duration<double>(stop - start).count());
    if (!all_applied) {
      state.SkipWithError("serve bench submission failed to apply");
      return;
    }
    for (auto& session : sessions) session->close();
    manager.shutdown();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kSessions));
}

void BM_ServeSerialized(benchmark::State& state) { run_serve_bench<false>(state); }
BENCHMARK(BM_ServeSerialized)->Arg(0)->Arg(1)->ArgNames({"net"})->UseManualTime();

void BM_ServeBatched(benchmark::State& state) { run_serve_bench<true>(state); }
BENCHMARK(BM_ServeBatched)->Arg(0)->Arg(1)->ArgNames({"net"})->UseManualTime();

void BM_AuditVerifyChain(benchmark::State& state) {
  enforce::AuditLog log;
  for (int i = 0; i < 1000; ++i)
    log.append(i, "tech", enforce::AuditCategory::Command, "entry");
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.verify_chain());
  }
}
BENCHMARK(BM_AuditVerifyChain);

void BM_Sha256(benchmark::State& state) {
  std::string data(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::Sha256::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(65536);

}  // namespace

// BENCHMARK_MAIN(), plus an optional metrics-snapshot dump: when
// HEIMDALL_METRICS_OUT names a file, the global registry (engine cache
// hits/misses, dirty-set histogram, ...) is written there as JSON after the
// benchmarks finish — CI uploads it as an artifact.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (const char* metrics_out = std::getenv("HEIMDALL_METRICS_OUT")) {
    if (heimdall::obs::write_metrics_file(heimdall::obs::Registry::global(), metrics_out))
      std::fprintf(stderr, "metrics written to %s\n", metrics_out);
  }
  return 0;
}
