// Micro-benchmarks (google-benchmark) for the substrates every experiment
// rides on: dataplane computation, LPM lookups, flow tracing, reachability,
// policy verification, twin creation, config round-trips, audit appends,
// SHA-256 throughput.
#include <benchmark/benchmark.h>

#include "config/parse.hpp"
#include "config/serialize.hpp"
#include "dataplane/reachability.hpp"
#include "enforcer/audit.hpp"
#include "scenarios/enterprise.hpp"
#include "scenarios/university.hpp"
#include "spec/verify.hpp"
#include "twin/twin.hpp"
#include "util/random.hpp"
#include "util/sha256.hpp"

namespace {

using namespace heimdall;

const net::Network& enterprise() {
  static const net::Network network = scen::build_enterprise();
  return network;
}

const net::Network& university() {
  static const net::Network network = scen::build_university();
  return network;
}

const net::Network& pick(int index) { return index == 0 ? enterprise() : university(); }

void BM_DataplaneCompute(benchmark::State& state) {
  const net::Network& network = pick(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp::Dataplane::compute(network));
  }
}
BENCHMARK(BM_DataplaneCompute)->Arg(0)->Arg(1)->ArgNames({"net"});

void BM_FibLookup(benchmark::State& state) {
  dp::Fib fib;
  util::Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    dp::Route route;
    route.prefix = net::Ipv4Prefix(net::Ipv4Address(static_cast<std::uint32_t>(rng.next())),
                                   static_cast<unsigned>(rng.next_in(8, 32)));
    route.protocol = dp::RouteProtocol::Static;
    route.out_iface = net::InterfaceId("e0");
    fib.insert(route);
  }
  std::uint32_t probe = 0;
  for (auto _ : state) {
    probe = probe * 2654435761u + 12345u;
    benchmark::DoNotOptimize(fib.lookup(net::Ipv4Address(probe)));
  }
}
BENCHMARK(BM_FibLookup);

void BM_FlowTrace(benchmark::State& state) {
  const net::Network& network = pick(static_cast<int>(state.range(0)));
  dp::Dataplane dataplane = dp::Dataplane::compute(network);
  auto hosts = network.device_ids(net::DeviceKind::Host);
  std::size_t i = 0;
  for (auto _ : state) {
    const net::DeviceId& src = hosts[i % hosts.size()];
    const net::DeviceId& dst = hosts[(i + 1) % hosts.size()];
    benchmark::DoNotOptimize(dp::trace_hosts(network, dataplane, src, dst));
    ++i;
  }
}
BENCHMARK(BM_FlowTrace)->Arg(0)->Arg(1)->ArgNames({"net"});

void BM_ReachabilityMatrix(benchmark::State& state) {
  const net::Network& network = pick(static_cast<int>(state.range(0)));
  dp::Dataplane dataplane = dp::Dataplane::compute(network);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp::ReachabilityMatrix::compute(network, dataplane));
  }
}
BENCHMARK(BM_ReachabilityMatrix)->Arg(0)->Arg(1)->ArgNames({"net"});

void BM_PolicyVerifyFullPipeline(benchmark::State& state) {
  const net::Network& network = pick(static_cast<int>(state.range(0)));
  spec::PolicyVerifier verifier(state.range(0) == 0 ? scen::enterprise_policies(network)
                                                    : scen::university_policies(network));
  for (auto _ : state) {
    benchmark::DoNotOptimize(verifier.verify_network(network));
  }
}
BENCHMARK(BM_PolicyVerifyFullPipeline)->Arg(0)->Arg(1)->ArgNames({"net"});

void BM_TwinCreate(benchmark::State& state) {
  const net::Network& network = enterprise();
  dp::Dataplane dataplane = dp::Dataplane::compute(network);
  msp::Ticket ticket = msp::Ticket::connectivity(1, net::DeviceId("h2"), net::DeviceId("h4"),
                                                 "bench", priv::TaskClass::VlanIssue);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        twin::TwinNetwork::create(network, dataplane, ticket, twin::SliceStrategy::TaskDriven));
  }
}
BENCHMARK(BM_TwinCreate);

void BM_ConfigSerializeParse(benchmark::State& state) {
  const net::Network& network = pick(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::string text = cfg::serialize_network(network);
    benchmark::DoNotOptimize(cfg::parse_network(text));
  }
}
BENCHMARK(BM_ConfigSerializeParse)->Arg(0)->Arg(1)->ArgNames({"net"});

void BM_AuditAppend(benchmark::State& state) {
  enforce::AuditLog log;
  std::int64_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        log.append(++t, "tech", enforce::AuditCategory::Command, "interface r1 Gi0/0 down"));
  }
}
BENCHMARK(BM_AuditAppend);

void BM_AuditVerifyChain(benchmark::State& state) {
  enforce::AuditLog log;
  for (int i = 0; i < 1000; ++i)
    log.append(i, "tech", enforce::AuditCategory::Command, "entry");
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.verify_chain());
  }
}
BENCHMARK(BM_AuditVerifyChain);

void BM_Sha256(benchmark::State& state) {
  std::string data(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::Sha256::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(65536);

}  // namespace

BENCHMARK_MAIN();
