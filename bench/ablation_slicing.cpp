// Ablation for the §4.2 design choice: task-driven slicing vs the
// all-or-nothing strawmen (Figure 5). For every pilot-study issue, reports
// how many devices / commands / secrets each strategy exposes and whether
// the root cause stays reachable.
#include <cstdio>

#include "analysis/engine.hpp"
#include "msp/metrics.hpp"
#include "privilege/generator.hpp"
#include "scenarios/enterprise.hpp"
#include "scenarios/university.hpp"
#include "twin/twin.hpp"

namespace {

using namespace heimdall;

void run_issue(const net::Network& healthy, const scen::IssueSpec& issue) {
  net::Network broken = healthy;
  issue.inject(broken);
  analysis::Engine engine;
  analysis::Snapshot snapshot = engine.analyze_dataplane(broken);
  const dp::Dataplane& dataplane = *snapshot.dataplane;

  std::printf("  issue %-6s (root cause %s):\n", issue.key.c_str(), issue.root_cause.str().c_str());
  std::printf("    %-12s %9s %10s %10s %12s %10s\n", "strategy", "devices", "commands",
              "secrets", "root-cause", "scrubbed");

  for (twin::SliceStrategy strategy :
       {twin::SliceStrategy::All, twin::SliceStrategy::Neighbor,
        twin::SliceStrategy::TaskDriven}) {
    twin::TwinNetwork twin = twin::TwinNetwork::create(broken, dataplane, issue.ticket, strategy);
    const twin::Slice& slice = twin.slice();

    // Commands the Privilege_msp lets the technician run inside this twin.
    std::size_t allowed = 0;
    for (const net::Device& device : twin.emulation().network().devices()) {
      allowed += twin.privileges().count_allowed(msp::device_command_catalog(device));
    }
    // Secrets that *would* have been exposed without scrubbing.
    std::size_t secrets_in_scope = 0;
    for (const net::DeviceId& id : slice.devices) {
      const net::Device* device = broken.find_device(id);
      if (device && !device->secrets().empty()) secrets_in_scope += 3;
    }

    std::printf("    %-12s %9zu %10zu %10zu %12s %10zu\n", to_string(strategy).c_str(),
                slice.devices.size(), allowed, secrets_in_scope,
                slice.contains(issue.root_cause) ? "in-slice" : "MISSING",
                twin.scrubbed_secret_count());
  }
}

void run_network(const char* name, const net::Network& healthy,
                 const std::vector<scen::IssueSpec>& issues) {
  std::printf("%s network (%zu devices total):\n", name, healthy.devices().size());
  for (const scen::IssueSpec& issue : issues) run_issue(healthy, issue);
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Ablation: twin-network slicing strategies (paper SS4.2, Figure 5)\n\n");
  run_network("Enterprise", scen::build_enterprise(), scen::enterprise_issues());
  run_network("University", scen::build_university(), scen::university_issues());
  std::printf("Reading: All exposes every device and secret; Neighbor exposes little but\n"
              "loses the root cause (infeasible); the task-driven slice keeps the root\n"
              "cause while exposing a fraction of the network, with secrets scrubbed.\n");
  return 0;
}
