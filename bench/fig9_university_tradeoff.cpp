// Reproduces Figure 9: feasibility and attack surface for the university
// network under All / Neighbor / Heimdall access strategies.
#include "scenarios/university.hpp"
#include "tradeoff_common.hpp"

int main() {
  using namespace heimdall;
  net::Network network = scen::build_university();
  bench::run_tradeoff("Figure 9 (university)", network, scen::university_policies(network));
  return 0;
}
