// Shared harness for Figures 8 & 9: the feasibility / attack-surface
// trade-off across slicing strategies.
//
// Procedure (paper §5): "First, we create an issue by bringing down each
// interface. Then, for each technique, we check whether the technician can
// access the root cause node (feasibility). Finally, we search all possible
// commands on accessible nodes, measure potential policy violations, and
// compute the attack surface."
//
// An interface whose failure flips no host pair creates no ticket (nothing
// to troubleshoot) and is skipped; the count of such non-issues is reported.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/engine.hpp"
#include "dataplane/reachability.hpp"
#include "msp/metrics.hpp"
#include "privilege/generator.hpp"
#include "scenarios/issues.hpp"
#include "twin/twin.hpp"

namespace heimdall::bench {

struct StrategyStats {
  std::string name;
  std::size_t feasible = 0;
  double surface_sum = 0;
  double surface_min = 100;
  double surface_max = 0;
  std::size_t issues = 0;

  void add(bool feasible_here, double surface) {
    ++issues;
    if (feasible_here) ++feasible;
    surface_sum += surface;
    surface_min = std::min(surface_min, surface);
    surface_max = std::max(surface_max, surface);
  }

  double feasibility_pct() const {
    return issues == 0 ? 0 : 100.0 * static_cast<double>(feasible) / static_cast<double>(issues);
  }
  double surface_mean() const {
    return issues == 0 ? 0 : surface_sum / static_cast<double>(issues);
  }
};

inline void run_tradeoff(const char* figure, const net::Network& healthy,
                         const std::vector<spec::Policy>& policies) {
  using namespace heimdall;
  spec::PolicyVerifier verifier(policies);

  analysis::Engine engine;
  analysis::Snapshot healthy_snapshot = engine.analyze(healthy);
  const dp::ReachabilityMatrix& healthy_matrix = *healthy_snapshot.reachability;

  StrategyStats all_stats{"All"};
  StrategyStats neighbor_stats{"Neighbor"};
  StrategyStats heimdall_stats{"Heimdall"};

  // "All" exposes every node regardless of the issue: its surface is
  // issue-independent, so compute it once.
  std::vector<net::DeviceId> all_ids = healthy.device_ids();
  std::set<net::DeviceId> every_device(all_ids.begin(), all_ids.end());
  msp::SurfaceResult all_surface =
      msp::compute_attack_surface(healthy, verifier, {every_device, nullptr});

  std::size_t skipped_no_impact = 0;
  std::printf("%s: per-issue series (issue = interface brought down)\n", figure);
  std::printf("%-22s %7s | %4s %6s | %4s %6s | %4s %6s\n", "issue", "#pairs", "All", "AS%",
              "Nbr", "AS%", "Hml", "AS%");

  int ticket_id = 1000;
  for (const net::Device& device : healthy.devices()) {
    if (device.is_host()) continue;
    for (const net::Interface& iface : device.interfaces()) {
      if (iface.shutdown) continue;

      net::Network broken = healthy;
      broken.device(device.id()).interface(iface.id).shutdown = true;
      analysis::Snapshot broken_snapshot = engine.analyze(broken);
      const dp::Dataplane& broken_dataplane = *broken_snapshot.dataplane;
      auto flips = dp::ReachabilityMatrix::diff(healthy_matrix, *broken_snapshot.reachability);
      if (flips.empty()) {
        ++skipped_no_impact;
        continue;
      }

      // Ticket names the first flipped pair (what a monitoring system or
      // user would report).
      auto [src, dst, was, now] = flips.front();
      msp::Ticket ticket = msp::Ticket::connectivity(
          ++ticket_id, src, dst, "interface failure experiment",
          priv::TaskClass::Connectivity);
      const net::DeviceId& root_cause = device.id();

      // All.
      bool all_feasible = msp::is_feasible(root_cause, broken, {every_device, nullptr});
      all_stats.add(all_feasible, all_surface.surface_pct);

      // Neighbor.
      twin::Slice neighbor_slice =
          twin::compute_slice(broken, broken_dataplane, ticket, twin::SliceStrategy::Neighbor);
      msp::SurfaceQuery neighbor_query{neighbor_slice.devices, nullptr};
      msp::SurfaceResult neighbor_surface =
          msp::compute_attack_surface(broken, verifier, neighbor_query);
      bool neighbor_feasible = msp::is_feasible(root_cause, broken, neighbor_query);
      neighbor_stats.add(neighbor_feasible, neighbor_surface.surface_pct);

      // Heimdall: task-driven slice + generated Privilege_msp.
      twin::Slice heimdall_slice =
          twin::compute_slice(broken, broken_dataplane, ticket, twin::SliceStrategy::TaskDriven);
      net::Network sliced = twin::materialize_slice(broken, heimdall_slice);
      priv::PrivilegeSpec privileges =
          priv::generate_privileges(sliced, priv::TaskClass::Connectivity);
      msp::SurfaceQuery heimdall_query{heimdall_slice.devices, &privileges};
      msp::SurfaceResult heimdall_surface =
          msp::compute_attack_surface(broken, verifier, heimdall_query);
      bool heimdall_feasible = msp::is_feasible(root_cause, broken, heimdall_query);
      heimdall_stats.add(heimdall_feasible, heimdall_surface.surface_pct);

      std::string issue = device.id().str() + ":" + iface.id.str();
      std::printf("%-22s %7zu | %4s %6.1f | %4s %6.1f | %4s %6.1f\n", issue.c_str(),
                  flips.size(), all_feasible ? "yes" : "no", all_surface.surface_pct,
                  neighbor_feasible ? "yes" : "no", neighbor_surface.surface_pct,
                  heimdall_feasible ? "yes" : "no", heimdall_surface.surface_pct);
    }
  }

  std::printf("\n%s summary (%zu issues; %zu interface failures caused no reachability "
              "change and were skipped)\n",
              figure, all_stats.issues, skipped_no_impact);
  std::printf("%-10s %14s %20s %10s %10s\n", "strategy", "feasibility%", "attack surface%",
              "min", "max");
  for (const StrategyStats* stats : {&all_stats, &neighbor_stats, &heimdall_stats}) {
    std::printf("%-10s %14.1f %20.1f %10.1f %10.1f\n", stats->name.c_str(),
                stats->feasibility_pct(), stats->surface_mean(), stats->surface_min,
                stats->surface_max);
  }
  double reduction = all_stats.surface_mean() - heimdall_stats.surface_mean();
  std::printf("\nHeimdall reduces the attack surface by %.1f points vs All "
              "(paper: up to ~39-40%%) while keeping feasibility at %.1f%% "
              "(All: %.1f%%, Neighbor: %.1f%%).\n",
              reduction, heimdall_stats.feasibility_pct(), all_stats.feasibility_pct(),
              neighbor_stats.feasibility_pct());
}

}  // namespace heimdall::bench
