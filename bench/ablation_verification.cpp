// Ablation for the §4.3 design choice: verify once at the production
// boundary instead of continuously (after every technician action).
//
// The paper motivates this with "verifying the policy is time-consuming
// (e.g., 25 seconds to check 175 constraints)". Absolute numbers depend on
// the verifier substrate (ours is an in-process simulator, Batfish is a
// JVM); the *shape* to reproduce is: continuous verification costs
// ~(#actions x) the final-only strategy and grows with the constraint count.
#include <cstdio>

#include "config/diff.hpp"
#include "enforcer/enforcer.hpp"
#include "scenarios/enterprise.hpp"
#include "scenarios/university.hpp"
#include "spec/mine.hpp"
#include "spec/verify.hpp"
#include "util/clock.hpp"

namespace {

using namespace heimdall;

/// A representative troubleshooting session on `network`: seven benign
/// tweak/undo actions on the first two routers. Every prefix of these
/// mutations would be re-verified under the continuous strategy.
std::vector<cfg::ConfigChange> session_actions(const net::Network& network) {
  using namespace heimdall::cfg;
  std::vector<const net::Device*> routers;
  for (const net::Device& device : network.devices()) {
    if (device.is_router()) routers.push_back(&device);
  }
  const net::Device& first = *routers.at(0);
  const net::Device& second = *routers.at(1);
  const net::InterfaceId iface_a = first.interfaces().front().id;
  const net::InterfaceId iface_b = second.interfaces().front().id;

  net::StaticRoute route;
  route.prefix = net::Ipv4Prefix::parse("192.0.2.0/24");
  route.next_hop = first.interfaces().front().address->ip;

  std::vector<ConfigChange> actions;
  actions.push_back({first.id(), OspfCostChange{iface_a, std::nullopt, 5u}});
  actions.push_back({second.id(), OspfCostChange{iface_b, std::nullopt, 50u}});
  actions.push_back({first.id(), StaticRouteAdd{route}});
  actions.push_back({first.id(), VlanDeclare{999}});
  actions.push_back({first.id(), VlanRemove{999}});
  actions.push_back({first.id(), StaticRouteRemove{route}});
  actions.push_back({first.id(), OspfCostChange{iface_a, 5u, std::nullopt}});
  return actions;
}

void sweep(const char* name, const net::Network& network,
           const std::vector<spec::Policy>& all_policies) {
  std::printf("%s network (%zu mined policies available):\n", name, all_policies.size());
  std::printf("%12s %16s %18s %14s\n", "#constraints", "final-only (ms)", "continuous (ms)",
              "ratio");

  std::vector<cfg::ConfigChange> actions = session_actions(network);
  for (std::size_t constraints : {10ul, 25ul, 50ul, 100ul, all_policies.size()}) {
    if (constraints > all_policies.size()) continue;
    std::vector<spec::Policy> subset(all_policies.begin(),
                                     all_policies.begin() + static_cast<long>(constraints));
    spec::PolicyVerifier verifier(subset);

    // Final-only: apply everything, verify once.
    util::Stopwatch final_watch;
    net::Network final_shadow = network;
    cfg::apply_changes(final_shadow, actions);
    (void)verifier.verify_network(final_shadow);
    double final_ms = final_watch.elapsed_ms();

    // Continuous: verify the full pipeline after every single action.
    util::Stopwatch continuous_watch;
    net::Network continuous_shadow = network;
    for (const cfg::ConfigChange& action : actions) {
      cfg::apply_change(continuous_shadow, action);
      (void)verifier.verify_network(continuous_shadow);
    }
    double continuous_ms = continuous_watch.elapsed_ms();

    std::printf("%12zu %16.2f %18.2f %13.1fx\n", constraints, final_ms, continuous_ms,
                continuous_ms / final_ms);
  }
  std::printf("  (%zu technician actions in the session; the paper's quoted data point is\n"
              "   25 s for 175 constraints on Batfish - shape, not scale, is comparable)\n\n",
              actions.size());
}

/// Copy-per-change vs undo-log incremental quarantine enforcement on the
/// same session: the reference pipeline re-copies the network and re-runs
/// the full verification per candidate; the incremental pipeline replays
/// apply/invert on one shadow and re-checks only policies over re-traced
/// pairs. Both produce bit-identical reports (property-tested).
/// The session quarantine attribution typically sees: ACL edits plus a
/// static route. The denies cover documentation prefixes no host uses, so
/// reachability is unchanged but every candidate is still attributed; the
/// final permit punches through `guard_acl` and gets quarantined.
std::vector<cfg::ConfigChange> quarantine_session(const net::Network& network,
                                                  const net::DeviceId& guard,
                                                  const std::string& guard_acl,
                                                  const net::AclEntry& violating_permit) {
  using namespace heimdall::cfg;
  const net::Device* first_router = nullptr;
  for (const net::Device& device : network.devices()) {
    if (device.is_router()) {
      first_router = &device;
      break;
    }
  }
  net::AclEntry noop_a;
  noop_a.action = net::AclEntry::Action::Deny;
  noop_a.src = net::Ipv4Prefix::parse("198.51.100.0/24");
  net::AclEntry noop_b;
  noop_b.action = net::AclEntry::Action::Deny;
  noop_b.src = net::Ipv4Prefix::parse("192.0.2.0/24");

  net::StaticRoute route;
  route.prefix = net::Ipv4Prefix::parse("203.0.113.0/24");
  route.next_hop = first_router->interfaces().front().address->ip;

  std::vector<ConfigChange> session;
  session.push_back({guard, AclEntryAdd{guard_acl, 0, noop_a}});
  session.push_back({guard, AclEntryAdd{guard_acl, 1, noop_b}});
  session.push_back({first_router->id(), StaticRouteAdd{route}});
  session.push_back({guard, AclEntryAdd{guard_acl, 0, violating_permit}});
  return session;
}

void quarantine_sweep(const char* name, const net::Network& network,
                      const std::vector<spec::Policy>& policies,
                      const std::vector<cfg::ConfigChange>& session) {
  constexpr int kRounds = 5;
  priv::PrivilegeSpec root;
  root.allow(priv::all_actions(), priv::Resource{"*", priv::ObjectKind::Device, ""});
  analysis::Options uncached;
  uncached.cache_capacity = 0;  // measure honest recompute, not memo hits

  enforce::PolicyEnforcer copy_enforcer(spec::PolicyVerifier(policies, uncached),
                                        enforce::SimulatedEnclave("ablation", "hw"));
  util::VirtualClock copy_clock;
  util::Stopwatch copy_watch;
  for (int round = 0; round < kRounds; ++round) {
    net::Network production = network;
    (void)copy_enforcer.enforce_with_quarantine_reference(production, session, root, copy_clock,
                                                          "ablation");
  }
  double copy_ms = copy_watch.elapsed_ms() / kRounds;

  enforce::PolicyEnforcer incremental_enforcer(spec::PolicyVerifier(policies, uncached),
                                               enforce::SimulatedEnclave("ablation", "hw"));
  util::VirtualClock incremental_clock;
  util::Stopwatch incremental_watch;
  for (int round = 0; round < kRounds; ++round) {
    net::Network production = network;
    (void)incremental_enforcer.enforce_with_quarantine(production, session, root,
                                                       incremental_clock, "ablation");
  }
  double incremental_ms = incremental_watch.elapsed_ms() / kRounds;

  std::printf("%s quarantine (%zu policies, %zu-change session):\n", name, policies.size(),
              session.size());
  std::printf("  copy-per-change %10.2f ms   undo-log incremental %10.2f ms   speedup %5.1fx\n\n",
              copy_ms, incremental_ms, copy_ms / incremental_ms);
}

}  // namespace

int main() {
  std::printf("Ablation: continuous vs final-changeset verification (paper SS4.3)\n\n");
  net::Network enterprise = scen::build_enterprise();
  sweep("Enterprise", enterprise, scen::enterprise_policies(enterprise));
  net::Network university = scen::build_university();
  sweep("University", university, scen::university_policies(university));

  std::printf("Ablation: copy-per-change vs undo-log incremental quarantine\n\n");
  net::AclEntry enterprise_permit;
  enterprise_permit.action = net::AclEntry::Action::Permit;
  enterprise_permit.src = net::Ipv4Prefix::parse("10.0.20.0/24");
  enterprise_permit.dst = net::Ipv4Prefix::parse("10.0.8.0/24");
  quarantine_sweep("Enterprise", enterprise, scen::enterprise_policies(enterprise),
                   quarantine_session(enterprise, net::DeviceId("r9"), "DMZ_IN",
                                      enterprise_permit));
  net::AclEntry university_permit;
  university_permit.action = net::AclEntry::Action::Permit;
  university_permit.src = net::Ipv4Prefix::parse("10.20.7.0/24");
  university_permit.dst = net::Ipv4Prefix::parse("10.20.15.0/24");
  quarantine_sweep("University", university, scen::university_policies(university),
                   quarantine_session(university, net::DeviceId("u13"), "SEC_IN",
                                      university_permit));
  return 0;
}
