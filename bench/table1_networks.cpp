// Reproduces Table 1: the evaluation networks' shape statistics.
//
// Paper values:   #routers  #hosts  #links  #policies  lines of configs
//   Enterprise         9       9      22        21           1394
//   University        13      17      92       175           2146
//
// Absolute config-line counts differ (our synthesized configs carry less
// boilerplate than the original vendor dumps); every structural column
// matches by construction. See EXPERIMENTS.md.
#include <cstdio>

#include "config/serialize.hpp"
#include "scenarios/enterprise.hpp"
#include "scenarios/university.hpp"
#include "util/clock.hpp"

namespace {

void report(const char* name, const heimdall::net::Network& network,
            std::size_t policy_count) {
  using namespace heimdall;
  std::printf("%-12s %8zu %7zu %7zu %10zu %17zu\n", name,
              network.count(net::DeviceKind::Router), network.count(net::DeviceKind::Host),
              network.topology().links().size(), policy_count,
              cfg::config_line_count(network));
}

}  // namespace

int main() {
  using namespace heimdall;
  std::printf("Table 1: Evaluation networks\n");
  std::printf("%-12s %8s %7s %7s %10s %17s\n", "Network", "#routers", "#hosts", "#links",
              "#policies", "lines of configs");

  util::Stopwatch watch;
  net::Network enterprise = scen::build_enterprise();
  report("Enterprise", enterprise, scen::enterprise_policies(enterprise).size());
  net::Network university = scen::build_university();
  report("University", university, scen::university_policies(university).size());

  std::printf("\npaper reference:\n");
  std::printf("%-12s %8d %7d %7d %10d %17d\n", "Enterprise", 9, 9, 22, 21, 1394);
  std::printf("%-12s %8d %7d %7d %10d %17d\n", "University", 13, 17, 92, 175, 2146);
  std::printf("\n(built + mined + serialized both networks in %.1f ms)\n", watch.elapsed_ms());
  return 0;
}
