#include "privilege/resource.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace heimdall::priv {

std::string to_string(ObjectKind kind) {
  switch (kind) {
    case ObjectKind::Device: return "device";
    case ObjectKind::Interface: return "interface";
    case ObjectKind::AclObject: return "acl";
    case ObjectKind::OspfObject: return "ospf";
    case ObjectKind::VlanObject: return "vlan";
    case ObjectKind::RouteObject: return "routes";
    case ObjectKind::SecretObject: return "secret";
  }
  return "device";
}

ObjectKind parse_object_kind(std::string_view text) {
  std::string lower = util::to_lower(text);
  if (lower == "device") return ObjectKind::Device;
  if (lower == "interface") return ObjectKind::Interface;
  if (lower == "acl") return ObjectKind::AclObject;
  if (lower == "ospf") return ObjectKind::OspfObject;
  if (lower == "vlan") return ObjectKind::VlanObject;
  if (lower == "routes") return ObjectKind::RouteObject;
  if (lower == "secret") return ObjectKind::SecretObject;
  throw util::ParseError("unknown object kind: '" + std::string(text) + "'");
}

Resource Resource::whole_device(const net::DeviceId& device) {
  return Resource{device.str(), ObjectKind::Device, ""};
}

Resource Resource::interface(const net::DeviceId& device, const net::InterfaceId& iface) {
  return Resource{device.str(), ObjectKind::Interface, iface.str()};
}

Resource Resource::acl(const net::DeviceId& device, std::string_view name) {
  return Resource{device.str(), ObjectKind::AclObject, std::string(name)};
}

Resource Resource::ospf(const net::DeviceId& device) {
  return Resource{device.str(), ObjectKind::OspfObject, ""};
}

Resource Resource::vlan(const net::DeviceId& device, net::VlanId vlan) {
  return Resource{device.str(), ObjectKind::VlanObject, std::to_string(vlan)};
}

Resource Resource::routes(const net::DeviceId& device) {
  return Resource{device.str(), ObjectKind::RouteObject, ""};
}

Resource Resource::secret(const net::DeviceId& device, std::string_view field) {
  return Resource{device.str(), ObjectKind::SecretObject, std::string(field)};
}

Resource Resource::any(ObjectKind kind) { return Resource{"*", kind, "*"}; }

namespace {

bool name_matches(const std::string& pattern, const std::string& name) {
  if (pattern.empty()) return true;  // empty pattern == "*"
  return util::glob_match(pattern, name);
}

}  // namespace

bool Resource::covers(const Resource& concrete) const {
  if (!util::glob_match(device, concrete.device)) return false;
  if (kind == ObjectKind::Device) {
    // A whole-device grant covers every object on the device.
    return true;
  }
  if (kind != concrete.kind) return false;
  return name_matches(name, concrete.name);
}

int Resource::specificity() const {
  int score = 0;
  bool device_glob = device.find('*') != std::string::npos || device.find('?') != std::string::npos;
  bool name_glob = name.empty() || name.find('*') != std::string::npos ||
                   name.find('?') != std::string::npos;
  if (!device_glob) score += 4;
  if (kind != ObjectKind::Device) score += 2;
  if (kind != ObjectKind::Device && !name_glob) score += 1;
  return score;
}

std::string Resource::to_string() const {
  std::string out = device;
  out += "/" + priv::to_string(kind);
  if (kind != ObjectKind::Device) out += "/" + (name.empty() ? std::string("*") : name);
  return out;
}

}  // namespace heimdall::priv
