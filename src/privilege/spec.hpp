// Privilege_msp: the fine-grained privilege specification of paper §4.1.
//
// A PrivilegeSpec is a set of predicates, each allowing or denying a set of
// actions on a resource pattern. Evaluation is default-deny; among matching
// predicates the most specific resource wins, and deny wins ties (a safe
// conflict-resolution rule the paper leaves open).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "privilege/action.hpp"
#include "privilege/resource.hpp"

namespace heimdall::priv {

enum class Effect : std::uint8_t { Allow, Deny };

std::string to_string(Effect effect);

/// One predicate: effect + action set + resource pattern.
struct Predicate {
  Effect effect = Effect::Deny;
  std::vector<Action> actions;
  Resource resource;

  bool operator==(const Predicate&) const = default;

  bool applies_to(Action action, const Resource& concrete) const;

  std::string to_string() const;
};

/// A decision with its justification (for audit trails).
struct Decision {
  bool allowed = false;
  std::string reason;
};

/// The Privilege_msp.
class PrivilegeSpec {
 public:
  PrivilegeSpec() = default;
  explicit PrivilegeSpec(std::vector<Predicate> predicates)
      : predicates_(std::move(predicates)) {}

  const std::vector<Predicate>& predicates() const { return predicates_; }

  void add(Predicate predicate) { predicates_.push_back(std::move(predicate)); }

  /// Convenience builders.
  void allow(std::vector<Action> actions, Resource resource);
  void deny(std::vector<Action> actions, Resource resource);

  /// Evaluates one concrete (action, resource) pair. Default deny.
  Decision evaluate(Action action, const Resource& resource) const;

  bool allows(Action action, const Resource& resource) const {
    return evaluate(action, resource).allowed;
  }

  /// Number of (action, device-object) pairs this spec allows out of a given
  /// catalog of concrete resources; used by the attack-surface metric.
  std::size_t count_allowed(const std::vector<std::pair<Action, Resource>>& catalog) const;

  std::string to_string() const;

 private:
  std::vector<Predicate> predicates_;
};

}  // namespace heimdall::priv
