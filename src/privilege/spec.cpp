#include "privilege/spec.hpp"

#include <algorithm>

namespace heimdall::priv {

std::string to_string(Effect effect) { return effect == Effect::Allow ? "allow" : "deny"; }

bool Predicate::applies_to(Action action, const Resource& concrete) const {
  if (std::find(actions.begin(), actions.end(), action) == actions.end()) return false;
  return resource.covers(concrete);
}

std::string Predicate::to_string() const {
  std::string names;
  for (std::size_t i = 0; i < actions.size(); ++i) {
    if (i > 0) names += ",";
    names += priv::to_string(actions[i]);
  }
  return priv::to_string(effect) + "(" + names + " @ " + resource.to_string() + ")";
}

void PrivilegeSpec::allow(std::vector<Action> actions, Resource resource) {
  add(Predicate{Effect::Allow, std::move(actions), std::move(resource)});
}

void PrivilegeSpec::deny(std::vector<Action> actions, Resource resource) {
  add(Predicate{Effect::Deny, std::move(actions), std::move(resource)});
}

Decision PrivilegeSpec::evaluate(Action action, const Resource& resource) const {
  const Predicate* best = nullptr;
  int best_specificity = -1;
  for (const Predicate& predicate : predicates_) {
    if (!predicate.applies_to(action, resource)) continue;
    int specificity = predicate.resource.specificity();
    bool wins = specificity > best_specificity ||
                // Deny wins specificity ties.
                (specificity == best_specificity && predicate.effect == Effect::Deny &&
                 best && best->effect == Effect::Allow);
    if (wins) {
      best = &predicate;
      best_specificity = specificity;
    }
  }
  if (!best) {
    return Decision{false, "default deny: no predicate covers " + priv::to_string(action) +
                               " @ " + resource.to_string()};
  }
  return Decision{best->effect == Effect::Allow, "matched " + best->to_string()};
}

std::size_t PrivilegeSpec::count_allowed(
    const std::vector<std::pair<Action, Resource>>& catalog) const {
  std::size_t count = 0;
  for (const auto& [action, resource] : catalog) {
    if (allows(action, resource)) ++count;
  }
  return count;
}

std::string PrivilegeSpec::to_string() const {
  std::string out;
  for (const Predicate& predicate : predicates_) {
    out += predicate.to_string();
    out += "\n";
  }
  return out;
}

}  // namespace heimdall::priv
