// Hierarchical resource references with glob patterns.
//
// A concrete resource names one object a technician acts on:
//   device "r3", interface "r3 : Gig0/1", ACL "r3 : acl : WEB", the OSPF
//   process on r3, VLAN 10 on sw1, ...
// A resource *pattern* may use globs in the device and object-name fields.
#pragma once

#include <string>
#include <string_view>

#include "netmodel/types.hpp"

namespace heimdall::priv {

/// Class of object inside a device.
enum class ObjectKind : std::uint8_t {
  Device,       ///< the device as a whole (show config, reboot, ...)
  Interface,    ///< one interface (name = interface id)
  AclObject,    ///< one access list (name = ACL name)
  OspfObject,   ///< the OSPF process
  VlanObject,   ///< one VLAN (name = decimal VLAN id)
  RouteObject,  ///< the static routing table
  SecretObject, ///< credentials (name = secret field)
};

std::string to_string(ObjectKind kind);
ObjectKind parse_object_kind(std::string_view text);

/// A concrete resource or a resource pattern. Patterns allow '*'/'?' in
/// `device` and `name`.
struct Resource {
  std::string device;              ///< device id or glob
  ObjectKind kind = ObjectKind::Device;
  std::string name;                ///< object name or glob; empty == "*"

  auto operator<=>(const Resource&) const = default;

  /// Concrete-resource constructors.
  static Resource whole_device(const net::DeviceId& device);
  static Resource interface(const net::DeviceId& device, const net::InterfaceId& iface);
  static Resource acl(const net::DeviceId& device, std::string_view name);
  static Resource ospf(const net::DeviceId& device);
  static Resource vlan(const net::DeviceId& device, net::VlanId vlan);
  static Resource routes(const net::DeviceId& device);
  static Resource secret(const net::DeviceId& device, std::string_view field);

  /// Pattern: any object of `kind` on any device.
  static Resource any(ObjectKind kind);

  /// True when this (pattern) resource covers `concrete`. A Device-kind
  /// pattern covers every object on matching devices.
  bool covers(const Resource& concrete) const;

  /// Specificity used for most-specific-wins conflict resolution: higher is
  /// more specific (exact device > glob device; exact name > glob name;
  /// non-Device kind > Device kind).
  int specificity() const;

  std::string to_string() const;
};

}  // namespace heimdall::priv
