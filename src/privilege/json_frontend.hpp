// JSON front-end for Privilege_msp (paper §4.1: "a convenient front-end
// interface, based on JSON, that builds on the specification DSL").
//
// Format:
// {
//   "privileges": [
//     {"effect": "allow",
//      "actions": ["show-*", "ping"],
//      "resource": {"device": "r3", "kind": "interface", "name": "*"}},
//     {"effect": "deny",
//      "actions": ["*"],
//      "resource": {"device": "*", "kind": "secret", "name": "*"}}
//   ]
// }
// Action strings are globs over canonical action names, expanded at parse
// time. An unknown literal action (no glob characters, zero matches) is a
// parse error to catch typos early.
#pragma once

#include <string_view>

#include "privilege/spec.hpp"
#include "util/json.hpp"

namespace heimdall::priv {

/// Parses a Privilege_msp from JSON text. Throws util::ParseError.
PrivilegeSpec parse_privilege_json(std::string_view text);

/// Parses from an already-parsed document.
PrivilegeSpec privilege_from_json(const util::Json& document);

/// Serializes a spec back to the JSON format (round-trips predicates).
util::Json privilege_to_json(const PrivilegeSpec& spec);

}  // namespace heimdall::priv
