#include "privilege/explain.hpp"

#include <algorithm>
#include <map>

namespace heimdall::priv {

std::string human_phrase(Action action) {
  switch (action) {
    case Action::ShowConfig: return "view the configuration";
    case Action::ShowInterfaces: return "view interface status";
    case Action::ShowRoutes: return "view the routing table";
    case Action::ShowAcls: return "view access-lists";
    case Action::ShowOspf: return "view OSPF state";
    case Action::ShowVlans: return "view VLANs";
    case Action::ShowTopology: return "view the topology";
    case Action::Ping: return "run connectivity tests";
    case Action::Traceroute: return "trace forwarding paths";
    case Action::InterfaceUp: return "bring interfaces up";
    case Action::InterfaceDown: return "shut interfaces down";
    case Action::SetInterfaceAddress: return "re-address interfaces";
    case Action::BindAcl: return "bind/unbind access-lists";
    case Action::SetSwitchport: return "change switchport VLANs";
    case Action::SetOspfCost: return "tune OSPF costs";
    case Action::AclEdit: return "edit access-list entries";
    case Action::AclCreate: return "create access-lists";
    case Action::AclDelete: return "delete access-lists";
    case Action::StaticRouteAdd: return "add static routes";
    case Action::StaticRouteRemove: return "remove static routes";
    case Action::OspfNetworkEdit: return "edit OSPF network statements";
    case Action::OspfProcessEdit: return "reconfigure the OSPF process";
    case Action::VlanEdit: return "declare/remove VLANs";
    case Action::ChangeSecret: return "change credentials";
    case Action::Reboot: return "reboot the device";
    case Action::EraseConfig: return "erase the configuration";
    case Action::SaveConfig: return "save the configuration";
  }
  return to_string(action);
}

std::string human_phrase(const Resource& resource) {
  std::string device = resource.device == "*" ? "any device" : "device " + resource.device;
  bool any_name = resource.name.empty() || resource.name == "*";
  switch (resource.kind) {
    case ObjectKind::Device:
      return device;
    case ObjectKind::Interface:
      return (any_name ? "any interface" : "interface " + resource.name) + " on " + device;
    case ObjectKind::AclObject:
      return (any_name ? "any access-list" : "access-list " + resource.name) + " on " + device;
    case ObjectKind::OspfObject:
      return "the OSPF process on " + device;
    case ObjectKind::VlanObject:
      return (any_name ? "any VLAN" : "VLAN " + resource.name) + " on " + device;
    case ObjectKind::RouteObject:
      return "the static routing table on " + device;
    case ObjectKind::SecretObject:
      return (any_name ? "any credential" : "the " + resource.name + " credential") + " on " +
             device;
  }
  return resource.to_string();
}

std::string explain_predicate(const Predicate& predicate) {
  std::string verbs;
  for (std::size_t i = 0; i < predicate.actions.size(); ++i) {
    if (i > 0) verbs += i + 1 == predicate.actions.size() ? " and " : ", ";
    verbs += human_phrase(predicate.actions[i]);
  }
  std::string modal = predicate.effect == Effect::Allow ? "MAY " : "MAY NOT ";
  return modal + verbs + " on " + human_phrase(predicate.resource) + ".";
}

std::string explain_privileges(const PrivilegeSpec& spec) {
  // Group identical action sets to compress "same grant on N devices" into
  // one line listing the devices.
  struct Group {
    Effect effect;
    std::vector<Action> actions;
    ObjectKind kind;
    std::string name;
    std::vector<std::string> devices;
  };
  std::vector<Group> groups;
  for (const Predicate& predicate : spec.predicates()) {
    auto it = std::find_if(groups.begin(), groups.end(), [&](const Group& group) {
      return group.effect == predicate.effect && group.actions == predicate.actions &&
             group.kind == predicate.resource.kind && group.name == predicate.resource.name;
    });
    if (it == groups.end()) {
      groups.push_back({predicate.effect, predicate.actions, predicate.resource.kind,
                        predicate.resource.name, {predicate.resource.device}});
    } else if (std::find(it->devices.begin(), it->devices.end(), predicate.resource.device) ==
               it->devices.end()) {
      it->devices.push_back(predicate.resource.device);
    }
  }
  std::stable_sort(groups.begin(), groups.end(), [](const Group& a, const Group& b) {
    return a.effect == Effect::Allow && b.effect == Effect::Deny;
  });

  std::string out = "The technician:\n";
  for (const Group& group : groups) {
    Predicate representative{group.effect, group.actions,
                             Resource{group.devices.size() == 1 ? group.devices.front() : "",
                                      group.kind, group.name}};
    if (group.devices.size() == 1) {
      out += "  - " + explain_predicate(representative) + "\n";
      continue;
    }
    // Multi-device group: render the device list explicitly.
    std::string devices;
    for (std::size_t i = 0; i < group.devices.size(); ++i) {
      if (i > 0) devices += i + 1 == group.devices.size() ? " and " : ", ";
      devices += group.devices[i];
    }
    representative.resource.device = devices;
    out += "  - " + explain_predicate(representative) + "\n";
  }
  out += "Everything not listed above is denied by default.\n";
  return out;
}

}  // namespace heimdall::priv
