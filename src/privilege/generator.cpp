#include "privilege/generator.hpp"

#include "util/error.hpp"

namespace heimdall::priv {

using namespace heimdall::net;

std::string to_string(TaskClass task) {
  switch (task) {
    case TaskClass::Connectivity: return "connectivity";
    case TaskClass::OspfIssue: return "ospf-issue";
    case TaskClass::VlanIssue: return "vlan-issue";
    case TaskClass::IspReconfig: return "isp-reconfig";
    case TaskClass::AclChange: return "acl-change";
    case TaskClass::Monitoring: return "monitoring";
  }
  return "connectivity";
}

const std::vector<Action>& read_only_actions() {
  static const std::vector<Action> actions = [] {
    std::vector<Action> out;
    for (Action action : all_actions())
      if (is_read_only(action)) out.push_back(action);
    return out;
  }();
  return actions;
}

const std::vector<Action>& mutating_actions_for(TaskClass task) {
  static const std::vector<Action> connectivity = {
      Action::InterfaceUp,   Action::InterfaceDown,    Action::AclEdit,
      Action::BindAcl,       Action::StaticRouteAdd,   Action::StaticRouteRemove,
      Action::OspfNetworkEdit, Action::SetOspfCost,    Action::SaveConfig,
  };
  static const std::vector<Action> ospf = {
      Action::InterfaceUp,     Action::InterfaceDown, Action::OspfNetworkEdit,
      Action::OspfProcessEdit, Action::SetOspfCost,   Action::SetInterfaceAddress,
      Action::SaveConfig,
  };
  static const std::vector<Action> vlan = {
      Action::InterfaceUp, Action::InterfaceDown, Action::SetSwitchport,
      Action::VlanEdit,    Action::SaveConfig,
  };
  static const std::vector<Action> isp = {
      Action::StaticRouteAdd, Action::StaticRouteRemove, Action::SetInterfaceAddress,
      Action::InterfaceUp,    Action::InterfaceDown,     Action::SetOspfCost,
      Action::SaveConfig,
  };
  static const std::vector<Action> acl = {
      Action::AclEdit, Action::AclCreate, Action::AclDelete, Action::BindAcl,
      Action::SaveConfig,
  };
  static const std::vector<Action> monitoring = {};
  switch (task) {
    case TaskClass::Connectivity: return connectivity;
    case TaskClass::OspfIssue: return ospf;
    case TaskClass::VlanIssue: return vlan;
    case TaskClass::IspReconfig: return isp;
    case TaskClass::AclChange: return acl;
    case TaskClass::Monitoring: return monitoring;
  }
  return monitoring;
}

namespace {

/// Device kinds on which a task's mutations make sense; mutations on other
/// kinds stay denied even inside the slice.
bool task_mutates_kind(TaskClass task, DeviceKind kind) {
  switch (task) {
    case TaskClass::VlanIssue:
      return kind == DeviceKind::Switch || kind == DeviceKind::Router;
    case TaskClass::OspfIssue:
    case TaskClass::IspReconfig:
    case TaskClass::AclChange:
      return kind == DeviceKind::Router;
    case TaskClass::Connectivity:
      return kind == DeviceKind::Router || kind == DeviceKind::Switch;
    case TaskClass::Monitoring:
      return false;
  }
  return false;
}

}  // namespace

PrivilegeSpec generate_privileges(const Network& slice, TaskClass task) {
  PrivilegeSpec spec;

  // Read-only visibility over every device in the slice. The slice topology
  // itself is inherently visible (the presentation layer renders it), so
  // ShowTopology is granted globally.
  spec.allow({Action::ShowTopology}, Resource{"*", ObjectKind::Device, ""});
  for (const Device& device : slice.devices()) {
    spec.allow(read_only_actions(), Resource::whole_device(device.id()));
  }

  // Task-scoped mutating actions on the kinds that can hold the root cause.
  const std::vector<Action>& mutations = mutating_actions_for(task);
  if (!mutations.empty()) {
    for (const Device& device : slice.devices()) {
      if (!task_mutates_kind(task, device.kind())) continue;
      spec.allow(mutations, Resource::whole_device(device.id()));
    }
  }

  // Explicit global denies: secrets and high-impact operations are never
  // part of a ticket's least-privilege set. These use maximally-specific
  // per-kind patterns so they beat the whole-device allows above.
  for (const Device& device : slice.devices()) {
    spec.deny({Action::ChangeSecret}, Resource{device.id().str(), ObjectKind::SecretObject, "*"});
    spec.deny({Action::Reboot, Action::EraseConfig},
              Resource{device.id().str(), ObjectKind::Device, ""});
  }

  return spec;
}

}  // namespace heimdall::priv
