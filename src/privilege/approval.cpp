#include "privilege/approval.hpp"

#include <algorithm>
#include <set>

#include "util/error.hpp"

namespace heimdall::priv {

std::string to_string(PrincipalRole role) {
  switch (role) {
    case PrincipalRole::Customer: return "customer";
    case PrincipalRole::Msp: return "msp";
  }
  return "msp";
}

PrincipalRole parse_principal_role(std::string_view text) {
  if (text == "customer") return PrincipalRole::Customer;
  if (text == "msp") return PrincipalRole::Msp;
  throw util::ParseError("approval: unknown principal role '" + std::string(text) + "'");
}

util::Json approval_set_to_json(const ApprovalSet& set) {
  util::Json document;
  document.set("required", set.required);
  util::Json approvals{util::JsonArray{}};
  for (const Approval& approval : set.approvals) {
    util::Json entry;
    entry.set("principal", approval.principal);
    entry.set("role", to_string(approval.role));
    entry.set("subject", approval.subject);
    entry.set("signature", approval.signature);
    approvals.push_back(std::move(entry));
  }
  document.set("approvals", std::move(approvals));
  return document;
}

ApprovalSet approval_set_from_json(const util::Json& document) {
  ApprovalSet set;
  const util::Json& required = util::require_field(document, "required", "approval set");
  if (!required.is_number() || required.as_number() < 0)
    throw util::ParseError("approval set: field 'required' must be a non-negative number");
  set.required = static_cast<std::size_t>(required.as_number());
  for (const util::Json& entry : util::require_array(document, "approvals", "approval set")) {
    Approval approval;
    approval.principal = util::require_string(entry, "principal", "approval");
    approval.role = parse_principal_role(util::require_string(entry, "role", "approval"));
    approval.subject = util::require_string(entry, "subject", "approval");
    approval.signature = util::require_string(entry, "signature", "approval");
    set.approvals.push_back(std::move(approval));
  }
  return set;
}

std::string ApprovalCheck::summary() const {
  if (problems.empty())
    return "satisfied (" + std::to_string(valid) + " valid approvals)";
  std::string out;
  for (const std::string& problem : problems) {
    if (!out.empty()) out += "; ";
    out += problem;
  }
  return out;
}

ApprovalCheck check_approvals(const ApprovalSet& set, const std::string& requester,
                              const std::string& subject, std::size_t min_required,
                              const std::function<bool(const Approval&)>& attested) {
  ApprovalCheck check;
  std::size_t required = std::max(set.required, min_required);
  if (set.required < min_required) {
    check.problems.push_back("m-of-n downgrade: set requires " + std::to_string(set.required) +
                             " approvals, policy floor is " + std::to_string(min_required));
  }
  std::set<std::string> seen;
  bool customer = false;
  for (const Approval& approval : set.approvals) {
    if (approval.subject != subject) {
      check.problems.push_back("approval by " + approval.principal +
                               " covers a different subject");
      continue;
    }
    if (approval.principal == requester) {
      check.problems.push_back("self-approval by " + approval.principal);
      continue;
    }
    if (!seen.insert(approval.principal).second) {
      check.problems.push_back("duplicate approval by " + approval.principal);
      continue;
    }
    if (!attested || !attested(approval)) {
      check.problems.push_back("approval by " + approval.principal +
                               " failed attestation (bad or foreign signature)");
      continue;
    }
    ++check.valid;
    customer |= approval.role == PrincipalRole::Customer;
  }
  if (check.valid < required) {
    check.problems.push_back("only " + std::to_string(check.valid) + " of " +
                             std::to_string(required) + " required approvals are valid");
  }
  if (!customer) {
    check.problems.push_back("no customer-side approval");
  }
  check.satisfied = set.required >= min_required && check.valid >= required && customer;
  return check;
}

namespace {

std::string mediation_key(const PendingApproval& pending) {
  return pending.subject + "|" + pending.requester + "|" + pending.resource.to_string();
}

bool footprints_overlap(const Resource& a, const Resource& b) {
  return a.covers(b) || b.covers(a);
}

}  // namespace

std::vector<MediationResult> mediate_conflicts(const std::vector<PendingApproval>& pending,
                                               const std::vector<std::size_t>& valid_counts) {
  if (pending.size() != valid_counts.size())
    throw util::Error("mediate_conflicts: pending/valid_counts size mismatch");
  std::vector<MediationResult> results(pending.size());

  // Connected components of the overlap graph, discovered in a canonical
  // (content-keyed) order so the grouping — and therefore every verdict —
  // is independent of arrival order.
  std::vector<std::size_t> order(pending.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return mediation_key(pending[a]) < mediation_key(pending[b]);
  });

  std::vector<bool> assigned(pending.size(), false);
  for (std::size_t seed : order) {
    if (assigned[seed]) continue;
    // Grow the component from the seed.
    std::vector<std::size_t> component{seed};
    assigned[seed] = true;
    for (std::size_t scan = 0; scan < component.size(); ++scan) {
      for (std::size_t candidate : order) {
        if (assigned[candidate]) continue;
        if (footprints_overlap(pending[component[scan]].resource,
                               pending[candidate].resource)) {
          component.push_back(candidate);
          assigned[candidate] = true;
        }
      }
    }
    if (component.size() == 1) {
      results[seed] = {MediationVerdict::Proceed, "mediation: no conflicting request"};
      continue;
    }
    // Winner: most valid approvals, then smallest canonical key.
    std::size_t winner = component.front();
    for (std::size_t index : component) {
      if (valid_counts[index] > valid_counts[winner] ||
          (valid_counts[index] == valid_counts[winner] &&
           mediation_key(pending[index]) < mediation_key(pending[winner])))
        winner = index;
    }
    for (std::size_t index : component) {
      if (index == winner) {
        results[index] = {MediationVerdict::Proceed,
                          "mediation: strongest approval set among " +
                              std::to_string(component.size()) + " conflicting requests"};
      } else {
        results[index] = {MediationVerdict::Deferred,
                          "deferred: footprint overlaps " + pending[winner].requester +
                              "'s request for " + pending[winner].resource.to_string() +
                              " which holds more approvals"};
      }
    }
  }
  return results;
}

}  // namespace heimdall::priv
