#include "privilege/escalation.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace heimdall::priv {

std::string to_string(EscalationVerdict verdict) {
  switch (verdict) {
    case EscalationVerdict::AutoGranted: return "auto-granted";
    case EscalationVerdict::Granted: return "granted";
    case EscalationVerdict::RequiresAdmin: return "requires-admin";
    case EscalationVerdict::Rejected: return "rejected";
  }
  return "rejected";
}

bool EscalationPolicy::in_slice(const Resource& resource) const {
  // A request naming a device outside the slice (or a glob) is out-of-slice:
  // escalations must stay within the technician's visible world.
  if (resource.device.find('*') != std::string::npos ||
      resource.device.find('?') != std::string::npos)
    return false;
  return std::any_of(slice_devices_.begin(), slice_devices_.end(),
                     [&](const net::DeviceId& d) { return d.str() == resource.device; });
}

EscalationResult EscalationPolicy::assess(const EscalationRequest& request) const {
  if (is_high_impact(request.action)) {
    return {EscalationVerdict::Rejected,
            "high-impact action " + to_string(request.action) + " is never escalatable"};
  }
  if (request.resource.kind == ObjectKind::SecretObject) {
    return {EscalationVerdict::Rejected, "secrets are never escalatable"};
  }
  if (!in_slice(request.resource)) {
    return {EscalationVerdict::Rejected,
            "resource " + request.resource.to_string() + " is outside the twin slice"};
  }
  if (is_read_only(request.action)) {
    return {EscalationVerdict::AutoGranted, "read-only action within the slice"};
  }
  const std::vector<Action>& compatible = mutating_actions_for(task_);
  if (std::find(compatible.begin(), compatible.end(), request.action) != compatible.end()) {
    return {EscalationVerdict::Granted,
            "mutation compatible with task class " + to_string(task_)};
  }
  return {EscalationVerdict::RequiresAdmin,
          "mutation outside task class " + to_string(task_) + "; customer approval required"};
}

EscalationResult EscalationPolicy::apply(PrivilegeSpec& spec, const EscalationRequest& request,
                                         bool admin_approved) const {
  EscalationResult result = assess(request);
  bool grant = result.verdict == EscalationVerdict::AutoGranted ||
               result.verdict == EscalationVerdict::Granted ||
               (result.verdict == EscalationVerdict::RequiresAdmin && admin_approved);
  if (grant) spec.allow({request.action}, request.resource);
  if (result.verdict == EscalationVerdict::RequiresAdmin && admin_approved)
    result.reason += " (admin approved)";
  return result;
}

}  // namespace heimdall::priv
