#include "privilege/escalation.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace heimdall::priv {

std::string to_string(EscalationVerdict verdict) {
  switch (verdict) {
    case EscalationVerdict::AutoGranted: return "auto-granted";
    case EscalationVerdict::Granted: return "granted";
    case EscalationVerdict::RequiresAdmin: return "requires-admin";
    case EscalationVerdict::Rejected: return "rejected";
  }
  return "rejected";
}

namespace {

bool has_glob(const std::string& text) {
  return text.find('*') != std::string::npos || text.find('?') != std::string::npos;
}

/// True when `kind` identifies its object by name, so an escalation must
/// spell that name out. Device/Ospf/Route resources are singletons per
/// device and legitimately carry an empty name (Resource::whole_device &c).
bool name_identifies_object(ObjectKind kind) {
  switch (kind) {
    case ObjectKind::Interface:
    case ObjectKind::AclObject:
    case ObjectKind::VlanObject:
    case ObjectKind::SecretObject:
      return true;
    case ObjectKind::Device:
    case ObjectKind::OspfObject:
    case ObjectKind::RouteObject:
      return false;
  }
  return true;
}

}  // namespace

bool EscalationPolicy::in_slice(const Resource& resource) const {
  // A request naming a device outside the slice (or a glob) is out-of-slice:
  // escalations must stay within the technician's visible world.
  if (resource.device.find('*') != std::string::npos ||
      resource.device.find('?') != std::string::npos)
    return false;
  return std::any_of(slice_devices_.begin(), slice_devices_.end(),
                     [&](const net::DeviceId& d) { return d.str() == resource.device; });
}

EscalationResult EscalationPolicy::assess(const EscalationRequest& request) const {
  if (is_high_impact(request.action)) {
    return {EscalationVerdict::Rejected,
            "high-impact action " + to_string(request.action) + " is never escalatable"};
  }
  if (request.resource.kind == ObjectKind::SecretObject) {
    return {EscalationVerdict::Rejected, "secrets are never escalatable"};
  }
  // An escalation must name one concrete object: a glob name (and, for
  // kinds whose name identifies the object, an empty name — Resource
  // documents empty as "*") would turn a single grant into a wildcard over
  // every object of that kind on the device.
  if (has_glob(request.resource.name) ||
      (request.resource.name.empty() && name_identifies_object(request.resource.kind))) {
    return {EscalationVerdict::Rejected,
            "resource " + request.resource.to_string() +
                " does not name a concrete object (glob or empty names are not escalatable)"};
  }
  if (!in_slice(request.resource)) {
    return {EscalationVerdict::Rejected,
            "resource " + request.resource.to_string() + " is outside the twin slice"};
  }
  if (is_read_only(request.action)) {
    return {EscalationVerdict::AutoGranted, "read-only action within the slice"};
  }
  const std::vector<Action>& compatible = mutating_actions_for(task_);
  if (std::find(compatible.begin(), compatible.end(), request.action) != compatible.end()) {
    return {EscalationVerdict::Granted,
            "mutation compatible with task class " + to_string(task_)};
  }
  return {EscalationVerdict::RequiresAdmin,
          "mutation outside task class " + to_string(task_) + "; customer approval required"};
}

EscalationResult EscalationPolicy::apply(PrivilegeSpec& spec, const EscalationRequest& request,
                                         bool admin_approved) const {
  EscalationResult result = assess(request);
  bool grant = result.verdict == EscalationVerdict::AutoGranted ||
               result.verdict == EscalationVerdict::Granted ||
               (result.verdict == EscalationVerdict::RequiresAdmin && admin_approved);
  if (grant) spec.allow({request.action}, request.resource);
  if (result.verdict == EscalationVerdict::RequiresAdmin && admin_approved)
    result.reason += " (admin approved)";
  return result;
}

EscalationResult EscalationPolicy::apply(PrivilegeSpec& spec, const EscalationRequest& request,
                                         const ApprovalCheck& approvals) const {
  EscalationResult result = assess(request);
  bool grant = result.verdict == EscalationVerdict::AutoGranted ||
               result.verdict == EscalationVerdict::Granted ||
               (result.verdict == EscalationVerdict::RequiresAdmin && approvals.satisfied);
  if (grant) spec.allow({request.action}, request.resource);
  if (result.verdict == EscalationVerdict::RequiresAdmin)
    result.reason += " (m-of-n " + approvals.summary() + ")";
  return result;
}

}  // namespace heimdall::priv
