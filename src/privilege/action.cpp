#include "privilege/action.hpp"

#include <array>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace heimdall::priv {

namespace {

struct ActionName {
  Action action;
  const char* name;
};

constexpr std::array<ActionName, 27> kActionNames = {{
    {Action::ShowConfig, "show-config"},
    {Action::ShowInterfaces, "show-interfaces"},
    {Action::ShowRoutes, "show-routes"},
    {Action::ShowAcls, "show-acls"},
    {Action::ShowOspf, "show-ospf"},
    {Action::ShowVlans, "show-vlans"},
    {Action::ShowTopology, "show-topology"},
    {Action::Ping, "ping"},
    {Action::Traceroute, "traceroute"},
    {Action::InterfaceUp, "interface-up"},
    {Action::InterfaceDown, "interface-down"},
    {Action::SetInterfaceAddress, "set-interface-address"},
    {Action::BindAcl, "bind-acl"},
    {Action::SetSwitchport, "set-switchport"},
    {Action::SetOspfCost, "set-ospf-cost"},
    {Action::AclEdit, "acl-edit"},
    {Action::AclCreate, "acl-create"},
    {Action::AclDelete, "acl-delete"},
    {Action::StaticRouteAdd, "static-route-add"},
    {Action::StaticRouteRemove, "static-route-remove"},
    {Action::OspfNetworkEdit, "ospf-network-edit"},
    {Action::OspfProcessEdit, "ospf-process-edit"},
    {Action::VlanEdit, "vlan-edit"},
    {Action::ChangeSecret, "change-secret"},
    {Action::Reboot, "reboot"},
    {Action::EraseConfig, "erase-config"},
    {Action::SaveConfig, "save-config"},
}};

}  // namespace

std::string to_string(Action action) {
  for (const ActionName& entry : kActionNames) {
    if (entry.action == action) return entry.name;
  }
  throw util::InvariantError("unknown action enum value");
}

Action parse_action(std::string_view text) {
  for (const ActionName& entry : kActionNames) {
    if (text == entry.name) return entry.action;
  }
  throw util::ParseError("unknown action: '" + std::string(text) + "'");
}

const std::vector<Action>& all_actions() {
  static const std::vector<Action> actions = [] {
    std::vector<Action> out;
    out.reserve(kActionNames.size());
    for (const ActionName& entry : kActionNames) out.push_back(entry.action);
    return out;
  }();
  return actions;
}

std::vector<Action> actions_matching(std::string_view pattern) {
  std::vector<Action> out;
  for (const ActionName& entry : kActionNames) {
    if (util::glob_match(pattern, entry.name)) out.push_back(entry.action);
  }
  return out;
}

bool is_read_only(Action action) {
  switch (action) {
    case Action::ShowConfig:
    case Action::ShowInterfaces:
    case Action::ShowRoutes:
    case Action::ShowAcls:
    case Action::ShowOspf:
    case Action::ShowVlans:
    case Action::ShowTopology:
    case Action::Ping:
    case Action::Traceroute:
      return true;
    default:
      return false;
  }
}

bool is_high_impact(Action action) {
  switch (action) {
    case Action::ChangeSecret:
    case Action::Reboot:
    case Action::EraseConfig:
      return true;
    default:
      return false;
  }
}

}  // namespace heimdall::priv
