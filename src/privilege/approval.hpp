// Multi-party authorization: m-of-n approval sets with deterministic
// conflict mediation.
//
// Ground: Kinkelin et al. (PAPERS.md — distributed-ledger configuration
// management). A single technician approval is a single point of collusion;
// high-impact and out-of-class changes instead carry an ApprovalSet that
// must gather `required` (m) signed approvals from *distinct* principals —
// at least one on the customer side — over the ticket content hash. The
// signatures themselves are enclave-attested MACs; this module only defines
// the data model and policy rules, the enclave binding lives in
// enforcer/approval.hpp so the privilege layer stays enclave-free.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "privilege/resource.hpp"
#include "util/json.hpp"

namespace heimdall::priv {

/// Which side of the MSP relationship a principal signs for.
enum class PrincipalRole : std::uint8_t {
  Customer,  ///< enterprise-side admin
  Msp,       ///< MSP-side supervisor
};

std::string to_string(PrincipalRole role);
PrincipalRole parse_principal_role(std::string_view text);

/// One principal's signed approval of a subject (the ticket content hash).
struct Approval {
  std::string principal;
  PrincipalRole role = PrincipalRole::Msp;
  std::string subject;    ///< hash of the approved content
  std::string signature;  ///< hex MAC of the enclave-attested statement

  bool operator==(const Approval&) const = default;
};

/// The m-of-n approval set a submission or escalation carries.
struct ApprovalSet {
  std::size_t required = 0;  ///< m — approvals needed for the grant
  std::vector<Approval> approvals;

  bool operator==(const ApprovalSet&) const = default;
};

/// JSON round-trip (frontend style: typed-field errors name the entity).
util::Json approval_set_to_json(const ApprovalSet& set);
ApprovalSet approval_set_from_json(const util::Json& document);

/// Outcome of checking an ApprovalSet against the policy rules.
struct ApprovalCheck {
  bool satisfied = false;
  std::size_t valid = 0;  ///< distinct, attested, on-subject approvals
  std::vector<std::string> problems;

  /// "satisfied (N valid approvals)" or the problems joined by "; ".
  std::string summary() const;
};

/// Evaluates `set` for a request by `requester` over `subject`:
///   * `set.required` must be at least `min_required` — an m=1 downgrade is
///     flagged, never honored;
///   * every approval must cover `subject`;
///   * the requester cannot approve their own request (collusion rule);
///   * principals must be distinct (a duplicate signature counts once);
///   * every approval must pass `attested` (enclave MAC verification);
///   * at least one valid approval must come from a Customer principal.
/// satisfied == the valid count reaches max(required, min_required) with a
/// customer on board.
ApprovalCheck check_approvals(const ApprovalSet& set, const std::string& requester,
                              const std::string& subject, std::size_t min_required,
                              const std::function<bool(const Approval&)>& attested);

/// One pending approval-gated request competing for a resource footprint.
struct PendingApproval {
  std::string requester;
  Resource resource;  ///< footprint the grant would cover
  std::string subject;
  ApprovalSet approvals;
};

enum class MediationVerdict : std::uint8_t { Proceed, Deferred };

struct MediationResult {
  MediationVerdict verdict = MediationVerdict::Proceed;
  std::string reason;
};

/// Deterministic mediation of concurrent approval-gated requests whose
/// resource footprints overlap (either resource covers the other). Within
/// each overlapping group exactly one request proceeds — the one with the
/// most valid approvals, ties broken by the lexicographically smallest
/// (subject, requester, resource) key — and the rest defer. The rule is a
/// pure function of request *content*: feeding the same requests in any
/// arrival order yields the same per-request outcome (property-tested).
/// `valid_counts[i]` is the caller's check_approvals(...).valid for
/// `pending[i]`; sizes must match.
std::vector<MediationResult> mediate_conflicts(const std::vector<PendingApproval>& pending,
                                               const std::vector<std::size_t>& valid_counts);

}  // namespace heimdall::priv
