#include "privilege/json_frontend.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace heimdall::priv {

using util::Json;
using util::ParseError;

PrivilegeSpec parse_privilege_json(std::string_view text) {
  return privilege_from_json(Json::parse(text));
}

PrivilegeSpec privilege_from_json(const Json& document) {
  PrivilegeSpec spec;
  const util::JsonArray& privileges = util::require_array(document, "privileges", "privilege spec");
  for (const Json& item : privileges) {
    Predicate predicate;

    const std::string& effect = util::require_string(item, "effect", "privilege");
    if (effect == "allow")
      predicate.effect = Effect::Allow;
    else if (effect == "deny")
      predicate.effect = Effect::Deny;
    else
      throw ParseError("privilege effect must be allow/deny, got '" + effect + "'");

    for (const Json& action_json : util::require_array(item, "actions", "privilege")) {
      const std::string& pattern = action_json.as_string();
      std::vector<Action> matched = actions_matching(pattern);
      bool is_glob = pattern.find('*') != std::string::npos ||
                     pattern.find('?') != std::string::npos;
      if (matched.empty() && !is_glob)
        throw ParseError("unknown action '" + pattern + "' in privilege spec");
      for (Action action : matched) {
        if (std::find(predicate.actions.begin(), predicate.actions.end(), action) ==
            predicate.actions.end())
          predicate.actions.push_back(action);
      }
    }

    const Json& resource = util::require_field(item, "resource", "privilege");
    predicate.resource.device = util::require_string(resource, "device", "privilege resource");
    predicate.resource.kind =
        parse_object_kind(util::require_string(resource, "kind", "privilege resource"));
    if (auto name = util::optional_string(resource, "name", "privilege resource"))
      predicate.resource.name = *name;

    spec.add(std::move(predicate));
  }
  return spec;
}

Json privilege_to_json(const PrivilegeSpec& spec) {
  Json privileges{util::JsonArray{}};
  for (const Predicate& predicate : spec.predicates()) {
    Json actions{util::JsonArray{}};
    for (Action action : predicate.actions) actions.push_back(Json(to_string(action)));
    Json resource;
    resource.set("device", Json(predicate.resource.device));
    resource.set("kind", Json(to_string(predicate.resource.kind)));
    resource.set("name", Json(predicate.resource.name));
    Json item;
    item.set("effect", Json(to_string(predicate.effect)));
    item.set("actions", std::move(actions));
    item.set("resource", std::move(resource));
    privileges.push_back(std::move(item));
  }
  Json document;
  document.set("privileges", std::move(privileges));
  return document;
}

}  // namespace heimdall::priv
