#include "privilege/json_frontend.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace heimdall::priv {

using util::Json;
using util::ParseError;

PrivilegeSpec parse_privilege_json(std::string_view text) {
  return privilege_from_json(Json::parse(text));
}

PrivilegeSpec privilege_from_json(const Json& document) {
  PrivilegeSpec spec;
  const Json& privileges = document.at("privileges");
  for (const Json& item : privileges.as_array()) {
    Predicate predicate;

    const std::string& effect = item.at("effect").as_string();
    if (effect == "allow")
      predicate.effect = Effect::Allow;
    else if (effect == "deny")
      predicate.effect = Effect::Deny;
    else
      throw ParseError("privilege effect must be allow/deny, got '" + effect + "'");

    for (const Json& action_json : item.at("actions").as_array()) {
      const std::string& pattern = action_json.as_string();
      std::vector<Action> matched = actions_matching(pattern);
      bool is_glob = pattern.find('*') != std::string::npos ||
                     pattern.find('?') != std::string::npos;
      if (matched.empty() && !is_glob)
        throw ParseError("unknown action '" + pattern + "' in privilege spec");
      for (Action action : matched) {
        if (std::find(predicate.actions.begin(), predicate.actions.end(), action) ==
            predicate.actions.end())
          predicate.actions.push_back(action);
      }
    }

    const Json& resource = item.at("resource");
    predicate.resource.device = resource.at("device").as_string();
    predicate.resource.kind = parse_object_kind(resource.at("kind").as_string());
    if (const Json* name = resource.find("name")) predicate.resource.name = name->as_string();

    spec.add(std::move(predicate));
  }
  return spec;
}

Json privilege_to_json(const PrivilegeSpec& spec) {
  Json privileges{util::JsonArray{}};
  for (const Predicate& predicate : spec.predicates()) {
    Json actions{util::JsonArray{}};
    for (Action action : predicate.actions) actions.push_back(Json(to_string(action)));
    Json resource;
    resource.set("device", Json(predicate.resource.device));
    resource.set("kind", Json(to_string(predicate.resource.kind)));
    resource.set("name", Json(predicate.resource.name));
    Json item;
    item.set("effect", Json(to_string(predicate.effect)));
    item.set("actions", std::move(actions));
    item.set("resource", std::move(resource));
    privileges.push_back(std::move(item));
  }
  Json document;
  document.set("privileges", std::move(privileges));
  return document;
}

}  // namespace heimdall::priv
