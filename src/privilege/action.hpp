// The technician action taxonomy.
//
// Every operation a technician can perform — through the twin console or,
// in the baseline, through an RMM agent — is classified as one Action. The
// Privilege_msp evaluates (Action, Resource) pairs, the attack-surface
// metric counts them, and the enforcer maps config changes back onto them.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace heimdall::priv {

enum class Action : std::uint8_t {
  // Read-only (presentation-layer) actions.
  ShowConfig,
  ShowInterfaces,
  ShowRoutes,
  ShowAcls,
  ShowOspf,
  ShowVlans,
  ShowTopology,
  Ping,
  Traceroute,
  // Interface mutations.
  InterfaceUp,
  InterfaceDown,
  SetInterfaceAddress,
  BindAcl,
  SetSwitchport,
  SetOspfCost,
  // ACL mutations.
  AclEdit,
  AclCreate,
  AclDelete,
  // Routing mutations.
  StaticRouteAdd,
  StaticRouteRemove,
  OspfNetworkEdit,
  OspfProcessEdit,
  // VLAN mutations.
  VlanEdit,
  // High-impact operations (never granted by the task-driven generator).
  ChangeSecret,
  Reboot,
  EraseConfig,
  SaveConfig,
};

/// Canonical lowercase-dashed name, e.g. "set-interface-address".
std::string to_string(Action action);

/// Inverse of to_string; throws util::ParseError on unknown names.
Action parse_action(std::string_view text);

/// Every action, in enum order.
const std::vector<Action>& all_actions();

/// Actions matching a glob over canonical names ("show-*", "*").
std::vector<Action> actions_matching(std::string_view pattern);

/// True for presentation-layer actions that cannot change state.
bool is_read_only(Action action);

/// True for actions that mutate device configuration or state.
inline bool is_mutating(Action action) { return !is_read_only(action); }

/// True for the high-impact operations (secrets, reboot, erase).
bool is_high_impact(Action action);

}  // namespace heimdall::priv
