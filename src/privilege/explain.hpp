// Human-readable privilege explanations (paper §7, "User experience": "How
// should resources and privileges be presented and translated into
// easy-to-understand behavior?").
//
// Turns a Privilege_msp into plain-English sentences an enterprise admin
// can review before a ticket starts, and explains individual decisions
// after the fact.
#pragma once

#include <string>

#include "privilege/spec.hpp"

namespace heimdall::priv {

/// Plain-English phrase for one action, e.g. "view the configuration" or
/// "edit access-list entries".
std::string human_phrase(Action action);

/// Plain-English phrase for a resource pattern, e.g. "router r3",
/// "access-list WEB on r3", "any device".
std::string human_phrase(const Resource& resource);

/// One sentence per predicate: "MAY view the configuration, ping hosts on
/// device r7." / "MAY NOT change credentials on any device."
std::string explain_predicate(const Predicate& predicate);

/// The whole spec as a bulleted, deduplicated summary, most-permissive
/// grants first, denials last.
std::string explain_privileges(const PrivilegeSpec& spec);

}  // namespace heimdall::priv
