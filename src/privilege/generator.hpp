// Task-driven privilege generation.
//
// Rather than asking the admin to enumerate predicates for every ticket
// (paper challenge 1: "tedious and error-prone"), Heimdall derives a
// Privilege_msp from the task class and the twin slice: read-only actions on
// every visible device, the task's mutating actions on the device kinds that
// can hold the root cause, and explicit denies on secrets and high-impact
// operations.
#pragma once

#include <string>
#include <vector>

#include "netmodel/network.hpp"
#include "privilege/spec.hpp"

namespace heimdall::priv {

/// Task class of a ticket, driving which mutating actions are granted.
enum class TaskClass : std::uint8_t {
  Connectivity,  ///< host A cannot reach host B (root cause unknown)
  OspfIssue,     ///< routing adjacency / OSPF reachability problem
  VlanIssue,     ///< L2 / VLAN misconfiguration
  IspReconfig,   ///< planned static-route / uplink change
  AclChange,     ///< planned firewall-rule change
  Monitoring,    ///< performance monitoring (read-only)
};

std::string to_string(TaskClass task);

/// Mutating actions a task class legitimately needs.
const std::vector<Action>& mutating_actions_for(TaskClass task);

/// All read-only actions.
const std::vector<Action>& read_only_actions();

/// Generates the Privilege_msp for `task` over the devices visible in the
/// twin slice.
PrivilegeSpec generate_privileges(const net::Network& slice, TaskClass task);

}  // namespace heimdall::priv
