// Privilege escalation workflow (paper §7: privileges "likely escalating
// from more to less restrictive" over a ticket's life cycle, and the open
// question of telling valid escalations from subversion attempts).
//
// Heimdall's rule set:
//   * read-only actions on slice devices       -> auto-granted
//   * task-compatible mutations on slice nodes -> granted, logged
//   * mutations outside the task class         -> requires admin approval
//   * high-impact actions / secrets / devices
//     outside the slice                        -> rejected outright
#pragma once

#include <string>
#include <vector>

#include "netmodel/types.hpp"
#include "privilege/approval.hpp"
#include "privilege/generator.hpp"
#include "privilege/spec.hpp"

namespace heimdall::priv {

/// A technician's request for additional privileges.
struct EscalationRequest {
  Action action = Action::ShowConfig;
  Resource resource;
  std::string justification;
};

enum class EscalationVerdict : std::uint8_t {
  AutoGranted,    ///< read-only; no human in the loop
  Granted,        ///< mutating but task-compatible; granted and logged
  RequiresAdmin,  ///< out-of-class mutation; needs customer approval
  Rejected,       ///< high-impact / out-of-slice; never granted
};

std::string to_string(EscalationVerdict verdict);

/// Assessed escalation outcome.
struct EscalationResult {
  EscalationVerdict verdict = EscalationVerdict::Rejected;
  std::string reason;
};

/// Stateless policy assessing escalation requests for one ticket.
class EscalationPolicy {
 public:
  EscalationPolicy(TaskClass task, std::vector<net::DeviceId> slice_devices)
      : task_(task), slice_devices_(std::move(slice_devices)) {}

  EscalationResult assess(const EscalationRequest& request) const;

  /// Assesses and, when the verdict grants (AutoGranted/Granted, or
  /// RequiresAdmin with `admin_approved`), extends `spec` with the new
  /// predicate. Returns the assessment. Legacy single-admin path — the
  /// multi-party overload below supersedes it for RequiresAdmin verdicts.
  EscalationResult apply(PrivilegeSpec& spec, const EscalationRequest& request,
                         bool admin_approved = false) const;

  /// Multi-party variant: a RequiresAdmin verdict only extends `spec` when
  /// `approvals` (the caller's check_approvals over the m-of-n ApprovalSet)
  /// is satisfied; the result's reason records the approval summary either
  /// way. AutoGranted/Granted behave as in the legacy overload.
  EscalationResult apply(PrivilegeSpec& spec, const EscalationRequest& request,
                         const ApprovalCheck& approvals) const;

 private:
  bool in_slice(const Resource& resource) const;

  TaskClass task_;
  std::vector<net::DeviceId> slice_devices_;
};

}  // namespace heimdall::priv
