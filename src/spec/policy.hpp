// Network policies: the invariants the enterprise cares about, mined from a
// known-good snapshot (config2spec-style) and checked by the enforcer.
#pragma once

#include <string>
#include <vector>

#include "netmodel/types.hpp"

namespace heimdall::spec {

/// Kind of invariant.
enum class PolicyType : std::uint8_t {
  Reachability,  ///< src must reach dst
  Isolation,     ///< src must NOT reach dst
  Waypoint,      ///< src->dst traffic must traverse `waypoint`
};

std::string to_string(PolicyType type);

/// One policy over a pair of hosts (plus a waypoint device for Waypoint).
struct Policy {
  PolicyType type = PolicyType::Reachability;
  net::DeviceId src;
  net::DeviceId dst;
  net::DeviceId waypoint;  ///< only for PolicyType::Waypoint

  auto operator<=>(const Policy&) const = default;

  /// Stable identifier, e.g. "reach(host1,host2)".
  std::string id() const;

  std::string to_string() const;
};

}  // namespace heimdall::spec
