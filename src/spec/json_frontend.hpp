// JSON front-end for network policies.
//
// Paper §4.1: "the admin can specify both privileges and network policies
// using the same interface" — this mirrors privilege/json_frontend.hpp for
// the policy side, and doubles as the export format for mined policies.
//
// Format:
// {
//   "policies": [
//     {"type": "reach",    "src": "h1", "dst": "h4"},
//     {"type": "isolate",  "src": "h2", "dst": "h8"},
//     {"type": "waypoint", "src": "h1", "dst": "h7", "via": "r9"}
//   ]
// }
#pragma once

#include <string_view>
#include <vector>

#include "spec/policy.hpp"
#include "util/json.hpp"

namespace heimdall::spec {

/// Parses a policy set from JSON text. Throws util::ParseError.
std::vector<Policy> parse_policies_json(std::string_view text);

/// Parses from an already-parsed document.
std::vector<Policy> policies_from_json(const util::Json& document);

/// Serializes a policy set (round-trips).
util::Json policies_to_json(const std::vector<Policy>& policies);

}  // namespace heimdall::spec
