#include "spec/json_frontend.hpp"

#include "util/error.hpp"

namespace heimdall::spec {

using util::Json;
using util::ParseError;

namespace {

PolicyType parse_policy_type(const std::string& text) {
  if (text == "reach") return PolicyType::Reachability;
  if (text == "isolate") return PolicyType::Isolation;
  if (text == "waypoint") return PolicyType::Waypoint;
  throw ParseError("unknown policy type '" + text + "'");
}

}  // namespace

std::vector<Policy> parse_policies_json(std::string_view text) {
  return policies_from_json(Json::parse(text));
}

std::vector<Policy> policies_from_json(const Json& document) {
  std::vector<Policy> out;
  for (const Json& item : util::require_array(document, "policies", "policy set")) {
    Policy policy;
    policy.type = parse_policy_type(util::require_string(item, "type", "policy"));
    policy.src = net::DeviceId(util::require_string(item, "src", "policy"));
    policy.dst = net::DeviceId(util::require_string(item, "dst", "policy"));
    if (policy.src.empty() || policy.dst.empty())
      throw ParseError("policy src/dst must be non-empty");
    if (policy.type == PolicyType::Waypoint) {
      policy.waypoint = net::DeviceId(util::require_string(item, "via", "waypoint policy"));
      if (policy.waypoint.empty()) throw ParseError("waypoint policy needs a 'via' device");
    } else if (item.find("via") != nullptr) {
      throw ParseError("'via' is only valid on waypoint policies");
    }
    out.push_back(std::move(policy));
  }
  return out;
}

util::Json policies_to_json(const std::vector<Policy>& policies) {
  Json array{util::JsonArray{}};
  for (const Policy& policy : policies) {
    Json item;
    item.set("type", Json(to_string(policy.type)));
    item.set("src", Json(policy.src.str()));
    item.set("dst", Json(policy.dst.str()));
    if (policy.type == PolicyType::Waypoint) item.set("via", Json(policy.waypoint.str()));
    array.push_back(std::move(item));
  }
  Json document;
  document.set("policies", std::move(array));
  return document;
}

}  // namespace heimdall::spec
