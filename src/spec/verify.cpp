#include "spec/verify.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/clock.hpp"

namespace heimdall::spec {

using namespace heimdall::net;

std::vector<std::string> VerificationReport::violated_ids() const {
  std::vector<std::string> out;
  out.reserve(violations.size());
  for (const Violation& violation : violations) out.push_back(violation.policy.id());
  std::sort(out.begin(), out.end());
  return out;
}

PolicyVerifier::PolicyVerifier(std::vector<Policy> policies)
    : policies_(std::move(policies)), engine_(std::make_shared<analysis::Engine>()) {}

VerificationReport PolicyVerifier::verify(const dp::ReachabilityMatrix& matrix) const {
  obs::ScopedSpan span("spec.verify", "spec",
                       {{"policies", std::to_string(policies_.size())}});
  VerificationReport report;
  for (const Policy& policy : policies_) {
    // Policies whose endpoints are absent from this (possibly sliced)
    // network cannot be evaluated here; the enforcer always verifies on the
    // full production shadow where every endpoint exists.
    if (!matrix.has_pair(policy.src, policy.dst)) continue;
    ++report.checked;
    const dp::PairReachability& pair = matrix.pair(policy.src, policy.dst);
    switch (policy.type) {
      case PolicyType::Reachability:
        if (!pair.reachable()) {
          report.violations.push_back(
              {policy, "unreachable: " + dp::to_string(pair.disposition)});
        }
        break;
      case PolicyType::Isolation:
        if (pair.reachable()) {
          report.violations.push_back({policy, "traffic now delivered"});
        }
        break;
      case PolicyType::Waypoint:
        if (!pair.reachable()) {
          report.violations.push_back(
              {policy, "unreachable: " + dp::to_string(pair.disposition)});
        } else if (std::find(pair.path.begin(), pair.path.end(), policy.waypoint) ==
                   pair.path.end()) {
          report.violations.push_back({policy, "path bypasses " + policy.waypoint.str()});
        }
        break;
    }
  }
  obs::Registry::global().counter("spec.policies_checked").add(report.checked);
  if (!report.violations.empty()) {
    obs::Registry::global().counter("spec.violations").add(report.violations.size());
    span.arg("violations", std::to_string(report.violations.size()));
  }
  return report;
}

VerificationReport PolicyVerifier::verify_network(const Network& network) const {
  obs::ScopedSpan span("spec.verify_network", "spec");
  util::Stopwatch watch;
  obs::Registry::global().counter("spec.verifications").add();
  analysis::Snapshot snapshot = engine_->analyze(network);
  VerificationReport report = verify(*snapshot.reachability);
  obs::Registry::global().histogram("spec.verify_ms").observe(watch.elapsed_ms());
  return report;
}

}  // namespace heimdall::spec
