#include "spec/verify.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"

namespace heimdall::spec {

using namespace heimdall::net;

std::vector<std::string> VerificationReport::violated_ids() const {
  std::vector<std::string> out;
  out.reserve(violations.size());
  for (const Violation& violation : violations) out.push_back(violation.policy.id());
  std::sort(out.begin(), out.end());
  return out;
}

PolicyVerifier::PolicyVerifier(std::vector<Policy> policies)
    : PolicyVerifier(std::move(policies), analysis::Options{}) {}

PolicyVerifier::PolicyVerifier(std::vector<Policy> policies, analysis::Options engine_options)
    : policies_(std::move(policies)),
      engine_(std::make_shared<analysis::Engine>(engine_options)) {
  for (std::size_t i = 0; i < policies_.size(); ++i) {
    pair_index_[{policies_[i].src, policies_[i].dst}].push_back(i);
  }
}

void PolicyVerifier::check_policy(const Policy& policy, const dp::ReachabilityView& view,
                                  VerificationReport& report) const {
  // Policies whose endpoints are absent from this (possibly sliced)
  // network cannot be evaluated here; the enforcer always verifies on the
  // full production shadow where every endpoint exists.
  if (!view.has_pair(policy.src, policy.dst)) return;
  ++report.checked;
  const dp::Disposition disposition = view.disposition(policy.src, policy.dst);
  const bool reachable = disposition == dp::Disposition::Delivered;
  switch (policy.type) {
    case PolicyType::Reachability:
      if (!reachable) {
        report.violations.push_back(
            {policy, "unreachable: " + dp::to_string(disposition)});
      }
      break;
    case PolicyType::Isolation:
      if (reachable) {
        report.violations.push_back({policy, "traffic now delivered"});
      }
      break;
    case PolicyType::Waypoint:
      if (!reachable) {
        report.violations.push_back(
            {policy, "unreachable: " + dp::to_string(disposition)});
      } else {
        const std::vector<net::DeviceId> path = view.path(policy.src, policy.dst);
        if (std::find(path.begin(), path.end(), policy.waypoint) == path.end()) {
          report.violations.push_back({policy, "path bypasses " + policy.waypoint.str()});
        }
      }
      break;
  }
}

VerificationReport PolicyVerifier::verify(const dp::ReachabilityView& view) const {
  obs::ScopedSpan span("spec.verify", "spec",
                       {{"policies", std::to_string(policies_.size())}});
  VerificationReport report;
  for (const Policy& policy : policies_) check_policy(policy, view, report);
  obs::Registry::global().counter("spec.policies_checked").add(report.checked);
  if (!report.violations.empty()) {
    obs::Registry::global().counter("spec.violations").add(report.violations.size());
    span.arg("violations", std::to_string(report.violations.size()));
  }
  return report;
}

VerificationReport PolicyVerifier::verify_incremental(const analysis::Snapshot& snapshot,
                                                      const VerificationReport& base_report) const {
  const dp::ReachabilityView* view = snapshot.view();
  util::require(view != nullptr, "verify_incremental: snapshot has no reachability");
  // Delta splicing needs dense pair indices; sharded snapshots (and any
  // snapshot of unknown provenance) take the full check over the view.
  if (!snapshot.reachability || !snapshot.retraced_pairs) return verify(*view);

  const dp::ReachabilityMatrix& matrix = *snapshot.reachability;
  obs::ScopedSpan span("spec.verify_delta", "spec",
                       {{"retraced_pairs", std::to_string(snapshot.retraced_pairs->size())}});

  // Mark the policies whose matrix cell was recomputed; everything else
  // provably kept its verdict (the cell is bit-identical to the base).
  std::vector<char> recheck(policies_.size(), 0);
  std::size_t recheck_count = 0;
  for (std::size_t pair_idx : *snapshot.retraced_pairs) {
    const dp::PairReachability& pair = matrix.pairs()[pair_idx];
    auto it = pair_index_.find({pair.src, pair.dst});
    if (it == pair_index_.end()) continue;
    for (std::size_t policy_idx : it->second) {
      if (!recheck[policy_idx]) {
        recheck[policy_idx] = 1;
        ++recheck_count;
      }
    }
  }

  // Waypoint policies also read the recorded *path*, but a pair whose path
  // changed is by definition retraced, so the cell test above covers them.
  VerificationReport report;
  std::size_t cursor = 0;  // walks base_report.violations (in policy order)
  for (std::size_t i = 0; i < policies_.size(); ++i) {
    const Policy& policy = policies_[i];
    const bool was_violated = cursor < base_report.violations.size() &&
                              base_report.violations[cursor].policy == policy;
    if (recheck[i]) {
      if (was_violated) ++cursor;
      check_policy(policy, matrix, report);
    } else {
      if (!matrix.has_pair(policy.src, policy.dst)) continue;
      ++report.checked;
      if (was_violated) {
        report.violations.push_back(base_report.violations[cursor]);
        ++cursor;
      }
    }
  }
  obs::Registry::global().counter("spec.policies_checked").add(report.checked);
  obs::Registry::global().counter("spec.policies_rechecked").add(recheck_count);
  if (!report.violations.empty()) {
    obs::Registry::global().counter("spec.violations").add(report.violations.size());
    span.arg("violations", std::to_string(report.violations.size()));
  }
  return report;
}

VerificationReport PolicyVerifier::verify_network(const Network& network) const {
  obs::ScopedSpan span("spec.verify_network", "spec");
  util::Stopwatch watch;
  obs::Registry::global().counter("spec.verifications").add();
  analysis::Snapshot snapshot = engine_->analyze(network);
  VerificationReport report = verify(*snapshot.view());
  obs::Registry::global().histogram("spec.verify_ms").observe(watch.elapsed_ms());
  return report;
}

}  // namespace heimdall::spec
