// Policy verification: checks a policy set against a network snapshot.
//
// Two entry points mirror the paper's two verification strategies:
//   * verify(matrix)      — check against a precomputed reachability matrix
//                           (the enforcer's final-changeset verification);
//   * verify_network(net) — analyze the network through the shared
//                           analysis::Engine (memoized dataplane + matrix),
//                           then check — "continuous verification after
//                           every action"; benchmarked in
//                           ablation_verification.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analysis/engine.hpp"
#include "dataplane/reachability.hpp"
#include "spec/policy.hpp"

namespace heimdall::spec {

/// One violated policy with an explanation.
struct Violation {
  Policy policy;
  std::string detail;
};

/// Outcome of verifying a policy set.
struct VerificationReport {
  std::size_t checked = 0;
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }

  /// Ids of violated policies, sorted.
  std::vector<std::string> violated_ids() const;
};

/// Verifies policies against a network + dataplane snapshot.
class PolicyVerifier {
 public:
  explicit PolicyVerifier(std::vector<Policy> policies);

  const std::vector<Policy>& policies() const { return policies_; }

  /// Checks every policy against a precomputed matrix.
  VerificationReport verify(const dp::ReachabilityMatrix& matrix) const;

  /// Analyzes `network` (dataplane + matrix) through the verifier's
  /// analysis engine, then checks. Repeated calls on an unchanged network
  /// hit the engine's memo instead of recomputing the pipeline.
  VerificationReport verify_network(const net::Network& network) const;

  /// The engine backing verify_network(). Copies of a verifier share one
  /// engine, so e.g. the enforcer's per-session verifiers pool their cache.
  analysis::Engine& engine() const { return *engine_; }

 private:
  std::vector<Policy> policies_;
  std::shared_ptr<analysis::Engine> engine_;
};

}  // namespace heimdall::spec
