// Policy verification: checks a policy set against a network snapshot.
//
// Two entry points mirror the paper's two verification strategies:
//   * verify(matrix)      — check against a precomputed reachability matrix
//                           (the enforcer's final-changeset verification);
//   * verify_network(net) — analyze the network through the shared
//                           analysis::Engine (memoized dataplane + matrix),
//                           then check — "continuous verification after
//                           every action"; benchmarked in
//                           ablation_verification.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/engine.hpp"
#include "dataplane/reachability.hpp"
#include "spec/policy.hpp"

namespace heimdall::spec {

/// One violated policy with an explanation.
struct Violation {
  Policy policy;
  std::string detail;
};

/// Outcome of verifying a policy set.
struct VerificationReport {
  std::size_t checked = 0;
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }

  /// Ids of violated policies, sorted.
  std::vector<std::string> violated_ids() const;
};

/// Verifies policies against a network + dataplane snapshot.
class PolicyVerifier {
 public:
  explicit PolicyVerifier(std::vector<Policy> policies);

  /// Same, but with explicit engine tuning (benchmarks disable the memo
  /// cache this way to measure honest recompute cost).
  PolicyVerifier(std::vector<Policy> policies, analysis::Options engine_options);

  const std::vector<Policy>& policies() const { return policies_; }

  /// Checks every policy against a precomputed reachability result — the
  /// dense matrix or the sharded fabric-scale representation, through the
  /// common view interface.
  VerificationReport verify(const dp::ReachabilityView& view) const;

  /// Delta verification: re-checks only the policies whose (src,dst) matrix
  /// cell is in `snapshot.retraced_pairs` and splices every other verdict
  /// from `base_report`. Produces a report identical to
  /// verify(*snapshot.reachability).
  ///
  /// Contract: `base_report` must be this verifier's verify() result for
  /// the base matrix that `snapshot` was incrementally derived from. When
  /// the snapshot has no retraced set (full recompute / memo hit) or
  /// carries the sharded representation (no dense pair indices), this
  /// falls back to a full verify() over the snapshot's view.
  VerificationReport verify_incremental(const analysis::Snapshot& snapshot,
                                        const VerificationReport& base_report) const;

  /// Analyzes `network` (dataplane + matrix) through the verifier's
  /// analysis engine, then checks. Repeated calls on an unchanged network
  /// hit the engine's memo instead of recomputing the pipeline.
  VerificationReport verify_network(const net::Network& network) const;

  /// The engine backing verify_network(). Copies of a verifier share one
  /// engine, so e.g. the enforcer's per-session verifiers pool their cache.
  analysis::Engine& engine() const { return *engine_; }

 private:
  void check_policy(const Policy& policy, const dp::ReachabilityView& view,
                    VerificationReport& report) const;

  std::vector<Policy> policies_;
  /// (src,dst) -> indices into policies_ reading that matrix cell; lets a
  /// delta verification touch only policies over recomputed pairs.
  std::map<std::pair<net::DeviceId, net::DeviceId>, std::vector<std::size_t>> pair_index_;
  std::shared_ptr<analysis::Engine> engine_;
};

}  // namespace heimdall::spec
