// Policy verification: checks a policy set against a network snapshot.
//
// Two entry points mirror the paper's two verification strategies:
//   * verify(matrix)      — check against a precomputed reachability matrix
//                           (the enforcer's final-changeset verification);
//   * verify_network(net) — recompute dataplane + matrix, then check (what
//                           "continuous verification after every action"
//                           costs; benchmarked in ablation_verification).
#pragma once

#include <string>
#include <vector>

#include "dataplane/reachability.hpp"
#include "spec/policy.hpp"

namespace heimdall::spec {

/// One violated policy with an explanation.
struct Violation {
  Policy policy;
  std::string detail;
};

/// Outcome of verifying a policy set.
struct VerificationReport {
  std::size_t checked = 0;
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }

  /// Ids of violated policies, sorted.
  std::vector<std::string> violated_ids() const;
};

/// Verifies policies against a network + dataplane snapshot.
class PolicyVerifier {
 public:
  explicit PolicyVerifier(std::vector<Policy> policies);

  const std::vector<Policy>& policies() const { return policies_; }

  /// Checks every policy against a precomputed matrix.
  VerificationReport verify(const dp::ReachabilityMatrix& matrix) const;

  /// Recomputes the dataplane and matrix for `network`, then checks. This is
  /// the expensive full pipeline.
  VerificationReport verify_network(const net::Network& network) const;

 private:
  std::vector<Policy> policies_;
};

}  // namespace heimdall::spec
