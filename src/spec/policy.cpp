#include "spec/policy.hpp"

namespace heimdall::spec {

std::string to_string(PolicyType type) {
  switch (type) {
    case PolicyType::Reachability: return "reach";
    case PolicyType::Isolation: return "isolate";
    case PolicyType::Waypoint: return "waypoint";
  }
  return "reach";
}

std::string Policy::id() const {
  std::string out = spec::to_string(type) + "(" + src.str() + "," + dst.str();
  if (type == PolicyType::Waypoint) out += "," + waypoint.str();
  out += ")";
  return out;
}

std::string Policy::to_string() const {
  switch (type) {
    case PolicyType::Reachability:
      return src.str() + " must reach " + dst.str();
    case PolicyType::Isolation:
      return src.str() + " must not reach " + dst.str();
    case PolicyType::Waypoint:
      return src.str() + " -> " + dst.str() + " must traverse " + waypoint.str();
  }
  return id();
}

}  // namespace heimdall::spec
