// config2spec-style policy mining: derive the policy set from a known-good
// network snapshot. Reachable host pairs become Reachability policies;
// pairs blocked *intentionally* (by an ACL) become Isolation policies; pairs
// that merely lack routes are not promoted to policy (they carry no intent).
#pragma once

#include <vector>

#include "dataplane/reachability.hpp"
#include "spec/policy.hpp"

namespace heimdall::spec {

struct MineOptions {
  bool include_reachability = true;
  bool include_isolation = true;
  /// Also mine waypoint policies for reachable pairs whose path crosses one
  /// of these devices.
  std::vector<net::DeviceId> waypoint_candidates;
  /// Hard cap on the number of mined policies (0 = unlimited) — the
  /// "policy budget" an enterprise pins. Intent-bearing policies (isolation,
  /// waypoint) are kept preferentially; the remainder fills with
  /// reachability policies in deterministic order.
  std::size_t max_policies = 0;
};

/// Mines policies from an analyzed snapshot's reachability matrix (callers
/// obtain one through analysis::Engine, which memoizes the expensive
/// dataplane + all-pairs trace).
std::vector<Policy> mine_policies(const dp::ReachabilityMatrix& matrix,
                                  const MineOptions& options = {});

}  // namespace heimdall::spec
