#include "spec/mine.hpp"

#include <algorithm>

namespace heimdall::spec {

using namespace heimdall::net;
using dp::Disposition;

std::vector<Policy> mine_policies(const dp::ReachabilityMatrix& matrix,
                                  const MineOptions& options) {
  std::vector<Policy> out;

  for (const dp::PairReachability& pair : matrix.pairs()) {
    if (pair.reachable()) {
      if (options.include_reachability) {
        out.push_back(Policy{PolicyType::Reachability, pair.src, pair.dst, DeviceId{}});
      }
      for (const DeviceId& waypoint : options.waypoint_candidates) {
        if (std::find(pair.path.begin(), pair.path.end(), waypoint) != pair.path.end()) {
          out.push_back(Policy{PolicyType::Waypoint, pair.src, pair.dst, waypoint});
        }
      }
    } else if (options.include_isolation &&
               (pair.disposition == Disposition::DeniedInbound ||
                pair.disposition == Disposition::DeniedOutbound)) {
      out.push_back(Policy{PolicyType::Isolation, pair.src, pair.dst, DeviceId{}});
    }
  }

  if (options.max_policies != 0 && out.size() > options.max_policies) {
    // Keep intent-bearing policies (isolation/waypoint) first, then fill the
    // budget with reachability policies; deterministic within each class.
    std::stable_sort(out.begin(), out.end(), [](const Policy& a, const Policy& b) {
      auto rank = [](const Policy& p) { return p.type == PolicyType::Reachability ? 1 : 0; };
      if (rank(a) != rank(b)) return rank(a) < rank(b);
      return a < b;
    });
    out.resize(options.max_policies);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace heimdall::spec
