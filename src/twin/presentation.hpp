// Presentation-layer rendering helpers: what the technician's console/GUI
// shows about the (sliced) network. Text renderers live in the emulation
// layer's show commands; this adds exportable formats.
#pragma once

#include <string>

#include "netmodel/network.hpp"

namespace heimdall::twin {

/// Graphviz DOT rendering of a network's topology. Device shape encodes its
/// kind (router = ellipse, switch = box, host = plaintext); shutdown
/// interfaces render their links dashed.
std::string render_topology_dot(const net::Network& network);

/// Fixed-width text table of devices and their L3 addresses (the "inventory"
/// panel of the presentation layer).
std::string render_inventory(const net::Network& network);

}  // namespace heimdall::twin
