#include "twin/emulation.hpp"

#include <algorithm>

#include "config/parse.hpp"
#include "config/serialize.hpp"
#include "dataplane/trace.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace heimdall::twin {

using namespace heimdall::net;
using priv::Action;

EmulationLayer::EmulationLayer(Network network)
    : original_(network), startup_(network), current_(std::move(network)) {}

const dp::Dataplane& EmulationLayer::dataplane() {
  if (!snapshot_.valid() || !pending_.empty()) {
    obs::ScopedSpan span("twin.reanalyze", "twin",
                         {{"pending_changes", std::to_string(pending_.size())}});
    snapshot_ = engine_.analyze_dataplane(current_, snapshot_, pending_);
    pending_.clear();
  }
  return *snapshot_.dataplane;
}

void EmulationLayer::mark_dirty(const std::vector<cfg::ConfigChange>& changes) {
  pending_.insert(pending_.end(), changes.begin(), changes.end());
}

std::vector<cfg::ConfigChange> EmulationLayer::session_changes() const {
  return cfg::diff_networks(original_, current_);
}

CommandResult EmulationLayer::execute(const ParsedCommand& command) {
  try {
    return run(command);
  } catch (const util::Error& error) {
    return CommandResult{false, std::string("error: ") + error.what(), {}};
  }
}

CommandResult EmulationLayer::apply(cfg::ConfigChange change, std::string output) {
  cfg::apply_change(current_, change);
  pending_.push_back(change);
  return CommandResult{true, std::move(output), {std::move(change)}};
}

namespace {

std::string render_interfaces(const Device& device) {
  std::string out;
  for (const Interface& iface : device.interfaces()) {
    out += iface.id.str();
    if (iface.address) out += " " + iface.address->to_string();
    if (iface.mode == SwitchportMode::Access)
      out += " access-vlan " + std::to_string(iface.access_vlan);
    if (iface.mode == SwitchportMode::Trunk) out += " trunk";
    if (!iface.acl_in.empty()) out += " acl-in " + iface.acl_in;
    if (!iface.acl_out.empty()) out += " acl-out " + iface.acl_out;
    out += iface.shutdown ? " DOWN" : " UP";
    out += "\n";
  }
  return out;
}

std::string render_routes(const dp::Fib& fib) {
  std::string out;
  for (const dp::Route& route : fib.routes()) out += route.to_string() + "\n";
  if (out.empty()) out = "(no routes)\n";
  return out;
}

std::string render_acls(const Device& device) {
  std::string out;
  for (const Acl& acl : device.acls()) {
    out += "acl " + acl.name + "\n";
    for (std::size_t i = 0; i < acl.entries.size(); ++i)
      out += "  [" + std::to_string(i) + "] " + acl.entries[i].to_string() + "\n";
  }
  if (out.empty()) out = "(no acls)\n";
  return out;
}

std::string render_ospf(const Device& device, const dp::Dataplane& dataplane) {
  std::string out;
  if (!device.ospf()) return "(ospf not running)\n";
  const OspfProcess& ospf = *device.ospf();
  out += "process " + std::to_string(ospf.process_id) + "\n";
  for (const OspfNetwork& network : ospf.networks)
    out += "  network " + network.prefix.to_string() + " area " + std::to_string(network.area) +
           "\n";
  out += "neighbors:\n";
  for (const dp::OspfAdjacency& adjacency : dataplane.ospf_adjacencies()) {
    if (adjacency.a.device == device.id() || adjacency.b.device == device.id())
      out += "  " + adjacency.a.to_string() + " <-> " + adjacency.b.to_string() + " area " +
             std::to_string(adjacency.area) + "\n";
  }
  return out;
}

std::string render_vlans(const Device& device) {
  std::string out = "vlans:";
  for (VlanId vlan : device.vlans()) out += " " + std::to_string(vlan);
  out += "\n";
  return out;
}

std::string render_topology(const Network& network) {
  std::string out;
  for (const Device& device : network.devices())
    out += device.id().str() + " (" + to_string(device.kind()) + ")\n";
  for (const Link& link : network.topology().links()) out += link.to_string() + "\n";
  return out;
}

}  // namespace

CommandResult EmulationLayer::run(const ParsedCommand& command) {
  auto device_of = [&](const std::string& name) -> Device& {
    return current_.device(DeviceId(name));
  };

  switch (command.action) {
    // ---- Reads -----------------------------------------------------------
    case Action::ShowConfig:
      return {true, cfg::serialize_device(device_of(command.resource.device)), {}};
    case Action::ShowInterfaces:
      return {true, render_interfaces(device_of(command.resource.device)), {}};
    case Action::ShowRoutes:
      return {true, render_routes(dataplane().fib(DeviceId(command.resource.device))), {}};
    case Action::ShowAcls:
      return {true, render_acls(device_of(command.resource.device)), {}};
    case Action::ShowOspf: {
      const dp::Dataplane& snapshot = dataplane();
      return {true, render_ospf(device_of(command.resource.device), snapshot), {}};
    }
    case Action::ShowVlans:
      return {true, render_vlans(device_of(command.resource.device)), {}};
    case Action::ShowTopology:
      return {true, render_topology(current_), {}};
    case Action::Ping:
    case Action::Traceroute: {
      DeviceId src(command.args.at(0));
      DeviceId dst(command.args.at(1));
      dp::TraceResult trace = dp::trace_hosts(current_, dataplane(), src, dst);
      std::string out = dp::to_string(trace.disposition);
      if (command.action == Action::Traceroute || !trace.delivered()) {
        out += " path:";
        for (const DeviceId& device : trace.path()) out += " " + device.str();
        if (!trace.detail.empty()) out += " (" + trace.detail + ")";
      }
      return {trace.delivered(), out + "\n", {}};
    }

    // ---- Interface mutations ----------------------------------------------
    case Action::InterfaceUp:
    case Action::InterfaceDown: {
      Device& device = device_of(command.resource.device);
      Interface& iface = device.interface(InterfaceId(command.resource.name));
      bool down = command.action == Action::InterfaceDown;
      if (iface.shutdown == down) return {true, "(no change)\n", {}};
      return apply(cfg::ConfigChange{device.id(),
                                     cfg::InterfaceAdminChange{iface.id, iface.shutdown, down}},
                   down ? "interface shutdown\n" : "interface up\n");
    }
    case Action::SetInterfaceAddress: {
      Device& device = device_of(command.resource.device);
      Interface& iface = device.interface(InterfaceId(command.resource.name));
      Ipv4Address ip = Ipv4Address::parse(command.args.at(0));
      Ipv4Prefix subnet = Ipv4Prefix::from_netmask(ip, Ipv4Address::parse(command.args.at(1)));
      InterfaceAddress address{ip, subnet.length()};
      return apply(cfg::ConfigChange{device.id(), cfg::InterfaceAddressChange{
                                                      iface.id, iface.address, address}},
                   "address set to " + address.to_string() + "\n");
    }
    case Action::BindAcl: {
      Device& device = device_of(command.resource.device);
      Interface& iface = device.interface(InterfaceId(command.resource.name));
      const std::string& acl_name = command.args.at(0);
      bool inbound = command.args.at(1) == "in";
      if (!acl_name.empty() && !device.find_acl(acl_name))
        return {false, "error: no such ACL '" + acl_name + "'\n", {}};
      std::string old_acl = inbound ? iface.acl_in : iface.acl_out;
      return apply(
          cfg::ConfigChange{device.id(),
                            cfg::InterfaceAclBindingChange{
                                iface.id, inbound ? cfg::AclDirection::In : cfg::AclDirection::Out,
                                old_acl, acl_name}},
          acl_name.empty() ? "access-group removed\n" : "access-group bound\n");
    }
    case Action::SetSwitchport: {
      Device& device = device_of(command.resource.device);
      Interface& iface = device.interface(InterfaceId(command.resource.name));
      auto vlan = static_cast<VlanId>(util::parse_uint(command.args.at(0), 4094));
      cfg::SwitchportChange change{iface.id,        iface.mode,  SwitchportMode::Access,
                                   iface.access_vlan, vlan,      iface.trunk_allowed,
                                   iface.trunk_allowed};
      return apply(cfg::ConfigChange{device.id(), change},
                   "switchport access vlan " + std::to_string(vlan) + "\n");
    }
    case Action::SetOspfCost: {
      Device& device = device_of(command.resource.device);
      Interface& iface = device.interface(InterfaceId(command.resource.name));
      auto cost = static_cast<unsigned>(util::parse_uint(command.args.at(0), 65535));
      return apply(cfg::ConfigChange{device.id(),
                                     cfg::OspfCostChange{iface.id, iface.ospf_cost, cost}},
                   "ospf cost " + std::to_string(cost) + "\n");
    }

    // ---- ACL mutations -----------------------------------------------------
    case Action::AclCreate: {
      Device& device = device_of(command.resource.device);
      if (device.find_acl(command.resource.name))
        return {false, "error: ACL exists\n", {}};
      Acl acl;
      acl.name = command.resource.name;
      return apply(cfg::ConfigChange{device.id(), cfg::AclCreate{acl}}, "acl created\n");
    }
    case Action::AclDelete: {
      Device& device = device_of(command.resource.device);
      if (!device.find_acl(command.resource.name))
        return {false, "error: no such ACL\n", {}};
      return apply(cfg::ConfigChange{device.id(), cfg::AclDelete{command.resource.name}},
                   "acl deleted\n");
    }
    case Action::AclEdit: {
      Device& device = device_of(command.resource.device);
      Acl* acl = device.find_acl(command.resource.name);
      if (!acl) return {false, "error: no such ACL '" + command.resource.name + "'\n", {}};
      if (!command.args.empty() && command.args[0] == "remove") {
        auto index = static_cast<std::size_t>(util::parse_uint(command.args.at(1), 1000000));
        if (index >= acl->entries.size()) return {false, "error: index out of range\n", {}};
        return apply(cfg::ConfigChange{device.id(), cfg::AclEntryRemove{acl->name, index,
                                                                        acl->entries[index]}},
                     "entry removed\n");
      }
      // add [<index>] <entry...>
      std::size_t first = 0;
      std::size_t index = acl->entries.size();
      if (!command.args.empty() && !command.args[0].empty() &&
          std::all_of(command.args[0].begin(), command.args[0].end(),
                      [](char c) { return c >= '0' && c <= '9'; })) {
        index = static_cast<std::size_t>(util::parse_uint(command.args[0], 1000000));
        first = 1;
      }
      if (index > acl->entries.size()) return {false, "error: index out of range\n", {}};
      std::vector<std::string> entry_tokens(command.args.begin() +
                                                static_cast<std::ptrdiff_t>(first),
                                            command.args.end());
      AclEntry entry = cfg::parse_acl_entry(util::join(entry_tokens, " "));
      return apply(cfg::ConfigChange{device.id(), cfg::AclEntryAdd{acl->name, index, entry}},
                   "entry added at " + std::to_string(index) + "\n");
    }

    // ---- Routing mutations --------------------------------------------------
    case Action::StaticRouteAdd:
    case Action::StaticRouteRemove: {
      Device& device = device_of(command.resource.device);
      StaticRoute route;
      route.prefix = Ipv4Prefix::from_netmask(Ipv4Address::parse(command.args.at(0)),
                                              Ipv4Address::parse(command.args.at(1)));
      route.next_hop = Ipv4Address::parse(command.args.at(2));
      bool adding = command.action == Action::StaticRouteAdd;
      const auto& routes = device.static_routes();
      bool present = std::find(routes.begin(), routes.end(), route) != routes.end();
      if (adding && present) return {false, "error: route already present\n", {}};
      if (!adding && !present) return {false, "error: route not present\n", {}};
      if (adding)
        return apply(cfg::ConfigChange{device.id(), cfg::StaticRouteAdd{route}}, "route added\n");
      return apply(cfg::ConfigChange{device.id(), cfg::StaticRouteRemove{route}},
                   "route removed\n");
    }
    case Action::OspfNetworkEdit: {
      Device& device = device_of(command.resource.device);
      if (!device.ospf()) return {false, "error: ospf not running\n", {}};
      OspfNetwork network;
      Ipv4Address address = Ipv4Address::parse(command.args.at(1));
      Ipv4Address wildcard = Ipv4Address::parse(command.args.at(2));
      network.prefix = Ipv4Prefix::from_netmask(address, Ipv4Address(~wildcard.value()));
      network.area = static_cast<unsigned>(util::parse_uint(command.args.at(3), 4294967294UL));
      bool adding = command.args.at(0) == "network-add";
      const auto& networks = device.ospf()->networks;
      bool present = std::find(networks.begin(), networks.end(), network) != networks.end();
      if (adding && present) return {false, "error: network statement already present\n", {}};
      if (!adding && !present) return {false, "error: network statement not present\n", {}};
      if (adding)
        return apply(cfg::ConfigChange{device.id(), cfg::OspfNetworkAdd{network}},
                     "ospf network added\n");
      return apply(cfg::ConfigChange{device.id(), cfg::OspfNetworkRemove{network}},
                   "ospf network removed\n");
    }
    case Action::OspfProcessEdit:
      return {false, "error: ospf process edits are not exposed via the console\n", {}};
    case Action::VlanEdit: {
      Device& device = device_of(command.resource.device);
      auto vlan = static_cast<VlanId>(util::parse_uint(command.args.at(1), 4094));
      bool adding = command.args.at(0) == "add";
      bool present = device.has_vlan(vlan);
      if (adding && present) return {false, "error: vlan already declared\n", {}};
      if (!adding && !present) return {false, "error: vlan not declared\n", {}};
      if (adding)
        return apply(cfg::ConfigChange{device.id(), cfg::VlanDeclare{vlan}}, "vlan declared\n");
      return apply(cfg::ConfigChange{device.id(), cfg::VlanRemove{vlan}}, "vlan removed\n");
    }

    // ---- High-impact ---------------------------------------------------------
    case Action::ChangeSecret: {
      Device& device = device_of(command.resource.device);
      const std::string& field = command.args.at(0);
      DeviceSecrets& secrets = device.secrets();
      std::string* target = field == "enable_password"  ? &secrets.enable_password
                            : field == "snmp_community" ? &secrets.snmp_community
                            : field == "ipsec_key"      ? &secrets.ipsec_key
                                                        : nullptr;
      if (!target) return {false, "error: unknown secret field '" + field + "'\n", {}};
      *target = command.args.at(1);
      cfg::ConfigChange change{device.id(), cfg::SecretChange{field}};
      pending_.push_back(change);
      return {true, "secret changed\n", {std::move(change)}};
    }
    case Action::Reboot: {
      // A reboot reloads the device's *startup* configuration: unsaved
      // running-config changes are lost — exactly why the paper notes that
      // "rebooting a router may temporarily violate reachability" and why
      // continuous verification false-alarms on it.
      Device& device = device_of(command.resource.device);
      const Device* saved = startup_.find_device(device.id());
      if (!saved) return {false, "error: no startup config for device\n", {}};
      std::vector<cfg::ConfigChange> reverted = cfg::diff_devices(device, *saved);
      device = *saved;
      mark_dirty(reverted);
      return {true,
              "device reloaded from startup-config (" + std::to_string(reverted.size()) +
                  " unsaved change(s) lost)\n",
              std::move(reverted)};
    }
    case Action::EraseConfig: {
      // The careless-technician scenario (paper Figure 3): wipes ACLs,
      // routes, OSPF and shuts every interface.
      Device& device = device_of(command.resource.device);
      std::vector<cfg::ConfigChange> changes;
      for (const Interface& iface : device.interfaces()) {
        if (!iface.shutdown)
          changes.push_back(
              {device.id(), cfg::InterfaceAdminChange{iface.id, false, true}});
      }
      for (const Acl& acl : device.acls())
        changes.push_back({device.id(), cfg::AclDelete{acl.name}});
      for (const StaticRoute& route : device.static_routes())
        changes.push_back({device.id(), cfg::StaticRouteRemove{route}});
      if (device.ospf())
        changes.push_back({device.id(), cfg::OspfProcessChange{device.ospf(), std::nullopt}});
      for (const cfg::ConfigChange& change : changes) cfg::apply_change(current_, change);
      mark_dirty(changes);
      return {true, "configuration erased\n", std::move(changes)};
    }
    case Action::SaveConfig: {
      // copy running-config -> startup-config for this device.
      Device& device = device_of(command.resource.device);
      Device* saved = startup_.find_device(device.id());
      if (!saved) return {false, "error: no startup config slot for device\n", {}};
      *saved = device;
      return {true, "configuration saved to startup-config\n", {}};
    }
  }
  return {false, "error: unhandled action\n", {}};
}

}  // namespace heimdall::twin
