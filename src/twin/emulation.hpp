// Emulation layer of the twin network (paper §4.2, Figure 5d).
//
// Holds the (scrubbed, sliced) network state, interprets mediated commands
// against it, and keeps an analyzed dataplane snapshot through the analysis
// engine — the in-process equivalent of re-converging an emulated network.
// Mutations record their semantic changes so the engine can recompute
// incrementally (a static-route edit rebuilds one FIB; an ACL edit reuses
// the dataplane outright; secrets cost nothing).
#pragma once

#include <string>
#include <vector>

#include "analysis/engine.hpp"
#include "config/diff.hpp"
#include "dataplane/dataplane.hpp"
#include "twin/console.hpp"

namespace heimdall::twin {

/// Outcome of executing one command.
struct CommandResult {
  bool ok = false;
  std::string output;
  /// Semantic changes the command performed (empty for reads/failures).
  std::vector<cfg::ConfigChange> changes;
};

/// The twin's emulated network.
class EmulationLayer {
 public:
  /// Takes ownership of the (already sliced and scrubbed) network.
  explicit EmulationLayer(net::Network network);

  const net::Network& network() const { return current_; }

  /// The pristine snapshot taken at construction (diff baseline).
  const net::Network& original() const { return original_; }

  /// The startup configuration (what `save` persists and `reboot` restores).
  const net::Network& startup() const { return startup_; }

  /// Current dataplane; analyzed lazily (and incrementally) after mutations.
  const dp::Dataplane& dataplane();

  /// Executes a (previously authorized) command. Never throws for semantic
  /// errors — they come back as ok=false with an explanatory output.
  CommandResult execute(const ParsedCommand& command);

  /// Semantic diff between the original snapshot and the current state:
  /// everything the technician changed this session.
  std::vector<cfg::ConfigChange> session_changes() const;

  /// Number of dataplane recomputations performed (benchmark statistic).
  /// Sessions whose mutations stay on the engine's no-op path (secrets) or
  /// hit its memo (tweak/undo) recompute less than they mutate.
  std::size_t recompute_count() const { return engine_.stats().recompute_count(); }

  /// The analysis engine backing this emulation (cache/retrace statistics).
  const analysis::Engine& engine() const { return engine_; }

 private:
  CommandResult run(const ParsedCommand& command);
  CommandResult apply(cfg::ConfigChange change, std::string output);
  /// Records changes applied to `current_` since the last analyzed snapshot,
  /// so the next dataplane() access can recompute incrementally.
  void mark_dirty(const std::vector<cfg::ConfigChange>& changes);

  net::Network original_;
  net::Network startup_;
  net::Network current_;
  analysis::Engine engine_;
  analysis::Snapshot snapshot_;
  std::vector<cfg::ConfigChange> pending_;
};

}  // namespace heimdall::twin
