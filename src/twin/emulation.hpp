// Emulation layer of the twin network (paper §4.2, Figure 5d).
//
// Holds the (scrubbed, sliced) network state, interprets mediated commands
// against it, and keeps a dataplane snapshot that is recomputed after each
// mutation — the in-process equivalent of re-converging an emulated network.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "config/diff.hpp"
#include "dataplane/dataplane.hpp"
#include "twin/console.hpp"

namespace heimdall::twin {

/// Outcome of executing one command.
struct CommandResult {
  bool ok = false;
  std::string output;
  /// Semantic changes the command performed (empty for reads/failures).
  std::vector<cfg::ConfigChange> changes;
};

/// The twin's emulated network.
class EmulationLayer {
 public:
  /// Takes ownership of the (already sliced and scrubbed) network.
  explicit EmulationLayer(net::Network network);

  const net::Network& network() const { return current_; }

  /// The pristine snapshot taken at construction (diff baseline).
  const net::Network& original() const { return original_; }

  /// The startup configuration (what `save` persists and `reboot` restores).
  const net::Network& startup() const { return startup_; }

  /// Current dataplane; recomputed lazily after mutations.
  const dp::Dataplane& dataplane();

  /// Executes a (previously authorized) command. Never throws for semantic
  /// errors — they come back as ok=false with an explanatory output.
  CommandResult execute(const ParsedCommand& command);

  /// Semantic diff between the original snapshot and the current state:
  /// everything the technician changed this session.
  std::vector<cfg::ConfigChange> session_changes() const;

  /// Number of dataplane recomputations performed (benchmark statistic).
  std::size_t recompute_count() const { return recompute_count_; }

 private:
  CommandResult run(const ParsedCommand& command);
  CommandResult apply(cfg::ConfigChange change, std::string output);
  void invalidate();

  net::Network original_;
  net::Network startup_;
  net::Network current_;
  std::optional<dp::Dataplane> dataplane_;
  std::size_t recompute_count_ = 0;
};

}  // namespace heimdall::twin
