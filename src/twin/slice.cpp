#include "twin/slice.hpp"

#include "dataplane/trace.hpp"

namespace heimdall::twin {

using namespace heimdall::net;

std::string to_string(SliceStrategy strategy) {
  switch (strategy) {
    case SliceStrategy::All: return "all";
    case SliceStrategy::Neighbor: return "neighbor";
    case SliceStrategy::TaskDriven: return "task-driven";
  }
  return "task-driven";
}

namespace {

void note(Slice& slice, const DeviceId& device, const std::string& why) {
  if (slice.devices.insert(device).second)
    slice.rationale += device.str() + ": " + why + "\n";
}

}  // namespace

Slice compute_slice(const Network& production, const dp::Dataplane& dataplane,
                    const msp::Ticket& ticket, SliceStrategy strategy) {
  Slice slice;
  slice.strategy = strategy;

  if (strategy == SliceStrategy::All) {
    for (const Device& device : production.devices())
      note(slice, device.id(), "all-nodes strategy");
    return slice;
  }

  for (const DeviceId& device : ticket.affected) {
    if (production.has_device(device)) note(slice, device, "named in ticket");
  }

  if (strategy == SliceStrategy::Neighbor) {
    for (const DeviceId& device : ticket.affected) {
      for (const DeviceId& neighbor : production.topology().neighbors(device))
        note(slice, neighbor, "physical neighbor of " + device.str());
    }
    return slice;
  }

  // TaskDriven.
  // 1. Physical shortest paths between every affected pair: these are the
  //    devices that *should* carry the traffic, so the root cause of a
  //    connectivity issue lies on (or adjacent to) them.
  for (std::size_t i = 0; i < ticket.affected.size(); ++i) {
    for (std::size_t j = i + 1; j < ticket.affected.size(); ++j) {
      const DeviceId& a = ticket.affected[i];
      const DeviceId& b = ticket.affected[j];
      if (!production.has_device(a) || !production.has_device(b)) continue;
      for (const DeviceId& device : production.topology().devices_on_shortest_paths(a, b))
        note(slice, device, "on shortest path " + a.str() + " <-> " + b.str());
    }
  }

  // 2. Devices the current (possibly broken) forwarding actually touches —
  //    including the device where traffic dies, which is a prime root-cause
  //    candidate.
  std::set<DeviceId> failure_points;
  for (std::size_t i = 0; i < ticket.affected.size(); ++i) {
    for (std::size_t j = 0; j < ticket.affected.size(); ++j) {
      if (i == j) continue;
      const DeviceId& src = ticket.affected[i];
      const DeviceId& dst = ticket.affected[j];
      if (!production.has_device(src) || !production.has_device(dst)) continue;
      if (!production.primary_ip(src) || !production.primary_ip(dst)) continue;
      dp::TraceResult trace = dp::trace_hosts(production, dataplane, src, dst);
      for (const DeviceId& device : trace.path())
        note(slice, device, "on live forwarding path " + src.str() + " -> " + dst.str());
      if (!trace.delivered() && !trace.last_device.empty()) {
        note(slice, trace.last_device,
             "traffic dies here (" + dp::to_string(trace.disposition) + ")");
        // Control-plane dependencies only matter when routes are missing;
        // local failures (ACL drop, dead port, unresolved next hop) are
        // diagnosable without the failure point's routing peers.
        if (trace.disposition == dp::Disposition::NoRoute ||
            trace.disposition == dp::Disposition::Loop) {
          failure_points.insert(trace.last_device);
        }
      }
    }
  }

  // 3. Control-plane dependencies around the failure points: the OSPF
  //    neighbors of the device where traffic dies feed the routes it acts
  //    on, so hiding them could reproduce a different failure (paper:
  //    "missing a relevant element could yield a different failure
  //    scenario"). Scoped to the failure points — not every path router —
  //    to keep the slice minimal on dense topologies.
  for (const dp::OspfAdjacency& adjacency : dataplane.ospf_adjacencies()) {
    if (failure_points.count(adjacency.a.device))
      note(slice, adjacency.b.device, "ospf neighbor of failure point " + adjacency.a.device.str());
    if (failure_points.count(adjacency.b.device))
      note(slice, adjacency.a.device, "ospf neighbor of failure point " + adjacency.b.device.str());
  }

  return slice;
}

Network materialize_slice(const Network& production, const Slice& slice) {
  Network out(production.name() + "-twin");
  for (const Device& device : production.devices()) {
    if (slice.contains(device.id())) out.add_device(device);
  }
  for (const Link& link : production.topology().links()) {
    if (slice.contains(link.a.device) && slice.contains(link.b.device))
      out.topology().add_link(link);
  }
  return out;
}

}  // namespace heimdall::twin
