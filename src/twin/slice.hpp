// Twin-network slicing: which production devices become visible inside the
// twin (paper §4.2 / Figure 5).
//
// Three strategies, matching the paper's evaluation:
//   * All        — clone everything (Figure 5b): feasible, maximal exposure.
//   * Neighbor   — affected devices + their physical neighbors (Figure 5c):
//                  minimal exposure, often infeasible (root cause missing).
//   * TaskDriven — Heimdall's minimal-but-sufficient slice: the affected
//                  devices, every device on any physical shortest path
//                  between affected pairs, the devices the *current* (broken)
//                  forwarding actually touches, and one hop of control-plane
//                  dependencies (OSPF neighbors of routers in the slice).
#pragma once

#include <set>
#include <string>

#include "dataplane/dataplane.hpp"
#include "msp/ticket.hpp"
#include "netmodel/network.hpp"

namespace heimdall::twin {

enum class SliceStrategy : std::uint8_t { All, Neighbor, TaskDriven };

std::string to_string(SliceStrategy strategy);

/// The computed slice.
struct Slice {
  SliceStrategy strategy = SliceStrategy::TaskDriven;
  std::set<net::DeviceId> devices;
  /// Per-device notes on why each entered the slice (audit/readability).
  std::string rationale;

  bool contains(const net::DeviceId& device) const { return devices.count(device) != 0; }
};

/// Computes the visible device set for `ticket` under `strategy`.
Slice compute_slice(const net::Network& production, const dp::Dataplane& dataplane,
                    const msp::Ticket& ticket, SliceStrategy strategy);

/// Builds the sliced network: the devices in `slice`, plus only the links
/// whose both endpoints are visible.
net::Network materialize_slice(const net::Network& production, const Slice& slice);

}  // namespace heimdall::twin
