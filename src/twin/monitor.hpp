// Reference monitor: mediates every request crossing from the presentation
// layer to the emulation layer (paper §4.2, Figure 5d). No command reaches
// the emulated network without an explicit Privilege_msp decision, and every
// decision is recorded in the session log.
#pragma once

#include <string>
#include <vector>

#include "privilege/spec.hpp"
#include "twin/emulation.hpp"
#include "util/json.hpp"

namespace heimdall::twin {

/// One mediated request and its outcome.
struct MediatedAction {
  std::string raw;
  priv::Action action = priv::Action::ShowConfig;
  priv::Resource resource;
  bool permitted = false;
  std::string decision_reason;
  bool executed_ok = false;  ///< meaningful when permitted
};

/// The monitor. Owns nothing but the privilege spec reference semantics:
/// it holds a copy so later escalations must go through update_privileges().
class ReferenceMonitor {
 public:
  explicit ReferenceMonitor(priv::PrivilegeSpec privileges)
      : privileges_(std::move(privileges)) {}

  const priv::PrivilegeSpec& privileges() const { return privileges_; }

  /// Replaces the spec (after an escalation grant).
  void update_privileges(priv::PrivilegeSpec privileges) {
    privileges_ = std::move(privileges);
  }

  priv::PrivilegeSpec& mutable_privileges() { return privileges_; }

  /// Checks `command` against the Privilege_msp; executes it on `emulation`
  /// only when permitted. Always appends to the session log.
  CommandResult mediate(EmulationLayer& emulation, const ParsedCommand& command);

  const std::vector<MediatedAction>& session_log() const { return session_log_; }

  /// Denied requests so far (attack-surface telemetry).
  std::size_t denied_count() const;

  /// Exports the session log as JSON (one record per mediated command) for
  /// hand-off to the enterprise's review tooling.
  util::Json session_to_json() const;

 private:
  priv::PrivilegeSpec privileges_;
  std::vector<MediatedAction> session_log_;
};

}  // namespace heimdall::twin
