#include "twin/monitor.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace heimdall::twin {

CommandResult ReferenceMonitor::mediate(EmulationLayer& emulation, const ParsedCommand& command) {
  obs::ScopedSpan span("twin.mediate", "twin",
                       {{"action", priv::to_string(command.action)}});
  obs::Registry::global().counter("twin.commands_mediated").add();
  priv::Decision decision = privileges_.evaluate(command.action, command.resource);

  MediatedAction record;
  record.raw = command.raw;
  record.action = command.action;
  record.resource = command.resource;
  record.permitted = decision.allowed;
  record.decision_reason = decision.reason;

  if (!decision.allowed) {
    obs::Registry::global().counter("twin.commands_denied").add();
    span.arg("decision", "denied");
    session_log_.push_back(std::move(record));
    return CommandResult{false,
                         "DENIED by Privilege_msp: " + priv::to_string(command.action) + " @ " +
                             command.resource.to_string() + " (" + decision.reason + ")\n",
                         {}};
  }

  CommandResult result = emulation.execute(command);
  record.executed_ok = result.ok;
  session_log_.push_back(std::move(record));
  return result;
}

util::Json ReferenceMonitor::session_to_json() const {
  util::Json array{util::JsonArray{}};
  for (const MediatedAction& action : session_log_) {
    util::Json item;
    item.set("command", util::Json(action.raw));
    item.set("action", util::Json(priv::to_string(action.action)));
    item.set("resource", util::Json(action.resource.to_string()));
    item.set("permitted", util::Json(action.permitted));
    item.set("decision", util::Json(action.decision_reason));
    if (action.permitted) item.set("executed_ok", util::Json(action.executed_ok));
    array.push_back(std::move(item));
  }
  util::Json document;
  document.set("session", std::move(array));
  return document;
}

std::size_t ReferenceMonitor::denied_count() const {
  return static_cast<std::size_t>(
      std::count_if(session_log_.begin(), session_log_.end(),
                    [](const MediatedAction& a) { return !a.permitted; }));
}

}  // namespace heimdall::twin
