#include "twin/presentation.hpp"

#include <cstdio>

#include "obs/log.hpp"

namespace heimdall::twin {

using namespace heimdall::net;

std::string render_topology_dot(const Network& network) {
  std::string out = "graph \"" + network.name() + "\" {\n";
  out += "  layout=neato; overlap=false; splines=true;\n";
  for (const Device& device : network.devices()) {
    std::string shape = device.is_router() ? "ellipse" : device.is_switch() ? "box" : "plaintext";
    out += "  \"" + device.id().str() + "\" [shape=" + shape + "];\n";
  }
  for (const Link& link : network.topology().links()) {
    bool down = false;
    for (const Endpoint& endpoint : {link.a, link.b}) {
      const Device* device = network.find_device(endpoint.device);
      const Interface* iface = device ? device->find_interface(endpoint.iface) : nullptr;
      if (!device || !iface) {
        OBS_LOG(Warn) << "topology link references unknown endpoint " << endpoint.device.str()
                      << "/" << endpoint.iface.str() << " while rendering '" << network.name()
                      << "'";
      }
      if (iface && iface->shutdown) down = true;
    }
    out += "  \"" + link.a.device.str() + "\" -- \"" + link.b.device.str() + "\" [label=\"" +
           link.a.iface.str() + "|" + link.b.iface.str() + "\"" +
           (down ? ", style=dashed, color=red" : "") + "];\n";
  }
  out += "}\n";
  return out;
}

std::string render_inventory(const Network& network) {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof line, "%-10s %-8s %-22s %s\n", "device", "kind", "interface",
                "address");
  out += line;
  for (const Device& device : network.devices()) {
    bool first = true;
    for (const Interface& iface : device.interfaces()) {
      std::snprintf(line, sizeof line, "%-10s %-8s %-22s %s%s\n",
                    first ? device.id().str().c_str() : "",
                    first ? to_string(device.kind()).c_str() : "", iface.id.str().c_str(),
                    iface.address ? iface.address->to_string().c_str() : "-",
                    iface.shutdown ? " (down)" : "");
      out += line;
      first = false;
    }
    if (device.interfaces().empty()) {
      std::snprintf(line, sizeof line, "%-10s %-8s %-22s %s\n", device.id().str().c_str(),
                    to_string(device.kind()).c_str(), "-", "-");
      out += line;
    }
  }
  return out;
}

}  // namespace heimdall::twin
