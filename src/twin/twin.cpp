#include "twin/twin.hpp"

#include "config/serialize.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "privilege/generator.hpp"

namespace heimdall::twin {

using namespace heimdall::net;

namespace {

util::Sha256Digest config_fingerprint(const Device& device) {
  return util::Sha256::hash(cfg::serialize_device(device));
}

}  // namespace

TwinArtifacts build_twin_artifacts(const Network& production, const dp::Dataplane& dataplane,
                                   const msp::Ticket& ticket, SliceStrategy strategy) {
  obs::ScopedSpan span("twin.build_artifacts", "twin", {{"ticket", std::to_string(ticket.id)}});
  TwinArtifacts artifacts;
  artifacts.slice = compute_slice(production, dataplane, ticket, strategy);
  artifacts.sliced = materialize_slice(production, artifacts.slice);
  artifacts.scrubbed = scrub_network(artifacts.sliced);
  artifacts.privileges = priv::generate_privileges(artifacts.sliced, ticket.task);
  for (const DeviceId& device : artifacts.slice.devices) {
    artifacts.baseline[device] = config_fingerprint(production.device(device));
  }
  obs::Registry::global().counter("twin.secrets_scrubbed").add(artifacts.scrubbed);
  span.arg("slice_devices", std::to_string(artifacts.slice.devices.size()));
  return artifacts;
}

std::string ticket_content_hash(const msp::Ticket& ticket) {
  // Field separators guard against ambiguity ("ab"+"c" vs "a"+"bc"); the id
  // and state are excluded on purpose — they don't affect construction.
  std::string material = priv::to_string(ticket.task);
  material += '\x1f';
  material += ticket.description;
  material += '\x1f';
  for (const DeviceId& device : ticket.affected) {
    material += device.str();
    material += '\x1e';
  }
  material += '\x1f';
  if (ticket.flow) material += ticket.flow->to_string();
  return util::to_hex(util::Sha256::hash(material));
}

TwinNetwork TwinNetwork::create(const Network& production, const dp::Dataplane& dataplane,
                                const msp::Ticket& ticket, SliceStrategy strategy) {
  obs::ScopedSpan span("twin.create", "twin", {{"ticket", std::to_string(ticket.id)}});
  TwinArtifacts artifacts = build_twin_artifacts(production, dataplane, ticket, strategy);
  return instantiate(artifacts, ticket);
}

TwinNetwork TwinNetwork::instantiate(const TwinArtifacts& artifacts, const msp::Ticket& ticket) {
  obs::Registry::global().counter("twin.created").add();
  TwinNetwork twin(artifacts.slice, artifacts.scrubbed, artifacts.sliced, artifacts.privileges,
                   ticket);
  twin.baseline_ = artifacts.baseline;
  return twin;
}

TwinNetwork::TwinNetwork(Slice slice, std::size_t scrubbed, Network sliced,
                         priv::PrivilegeSpec privileges, msp::Ticket ticket)
    : slice_(std::move(slice)),
      scrubbed_(scrubbed),
      emulation_(std::move(sliced)),
      monitor_(std::move(privileges)),
      ticket_(std::move(ticket)) {}

CommandResult TwinNetwork::run(std::string_view command_line) {
  obs::ScopedSpan span("twin.command", "twin", {{"ticket", std::to_string(ticket_.id)}});
  ParsedCommand command = parse_command(command_line);
  return monitor_.mediate(emulation_, command);
}

std::vector<CommandResult> TwinNetwork::run_script(const std::vector<std::string>& commands) {
  std::vector<CommandResult> results;
  results.reserve(commands.size());
  for (const std::string& line : commands) results.push_back(run(line));
  return results;
}

priv::EscalationResult TwinNetwork::request_escalation(const priv::EscalationRequest& request,
                                                       bool admin_approved) {
  std::vector<DeviceId> devices(slice_.devices.begin(), slice_.devices.end());
  priv::EscalationPolicy policy(ticket_.task, devices);
  return policy.apply(monitor_.mutable_privileges(), request, admin_approved);
}

priv::EscalationResult TwinNetwork::request_escalation(const priv::EscalationRequest& request,
                                                       const priv::ApprovalCheck& approvals) {
  std::vector<DeviceId> devices(slice_.devices.begin(), slice_.devices.end());
  priv::EscalationPolicy policy(ticket_.task, devices);
  return policy.apply(monitor_.mutable_privileges(), request, approvals);
}

std::vector<cfg::ConfigChange> TwinNetwork::extract_changes() const {
  return emulation_.session_changes();
}

std::vector<DeviceId> TwinNetwork::conflicts_with(const Network& production) const {
  std::vector<DeviceId> conflicts;
  for (const auto& [device, fingerprint] : baseline_) {
    const Device* current = production.find_device(device);
    if (!current || config_fingerprint(*current) != fingerprint) conflicts.push_back(device);
  }
  return conflicts;
}

}  // namespace heimdall::twin
