// The technician console command language.
//
// The presentation layer accepts these commands; parsing classifies each as
// one privilege Action on one concrete Resource *before* anything executes,
// which is what lets the reference monitor mediate uniformly.
//
// Grammar (one command per line):
//   show config|interfaces|routes|acls|ospf|vlans <device>
//   show topology
//   ping <src-device> <dst-device>
//   traceroute <src-device> <dst-device>
//   interface <device> <iface> up|down
//   interface <device> <iface> address <ip> <netmask>
//   interface <device> <iface> access-group <acl> in|out
//   interface <device> <iface> no-access-group in|out
//   interface <device> <iface> switchport-access-vlan <vlan>
//   interface <device> <iface> ospf-cost <cost>
//   acl <device> <name> add [<index>] permit|deny <proto> <src> [<wild>] [ports] <dst> [<wild>] [ports]
//   acl <device> <name> remove <index>
//   acl <device> create <name>
//   acl <device> delete <name>
//   route <device> add|remove <network> <netmask> <next-hop>
//   ospf <device> network-add|network-remove <addr> <wildcard> area <n>
//   vlan <device> add|remove <vlan>
//   secret <device> <field> <value>        (high-impact; exists to be denied)
//   reboot <device>                        (high-impact)
//   erase <device>                         (high-impact)
//   save <device>
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "netmodel/acl.hpp"
#include "privilege/action.hpp"
#include "privilege/resource.hpp"

namespace heimdall::twin {

/// A parsed, classified command, ready for mediation.
struct ParsedCommand {
  std::string raw;
  priv::Action action = priv::Action::ShowConfig;
  priv::Resource resource;
  /// Remaining operands, already tokenized, interpreted by the emulation
  /// layer per action (e.g. the ACL entry text for acl-edit).
  std::vector<std::string> args;
};

/// Parses one console line. Throws util::ParseError on malformed input.
ParsedCommand parse_command(std::string_view line);

}  // namespace heimdall::twin
