// Sensitive-data scrubbing for the emulation layer (paper §4.2: cloned
// configs "can expose sensitive data (e.g., an IPSec key)").
#pragma once

#include <cstddef>
#include <string>

#include "netmodel/network.hpp"

namespace heimdall::twin {

/// The placeholder written over scrubbed fields.
inline constexpr const char* kScrubToken = "<redacted>";

/// Replaces every secret on `device` with kScrubToken. Returns how many
/// fields were scrubbed.
std::size_t scrub_device(net::Device& device);

/// Scrubs every device in `network`. Returns total fields scrubbed.
std::size_t scrub_network(net::Network& network);

/// True when `network` holds no real secrets (everything empty or scrubbed).
bool is_scrubbed(const net::Network& network);

}  // namespace heimdall::twin
