// TwinNetwork: the complete sandbox handed to an MSP technician.
//
// Construction pipeline (paper §4.2):
//   production network + ticket
//     -> compute slice (task-driven by default)
//     -> materialize + scrub secrets
//     -> generate task-scoped Privilege_msp
//     -> presentation layer (this class's run()) over a reference monitor
//        over the emulation layer.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "privilege/escalation.hpp"
#include "twin/monitor.hpp"
#include "twin/slice.hpp"
#include "twin/scrub.hpp"
#include "util/sha256.hpp"

namespace heimdall::twin {

/// Everything expensive about twin construction, split out from the twin
/// itself so it can be cached and re-instantiated. Building artifacts pays
/// for slicing, materialization, scrubbing, privilege generation and the
/// baseline fingerprints; instantiating a TwinNetwork from them is a plain
/// copy. The enforcement service caches artifacts keyed by
/// (production fingerprint, ticket_content_hash, strategy) so a pool of
/// sessions working equivalent tickets skips the redundant work.
struct TwinArtifacts {
  Slice slice;
  /// Sliced + scrubbed clone of production, ready to seed an emulation layer.
  net::Network sliced;
  std::size_t scrubbed = 0;
  priv::PrivilegeSpec privileges;
  /// Production config fingerprints of the slice devices at build time.
  std::map<net::DeviceId, util::Sha256Digest> baseline;
};

/// Runs the construction pipeline (slice -> materialize -> scrub ->
/// privileges -> fingerprints) without creating a session.
TwinArtifacts build_twin_artifacts(const net::Network& production, const dp::Dataplane& dataplane,
                                   const msp::Ticket& ticket,
                                   SliceStrategy strategy = SliceStrategy::TaskDriven);

/// SHA-256 over the ticket fields that determine twin construction (task,
/// description, affected devices, flow) — deliberately excluding the ticket
/// id and lifecycle state, so two tickets describing the same problem hash
/// alike and share cached artifacts.
std::string ticket_content_hash(const msp::Ticket& ticket);

class TwinNetwork {
 public:
  /// Builds the twin for `ticket`. The default strategy is Heimdall's
  /// task-driven slice; All/Neighbor exist for the baseline comparisons.
  static TwinNetwork create(const net::Network& production, const dp::Dataplane& dataplane,
                            const msp::Ticket& ticket,
                            SliceStrategy strategy = SliceStrategy::TaskDriven);

  /// Cheap instantiation from prebuilt (possibly cached) artifacts: copies
  /// the sliced network into a fresh emulation layer, no analysis work.
  static TwinNetwork instantiate(const TwinArtifacts& artifacts, const msp::Ticket& ticket);

  /// The slice metadata (visible devices + rationale).
  const Slice& slice() const { return slice_; }

  /// Scrubbed fields removed while cloning.
  std::size_t scrubbed_secret_count() const { return scrubbed_; }

  /// Presentation-layer entry point: parse, mediate, execute.
  CommandResult run(std::string_view command_line);

  /// Runs a whole script; stops at the first parse error, continues over
  /// denials and semantic failures (as a real session would).
  std::vector<CommandResult> run_script(const std::vector<std::string>& commands);

  /// Requests a privilege escalation mid-session.
  priv::EscalationResult request_escalation(const priv::EscalationRequest& request,
                                            bool admin_approved = false);

  /// Multi-party variant: a RequiresAdmin verdict extends the session's
  /// privileges only when `approvals` (the service's m-of-n check over the
  /// ticket content hash) is satisfied.
  priv::EscalationResult request_escalation(const priv::EscalationRequest& request,
                                            const priv::ApprovalCheck& approvals);

  /// Everything the technician changed, as semantic config changes relative
  /// to the slice snapshot (input to the policy enforcer).
  std::vector<cfg::ConfigChange> extract_changes() const;

  /// Staleness check before importing changes (paper §3: "it is also
  /// challenging to import changes into the production network"): returns
  /// the slice devices whose *production* configuration changed since this
  /// twin was created. A non-empty result means the session worked against
  /// a stale view and its changes need re-validation on a fresh twin.
  std::vector<net::DeviceId> conflicts_with(const net::Network& production) const;

  /// SHA-256 fingerprints of the slice devices' production configs taken at
  /// twin-creation time (basis of conflicts_with()).
  const std::map<net::DeviceId, util::Sha256Digest>& baseline_fingerprints() const {
    return baseline_;
  }

  const ReferenceMonitor& monitor() const { return monitor_; }
  EmulationLayer& emulation() { return emulation_; }
  const EmulationLayer& emulation() const { return emulation_; }
  const msp::Ticket& ticket() const { return ticket_; }
  const priv::PrivilegeSpec& privileges() const { return monitor_.privileges(); }

 private:
  TwinNetwork(Slice slice, std::size_t scrubbed, net::Network sliced,
              priv::PrivilegeSpec privileges, msp::Ticket ticket);

  Slice slice_;
  std::size_t scrubbed_ = 0;
  EmulationLayer emulation_;
  ReferenceMonitor monitor_;
  msp::Ticket ticket_;
  std::map<net::DeviceId, util::Sha256Digest> baseline_;
};

}  // namespace heimdall::twin
