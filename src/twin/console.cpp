#include "twin/console.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace heimdall::twin {

using namespace heimdall::net;
using priv::Action;
using priv::ObjectKind;
using priv::Resource;
using util::ParseError;

namespace {

[[noreturn]] void fail(std::string_view line, const std::string& why) {
  throw ParseError("bad command '" + std::string(line) + "': " + why);
}

void need(bool ok, std::string_view line, const std::string& why) {
  if (!ok) fail(line, why);
}

ParsedCommand parse_show(std::string_view line, const std::vector<std::string>& tokens) {
  ParsedCommand out;
  need(tokens.size() >= 2, line, "show requires a subcommand");
  const std::string& what = tokens[1];
  if (what == "topology") {
    out.action = Action::ShowTopology;
    out.resource = Resource{"*", ObjectKind::Device, ""};
    return out;
  }
  need(tokens.size() == 3, line, "show <what> <device>");
  DeviceId device(tokens[2]);
  if (what == "config")
    out.action = Action::ShowConfig;
  else if (what == "interfaces")
    out.action = Action::ShowInterfaces;
  else if (what == "routes")
    out.action = Action::ShowRoutes;
  else if (what == "acls")
    out.action = Action::ShowAcls;
  else if (what == "ospf")
    out.action = Action::ShowOspf;
  else if (what == "vlans")
    out.action = Action::ShowVlans;
  else
    fail(line, "unknown show subcommand '" + what + "'");
  out.resource = Resource::whole_device(device);
  return out;
}

ParsedCommand parse_interface(std::string_view line, const std::vector<std::string>& tokens) {
  ParsedCommand out;
  need(tokens.size() >= 4, line, "interface <device> <iface> <op> ...");
  DeviceId device(tokens[1]);
  InterfaceId iface(tokens[2]);
  const std::string& op = tokens[3];
  out.resource = Resource::interface(device, iface);
  if (op == "up") {
    need(tokens.size() == 4, line, "interface ... up takes no operands");
    out.action = Action::InterfaceUp;
  } else if (op == "down") {
    need(tokens.size() == 4, line, "interface ... down takes no operands");
    out.action = Action::InterfaceDown;
  } else if (op == "address") {
    need(tokens.size() == 6, line, "interface ... address <ip> <netmask>");
    out.action = Action::SetInterfaceAddress;
    out.args = {tokens[4], tokens[5]};
  } else if (op == "access-group") {
    need(tokens.size() == 6 && (tokens[5] == "in" || tokens[5] == "out"), line,
         "interface ... access-group <acl> in|out");
    out.action = Action::BindAcl;
    out.args = {tokens[4], tokens[5]};
  } else if (op == "no-access-group") {
    need(tokens.size() == 5 && (tokens[4] == "in" || tokens[4] == "out"), line,
         "interface ... no-access-group in|out");
    out.action = Action::BindAcl;
    out.args = {"", tokens[4]};
  } else if (op == "switchport-access-vlan") {
    need(tokens.size() == 5, line, "interface ... switchport-access-vlan <vlan>");
    out.action = Action::SetSwitchport;
    out.args = {tokens[4]};
  } else if (op == "ospf-cost") {
    need(tokens.size() == 5, line, "interface ... ospf-cost <cost>");
    out.action = Action::SetOspfCost;
    out.args = {tokens[4]};
  } else {
    fail(line, "unknown interface operation '" + op + "'");
  }
  return out;
}

ParsedCommand parse_acl(std::string_view line, const std::vector<std::string>& tokens) {
  ParsedCommand out;
  need(tokens.size() >= 4, line, "acl <device> <name|create|delete> ...");
  DeviceId device(tokens[1]);
  if (tokens[2] == "create") {
    need(tokens.size() == 4, line, "acl <device> create <name>");
    out.action = Action::AclCreate;
    out.resource = Resource::acl(device, tokens[3]);
    return out;
  }
  if (tokens[2] == "delete") {
    need(tokens.size() == 4, line, "acl <device> delete <name>");
    out.action = Action::AclDelete;
    out.resource = Resource::acl(device, tokens[3]);
    return out;
  }
  const std::string& name = tokens[2];
  const std::string& op = tokens[3];
  out.resource = Resource::acl(device, name);
  out.action = Action::AclEdit;
  if (op == "add") {
    need(tokens.size() >= 5, line, "acl ... add [<index>] <entry>");
    out.args.assign(tokens.begin() + 4, tokens.end());
  } else if (op == "remove") {
    need(tokens.size() == 5, line, "acl ... remove <index>");
    out.args = {"remove", tokens[4]};
  } else {
    fail(line, "unknown acl operation '" + op + "'");
  }
  return out;
}

}  // namespace

ParsedCommand parse_command(std::string_view line) {
  auto tokens = util::split_ws(line);
  if (tokens.empty()) throw ParseError("empty command");
  ParsedCommand out;

  const std::string& head = tokens[0];
  if (head == "show") {
    out = parse_show(line, tokens);
  } else if (head == "ping" || head == "traceroute") {
    need(tokens.size() == 3, line, head + " <src-device> <dst-device>");
    out.action = head == "ping" ? Action::Ping : Action::Traceroute;
    out.resource = Resource::whole_device(DeviceId(tokens[1]));
    out.args = {tokens[1], tokens[2]};
  } else if (head == "interface") {
    out = parse_interface(line, tokens);
  } else if (head == "acl") {
    out = parse_acl(line, tokens);
  } else if (head == "route") {
    need(tokens.size() == 6 && (tokens[2] == "add" || tokens[2] == "remove"), line,
         "route <device> add|remove <network> <netmask> <next-hop>");
    out.action = tokens[2] == "add" ? Action::StaticRouteAdd : Action::StaticRouteRemove;
    out.resource = Resource::routes(DeviceId(tokens[1]));
    out.args = {tokens[3], tokens[4], tokens[5]};
  } else if (head == "ospf") {
    need(tokens.size() == 7 && (tokens[2] == "network-add" || tokens[2] == "network-remove") &&
             tokens[5] == "area",
         line, "ospf <device> network-add|network-remove <addr> <wildcard> area <n>");
    out.action = Action::OspfNetworkEdit;
    out.resource = Resource::ospf(DeviceId(tokens[1]));
    out.args = {tokens[2], tokens[3], tokens[4], tokens[6]};
  } else if (head == "vlan") {
    need(tokens.size() == 4 && (tokens[2] == "add" || tokens[2] == "remove"), line,
         "vlan <device> add|remove <vlan>");
    out.action = Action::VlanEdit;
    out.resource = Resource::vlan(
        DeviceId(tokens[1]), static_cast<VlanId>(util::parse_uint(tokens[3], 4094)));
    out.args = {tokens[2], tokens[3]};
  } else if (head == "secret") {
    need(tokens.size() == 4, line, "secret <device> <field> <value>");
    out.action = Action::ChangeSecret;
    out.resource = Resource::secret(DeviceId(tokens[1]), tokens[2]);
    out.args = {tokens[2], tokens[3]};
  } else if (head == "reboot") {
    need(tokens.size() == 2, line, "reboot <device>");
    out.action = Action::Reboot;
    out.resource = Resource::whole_device(DeviceId(tokens[1]));
  } else if (head == "erase") {
    need(tokens.size() == 2, line, "erase <device>");
    out.action = Action::EraseConfig;
    out.resource = Resource::whole_device(DeviceId(tokens[1]));
  } else if (head == "save") {
    need(tokens.size() == 2, line, "save <device>");
    out.action = Action::SaveConfig;
    out.resource = Resource::whole_device(DeviceId(tokens[1]));
  } else {
    throw ParseError("unknown command '" + head + "'");
  }
  out.raw = std::string(line);
  return out;
}

}  // namespace heimdall::twin
