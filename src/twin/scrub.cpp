#include "twin/scrub.hpp"

namespace heimdall::twin {

using namespace heimdall::net;

std::size_t scrub_device(Device& device) {
  std::size_t count = 0;
  DeviceSecrets& secrets = device.secrets();
  auto scrub = [&count](std::string& field) {
    if (!field.empty() && field != kScrubToken) {
      field = kScrubToken;
      ++count;
    }
  };
  scrub(secrets.enable_password);
  scrub(secrets.snmp_community);
  scrub(secrets.ipsec_key);
  return count;
}

std::size_t scrub_network(Network& network) {
  std::size_t count = 0;
  for (Device& device : network.devices()) count += scrub_device(device);
  return count;
}

bool is_scrubbed(const Network& network) {
  for (const Device& device : network.devices()) {
    const DeviceSecrets& secrets = device.secrets();
    for (const std::string* field :
         {&secrets.enable_password, &secrets.snmp_community, &secrets.ipsec_key}) {
      if (!field->empty() && *field != kScrubToken) return false;
    }
  }
  return true;
}

}  // namespace heimdall::twin
