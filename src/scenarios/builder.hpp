// Shared construction helpers for the evaluation networks.
#pragma once

#include <string>
#include <vector>

#include "netmodel/network.hpp"

namespace heimdall::scen {

/// Creates a router with standard secrets (so the scrubber has work to do).
net::Device make_router(const std::string& name);

/// Creates a host device with a single NIC `eth0` at `ip`/`prefix_len`
/// and a default route via `gateway`.
net::Device make_host(const std::string& name, net::Ipv4Address ip, unsigned prefix_len,
                      net::Ipv4Address gateway);

/// Adds a routed point-to-point /30 between two existing routers. Interface
/// `if_a` on `a` gets `ip_a`, `if_b` on `b` gets `ip_b`; both /30.
void connect_routers(net::Network& network, const std::string& a, const std::string& if_a,
                     net::Ipv4Address ip_a, const std::string& b, const std::string& if_b,
                     net::Ipv4Address ip_b);

/// Adds a routed host port on `router` and wires `host` to it. The router
/// port gets `gateway_ip`/`prefix_len`.
void attach_host_routed(net::Network& network, const std::string& router,
                        const std::string& router_iface, net::Ipv4Address gateway_ip,
                        unsigned prefix_len, const std::string& host);

/// Adds an L2 access port on `router` (acting as L3 switch) in `vlan` and
/// wires `host` to it. Assumes the SVI Vlan<vlan> exists or will be added.
void attach_host_access(net::Network& network, const std::string& router,
                        const std::string& router_iface, net::VlanId vlan,
                        const std::string& host);

/// Adds an SVI ("interface Vlan<vlan>") with `ip`/`prefix_len` on `device`
/// and declares the VLAN.
void add_svi(net::Device& device, net::VlanId vlan, net::Ipv4Address ip, unsigned prefix_len);

/// Appends "network <subnet> area <area>" to the device's OSPF process,
/// creating the process (id 1) on first use.
void ospf_network(net::Device& device, const net::Ipv4Prefix& subnet, unsigned area = 0);

/// Adds `devices` to `network` in one pass. Network::add_device re-scans
/// the device vector per call for the duplicate check, which turns
/// fabric-scale host population quadratic; this does one combined pass.
void add_devices(net::Network& network, std::vector<net::Device> devices);

/// One access-port host attachment for attach_hosts_access.
struct AccessHost {
  std::string router_iface;  ///< new access port id on the router
  std::string host;          ///< host device name; gets eth0 at ip/prefix_len
  net::Ipv4Address ip;
  unsigned prefix_len = 24;
  net::Ipv4Address gateway;
};

/// Bulk form of make_host + add_device + attach_host_access for one VLAN:
/// resolves `router` once, appends every access port, adds every host via
/// add_devices, and wires the links directly — the one-at-a-time helpers
/// resolve ids by linear scan per call and are quadratic at fabric scale.
void attach_hosts_access(net::Network& network, const std::string& router, net::VlanId vlan,
                         const std::vector<AccessHost>& hosts);

}  // namespace heimdall::scen
