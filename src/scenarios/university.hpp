// The university evaluation network (paper Table 1: 13 routers, 17 hosts,
// 92 links, 175 policies).
//
// Layout: a densely meshed campus core of 13 routers (u1..u13 — every pair
// linked except three pruned pairs, giving 75 router links; plus 17 host
// links = 92). Hosts uh1..uh17 are spread across the routers; u1/u2 serve
// their two hosts through VLAN access ports + SVIs (L3-switch style), the
// rest through routed ports. The departmental server router u13 filters all
// inbound traffic with the "SEC_IN" ACL, and u12/u13's subnets live in OSPF
// area 1 behind ABRs (the rest of the campus is area 0).
#pragma once

#include <vector>

#include "scenarios/issues.hpp"
#include "spec/policy.hpp"

namespace heimdall::scen {

/// Number of policies the university pins (Table 1).
inline constexpr std::size_t kUniversityPolicyBudget = 175;

/// Builds the university production network. Deterministic.
net::Network build_university();

/// Mines the university policy set (capped at the Table 1 budget).
std::vector<spec::Policy> university_policies(const net::Network& network);

/// The three pilot-study issues: "vlan", "ospf", "isp".
std::vector<IssueSpec> university_issues();

/// Extra issue classes: "acl" (a stray deny on the department firewall) and
/// "route" (a blackhole static route pointing a server subnet at a host).
std::vector<IssueSpec> university_extended_issues();

}  // namespace heimdall::scen
