// Issue specifications: reproducible real-world problem classes (paper §5:
// an OSPF issue, an ISP reconfiguration, a VLAN issue) with their injection,
// the prepared fix command list, and a resolution check.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "msp/ticket.hpp"
#include "netmodel/network.hpp"

namespace heimdall::scen {

/// One injectable issue with everything the benches need.
struct IssueSpec {
  /// Short key: "vlan", "ospf", "isp".
  std::string key;
  msp::Ticket ticket;
  /// Breaks the production network (no-op for planned-change issues).
  std::function<void(net::Network&)> inject;
  /// The prepared command list the scripted technician runs (paper §5:
  /// "the technician performs a prepared list of commands to fix each
  /// issue").
  std::vector<std::string> fix_script;
  /// True when the network is healthy again (post-fix acceptance check).
  std::function<bool(const net::Network&)> resolved;
  /// The device whose configuration holds the root cause.
  net::DeviceId root_cause;
};

/// Convenience resolution check: both directions of a host pair deliver.
std::function<bool(const net::Network&)> pair_reachable_check(const std::string& a,
                                                              const std::string& b);

}  // namespace heimdall::scen
