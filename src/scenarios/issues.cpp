#include "scenarios/issues.hpp"

#include "dataplane/trace.hpp"

namespace heimdall::scen {

using namespace heimdall::net;

std::function<bool(const Network&)> pair_reachable_check(const std::string& a,
                                                         const std::string& b) {
  return [a, b](const Network& network) {
    dp::Dataplane dataplane = dp::Dataplane::compute(network);
    return dp::trace_hosts(network, dataplane, DeviceId(a), DeviceId(b)).delivered() &&
           dp::trace_hosts(network, dataplane, DeviceId(b), DeviceId(a)).delivered();
  };
}

}  // namespace heimdall::scen
