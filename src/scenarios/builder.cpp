#include "scenarios/builder.hpp"

#include <unordered_set>
#include <utility>

#include "util/error.hpp"

namespace heimdall::scen {

using namespace heimdall::net;

Device make_router(const std::string& name) {
  Device device(DeviceId(name), DeviceKind::Router);
  device.secrets().enable_password = "$1$" + name + "$f8AxVzzXqGx";
  device.secrets().snmp_community = "c0mmun1ty-" + name;
  device.secrets().ipsec_key = "psk-" + name + "-2481632";
  return device;
}

Device make_host(const std::string& name, Ipv4Address ip, unsigned prefix_len,
                 Ipv4Address gateway) {
  Device device(DeviceId(name), DeviceKind::Host);
  Interface nic;
  nic.id = InterfaceId("eth0");
  nic.address = InterfaceAddress{ip, prefix_len};
  device.add_interface(std::move(nic));
  StaticRoute route;
  route.prefix = default_route();
  route.next_hop = gateway;
  device.static_routes().push_back(route);
  return device;
}

void connect_routers(Network& network, const std::string& a, const std::string& if_a,
                     Ipv4Address ip_a, const std::string& b, const std::string& if_b,
                     Ipv4Address ip_b) {
  Device& device_a = network.device(DeviceId(a));
  Device& device_b = network.device(DeviceId(b));
  Interface iface_a;
  iface_a.id = InterfaceId(if_a);
  iface_a.description = "to " + b;
  iface_a.address = InterfaceAddress{ip_a, 30};
  device_a.add_interface(std::move(iface_a));
  Interface iface_b;
  iface_b.id = InterfaceId(if_b);
  iface_b.description = "to " + a;
  iface_b.address = InterfaceAddress{ip_b, 30};
  device_b.add_interface(std::move(iface_b));
  network.connect({DeviceId(a), InterfaceId(if_a)}, {DeviceId(b), InterfaceId(if_b)});
}

void attach_host_routed(Network& network, const std::string& router,
                        const std::string& router_iface, Ipv4Address gateway_ip,
                        unsigned prefix_len, const std::string& host) {
  Device& device = network.device(DeviceId(router));
  Interface iface;
  iface.id = InterfaceId(router_iface);
  iface.description = "to " + host;
  iface.address = InterfaceAddress{gateway_ip, prefix_len};
  device.add_interface(std::move(iface));
  network.connect({DeviceId(router), InterfaceId(router_iface)},
                  {DeviceId(host), InterfaceId("eth0")});
}

void attach_host_access(Network& network, const std::string& router,
                        const std::string& router_iface, VlanId vlan, const std::string& host) {
  Device& device = network.device(DeviceId(router));
  Interface iface;
  iface.id = InterfaceId(router_iface);
  iface.description = "to " + host;
  iface.mode = SwitchportMode::Access;
  iface.access_vlan = vlan;
  device.add_interface(std::move(iface));
  network.connect({DeviceId(router), InterfaceId(router_iface)},
                  {DeviceId(host), InterfaceId("eth0")});
}

void add_svi(Device& device, VlanId vlan, Ipv4Address ip, unsigned prefix_len) {
  if (!device.has_vlan(vlan)) device.vlans().push_back(vlan);
  Interface svi;
  svi.id = InterfaceId("Vlan" + std::to_string(vlan));
  svi.description = "SVI vlan " + std::to_string(vlan);
  svi.address = InterfaceAddress{ip, prefix_len};
  device.add_interface(std::move(svi));
}

void add_devices(Network& network, std::vector<Device> devices) {
  std::vector<Device>& existing = network.devices();
  std::unordered_set<std::string> ids;
  ids.reserve(existing.size() + devices.size());
  for (const Device& device : existing) ids.insert(device.id().str());
  existing.reserve(existing.size() + devices.size());
  for (Device& device : devices) {
    util::require(!device.id().empty(), "device must have an id");
    util::require(ids.insert(device.id().str()).second,
                  "duplicate device '" + device.id().str() + "'");
    existing.push_back(std::move(device));
  }
}

void attach_hosts_access(Network& network, const std::string& router, VlanId vlan,
                         const std::vector<AccessHost>& hosts) {
  {
    // Scope the reference: add_devices below may reallocate the vector.
    Device& device = network.device(DeviceId(router));
    for (const AccessHost& spec : hosts) {
      Interface iface;
      iface.id = InterfaceId(spec.router_iface);
      iface.description = "to " + spec.host;
      iface.mode = SwitchportMode::Access;
      iface.access_vlan = vlan;
      device.add_interface(std::move(iface));
    }
  }
  std::vector<Device> new_hosts;
  new_hosts.reserve(hosts.size());
  for (const AccessHost& spec : hosts)
    new_hosts.push_back(make_host(spec.host, spec.ip, spec.prefix_len, spec.gateway));
  add_devices(network, std::move(new_hosts));
  // The endpoints were just created above; skip connect()'s per-link device
  // scans and add the links directly.
  for (const AccessHost& spec : hosts) {
    network.topology().add_link({{DeviceId(router), InterfaceId(spec.router_iface)},
                                 {DeviceId(spec.host), InterfaceId("eth0")}});
  }
}

void ospf_network(Device& device, const Ipv4Prefix& subnet, unsigned area) {
  if (!device.ospf()) {
    OspfProcess process;
    process.process_id = 1;
    device.ospf() = process;
  }
  device.ospf()->networks.push_back(OspfNetwork{subnet, area});
}

}  // namespace heimdall::scen
