#include "scenarios/enterprise.hpp"

#include <algorithm>

#include "analysis/engine.hpp"
#include "config/parse.hpp"
#include "scenarios/builder.hpp"
#include "spec/mine.hpp"

namespace heimdall::scen {

using namespace heimdall::net;

namespace {

Ipv4Address ip(const char* text) { return Ipv4Address::parse(text); }
Ipv4Prefix prefix(const char* text) { return Ipv4Prefix::parse(text); }

}  // namespace

Network build_enterprise() {
  Network network("enterprise");

  // Routers.
  for (const char* name : {"r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8", "r9"})
    network.add_device(make_router(name));

  // Hosts (addresses first; wiring below).
  network.add_device(make_host("h1", ip("10.0.10.10"), 24, ip("10.0.10.1")));
  network.add_device(make_host("h2", ip("10.0.20.10"), 24, ip("10.0.20.1")));
  network.add_device(make_host("h3", ip("10.0.30.10"), 24, ip("10.0.30.1")));
  network.add_device(make_host("h4", ip("10.0.40.10"), 24, ip("10.0.40.1")));
  network.add_device(make_host("h5", ip("10.0.5.10"), 24, ip("10.0.5.1")));
  network.add_device(make_host("h6", ip("10.0.6.10"), 24, ip("10.0.6.1")));
  network.add_device(make_host("h7", ip("10.0.7.10"), 24, ip("10.0.7.1")));
  network.add_device(make_host("h8", ip("10.0.8.10"), 24, ip("10.0.8.1")));
  network.add_device(make_host("ext", ip("198.51.100.10"), 24, ip("198.51.100.1")));

  // Core / distribution mesh (13 router-router links).
  connect_routers(network, "r1", "Gi0/0", ip("10.1.12.1"), "r2", "Gi0/0", ip("10.1.12.2"));
  connect_routers(network, "r1", "Gi0/1", ip("10.1.13.1"), "r3", "Gi0/0", ip("10.1.13.2"));
  connect_routers(network, "r1", "Gi0/2", ip("10.1.16.1"), "r6", "Gi0/0", ip("10.1.16.2"));
  connect_routers(network, "r2", "Gi0/1", ip("10.1.23.1"), "r3", "Gi0/1", ip("10.1.23.2"));
  connect_routers(network, "r2", "Gi0/2", ip("10.1.24.1"), "r4", "Gi0/0", ip("10.1.24.2"));
  connect_routers(network, "r2", "Gi0/3", ip("10.1.25.1"), "r5", "Gi0/2", ip("10.1.25.2"));
  connect_routers(network, "r2", "Gi0/4", ip("10.1.26.1"), "r6", "Gi0/1", ip("10.1.26.2"));
  connect_routers(network, "r2", "Gi0/5", ip("10.1.29.1"), "r9", "Gi0/0", ip("10.1.29.2"));
  connect_routers(network, "r3", "Gi0/2", ip("10.1.35.1"), "r5", "Gi0/0", ip("10.1.35.2"));
  connect_routers(network, "r3", "Gi0/3", ip("10.1.34.1"), "r4", "Gi0/2", ip("10.1.34.2"));
  connect_routers(network, "r4", "Gi0/1", ip("10.1.45.1"), "r5", "Gi0/1", ip("10.1.45.2"));
  connect_routers(network, "r4", "Gi0/3", ip("10.1.47.1"), "r7", "Gi0/0", ip("10.1.47.2"));
  connect_routers(network, "r5", "Gi0/3", ip("10.1.58.1"), "r8", "Gi0/0", ip("10.1.58.2"));

  // Access layer: r7/r8 are L3 switches with SVIs + access ports.
  {
    Device& r7 = network.device(DeviceId("r7"));
    add_svi(r7, 10, ip("10.0.10.1"), 24);
    add_svi(r7, 20, ip("10.0.20.1"), 24);
  }
  attach_host_access(network, "r7", "Fa0/1", 10, "h1");
  attach_host_access(network, "r7", "Fa0/2", 20, "h2");
  {
    Device& r8 = network.device(DeviceId("r8"));
    add_svi(r8, 30, ip("10.0.30.1"), 24);
    add_svi(r8, 40, ip("10.0.40.1"), 24);
  }
  attach_host_access(network, "r8", "Fa0/1", 30, "h3");
  attach_host_access(network, "r8", "Fa0/2", 40, "h4");

  // Routed host ports.
  attach_host_routed(network, "r4", "Gi0/4", ip("10.0.5.1"), 24, "h5");
  attach_host_routed(network, "r5", "Gi0/4", ip("10.0.6.1"), 24, "h6");
  attach_host_routed(network, "r9", "Gi0/1", ip("10.0.7.1"), 24, "h7");
  attach_host_routed(network, "r9", "Gi0/2", ip("10.0.8.1"), 24, "h8");
  attach_host_routed(network, "r6", "Gi0/2", ip("198.51.100.1"), 24, "ext");

  // DMZ firewall policy on r9: only selected subnets may enter the DMZ, and
  // nothing outside the DMZ may touch the sensitive store h8.
  {
    Device& r9 = network.device(DeviceId("r9"));
    Acl dmz;
    dmz.name = "DMZ_IN";
    auto permit = [&](const char* src) {
      AclEntry entry;
      entry.action = AclEntry::Action::Permit;
      entry.protocol = IpProtocol::Icmp;
      entry.src = prefix(src);
      entry.dst = prefix("10.0.7.0/24");
      dmz.entries.push_back(entry);
    };
    permit("10.0.10.0/24");  // h1
    permit("10.0.30.0/24");  // h3
    permit("10.0.5.0/24");   // h5
    permit("10.0.6.0/24");   // h6
    // Application traffic to the DMZ app server (same sources).
    for (const char* src : {"10.0.10.0/24", "10.0.30.0/24", "10.0.5.0/24", "10.0.6.0/24"}) {
      for (std::uint16_t port : {std::uint16_t{443}, std::uint16_t{8080}}) {
        AclEntry entry;
        entry.action = AclEntry::Action::Permit;
        entry.protocol = IpProtocol::Tcp;
        entry.src = prefix(src);
        entry.dst = prefix("10.0.7.0/24");
        entry.dst_ports = PortRange::exactly(port);
        dmz.entries.push_back(entry);
      }
    }
    AclEntry deny_all;
    deny_all.action = AclEntry::Action::Deny;
    dmz.entries.push_back(deny_all);
    r9.add_acl(std::move(dmz));
    r9.interface(InterfaceId("Gi0/0")).acl_in = "DMZ_IN";
  }

  // Border egress hygiene on r6: bogon filtering plus explicit service
  // permits toward the ISP block (no effect on internal reachability).
  {
    Device& r6 = network.device(DeviceId("r6"));
    Acl border;
    border.name = "BORDER_OUT";
    for (const char* bogon : {"192.168.0.0/16", "172.16.0.0/12", "127.0.0.0/8",
                              "169.254.0.0/16", "224.0.0.0/4"}) {
      AclEntry entry;
      entry.action = AclEntry::Action::Deny;
      entry.src = prefix(bogon);
      border.entries.push_back(entry);
    }
    {
      AclEntry entry;
      entry.action = AclEntry::Action::Permit;
      entry.protocol = IpProtocol::Icmp;
      entry.src = prefix("10.0.0.0/8");
      entry.dst = prefix("198.51.100.0/24");
      border.entries.push_back(entry);
    }
    for (std::uint16_t port : {std::uint16_t{80}, std::uint16_t{443}, std::uint16_t{53}}) {
      AclEntry entry;
      entry.action = AclEntry::Action::Permit;
      entry.protocol = IpProtocol::Tcp;
      entry.src = prefix("10.0.0.0/8");
      entry.dst = prefix("198.51.100.0/24");
      entry.dst_ports = PortRange::exactly(port);
      border.entries.push_back(entry);
    }
    AclEntry deny_all;
    deny_all.action = AclEntry::Action::Deny;
    border.entries.push_back(deny_all);
    r6.add_acl(std::move(border));
    r6.interface(InterfaceId("Gi0/2")).acl_out = "BORDER_OUT";
  }

  // OSPF: per-subnet network statements, everything in area 0; host-facing
  // ports passive.
  for (Device& device : network.devices()) {
    if (!device.is_router()) continue;
    for (const Interface& iface : device.interfaces()) {
      if (!iface.address) continue;
      ospf_network(device, iface.address->subnet(), 0);
      // Host-facing and SVI interfaces form no adjacencies.
      if (iface.description.rfind("to h", 0) == 0 || iface.description.rfind("to ext", 0) == 0 ||
          iface.id.str().rfind("Vlan", 0) == 0) {
        device.ospf()->passive_interfaces.push_back(iface.id);
      }
    }
    device.ospf()->router_id = ip(("10.255.255." + std::to_string(&device - network.devices().data() + 1)).c_str());
  }

  network.validate();
  return network;
}

std::vector<spec::Policy> enterprise_policies(const Network& network) {
  analysis::Engine engine;
  spec::MineOptions options;
  options.max_policies = kEnterprisePolicyBudget;
  options.waypoint_candidates = {DeviceId("r9")};
  return spec::mine_policies(*engine.analyze(network).reachability, options);
}

std::vector<IssueSpec> enterprise_issues() {
  std::vector<IssueSpec> issues;

  // --- VLAN issue: h2's access port lands in the wrong VLAN. -------------
  {
    IssueSpec issue;
    issue.key = "vlan";
    issue.ticket = msp::Ticket::connectivity(
        101, DeviceId("h2"), DeviceId("h4"),
        "web clients on h2 cannot reach the app on h4 since last night's change window",
        priv::TaskClass::VlanIssue);
    issue.root_cause = DeviceId("r7");
    issue.inject = [](Network& network) {
      network.device(DeviceId("r7")).interface(InterfaceId("Fa0/2")).access_vlan = 10;
    };
    issue.fix_script = {
        "show topology",
        "ping h2 h4",
        "show interfaces r7",
        "show vlans r7",
        "show config r7",
        "interface r7 Fa0/2 switchport-access-vlan 20",
        "ping h2 h4",
        "save r7",
    };
    issue.resolved = pair_reachable_check("h2", "h4");
    issues.push_back(std::move(issue));
  }

  // --- OSPF issue: r5 lost the network statement for the r8 uplink. -------
  {
    IssueSpec issue;
    issue.key = "ospf";
    issue.ticket = msp::Ticket::connectivity(
        102, DeviceId("h3"), DeviceId("h1"),
        "branch hosts behind r8 unreachable; suspected routing problem",
        priv::TaskClass::OspfIssue);
    issue.root_cause = DeviceId("r5");
    issue.inject = [](Network& network) {
      Device& r5 = network.device(DeviceId("r5"));
      auto& networks = r5.ospf()->networks;
      std::erase_if(networks, [](const OspfNetwork& n) {
        return n.prefix == Ipv4Prefix::parse("10.1.58.0/30");
      });
    };
    issue.fix_script = {
        "ping h3 h1",
        "show routes r8",
        "show ospf r8",
        "show ospf r5",
        "ospf r5 network-add 10.1.58.0 0.0.0.3 area 0",
        "show ospf r5",
        "ping h3 h1",
        "save r5",
    };
    issue.resolved = pair_reachable_check("h3", "h1");
    issues.push_back(std::move(issue));
  }

  // --- ISP reconfiguration: prefer the r2 uplink for border traffic. ------
  {
    IssueSpec issue;
    issue.key = "isp";
    issue.ticket = msp::Ticket::connectivity(
        103, DeviceId("ext"), DeviceId("h1"),
        "planned change: ISP migration, shift border traffic to the r1-r6 uplink",
        priv::TaskClass::IspReconfig);
    issue.root_cause = DeviceId("r6");
    issue.inject = [](Network&) {};  // planned change: nothing broken
    issue.fix_script = {
        "show routes r6",
        "interface r6 Gi0/0 ospf-cost 5",
        "interface r6 Gi0/1 ospf-cost 50",
        "ping ext h1",
        "save r6",
    };
    issue.resolved = [](const Network& network) {
      dp::Dataplane dataplane = dp::Dataplane::compute(network);
      dp::TraceResult trace =
          dp::trace_hosts(network, dataplane, DeviceId("ext"), DeviceId("h1"));
      if (!trace.delivered()) return false;
      auto path = trace.path();
      // The reconfigured border must now leave through the r1 uplink
      // (before the change the r2 uplink is cheaper and r1 is bypassed).
      return std::find(path.begin(), path.end(), DeviceId("r1")) != path.end();
    };
    issues.push_back(std::move(issue));
  }

  return issues;
}

std::vector<IssueSpec> enterprise_extended_issues() {
  std::vector<IssueSpec> issues;

  // --- ACL misconfiguration: a stray deny blocks h1 -> DMZ app server. ----
  {
    IssueSpec issue;
    issue.key = "acl";
    issue.ticket = msp::Ticket::connectivity(
        104, DeviceId("h1"), DeviceId("h7"),
        "h1 lost access to the DMZ app server after last night's firewall work",
        priv::TaskClass::AclChange);
    issue.root_cause = DeviceId("r9");
    issue.inject = [](Network& network) {
      AclEntry bogus;
      bogus.action = AclEntry::Action::Deny;
      bogus.src = prefix("10.0.10.0/24");
      bogus.dst = prefix("10.0.7.0/24");
      auto& entries = network.device(DeviceId("r9")).find_acl("DMZ_IN")->entries;
      entries.insert(entries.begin(), bogus);
    };
    issue.fix_script = {
        "ping h1 h7",
        "show acls r9",
        "acl r9 DMZ_IN remove 0",
        "ping h1 h7",
        "save r9",
    };
    issue.resolved = pair_reachable_check("h1", "h7");
    issues.push_back(std::move(issue));
  }

  // --- Blackhole static route: border traffic to h4 detoured into the DMZ.
  {
    IssueSpec issue;
    issue.key = "route";
    issue.ticket = msp::Ticket::connectivity(
        105, DeviceId("ext"), DeviceId("h4"),
        "external monitor lost the app server h4; suspected routing problem",
        priv::TaskClass::Connectivity);
    issue.root_cause = DeviceId("r2");
    issue.inject = [](Network& network) {
      StaticRoute blackhole;
      blackhole.prefix = prefix("10.0.40.0/24");
      blackhole.next_hop = ip("10.1.29.2");  // into the DMZ filter
      network.device(DeviceId("r2")).static_routes().push_back(blackhole);
    };
    issue.fix_script = {
        "ping ext h4",
        "show routes r2",
        "route r2 remove 10.0.40.0 255.255.255.0 10.1.29.2",
        "ping ext h4",
        "save r2",
    };
    issue.resolved = pair_reachable_check("ext", "h4");
    issues.push_back(std::move(issue));
  }

  return issues;
}

}  // namespace heimdall::scen
