// The enterprise evaluation network (paper Table 1: 9 routers, 9 hosts,
// 22 links, 21 policies).
//
// Layout:
//   * r1-r3: OSPF core triangle; r2 also uplinks the DMZ router r9.
//   * r4, r5: distribution, each with one directly-attached host (h5, h6)
//     and cross-links for redundancy.
//   * r7, r8: L3 access switches with VLAN access ports + SVIs
//     (h1/h2 on r7 VLANs 10/20, h3/h4 on r8 VLANs 30/40).
//   * r9: DMZ firewall (ACL "DMZ_IN") in front of h7 (app server) and h8
//     (sensitive data store: isolated from everything outside the DMZ).
//   * r6: border router to the ISP-side endpoint `ext`.
#pragma once

#include <vector>

#include "scenarios/issues.hpp"
#include "spec/policy.hpp"

namespace heimdall::scen {

/// Number of policies the enterprise pins (Table 1).
inline constexpr std::size_t kEnterprisePolicyBudget = 21;

/// Builds the enterprise production network. Deterministic.
net::Network build_enterprise();

/// Mines the enterprise policy set (capped at the Table 1 budget).
std::vector<spec::Policy> enterprise_policies(const net::Network& network);

/// The three pilot-study issues: "vlan", "ospf", "isp".
std::vector<IssueSpec> enterprise_issues();

/// Extra issue classes beyond the pilot study: "acl" (a stray deny blocks
/// DMZ access) and "route" (a blackhole static route detours border traffic
/// into the DMZ filter). Used by the extended tests and examples.
std::vector<IssueSpec> enterprise_extended_issues();

}  // namespace heimdall::scen
