// Attacker scenarios against the multi-party authorization and replicated
// audit ledger planes (ISSUE: colluding technician, replica equivocation).
//
// These helpers *stage* the attacks; the detection lives in the enforcer
// (approval gate, cross-replica audit verification) and is exercised by
// tests, examples/heimdall_serve and tools/obs_report.
#pragma once

#include <cstddef>
#include <string>

#include "enforcer/approval.hpp"
#include "enforcer/ledger.hpp"
#include "privilege/approval.hpp"

namespace heimdall::scen {

/// Colluding technician: `technician` forges the strongest approval set
/// they can mint alone — an m=1 downgrade (below the service's floor of 2)
/// whose single approval is their *own* signature over `subject`. The
/// signature itself is genuine (minted through the enclave), so only the
/// policy rules — downgrade rejection, self-approval rejection, the missing
/// customer principal — stand between this set and a granted escalation.
priv::ApprovalSet colluding_approval_set(const enforce::SimulatedEnclave& enclave,
                                         const std::string& technician,
                                         const std::string& subject);

/// Replica equivocation: rewrites replica `index`'s entry at `sequence` to
/// `forged_message`, recomputes every later hash so the replica's own chain
/// still verifies link by link, and reseals through the replica's own
/// enclave (the attacker owns the host, so the seal and counter are
/// consistent too). Every *single-replica* check passes afterwards; only
/// the cross-replica comparison — divergent entry hashes at a sequence the
/// quorum already sealed — exposes the fork. Returns the pristine replica
/// so a demo can restore it after detection.
enforce::ReplicatedAuditLedger::Replica equivocate_replica(
    enforce::ReplicatedAuditLedger& ledger, std::size_t index, std::size_t sequence,
    const std::string& forged_message);

/// Restores a replica captured by equivocate_replica (state, seal and
/// enclave counter all revert to the pristine copy).
void restore_replica(enforce::ReplicatedAuditLedger& ledger, std::size_t index,
                     enforce::ReplicatedAuditLedger::Replica pristine);

}  // namespace heimdall::scen
