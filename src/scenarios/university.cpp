#include "scenarios/university.hpp"

#include <algorithm>
#include <set>

#include "analysis/engine.hpp"
#include "scenarios/builder.hpp"
#include "spec/mine.hpp"

namespace heimdall::scen {

using namespace heimdall::net;

namespace {

Ipv4Address ip(const std::string& text) { return Ipv4Address::parse(text); }
Ipv4Prefix prefix(const std::string& text) { return Ipv4Prefix::parse(text); }

std::string router_name(int i) { return "u" + std::to_string(i); }
std::string host_name(int k) { return "uh" + std::to_string(k); }

/// Router pairs with no direct link (keeps the mesh at 75 links).
bool pair_pruned(int i, int j) {
  return (i == 1 && j == 13) || (i == 2 && j == 12) || (i == 3 && j == 11);
}

/// /30 transit subnet for the (i, j) router pair, i < j.
Ipv4Address pair_ip(int i, int j, int host) {
  return Ipv4Address::of(172, 16, static_cast<std::uint8_t>(i),
                         static_cast<std::uint8_t>(4 * j + host));
}

/// Host index -> owning router: u1/u2 get two VLAN hosts each, u4/u5 a
/// second routed host, the rest one routed host apiece.
int host_router(int k) {
  switch (k) {
    case 1: case 2: return 1;
    case 3: case 4: return 2;
    case 16: return 4;
    case 17: return 5;
    default: return k - 2;  // uh5 -> u3 ... uh15 -> u13
  }
}

/// OSPF area of a subnet: u12/u13 territory is area 1, the rest area 0.
unsigned area_of_subnet(const Ipv4Prefix& subnet) {
  if (subnet == prefix("172.16.12.52/30")) return 1;                 // u12-u13 link
  if (subnet == prefix("10.20.14.0/24")) return 1;                   // uh14 (u12)
  if (subnet == prefix("10.20.15.0/24")) return 1;                   // uh15 (u13)
  return 0;
}

void add_guard_acl(Network& network, const std::string& router, const std::string& acl_name,
                   const std::string& guarded_subnet,
                   const std::vector<std::string>& permitted_sources) {
  Device& device = network.device(DeviceId(router));
  Acl acl;
  acl.name = acl_name;
  for (const std::string& src : permitted_sources) {
    AclEntry entry;
    entry.action = AclEntry::Action::Permit;
    entry.protocol = IpProtocol::Icmp;
    entry.src = prefix(src);
    entry.dst = prefix(guarded_subnet);
    acl.entries.push_back(entry);
  }
  AclEntry deny_guarded;
  deny_guarded.action = AclEntry::Action::Deny;
  deny_guarded.dst = prefix(guarded_subnet);
  acl.entries.push_back(deny_guarded);
  AclEntry permit_rest;
  permit_rest.action = AclEntry::Action::Permit;
  acl.entries.push_back(permit_rest);
  device.add_acl(std::move(acl));
  // Bind inbound on every transit (inter-router) interface.
  for (Interface& iface : device.interfaces()) {
    if (iface.description.rfind("to u", 0) == 0 && iface.description.rfind("to uh", 0) != 0) {
      iface.acl_in = acl_name;
    }
  }
}

}  // namespace

Network build_university() {
  Network network("university");

  for (int i = 1; i <= 13; ++i) network.add_device(make_router(router_name(i)));

  // Hosts: VLAN hosts on u1/u2 use .1/.2/.3/.4 SVI gateways; routed hosts
  // use 10.20.<k>.1 gateways.
  for (int k = 1; k <= 17; ++k) {
    std::string subnet_octet = std::to_string(k);
    network.add_device(make_host(host_name(k), ip("10.20." + subnet_octet + ".10"), 24,
                                 ip("10.20." + subnet_octet + ".1")));
  }

  // Dense router mesh: 75 links.
  for (int i = 1; i <= 13; ++i) {
    for (int j = i + 1; j <= 13; ++j) {
      if (pair_pruned(i, j)) continue;
      connect_routers(network, router_name(i), "Gi" + std::to_string(i) + "/" + std::to_string(j),
                      pair_ip(i, j, 1), router_name(j),
                      "Gi" + std::to_string(j) + "/" + std::to_string(i), pair_ip(i, j, 2));
    }
  }

  // Access-layer hosts on u1/u2 (VLAN + SVI), matching the enterprise style.
  {
    Device& u1 = network.device(DeviceId("u1"));
    add_svi(u1, 110, ip("10.20.1.1"), 24);
    add_svi(u1, 120, ip("10.20.2.1"), 24);
    Device& u2 = network.device(DeviceId("u2"));
    add_svi(u2, 210, ip("10.20.3.1"), 24);
    add_svi(u2, 220, ip("10.20.4.1"), 24);
  }
  attach_host_access(network, "u1", "Fa0/1", 110, "uh1");
  attach_host_access(network, "u1", "Fa0/2", 120, "uh2");
  attach_host_access(network, "u2", "Fa0/1", 210, "uh3");
  attach_host_access(network, "u2", "Fa0/2", 220, "uh4");

  // Routed hosts.
  for (int k = 5; k <= 17; ++k) {
    int r = host_router(k);
    attach_host_routed(network, router_name(r), "Fa0/" + std::to_string(k),
                       ip("10.20." + std::to_string(k) + ".1"), 24, host_name(k));
  }

  // Department firewalls: u13 guards uh15, u9 guards uh11.
  add_guard_acl(network, "u13", "SEC_IN", "10.20.15.0/24",
                {"10.20.1.0/24", "10.20.3.0/24", "10.20.5.0/24"});
  add_guard_acl(network, "u9", "ENG_IN", "10.20.11.0/24",
                {"10.20.1.0/24", "10.20.5.0/24", "10.20.7.0/24", "10.20.9.0/24"});

  // OSPF everywhere; u12/u13 territory in area 1 (they are the ABRs).
  int router_index = 0;
  for (Device& device : network.devices()) {
    if (!device.is_router()) continue;
    ++router_index;
    for (const Interface& iface : device.interfaces()) {
      if (!iface.address) continue;
      Ipv4Prefix subnet = iface.address->subnet();
      ospf_network(device, subnet, area_of_subnet(subnet));
      if (iface.description.rfind("to uh", 0) == 0 || iface.id.str().rfind("Vlan", 0) == 0) {
        device.ospf()->passive_interfaces.push_back(iface.id);
      }
    }
    device.ospf()->router_id =
        Ipv4Address::of(10, 254, 254, static_cast<std::uint8_t>(router_index));
  }

  network.validate();
  return network;
}

std::vector<spec::Policy> university_policies(const Network& network) {
  analysis::Engine engine;
  spec::MineOptions options;
  options.max_policies = kUniversityPolicyBudget;
  options.waypoint_candidates = {DeviceId("u13"), DeviceId("u9")};
  return spec::mine_policies(*engine.analyze(network).reachability, options);
}

std::vector<IssueSpec> university_issues() {
  std::vector<IssueSpec> issues;

  // --- VLAN issue on the u1 access layer. ---------------------------------
  {
    IssueSpec issue;
    issue.key = "vlan";
    issue.ticket = msp::Ticket::connectivity(
        201, DeviceId("uh2"), DeviceId("uh4"),
        "lab workstation uh2 cannot reach the course server uh4",
        priv::TaskClass::VlanIssue);
    issue.root_cause = DeviceId("u1");
    issue.inject = [](Network& network) {
      network.device(DeviceId("u1")).interface(InterfaceId("Fa0/2")).access_vlan = 110;
    };
    issue.fix_script = {
        "ping uh2 uh4",
        "show interfaces u1",
        "show vlans u1",
        "interface u1 Fa0/2 switchport-access-vlan 120",
        "ping uh2 uh4",
        "save u1",
    };
    issue.resolved = pair_reachable_check("uh2", "uh4");
    issues.push_back(std::move(issue));
  }

  // --- OSPF issue: u13 stops advertising the department subnet. -----------
  {
    IssueSpec issue;
    issue.key = "ospf";
    issue.ticket = msp::Ticket::connectivity(
        202, DeviceId("uh1"), DeviceId("uh15"),
        "department server uh15 dropped off the campus network",
        priv::TaskClass::OspfIssue);
    issue.root_cause = DeviceId("u13");
    issue.inject = [](Network& network) {
      Device& u13 = network.device(DeviceId("u13"));
      std::erase_if(u13.ospf()->networks, [](const OspfNetwork& n) {
        return n.prefix == Ipv4Prefix::parse("10.20.15.0/24");
      });
    };
    issue.fix_script = {
        "ping uh1 uh15",
        "show routes u13",
        "show ospf u13",
        "ospf u13 network-add 10.20.15.0 0.0.0.255 area 1",
        "ping uh1 uh15",
        "save u13",
    };
    issue.resolved = pair_reachable_check("uh1", "uh15");
    issues.push_back(std::move(issue));
  }

  // --- ISP reconfiguration: shift u6's border traffic towards u2. ---------
  {
    IssueSpec issue;
    issue.key = "isp";
    issue.ticket = msp::Ticket::connectivity(
        203, DeviceId("uh8"), DeviceId("uh1"),
        "planned change: prefer the u2 uplink for u6's border traffic",
        priv::TaskClass::IspReconfig);
    issue.root_cause = DeviceId("u6");
    issue.inject = [](Network&) {};
    issue.fix_script = {
        "show routes u6",
        "interface u6 Gi6/1 ospf-cost 20",
        "interface u6 Gi6/2 ospf-cost 5",
        "ping uh8 uh1",
        "save u6",
    };
    issue.resolved = [](const Network& network) {
      dp::Dataplane dataplane = dp::Dataplane::compute(network);
      dp::TraceResult trace =
          dp::trace_hosts(network, dataplane, DeviceId("uh8"), DeviceId("uh1"));
      if (!trace.delivered()) return false;
      auto path = trace.path();
      return std::find(path.begin(), path.end(), DeviceId("u2")) != path.end();
    };
    issues.push_back(std::move(issue));
  }

  return issues;
}

std::vector<IssueSpec> university_extended_issues() {
  std::vector<IssueSpec> issues;

  // --- ACL misconfiguration on the department firewall. -------------------
  {
    IssueSpec issue;
    issue.key = "acl";
    issue.ticket = msp::Ticket::connectivity(
        204, DeviceId("uh1"), DeviceId("uh15"),
        "lab workstation uh1 lost access to the department server uh15",
        priv::TaskClass::AclChange);
    issue.root_cause = DeviceId("u13");
    issue.inject = [](Network& network) {
      AclEntry bogus;
      bogus.action = AclEntry::Action::Deny;
      bogus.src = prefix("10.20.1.0/24");
      bogus.dst = prefix("10.20.15.0/24");
      auto& entries = network.device(DeviceId("u13")).find_acl("SEC_IN")->entries;
      entries.insert(entries.begin(), bogus);
    };
    issue.fix_script = {
        "ping uh1 uh15",
        "show acls u13",
        "acl u13 SEC_IN remove 0",
        "ping uh1 uh15",
        "save u13",
    };
    issue.resolved = pair_reachable_check("uh1", "uh15");
    issues.push_back(std::move(issue));
  }

  // --- Blackhole static route on u1 pointing the server subnet at a host.
  {
    IssueSpec issue;
    issue.key = "route";
    issue.ticket = msp::Ticket::connectivity(
        205, DeviceId("uh1"), DeviceId("uh15"),
        "uh1 cannot reach uh15; other hosts unaffected",
        priv::TaskClass::Connectivity);
    issue.root_cause = DeviceId("u1");
    issue.inject = [](Network& network) {
      StaticRoute blackhole;
      blackhole.prefix = prefix("10.20.15.0/24");
      blackhole.next_hop = ip("10.20.1.10");  // uh1 itself: a forwarding loop
      network.device(DeviceId("u1")).static_routes().push_back(blackhole);
    };
    issue.fix_script = {
        "ping uh1 uh15",
        "show routes u1",
        "route u1 remove 10.20.15.0 255.255.255.0 10.20.1.10",
        "ping uh1 uh15",
        "save u1",
    };
    issue.resolved = pair_reachable_check("uh1", "uh15");
    issues.push_back(std::move(issue));
  }

  return issues;
}

}  // namespace heimdall::scen
