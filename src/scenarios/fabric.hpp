// Fabric-scale evaluation topologies: a parameterized k-ary fat-tree (Clos)
// generator for stressing the sharded all-pairs reachability path.
//
// Layout of build_fabric(k):
//   * (k/2)^2 core routers c0..c{(k/2)^2-1};
//   * k pods, each with k/2 aggregation routers p{P}-a{A} and k/2 edge
//     routers p{P}-e{E}; agg A of every pod uplinks to cores
//     [A*(k/2), (A+1)*(k/2)), pods are internally full-bipartite agg<->edge;
//   * per edge router, `subnets_per_edge` access subnets: subnet S of the
//     edge with global index G gets 10.{G+1}.{S}.0/24, VLAN 10+S with the
//     SVI at .1, and `hosts_per_subnet` hosts p{P}-e{E}-s{S}-h{H} at .10+H;
//   * every router-router link is a routed /30 from 10.255.0.0/16; OSPF
//     area 0 everywhere, SVIs passive.
//
// All names, addresses and link orders are deterministic functions of
// FabricOptions, so fingerprint-keyed caches and property tests can rely on
// bit-identical rebuilds.
#pragma once

#include <cstddef>
#include <vector>

#include "scenarios/issues.hpp"
#include "spec/policy.hpp"

namespace heimdall::scen {

/// Shape of a generated fabric. k must be even and >= 4.
struct FabricOptions {
  unsigned k = 4;                ///< fat-tree arity: pods, and uplinks per switch
  unsigned subnets_per_edge = 2; ///< access /24s (VLAN + SVI) per edge router
  unsigned hosts_per_subnet = 2; ///< host devices instantiated per subnet
};

/// Derived size of a fabric, computable without building it.
struct FabricInfo {
  std::size_t routers = 0;
  std::size_t hosts = 0;          ///< host devices instantiated
  std::size_t links = 0;          ///< router-router plus host access links
  std::size_t host_addresses = 0; ///< usable addresses across the access /24s
};

FabricInfo fabric_info(const FabricOptions& options = {});

/// Builds the fabric production network. Deterministic.
net::Network build_fabric(const FabricOptions& options = {});

/// Reachability invariants pinned on a fabric: pod0's first host must reach
/// a peer in every pod, plus intra-pod, intra-edge and reverse-direction
/// probes. Constructed directly (not mined): a fabric with symmetric
/// shortest paths has no meaningful waypoint or isolation structure.
std::vector<spec::Policy> fabric_policies(const FabricOptions& options = {});

/// Injectable fabric issues, keyed "acl" (stray deny on the destination
/// edge's uplinks), "route" (fat-fingered static next hop blackholes a
/// remote subnet) and "vlan" (access port lands in the wrong VLAN). All
/// tickets are about pod0's first host reaching pod1's first host.
/// Requires subnets_per_edge >= 2 (the vlan issue flips into the second
/// subnet's VLAN).
std::vector<IssueSpec> fabric_issues(const FabricOptions& options = {});

/// Publishes the heimdall.fabric_probe gauge set for `network`
/// (scenario.routers, scenario.hosts) to the global metrics registry; the
/// matching matrix.bytes / matrix.equiv_classes gauges are maintained by
/// ShardedReachability::compute.
void fabric_probe(const net::Network& network);

}  // namespace heimdall::scen
