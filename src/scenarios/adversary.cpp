#include "scenarios/adversary.hpp"

#include "util/error.hpp"
#include "util/sha256.hpp"

namespace heimdall::scen {

priv::ApprovalSet colluding_approval_set(const enforce::SimulatedEnclave& enclave,
                                         const std::string& technician,
                                         const std::string& subject) {
  priv::ApprovalSet set;
  set.required = 1;  // the downgrade: one signature "suffices"
  set.approvals.push_back(enforce::make_attested_approval(enclave, technician,
                                                          priv::PrincipalRole::Msp, subject));
  return set;
}

enforce::ReplicatedAuditLedger::Replica equivocate_replica(
    enforce::ReplicatedAuditLedger& ledger, std::size_t index, std::size_t sequence,
    const std::string& forged_message) {
  enforce::ReplicatedAuditLedger::Replica pristine = ledger.replica_for_test(index);
  enforce::ReplicatedAuditLedger::Replica& replica = ledger.replica_for_test(index);
  std::vector<enforce::AuditEntry>& entries = replica.log.mutable_entries_for_test();
  if (sequence >= entries.size())
    throw util::Error("equivocate_replica: sequence " + std::to_string(sequence) +
                      " beyond chain length " + std::to_string(entries.size()));
  entries[sequence].message = forged_message;
  // Re-chain the suffix so the forged history is internally consistent.
  util::Sha256Digest previous =
      sequence == 0 ? util::Sha256Digest{} : entries[sequence - 1].hash;
  for (std::size_t i = sequence; i < entries.size(); ++i) {
    entries[i].previous_hash = previous;
    entries[i].hash = util::Sha256::hash(entries[i].canonical());
    previous = entries[i].hash;
  }
  ledger.reseal_replica_for_test(index);
  return pristine;
}

void restore_replica(enforce::ReplicatedAuditLedger& ledger, std::size_t index,
                     enforce::ReplicatedAuditLedger::Replica pristine) {
  ledger.replica_for_test(index) = std::move(pristine);
}

}  // namespace heimdall::scen
