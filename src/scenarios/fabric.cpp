#include "scenarios/fabric.hpp"

#include <string>

#include "netmodel/ipv4.hpp"
#include "obs/metrics.hpp"
#include "scenarios/builder.hpp"
#include "util/error.hpp"

namespace heimdall::scen {

using namespace heimdall::net;

namespace {

void check(const FabricOptions& options) {
  util::require(options.k >= 4 && options.k % 2 == 0, "fabric: k must be even and >= 4");
  util::require(options.subnets_per_edge >= 1 && options.subnets_per_edge <= 200,
                "fabric: subnets_per_edge out of range");
  util::require(options.hosts_per_subnet >= 1 && options.hosts_per_subnet <= 200,
                "fabric: hosts_per_subnet out of range");
  // Access subnets are 10.{edge_index+1}.{subnet}.0/24.
  util::require(options.k * options.k / 2 <= 254, "fabric: too many edge routers to address");
}

std::string core_name(unsigned n) { return "c" + std::to_string(n); }
std::string agg_name(unsigned pod, unsigned a) {
  return "p" + std::to_string(pod) + "-a" + std::to_string(a);
}
std::string edge_name(unsigned pod, unsigned e) {
  return "p" + std::to_string(pod) + "-e" + std::to_string(e);
}
std::string host_name(unsigned pod, unsigned e, unsigned s, unsigned h) {
  return edge_name(pod, e) + "-s" + std::to_string(s) + "-h" + std::to_string(h);
}

unsigned edge_index(const FabricOptions& options, unsigned pod, unsigned e) {
  return pod * (options.k / 2) + e;
}

Ipv4Address subnet_base(const FabricOptions& options, unsigned pod, unsigned e, unsigned s) {
  return Ipv4Address::of(10, static_cast<std::uint8_t>(edge_index(options, pod, e) + 1),
                         static_cast<std::uint8_t>(s), 0);
}

Ipv4Address offset(Ipv4Address base, std::uint32_t delta) {
  return Ipv4Address(base.value() + delta);
}

/// Sequential /30 allocator for the routed point-to-point links, out of
/// 10.255.0.0/16. Allocation order is the wiring order, so addresses are a
/// deterministic function of FabricOptions.
class P2pAllocator {
 public:
  struct Block {
    Ipv4Address first;   ///< .1 of the /30
    Ipv4Address second;  ///< .2 of the /30
  };
  Block next() {
    const std::uint32_t base = Ipv4Address::of(10, 255, 0, 0).value() + 4 * count_++;
    util::require((base & 0xffff0000u) == Ipv4Address::of(10, 255, 0, 0).value(),
                  "fabric: p2p /30 pool exhausted");
    return {Ipv4Address(base + 1), Ipv4Address(base + 2)};
  }

 private:
  std::uint32_t count_ = 0;
};

}  // namespace

FabricInfo fabric_info(const FabricOptions& options) {
  check(options);
  const std::size_t half = options.k / 2;
  FabricInfo info;
  info.routers = half * half            // cores
                 + options.k * half     // aggregation
                 + options.k * half;    // edge
  const std::size_t edges = options.k * half;
  info.hosts = edges * options.subnets_per_edge * options.hosts_per_subnet;
  info.links = options.k * half * half    // core <-> agg
               + options.k * half * half  // agg <-> edge
               + info.hosts;              // access ports
  info.host_addresses = edges * options.subnets_per_edge * 254;
  return info;
}

Network build_fabric(const FabricOptions& options) {
  check(options);
  const unsigned k = options.k;
  const unsigned half = k / 2;
  Network network("fabric-k" + std::to_string(k));
  const FabricInfo info = fabric_info(options);
  network.devices().reserve(info.routers + info.hosts);

  // Routers first, wired through the small-N helpers while the device
  // vector is short; the host population goes through the bulk helpers.
  std::vector<Device> routers;
  routers.reserve(info.routers);
  for (unsigned n = 0; n < half * half; ++n) routers.push_back(make_router(core_name(n)));
  for (unsigned pod = 0; pod < k; ++pod) {
    for (unsigned a = 0; a < half; ++a) routers.push_back(make_router(agg_name(pod, a)));
    for (unsigned e = 0; e < half; ++e) routers.push_back(make_router(edge_name(pod, e)));
  }
  add_devices(network, std::move(routers));

  P2pAllocator p2p;
  // Core <-> aggregation: agg A of every pod owns core group
  // [A*half, (A+1)*half); core n faces pod P on Gi0/P.
  for (unsigned pod = 0; pod < k; ++pod) {
    for (unsigned a = 0; a < half; ++a) {
      for (unsigned j = 0; j < half; ++j) {
        const P2pAllocator::Block block = p2p.next();
        connect_routers(network, agg_name(pod, a), "Gi0/" + std::to_string(j), block.first,
                        core_name(a * half + j), "Gi0/" + std::to_string(pod), block.second);
      }
    }
  }
  // Aggregation <-> edge: full bipartite within the pod.
  for (unsigned pod = 0; pod < k; ++pod) {
    for (unsigned a = 0; a < half; ++a) {
      for (unsigned e = 0; e < half; ++e) {
        const P2pAllocator::Block block = p2p.next();
        connect_routers(network, agg_name(pod, a), "Gi1/" + std::to_string(e), block.first,
                        edge_name(pod, e), "Gi0/" + std::to_string(a), block.second);
      }
    }
  }

  // Access layer: per edge, one VLAN + SVI per subnet and the bulk-attached
  // hosts.
  for (unsigned pod = 0; pod < k; ++pod) {
    for (unsigned e = 0; e < half; ++e) {
      {
        Device& edge = network.device(DeviceId(edge_name(pod, e)));
        for (unsigned s = 0; s < options.subnets_per_edge; ++s)
          add_svi(edge, static_cast<VlanId>(10 + s), offset(subnet_base(options, pod, e, s), 1),
                  24);
      }
      for (unsigned s = 0; s < options.subnets_per_edge; ++s) {
        const Ipv4Address base = subnet_base(options, pod, e, s);
        std::vector<AccessHost> hosts;
        hosts.reserve(options.hosts_per_subnet);
        for (unsigned h = 0; h < options.hosts_per_subnet; ++h) {
          hosts.push_back(AccessHost{"Fa" + std::to_string(s) + "/" + std::to_string(h),
                                     host_name(pod, e, s, h), offset(base, 10 + h), 24,
                                     offset(base, 1)});
        }
        attach_hosts_access(network, edge_name(pod, e), static_cast<VlanId>(10 + s), hosts);
      }
    }
  }

  // OSPF: every addressed interface's subnet in area 0; SVIs passive (the
  // access segments carry no adjacencies).
  unsigned router_index = 0;
  for (Device& device : network.devices()) {
    if (!device.is_router()) continue;
    for (const Interface& iface : device.interfaces()) {
      if (!iface.address) continue;
      ospf_network(device, iface.address->subnet(), 0);
      if (iface.id.str().rfind("Vlan", 0) == 0) {
        device.ospf()->passive_interfaces.push_back(iface.id);
      }
    }
    ++router_index;
    device.ospf()->router_id = Ipv4Address::of(10, 254, static_cast<std::uint8_t>(router_index >> 8),
                                               static_cast<std::uint8_t>(router_index & 0xff));
  }

  network.validate();
  return network;
}

std::vector<spec::Policy> fabric_policies(const FabricOptions& options) {
  check(options);
  const std::string probe = host_name(0, 0, 0, 0);
  auto reach = [](const std::string& src, const std::string& dst) {
    return spec::Policy{spec::PolicyType::Reachability, DeviceId(src), DeviceId(dst), DeviceId()};
  };
  std::vector<spec::Policy> policies;
  // Cross-pod fan-out from pod0's first host.
  for (unsigned pod = 1; pod < options.k; ++pod)
    policies.push_back(reach(probe, host_name(pod, 0, 0, 0)));
  // Reverse direction of the farthest probe.
  policies.push_back(reach(host_name(options.k - 1, 0, 0, 0), probe));
  // Intra-pod, cross-edge.
  policies.push_back(reach(probe, host_name(0, 1, 0, 0)));
  // Same edge, across subnets / within the subnet.
  if (options.subnets_per_edge >= 2) policies.push_back(reach(probe, host_name(0, 0, 1, 0)));
  if (options.hosts_per_subnet >= 2) policies.push_back(reach(probe, host_name(0, 0, 0, 1)));
  return policies;
}

std::vector<IssueSpec> fabric_issues(const FabricOptions& options) {
  check(options);
  util::require(options.subnets_per_edge >= 2, "fabric_issues: needs subnets_per_edge >= 2");
  const std::string src_host = host_name(0, 0, 0, 0);
  const std::string dst_host = host_name(1, 0, 0, 0);
  const std::string dst_edge = edge_name(1, 0);
  const Ipv4Prefix src_subnet(subnet_base(options, 0, 0, 0), 24);
  const Ipv4Prefix dst_subnet(subnet_base(options, 1, 0, 0), 24);
  const unsigned half = options.k / 2;

  std::vector<IssueSpec> issues;

  // --- ACL misconfiguration: a stray deny on the destination edge's
  // uplinks blocks the source subnet. --------------------------------------
  {
    IssueSpec issue;
    issue.key = "acl";
    issue.ticket = msp::Ticket::connectivity(
        201, DeviceId(src_host), DeviceId(dst_host),
        "pod0 clients lost the pod1 service after last night's edge ACL work",
        priv::TaskClass::AclChange);
    issue.root_cause = DeviceId(dst_edge);
    issue.inject = [dst_edge, src_subnet, dst_subnet, half](Network& network) {
      Acl acl;
      acl.name = "EDGE_PROT_IN";
      AclEntry bogus;
      bogus.action = AclEntry::Action::Deny;
      bogus.src = src_subnet;
      bogus.dst = dst_subnet;
      acl.entries.push_back(bogus);
      AclEntry permit_all;
      permit_all.action = AclEntry::Action::Permit;
      acl.entries.push_back(permit_all);
      Device& edge = network.device(DeviceId(dst_edge));
      edge.add_acl(std::move(acl));
      for (unsigned a = 0; a < half; ++a)
        edge.interface(InterfaceId("Gi0/" + std::to_string(a))).acl_in = "EDGE_PROT_IN";
    };
    issue.fix_script = {
        "ping " + src_host + " " + dst_host,
        "show acls " + dst_edge,
        "acl " + dst_edge + " EDGE_PROT_IN remove 0",
        "ping " + src_host + " " + dst_host,
        "save " + dst_edge,
    };
    issue.resolved = pair_reachable_check(src_host, dst_host);
    issues.push_back(std::move(issue));
  }

  // --- Blackhole static route: a fat-fingered next hop on the source edge
  // sends the pod1 subnet into its own access VLAN, where nothing answers
  // ARP for it. ------------------------------------------------------------
  {
    const std::string src_edge = edge_name(0, 0);
    const Ipv4Address bad_next_hop = offset(subnet_base(options, 0, 0, 0), 254);
    IssueSpec issue;
    issue.key = "route";
    issue.ticket = msp::Ticket::connectivity(
        202, DeviceId(src_host), DeviceId(dst_host),
        "pod0 hosts lost one remote subnet; suspected routing problem on the edge",
        priv::TaskClass::Connectivity);
    issue.root_cause = DeviceId(src_edge);
    issue.inject = [src_edge, dst_subnet, bad_next_hop](Network& network) {
      StaticRoute blackhole;
      blackhole.prefix = dst_subnet;
      blackhole.next_hop = bad_next_hop;
      network.device(DeviceId(src_edge)).static_routes().push_back(blackhole);
    };
    issue.fix_script = {
        "ping " + src_host + " " + dst_host,
        "show routes " + src_edge,
        "route " + src_edge + " remove " + dst_subnet.network().to_string() + " " +
            dst_subnet.netmask().to_string() + " " + bad_next_hop.to_string(),
        "ping " + src_host + " " + dst_host,
        "save " + src_edge,
    };
    issue.resolved = pair_reachable_check(src_host, dst_host);
    issues.push_back(std::move(issue));
  }

  // --- VLAN issue: the source host's access port lands in the second
  // subnet's VLAN, cutting it off from its gateway SVI. --------------------
  {
    const std::string src_edge = edge_name(0, 0);
    IssueSpec issue;
    issue.key = "vlan";
    issue.ticket = msp::Ticket::connectivity(
        203, DeviceId(src_host), DeviceId(dst_host),
        "one pod0 client dropped off the network after a port change",
        priv::TaskClass::VlanIssue);
    issue.root_cause = DeviceId(src_edge);
    issue.inject = [src_edge](Network& network) {
      network.device(DeviceId(src_edge)).interface(InterfaceId("Fa0/0")).access_vlan = 11;
    };
    issue.fix_script = {
        "ping " + src_host + " " + dst_host,
        "show interfaces " + src_edge,
        "show vlans " + src_edge,
        "interface " + src_edge + " Fa0/0 switchport-access-vlan 10",
        "ping " + src_host + " " + dst_host,
        "save " + src_edge,
    };
    issue.resolved = pair_reachable_check(src_host, dst_host);
    issues.push_back(std::move(issue));
  }

  return issues;
}

void fabric_probe(const net::Network& network) {
  obs::Registry& registry = obs::Registry::global();
  registry.gauge("scenario.routers")
      .set(static_cast<std::int64_t>(network.count(DeviceKind::Router)));
  registry.gauge("scenario.hosts")
      .set(static_cast<std::int64_t>(network.count(DeviceKind::Host)));
}

}  // namespace heimdall::scen
