// Change verification at the production boundary (paper §4.3).
//
// The verifier replays the twin session's changeset onto a *shadow* copy of
// the production network, recomputes the dataplane, and checks (1) the
// mined network policies and (2) Privilege_msp compliance of every change.
// Only a clean outcome lets changes proceed to the scheduler.
#pragma once

#include <string>
#include <vector>

#include "enforcer/compliance.hpp"
#include "spec/verify.hpp"

namespace heimdall::enforce {

/// The verifier's verdict on one changeset.
struct VerifyOutcome {
  std::vector<PrivilegeViolation> privilege_violations;
  spec::VerificationReport policy_report;
  /// Changes that failed to replay (stale indexes, missing objects).
  std::vector<std::string> replay_errors;
  /// Shadow network with the changes applied (valid when replay succeeded).
  net::Network shadow;

  bool approved() const {
    return privilege_violations.empty() && policy_report.ok() && replay_errors.empty();
  }

  /// Human-readable rejection reasons (empty when approved).
  std::vector<std::string> rejection_reasons() const;
};

/// Verifies `changes` against `production`.
VerifyOutcome verify_changes(const net::Network& production,
                             const std::vector<cfg::ConfigChange>& changes,
                             const spec::PolicyVerifier& verifier,
                             const priv::PrivilegeSpec& privileges);

}  // namespace heimdall::enforce
