#include "enforcer/enforcer.hpp"

#include <algorithm>
#include <charconv>
#include <optional>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace heimdall::enforce {

namespace {

/// True when `verification` violates a policy outside `baseline` (the ids
/// production was already violating); `which` receives the first such id.
bool introduces_new_violation(const spec::VerificationReport& verification,
                              const std::vector<std::string>& baseline, std::string* which) {
  for (const std::string& id : verification.violated_ids()) {
    if (std::find(baseline.begin(), baseline.end(), id) == baseline.end()) {
      if (which) *which = id;
      return true;
    }
  }
  return false;
}

}  // namespace

PolicyEnforcer::PolicyEnforcer(spec::PolicyVerifier policies, SimulatedEnclave enclave,
                               EnforcerOptions options)
    : policies_(std::move(policies)), enclave_(std::move(enclave)), options_(options) {
  if (options_.attribution_threads > 1)
    attribution_pool_ = std::make_unique<util::ThreadPool>(options_.attribution_threads);
  reseal_head();
}

void PolicyEnforcer::reseal_head() {
  std::string head = util::to_hex(audit_.head()) + "|" + std::to_string(enclave_.bump_counter());
  sealed_head_ = enclave_.seal(head);
}

void PolicyEnforcer::audit_event(util::VirtualClock& clock, const std::string& actor,
                                 AuditCategory category, std::string message) {
  // The instant event mirrors the audit record into the trace (inheriting
  // e.g. the workflow's ticket context), so an auditor can line the two up.
  obs::tracer().instant("audit." + to_string(category), "audit", {{"actor", actor}});
  OBS_LOG(Debug) << "audit[" << to_string(category) << "] " << actor << ": " << message;
  audit_.append(clock.now(), actor, category, std::move(message));
  obs::Registry::global().counter("audit.entries").add();
  reseal_head();
}

EnforcementReport PolicyEnforcer::enforce(net::Network& production,
                                          const std::vector<cfg::ConfigChange>& changes,
                                          const priv::PrivilegeSpec& privileges,
                                          util::VirtualClock& clock, const std::string& actor,
                                          bool check_transients) {
  obs::ScopedSpan span("enforcer.enforce", "enforcer",
                       {{"actor", actor}, {"changes", std::to_string(changes.size())}});
  EnforcementReport report;
  {
    obs::ScopedSpan verify_span("enforcer.verify", "enforcer");
    report.verification = verify_changes(production, changes, policies_, privileges);
  }
  obs::Registry::global()
      .counter("enforcer.violations")
      .add(report.verification.privilege_violations.size() +
           report.verification.policy_report.violations.size());

  for (const PrivilegeViolation& violation : report.verification.privilege_violations) {
    audit_event(clock, actor, AuditCategory::Violation,
                "intercepted privilege violation: " + violation.change.summary());
  }
  for (const spec::Violation& violation : report.verification.policy_report.violations) {
    audit_event(clock, actor, AuditCategory::Violation,
                "intercepted policy violation: " + violation.policy.to_string() + " — " +
                    violation.detail);
  }

  if (!report.verification.approved()) {
    report.rejection_reasons = report.verification.rejection_reasons();
    span.arg("outcome", "rejected");
    obs::Registry::global().counter("enforcer.changesets_rejected").add();
    audit_event(clock, actor, AuditCategory::Verify,
                "changeset REJECTED (" + std::to_string(changes.size()) + " changes, " +
                    std::to_string(report.rejection_reasons.size()) + " reasons)");
    return report;
  }

  audit_event(clock, actor, AuditCategory::Verify,
              "changeset approved (" + std::to_string(changes.size()) + " changes, " +
                  std::to_string(report.verification.policy_report.checked) +
                  " policies checked)");

  {
    obs::ScopedSpan schedule_span("enforcer.schedule", "enforcer");
    report.plan = build_plan(production, changes, policies_, check_transients);
    for (const ScheduledStep& step : report.plan.steps) {
      cfg::apply_change(production, step.change);
      audit_event(clock, actor, AuditCategory::Schedule, "applied: " + step.change.summary());
    }
  }
  obs::Registry::global().counter("enforcer.changes_applied").add(report.plan.steps.size());
  span.arg("outcome", "applied");
  report.applied = true;
  return report;
}

/// Phase-2 verdict for one candidate change, computed in isolation.
struct PolicyEnforcer::AttributionVerdict {
  enum class Kind : std::uint8_t { Clean, ReplayError, PolicyViolation };
  Kind kind = Kind::Clean;
  std::string detail;  // apply error text, or the violated policy id
};

std::vector<PolicyEnforcer::AttributionVerdict> PolicyEnforcer::attribute_candidates(
    const net::Network& production, net::Network& shadow,
    const std::vector<cfg::ConfigChange>& candidates, const analysis::Snapshot& base,
    const spec::VerificationReport& baseline_report, const std::vector<std::string>& baseline) {
  obs::Counter& reverts = obs::Registry::global().counter("enforcer.incremental_reverts");
  util::Stopwatch watch;

  // One attribution round on `round_shadow` (which must equal the network
  // `base` was analyzed from): apply the candidate, delta-verify against
  // the baseline report, then revert via the captured inverse so the shadow
  // is ready for the next round without re-copying the whole network.
  auto attribute_one = [&](net::Network& round_shadow, analysis::Engine& engine,
                           const cfg::ConfigChange& change) {
    AttributionVerdict verdict;
    // Capture the inverse against the pre-state *before* mutating. Inversion
    // failures are swallowed here: they only occur when the apply below also
    // fails, and the apply's error text is the canonical quarantine reason.
    std::optional<cfg::ConfigChange> inverse;
    try {
      inverse = cfg::invert_change(round_shadow, change);
    } catch (const util::Error&) {
    }
    try {
      cfg::apply_change(round_shadow, change);
    } catch (const util::Error& error) {
      verdict.kind = AttributionVerdict::Kind::ReplayError;
      verdict.detail = error.what();
      return verdict;  // shadow untouched: apply validates before mutating
    }
    analysis::Snapshot snapshot = engine.analyze(round_shadow, base, {change});
    spec::VerificationReport verification =
        policies_.verify_incremental(snapshot, baseline_report);
    std::string which;
    if (introduces_new_violation(verification, baseline, &which)) {
      verdict.kind = AttributionVerdict::Kind::PolicyViolation;
      verdict.detail = std::move(which);
    }
    if (inverse) {
      cfg::apply_change(round_shadow, *inverse);
      reverts.add();
    } else {
      // Unreachable in practice (no inverse implies the apply throws), but a
      // full re-copy keeps the shadow honest if the two ever diverge.
      round_shadow = production;
    }
    return verdict;
  };

  std::vector<AttributionVerdict> verdicts(candidates.size());
  if (attribution_pool_ && candidates.size() > 1) {
    // Rounds are independent, so chunks run on worker-local shadows and
    // engines (the shared engine is not thread-safe). Verdicts land in a
    // pre-sized vector; the caller replays them in candidate order, so the
    // report stays deterministic regardless of scheduling.
    attribution_pool_->parallel_for(
        candidates.size(),
        [&](std::size_t begin, std::size_t end) {
          analysis::Options local_options;
          local_options.cache_capacity = 4;
          analysis::Engine local_engine(local_options);
          net::Network local_shadow = production;
          for (std::size_t i = begin; i < end; ++i) {
            verdicts[i] = attribute_one(local_shadow, local_engine, candidates[i]);
          }
        },
        /*grain=*/1);
  } else {
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      verdicts[i] = attribute_one(shadow, policies_.engine(), candidates[i]);
    }
  }
  obs::Registry::global().histogram("enforcer.attribution_ms").observe(watch.elapsed_ms());
  return verdicts;
}

QuarantineReport PolicyEnforcer::enforce_with_quarantine(
    net::Network& production, const std::vector<cfg::ConfigChange>& changes,
    const priv::PrivilegeSpec& privileges, util::VirtualClock& clock, const std::string& actor) {
  obs::ScopedSpan span("enforcer.quarantine", "enforcer",
                       {{"actor", actor}, {"changes", std::to_string(changes.size())}});
  QuarantineReport report;

  // Covers phases 1–2 (per-change privilege + policy attribution) and the
  // joint check in phase 3; closed by hand because application interleaves.
  obs::SpanId verify_span = obs::tracer().begin("enforcer.verify", "enforcer");

  // 1. Privilege compliance per change.
  std::vector<cfg::ConfigChange> candidates;
  for (const cfg::ConfigChange& change : changes) {
    ChangeClassification classification = classify_change(change);
    priv::Decision decision = privileges.evaluate(classification.action, classification.resource);
    if (!decision.allowed) {
      audit_event(clock, actor, AuditCategory::Violation,
                  "quarantined (privilege): " + change.summary());
      report.quarantined.emplace_back(change, "privilege: " + decision.reason);
    } else {
      candidates.push_back(change);
    }
  }

  // Production may already be violating policies (that is often why the
  // ticket exists); a change is only quarantined when it introduces *new*
  // violations beyond that baseline.
  analysis::Engine& engine = policies_.engine();
  analysis::Snapshot base = engine.analyze(production);
  spec::VerificationReport baseline_report = policies_.verify(*base.reachability);
  std::vector<std::string> baseline = baseline_report.violated_ids();

  // 2. Individual policy attribution: a change that introduces a violation
  //    all by itself is quarantined. One shadow network serves every round
  //    (and phase 3): each round applies the candidate, delta-verifies only
  //    the policies over re-traced pairs, and reverts via the undo log.
  net::Network shadow = production;
  std::vector<AttributionVerdict> verdicts =
      attribute_candidates(production, shadow, candidates, base, baseline_report, baseline);

  std::vector<cfg::ConfigChange> remainder;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const cfg::ConfigChange& change = candidates[i];
    switch (verdicts[i].kind) {
      case AttributionVerdict::Kind::ReplayError:
        audit_event(clock, actor, AuditCategory::Violation,
                    "quarantined (replay): " + change.summary());
        report.quarantined.emplace_back(change, "replay: " + verdicts[i].detail);
        break;
      case AttributionVerdict::Kind::PolicyViolation: {
        std::string detail = "policy: " + verdicts[i].detail;
        audit_event(clock, actor, AuditCategory::Violation,
                    "quarantined (" + detail + "): " + change.summary());
        report.quarantined.emplace_back(change, detail);
        break;
      }
      case AttributionVerdict::Kind::Clean:
        remainder.push_back(change);
        break;
    }
  }

  // 3. Joint verification of the remainder; combination-only violations
  //    cannot be attributed to one change, so the remainder is rejected.
  if (!remainder.empty()) {
    bool replay_ok = true;
    std::string replay_error;
    for (const cfg::ConfigChange& change : remainder) {
      try {
        cfg::apply_change(shadow, change);
      } catch (const util::Error& error) {
        replay_ok = false;
        replay_error = error.what();
        break;
      }
    }
    bool joint_clean = false;
    if (replay_ok) {
      analysis::Snapshot joint = engine.analyze(shadow, base, remainder);
      joint_clean =
          !introduces_new_violation(policies_.verify_incremental(joint, baseline_report),
                                    baseline, nullptr);
    }
    if (replay_ok && joint_clean) {
      obs::tracer().end(verify_span);
      verify_span = 0;
      obs::ScopedSpan schedule_span("enforcer.schedule", "enforcer");
      for (const cfg::ConfigChange& change : schedule_changes(remainder)) {
        cfg::apply_change(production, change);
        audit_event(clock, actor, AuditCategory::Schedule, "applied: " + change.summary());
        report.applied_changes.push_back(change);
      }
      report.applied_any = true;
    } else if (replay_ok) {
      for (const cfg::ConfigChange& change : remainder) {
        report.quarantined.emplace_back(change, "combination violates policies");
      }
      audit_event(clock, actor, AuditCategory::Verify,
                  "remainder rejected: combination violates policies");
    } else {
      // A remainder that cannot even replay jointly (changes that conflict
      // with each other, not with production) is quarantined wholesale —
      // dropping it from the report would make the changes vanish.
      audit_event(clock, actor, AuditCategory::Verify,
                  "remainder rejected (replay): " + replay_error);
      for (const cfg::ConfigChange& change : remainder) {
        report.quarantined.emplace_back(change, "replay: " + replay_error);
      }
    }
  }

  obs::tracer().end(verify_span);  // still open on the no-apply paths
  obs::Registry::global().counter("enforcer.changes_applied").add(report.applied_changes.size());
  obs::Registry::global().counter("enforcer.changes_quarantined").add(report.quarantined.size());
  span.arg("applied", std::to_string(report.applied_changes.size()));
  span.arg("quarantined", std::to_string(report.quarantined.size()));
  audit_event(clock, actor, AuditCategory::Verify,
              "quarantine round: " + std::to_string(report.applied_changes.size()) +
                  " applied, " + std::to_string(report.quarantined.size()) + " intercepted");
  return report;
}

QuarantineReport PolicyEnforcer::enforce_with_quarantine_reference(
    net::Network& production, const std::vector<cfg::ConfigChange>& changes,
    const priv::PrivilegeSpec& privileges, util::VirtualClock& clock, const std::string& actor) {
  obs::ScopedSpan span("enforcer.quarantine_reference", "enforcer",
                       {{"actor", actor}, {"changes", std::to_string(changes.size())}});
  QuarantineReport report;

  obs::SpanId verify_span = obs::tracer().begin("enforcer.verify", "enforcer");

  // 1. Privilege compliance per change.
  std::vector<cfg::ConfigChange> candidates;
  for (const cfg::ConfigChange& change : changes) {
    ChangeClassification classification = classify_change(change);
    priv::Decision decision = privileges.evaluate(classification.action, classification.resource);
    if (!decision.allowed) {
      audit_event(clock, actor, AuditCategory::Violation,
                  "quarantined (privilege): " + change.summary());
      report.quarantined.emplace_back(change, "privilege: " + decision.reason);
    } else {
      candidates.push_back(change);
    }
  }

  std::vector<std::string> baseline = policies_.verify_network(production).violated_ids();

  // 2. Individual policy attribution, the expensive way: copy the whole
  //    production network and run a from-scratch verification per change.
  std::vector<cfg::ConfigChange> remainder;
  for (const cfg::ConfigChange& change : candidates) {
    net::Network shadow = production;
    bool replayable = true;
    try {
      cfg::apply_change(shadow, change);
    } catch (const util::Error& error) {
      audit_event(clock, actor, AuditCategory::Violation,
                  "quarantined (replay): " + change.summary());
      report.quarantined.emplace_back(change, std::string("replay: ") + error.what());
      replayable = false;
    }
    if (!replayable) continue;
    std::string which;
    if (introduces_new_violation(policies_.verify_network(shadow), baseline, &which)) {
      std::string detail = "policy: " + which;
      audit_event(clock, actor, AuditCategory::Violation,
                  "quarantined (" + detail + "): " + change.summary());
      report.quarantined.emplace_back(change, detail);
    } else {
      remainder.push_back(change);
    }
  }

  // 3. Joint verification of the remainder.
  if (!remainder.empty()) {
    net::Network shadow = production;
    bool replay_ok = true;
    std::string replay_error;
    try {
      cfg::apply_changes(shadow, remainder);
    } catch (const util::Error& error) {
      replay_ok = false;
      replay_error = error.what();
    }
    if (replay_ok &&
        !introduces_new_violation(policies_.verify_network(shadow), baseline, nullptr)) {
      obs::tracer().end(verify_span);
      verify_span = 0;
      obs::ScopedSpan schedule_span("enforcer.schedule", "enforcer");
      for (const cfg::ConfigChange& change : schedule_changes(remainder)) {
        cfg::apply_change(production, change);
        audit_event(clock, actor, AuditCategory::Schedule, "applied: " + change.summary());
        report.applied_changes.push_back(change);
      }
      report.applied_any = true;
    } else if (replay_ok) {
      for (const cfg::ConfigChange& change : remainder) {
        report.quarantined.emplace_back(change, "combination violates policies");
      }
      audit_event(clock, actor, AuditCategory::Verify,
                  "remainder rejected: combination violates policies");
    } else {
      audit_event(clock, actor, AuditCategory::Verify,
                  "remainder rejected (replay): " + replay_error);
      for (const cfg::ConfigChange& change : remainder) {
        report.quarantined.emplace_back(change, "replay: " + replay_error);
      }
    }
  }

  obs::tracer().end(verify_span);
  obs::Registry::global().counter("enforcer.changes_applied").add(report.applied_changes.size());
  obs::Registry::global().counter("enforcer.changes_quarantined").add(report.quarantined.size());
  span.arg("applied", std::to_string(report.applied_changes.size()));
  span.arg("quarantined", std::to_string(report.quarantined.size()));
  audit_event(clock, actor, AuditCategory::Verify,
              "quarantine round: " + std::to_string(report.applied_changes.size()) +
                  " applied, " + std::to_string(report.quarantined.size()) + " intercepted");
  return report;
}

EmergencyResult PolicyEnforcer::emergency_execute(net::Network& production,
                                                  std::string_view command_line,
                                                  const priv::PrivilegeSpec& privileges,
                                                  util::VirtualClock& clock,
                                                  const std::string& actor) {
  obs::ScopedSpan span("enforcer.emergency", "enforcer", {{"actor", actor}});
  obs::Registry::global().counter("enforcer.emergency_commands").add();
  EmergencyResult result;
  twin::ParsedCommand command = twin::parse_command(command_line);

  priv::Decision decision = privileges.evaluate(command.action, command.resource);
  if (!decision.allowed) {
    audit_event(clock, actor, AuditCategory::Violation,
                "emergency command DENIED: " + command.raw + " (" + decision.reason + ")");
    result.output = "DENIED: " + decision.reason;
    return result;
  }
  result.permitted = true;

  // Execute against a shadow first; verify; only then touch production.
  twin::EmulationLayer shadow(production);
  twin::CommandResult executed = shadow.execute(command);
  result.output = executed.output;
  if (!executed.ok) {
    audit_event(clock, actor, AuditCategory::Command,
                "emergency command failed in shadow: " + command.raw);
    return result;
  }

  spec::VerificationReport report = policies_.verify_network(shadow.network());
  if (!report.ok()) {
    for (const spec::Violation& violation : report.violations)
      result.rejection_reasons.push_back(violation.policy.to_string() + ": " + violation.detail);
    audit_event(clock, actor, AuditCategory::Violation,
                "emergency command rolled back (policy violations): " + command.raw);
    return result;
  }

  for (const cfg::ConfigChange& change : executed.changes)
    cfg::apply_change(production, change);
  result.applied = true;
  audit_event(clock, actor, AuditCategory::Command, "emergency command applied: " + command.raw);
  return result;
}

AttestationReport PolicyEnforcer::attest() const {
  return enclave_.attest(util::to_hex(audit_.head()));
}

bool PolicyEnforcer::audit_intact() const {
  if (!audit_.verify_chain()) return false;
  auto unsealed = enclave_.unseal(sealed_head_);
  if (!unsealed) return false;
  auto separator = unsealed->find('|');
  if (separator == std::string::npos) return false;
  if (unsealed->substr(0, separator) != util::to_hex(audit_.head())) return false;
  // Rollback protection: a stale sealed blob together with its matching
  // truncated log passes the hash comparison above; only the monotonic
  // counter — which the enclave bumps on every reseal and which cannot be
  // rewound — distinguishes the current head from an old one.
  const char* first = unsealed->data() + separator + 1;
  const char* last = unsealed->data() + unsealed->size();
  if (first == last) return false;
  std::uint64_t sealed_counter = 0;
  auto [ptr, ec] = std::from_chars(first, last, sealed_counter);
  if (ec != std::errc() || ptr != last) return false;
  return sealed_counter == enclave_.counter();
}

}  // namespace heimdall::enforce
