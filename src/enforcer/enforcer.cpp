#include "enforcer/enforcer.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "analysis/engine.hpp"
#include "obs/journal.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace heimdall::enforce {

namespace {

/// " [ticket #N, session #M]" from the calling thread's obs context, or ""
/// when the thread carries no such keys. Appended to audit messages so the
/// chain's records are joinable with journal/trace timelines by ticket id;
/// standalone (context-free) callers keep their messages byte-identical.
std::string context_audit_suffix() {
  std::string ticket, session;
  for (const auto& [key, value] : obs::current_context()) {
    if (key == "ticket")
      ticket = value;  // innermost frame wins
    else if (key == "session")
      session = value;
  }
  if (ticket.empty() && session.empty()) return {};
  std::string out = " [";
  if (!ticket.empty()) out += "ticket #" + ticket;
  if (!session.empty()) {
    if (!ticket.empty()) out += ", ";
    out += "session #" + session;
  }
  out += "]";
  return out;
}

/// Journals one intercepted change (ReplayFailure when the reason says so).
void journal_quarantine(const std::string& actor, const std::string& reason,
                        const cfg::ConfigChange& change) {
  obs::EventJournal& journal = obs::EventJournal::global();
  if (!journal.enabled()) return;
  bool replay = reason.rfind("replay", 0) == 0;
  journal.append_in_context(replay ? obs::EventType::ReplayFailure : obs::EventType::Quarantine,
                            actor, reason + ": " + change.summary());
}

/// True when `verification` violates a policy outside `baseline` (the ids
/// production was already violating); `which` receives the first such id.
bool introduces_new_violation(const spec::VerificationReport& verification,
                              const std::vector<std::string>& baseline, std::string* which) {
  for (const std::string& id : verification.violated_ids()) {
    if (std::find(baseline.begin(), baseline.end(), id) == baseline.end()) {
      if (which) *which = id;
      return true;
    }
  }
  return false;
}

/// Lazily evaluated m-of-n gate for one submission's phase-1 loop. The
/// ApprovalCheck is computed at most once (the first gated change pays the
/// attestation verification; later gated changes in the same submission
/// reuse the verdict) and not at all for submissions with no gated change.
class ApprovalGate {
 public:
  ApprovalGate(const SimulatedEnclave& enclave, const SubmissionApprovals& approvals,
               const std::string& requester)
      : enclave_(enclave), approvals_(approvals), requester_(requester) {}

  /// Quarantine reason when `action` needs m-of-n approval the submission
  /// does not carry; nullopt when the change may proceed to phase 2.
  std::optional<std::string> block_reason(priv::Action action) {
    if (!approvals_.gate || !needs_approval(action, approvals_.task)) return std::nullopt;
    if (!check_) check_ = check_submission_approvals(enclave_, approvals_, requester_);
    if (check_->satisfied) return std::nullopt;
    return "approval: " + check_->summary();
  }

 private:
  const SimulatedEnclave& enclave_;
  const SubmissionApprovals& approvals_;
  const std::string& requester_;
  std::optional<priv::ApprovalCheck> check_;
};

}  // namespace

PolicyEnforcer::PolicyEnforcer(spec::PolicyVerifier policies, SimulatedEnclave enclave,
                               EnforcerOptions options)
    : policies_(std::move(policies)),
      options_(options),
      ledger_(std::move(enclave), options.audit_replicas),
      sink_(options.audit_shards) {
  if (options_.attribution_threads > 1)
    attribution_pool_ = std::make_unique<util::ThreadPool>(options_.attribution_threads);
}

void PolicyEnforcer::audit_event(util::VirtualClock& clock, const std::string& actor,
                                 AuditCategory category, std::string message) {
  // The instant event mirrors the audit record into the trace (inheriting
  // e.g. the workflow's ticket context), so an auditor can line the two up.
  obs::tracer().instant("audit." + to_string(category), "audit", {{"actor", actor}});
  message += context_audit_suffix();
  OBS_LOG(Debug) << "audit[" << to_string(category) << "] " << actor << ": " << message;
  util::Stopwatch watch;
  {
    std::lock_guard<std::mutex> lock(audit_mutex_);
    ledger_.leader_log().append(clock.now(), actor, category, std::move(message));
    obs::Registry::global().counter("audit.entries").add();
    QuorumStatus quorum = ledger_.commit_appended();
    if (!quorum.committed)
      obs::Registry::global().counter("audit.quorum_failures").add();
  }
  audit_elapsed_us_.fetch_add(static_cast<std::uint64_t>(watch.elapsed_ms() * 1000.0),
                              std::memory_order_relaxed);
}

std::size_t PolicyEnforcer::flush_audit() {
  util::Stopwatch watch;
  std::size_t flushed = 0;
  std::size_t chain_size = 0;
  {
    std::lock_guard<std::mutex> lock(audit_mutex_);
    flushed = sink_.flush_into(ledger_.leader_log());
    if (flushed != 0) {
      obs::Registry::global().counter("audit.entries").add(flushed);
      QuorumStatus quorum = ledger_.commit_appended();
      if (!quorum.committed)
        obs::Registry::global().counter("audit.quorum_failures").add();
    }
    chain_size = ledger_.leader_log().size();
  }
  audit_elapsed_us_.fetch_add(static_cast<std::uint64_t>(watch.elapsed_ms() * 1000.0),
                              std::memory_order_relaxed);
  if (flushed != 0) {
    obs::EventJournal& journal = obs::EventJournal::global();
    if (journal.enabled()) {
      journal.append_in_context(obs::EventType::AuditFlush, "enforcer",
                                std::to_string(flushed) + " staged entries sealed into chain",
                                flushed);
      journal.append_in_context(obs::EventType::AuditSeal, "enforcer",
                                "chain length " + std::to_string(chain_size), chain_size);
    }
  }
  return flushed;
}

EnforcementReport PolicyEnforcer::enforce(net::Network& production,
                                          const std::vector<cfg::ConfigChange>& changes,
                                          const priv::PrivilegeSpec& privileges,
                                          util::VirtualClock& clock, const std::string& actor,
                                          bool check_transients) {
  obs::ScopedSpan span("enforcer.enforce", "enforcer",
                       {{"actor", actor}, {"changes", std::to_string(changes.size())}});
  EnforcementReport report;
  {
    obs::ScopedSpan verify_span("enforcer.verify", "enforcer");
    report.verification = verify_changes(production, changes, policies_, privileges);
  }
  obs::Registry::global()
      .counter("enforcer.violations")
      .add(report.verification.privilege_violations.size() +
           report.verification.policy_report.violations.size());

  for (const PrivilegeViolation& violation : report.verification.privilege_violations) {
    audit_event(clock, actor, AuditCategory::Violation,
                "intercepted privilege violation: " + violation.change.summary());
  }
  for (const spec::Violation& violation : report.verification.policy_report.violations) {
    audit_event(clock, actor, AuditCategory::Violation,
                "intercepted policy violation: " + violation.policy.to_string() + " — " +
                    violation.detail);
  }

  if (!report.verification.approved()) {
    report.rejection_reasons = report.verification.rejection_reasons();
    span.arg("outcome", "rejected");
    obs::Registry::global().counter("enforcer.changesets_rejected").add();
    audit_event(clock, actor, AuditCategory::Verify,
                "changeset REJECTED (" + std::to_string(changes.size()) + " changes, " +
                    std::to_string(report.rejection_reasons.size()) + " reasons)");
    return report;
  }

  audit_event(clock, actor, AuditCategory::Verify,
              "changeset approved (" + std::to_string(changes.size()) + " changes, " +
                  std::to_string(report.verification.policy_report.checked) +
                  " policies checked)");

  {
    obs::ScopedSpan schedule_span("enforcer.schedule", "enforcer");
    report.plan = build_plan(production, changes, policies_, check_transients);
    for (const ScheduledStep& step : report.plan.steps) {
      cfg::apply_change(production, step.change);
      audit_event(clock, actor, AuditCategory::Schedule, "applied: " + step.change.summary());
    }
  }
  obs::Registry::global().counter("enforcer.changes_applied").add(report.plan.steps.size());
  span.arg("outcome", "applied");
  report.applied = true;
  return report;
}

/// Phase-2 verdict for one candidate change, computed in isolation.
struct PolicyEnforcer::AttributionVerdict {
  enum class Kind : std::uint8_t { Clean, ReplayError, PolicyViolation };
  Kind kind = Kind::Clean;
  std::string detail;  // apply error text, or the violated policy id
};

/// The rolling verification state a batch threads from one submission to the
/// next. `shadow` always equals the network `base` was analyzed from, so
/// each submission's attribution and joint check run incrementally off the
/// previous submission's outcome instead of paying a fresh full analysis.
struct PolicyEnforcer::ChainContext {
  analysis::Snapshot base;
  spec::VerificationReport base_report;
  std::vector<std::string> baseline_ids;
  net::Network shadow;
};

/// One wave submission after phases 1–2: its surviving remainder plus the
/// undo log captured while the coalesced phase 3 applied it.
struct PolicyEnforcer::WaveMember {
  std::size_t index = 0;  ///< submission index into the batch
  std::vector<cfg::ConfigChange> remainder;
  std::vector<cfg::ConfigChange> inverses;
  bool invertible = true;
  bool pending = false;  ///< remainder applied to the shadow, joint check owed
};

PolicyEnforcer::ChainContext PolicyEnforcer::make_chain(const net::Network& production) {
  // Production may already be violating policies (that is often why a
  // ticket exists); changes are only quarantined when they introduce *new*
  // violations beyond this baseline.
  ChainContext ctx{.base = {}, .base_report = {}, .baseline_ids = {}, .shadow = production};
  ctx.base = policies_.engine().analyze(production);
  ctx.base_report = policies_.verify(*ctx.base.view());
  ctx.baseline_ids = ctx.base_report.violated_ids();
  return ctx;
}

std::vector<PolicyEnforcer::AttributionVerdict> PolicyEnforcer::attribute_candidates(
    const net::Network& production, net::Network& shadow,
    const std::vector<cfg::ConfigChange>& candidates, const analysis::Snapshot& base,
    const spec::VerificationReport& baseline_report, const std::vector<std::string>& baseline) {
  obs::Counter& reverts = obs::Registry::global().counter("enforcer.incremental_reverts");
  util::Stopwatch watch;

  // One attribution round on `round_shadow` (which must equal the network
  // `base` was analyzed from): apply the candidate, delta-verify against
  // the baseline report, then revert via the captured inverse so the shadow
  // is ready for the next round without re-copying the whole network.
  auto attribute_one = [&](net::Network& round_shadow, analysis::Engine& engine,
                           const cfg::ConfigChange& change) {
    AttributionVerdict verdict;
    // Capture the inverse against the pre-state *before* mutating. Inversion
    // failures are swallowed here: they only occur when the apply below also
    // fails, and the apply's error text is the canonical quarantine reason.
    std::optional<cfg::ConfigChange> inverse;
    try {
      inverse = cfg::invert_change(round_shadow, change);
    } catch (const util::Error&) {
    }
    try {
      cfg::apply_change(round_shadow, change);
    } catch (const util::Error& error) {
      verdict.kind = AttributionVerdict::Kind::ReplayError;
      verdict.detail = error.what();
      return verdict;  // shadow untouched: apply validates before mutating
    }
    analysis::Snapshot snapshot = engine.analyze(round_shadow, base, {change});
    spec::VerificationReport verification =
        policies_.verify_incremental(snapshot, baseline_report);
    std::string which;
    if (introduces_new_violation(verification, baseline, &which)) {
      verdict.kind = AttributionVerdict::Kind::PolicyViolation;
      verdict.detail = std::move(which);
    }
    if (inverse) {
      cfg::apply_change(round_shadow, *inverse);
      reverts.add();
    } else {
      // Unreachable in practice (no inverse implies the apply throws), but a
      // full re-copy keeps the shadow honest if the two ever diverge.
      round_shadow = production;
    }
    return verdict;
  };

  std::vector<AttributionVerdict> verdicts(candidates.size());
  if (attribution_pool_ && candidates.size() > 1) {
    // Rounds are independent, so chunks run on worker-local shadows and
    // engines (the shared engine is not thread-safe). Verdicts land in a
    // pre-sized vector; the caller replays them in candidate order, so the
    // report stays deterministic regardless of scheduling.
    attribution_pool_->parallel_for(
        candidates.size(),
        [&](std::size_t begin, std::size_t end) {
          analysis::Options local_options;
          local_options.cache_capacity = 4;
          analysis::Engine local_engine(local_options);
          net::Network local_shadow = production;
          for (std::size_t i = begin; i < end; ++i) {
            verdicts[i] = attribute_one(local_shadow, local_engine, candidates[i]);
          }
        },
        /*grain=*/1);
  } else {
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      verdicts[i] = attribute_one(shadow, policies_.engine(), candidates[i]);
    }
  }
  obs::Registry::global().histogram("enforcer.attribution_ms").observe(watch.elapsed_ms());
  return verdicts;
}

QuarantineReport PolicyEnforcer::quarantine_one(net::Network& production, ChainContext& ctx,
                                                const std::vector<cfg::ConfigChange>& changes,
                                                const priv::PrivilegeSpec& privileges,
                                                util::VirtualClock& clock,
                                                const std::string& actor,
                                                const SubmissionApprovals& approvals) {
  obs::ScopedSpan span("enforcer.quarantine", "enforcer",
                       {{"actor", actor}, {"changes", std::to_string(changes.size())}});
  QuarantineReport report;
  std::uint64_t audit_before = audit_elapsed_us();
  util::Stopwatch verify_watch;

  // Covers phases 1–2 (per-change privilege + policy attribution) and the
  // joint check in phase 3; closed by hand because application interleaves.
  obs::SpanId verify_span = obs::tracer().begin("enforcer.verify", "enforcer");

  // 1. Privilege compliance per change, then the m-of-n approval gate for
  //    high-impact / out-of-class actions.
  ApprovalGate gate(ledger_.leader_enclave(), approvals, actor);
  std::vector<cfg::ConfigChange> candidates;
  for (const cfg::ConfigChange& change : changes) {
    ChangeClassification classification = classify_change(change);
    priv::Decision decision = privileges.evaluate(classification.action, classification.resource);
    if (!decision.allowed) {
      audit_event(clock, actor, AuditCategory::Violation,
                  "quarantined (privilege): " + change.summary());
      report.quarantined.emplace_back(change, "privilege: " + decision.reason);
    } else if (auto blocked = gate.block_reason(classification.action)) {
      audit_event(clock, actor, AuditCategory::Violation,
                  "quarantined (approval): " + change.summary());
      report.quarantined.emplace_back(change, *blocked);
    } else {
      candidates.push_back(change);
    }
  }

  // 2. Individual policy attribution: a change that introduces a violation
  //    all by itself is quarantined. The chain's shadow serves every round
  //    (and phase 3): each round applies the candidate, delta-verifies only
  //    the policies over re-traced pairs, and reverts via the undo log.
  std::vector<AttributionVerdict> verdicts = attribute_candidates(
      ctx.shadow, ctx.shadow, candidates, ctx.base, ctx.base_report, ctx.baseline_ids);

  std::vector<cfg::ConfigChange> remainder;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const cfg::ConfigChange& change = candidates[i];
    switch (verdicts[i].kind) {
      case AttributionVerdict::Kind::ReplayError:
        audit_event(clock, actor, AuditCategory::Violation,
                    "quarantined (replay): " + change.summary());
        report.quarantined.emplace_back(change, "replay: " + verdicts[i].detail);
        break;
      case AttributionVerdict::Kind::PolicyViolation: {
        std::string detail = "policy: " + verdicts[i].detail;
        audit_event(clock, actor, AuditCategory::Violation,
                    "quarantined (" + detail + "): " + change.summary());
        report.quarantined.emplace_back(change, detail);
        break;
      }
      case AttributionVerdict::Kind::Clean:
        remainder.push_back(change);
        break;
    }
  }

  // 3. Joint verification of the remainder; combination-only violations
  //    cannot be attributed to one change, so the remainder is rejected.
  //    Inverses are captured so a rejected remainder can be peeled off the
  //    shadow and the chain stays usable for the next submission.
  if (!remainder.empty()) {
    bool replay_ok = true;
    bool invertible = true;
    std::string replay_error;
    std::vector<cfg::ConfigChange> inverses;
    for (const cfg::ConfigChange& change : remainder) {
      std::optional<cfg::ConfigChange> inverse;
      try {
        inverse = cfg::invert_change(ctx.shadow, change);
      } catch (const util::Error&) {
      }
      try {
        cfg::apply_change(ctx.shadow, change);
      } catch (const util::Error& error) {
        replay_ok = false;
        replay_error = error.what();
        break;
      }
      if (inverse)
        inverses.push_back(*inverse);
      else
        invertible = false;
    }
    auto revert_remainder = [&] {
      if (invertible) {
        for (auto it = inverses.rbegin(); it != inverses.rend(); ++it)
          cfg::apply_change(ctx.shadow, *it);
      } else {
        // Unreachable in practice (a change without an inverse fails to
        // apply); rebuilding from production keeps the chain honest.
        ctx.shadow = production;
      }
    };
    bool joint_clean = false;
    analysis::Snapshot joint;
    spec::VerificationReport joint_report;
    if (replay_ok) {
      joint = policies_.engine().analyze(ctx.shadow, ctx.base, remainder);
      joint_report = policies_.verify_incremental(joint, ctx.base_report);
      joint_clean = !introduces_new_violation(joint_report, ctx.baseline_ids, nullptr);
    }
    if (replay_ok && joint_clean) {
      obs::tracer().end(verify_span);
      verify_span = 0;
      report.stages.verify_us = static_cast<std::uint64_t>(verify_watch.elapsed_ms() * 1000.0);
      obs::ScopedSpan schedule_span("enforcer.schedule", "enforcer");
      for (const cfg::ConfigChange& change : schedule_changes(remainder)) {
        cfg::apply_change(production, change);
        audit_event(clock, actor, AuditCategory::Schedule, "applied: " + change.summary());
        report.applied_changes.push_back(change);
      }
      report.applied_any = true;
      // Chain forward: the joint snapshot/report *is* the next submission's
      // baseline (production and the shadow converge on the same state; the
      // scheduler preserves final state by construction).
      ctx.base = std::move(joint);
      ctx.base_report = std::move(joint_report);
      ctx.baseline_ids = ctx.base_report.violated_ids();
    } else if (replay_ok) {
      revert_remainder();
      for (const cfg::ConfigChange& change : remainder) {
        report.quarantined.emplace_back(change, "combination violates policies");
      }
      audit_event(clock, actor, AuditCategory::Verify,
                  "remainder rejected: combination violates policies");
    } else {
      // A remainder that cannot even replay jointly (changes that conflict
      // with each other, not with production) is quarantined wholesale —
      // dropping it from the report would make the changes vanish.
      revert_remainder();
      audit_event(clock, actor, AuditCategory::Verify,
                  "remainder rejected (replay): " + replay_error);
      for (const cfg::ConfigChange& change : remainder) {
        report.quarantined.emplace_back(change, "replay: " + replay_error);
      }
    }
  }

  obs::tracer().end(verify_span);  // still open on the no-apply paths
  if (report.stages.verify_us == 0)
    report.stages.verify_us = static_cast<std::uint64_t>(verify_watch.elapsed_ms() * 1000.0);
  obs::Registry::global().counter("enforcer.changes_applied").add(report.applied_changes.size());
  obs::Registry::global().counter("enforcer.changes_quarantined").add(report.quarantined.size());
  span.arg("applied", std::to_string(report.applied_changes.size()));
  span.arg("quarantined", std::to_string(report.quarantined.size()));
  audit_event(clock, actor, AuditCategory::Verify,
              "quarantine round: " + std::to_string(report.applied_changes.size()) +
                  " applied, " + std::to_string(report.quarantined.size()) + " intercepted");
  report.stages.audit_us = audit_elapsed_us() - audit_before;
  obs::EventJournal& journal = obs::EventJournal::global();
  if (journal.enabled()) {
    for (const auto& [change, reason] : report.quarantined)
      journal_quarantine(actor, reason, change);
    journal.append_in_context(obs::EventType::VerifyVerdict, actor,
                              std::to_string(report.applied_changes.size()) + " applied, " +
                                  std::to_string(report.quarantined.size()) + " intercepted",
                              report.stages.verify_us);
  }
  return report;
}

QuarantineReport PolicyEnforcer::enforce_with_quarantine(
    net::Network& production, const std::vector<cfg::ConfigChange>& changes,
    const priv::PrivilegeSpec& privileges, util::VirtualClock& clock, const std::string& actor) {
  return enforce_with_quarantine(production, changes, privileges, clock, actor,
                                 SubmissionApprovals{});
}

QuarantineReport PolicyEnforcer::enforce_with_quarantine(
    net::Network& production, const std::vector<cfg::ConfigChange>& changes,
    const priv::PrivilegeSpec& privileges, util::VirtualClock& clock, const std::string& actor,
    const SubmissionApprovals& approvals) {
  ChainContext ctx = make_chain(production);
  return quarantine_one(production, ctx, changes, privileges, clock, actor, approvals);
}

std::vector<std::size_t> PolicyEnforcer::form_wave(const std::vector<BatchSubmission>& batch,
                                                   std::size_t pos,
                                                   const ChainContext& ctx) const {
  std::vector<std::size_t> wave{pos};
  // Footprint-disjointness needs the dense per-pair paths; a sharded
  // (fabric-scale) baseline has only class-representative paths, so every
  // submission runs solo — correct, just without coalescing.
  if (!options_.coalesce_waves || pos + 1 >= batch.size() || !ctx.base.reachability) return wave;

  // Pair footprints come from the baseline matrix paths: a change on device
  // D can only move the cells of pairs whose recorded path crosses D — the
  // exact crossing rule ReachabilityMatrix::recompute() uses, so the
  // footprint is sound for TraceOnly/FibLocal changes. Global-impact
  // changes (interfaces/VLANs/OSPF) can move anything and always run solo.
  const std::vector<dp::PairReachability>& pairs = ctx.base.reachability->pairs();
  std::map<net::DeviceId, std::vector<std::size_t>> crossing;
  for (std::size_t i = 0; i < pairs.size(); ++i)
    for (const net::DeviceId& hop : pairs[i].path) crossing[hop].push_back(i);

  struct Footprint {
    bool global = false;
    std::set<net::DeviceId> devices;
    std::vector<std::size_t> pair_indices;
  };
  auto footprint_of = [&](const BatchSubmission& submission) {
    Footprint fp;
    for (const cfg::ConfigChange& change : submission.changes) {
      if (analysis::classify_impact(change) == analysis::Impact::Global) fp.global = true;
      fp.devices.insert(change.device);
    }
    std::set<std::size_t> touched;
    for (const net::DeviceId& device : fp.devices) {
      auto it = crossing.find(device);
      if (it == crossing.end()) continue;
      touched.insert(it->second.begin(), it->second.end());
    }
    fp.pair_indices.assign(touched.begin(), touched.end());
    return fp;
  };

  Footprint head = footprint_of(batch[pos]);
  if (head.global) return wave;
  std::set<net::DeviceId> union_devices = head.devices;
  std::vector<bool> union_pairs(pairs.size(), false);
  for (std::size_t i : head.pair_indices) union_pairs[i] = true;

  for (std::size_t next = pos + 1; next < batch.size(); ++next) {
    Footprint fp = footprint_of(batch[next]);
    if (fp.global) break;
    bool disjoint = true;
    for (const net::DeviceId& device : fp.devices)
      if (union_devices.count(device)) { disjoint = false; break; }
    if (disjoint)
      for (std::size_t i : fp.pair_indices)
        if (union_pairs[i]) { disjoint = false; break; }
    if (!disjoint) break;
    wave.push_back(next);
    union_devices.insert(fp.devices.begin(), fp.devices.end());
    for (std::size_t i : fp.pair_indices) union_pairs[i] = true;
  }
  return wave;
}

void PolicyEnforcer::process_wave(net::Network& production, ChainContext& ctx,
                                  const std::vector<BatchSubmission>& batch,
                                  const std::vector<std::size_t>& wave,
                                  util::VirtualClock& clock,
                                  std::vector<QuarantineReport>& reports) {
  obs::ScopedSpan span("enforcer.quarantine_wave", "enforcer",
                       {{"submissions", std::to_string(wave.size())}});
  obs::Registry::global().counter("enforcer.wave_submissions").add(wave.size());
  std::uint64_t audit_before = audit_elapsed_us();
  obs::EventJournal& journal = obs::EventJournal::global();

  // Phases 1–2 for every member run against the shared wave baseline. The
  // disjoint footprints make that exact: no member's changes can move the
  // matrix cells another member's attribution reads, so each verdict equals
  // the one a serialized run (with earlier members already applied) would
  // compute.
  std::vector<WaveMember> members;
  members.reserve(wave.size());
  for (std::size_t index : wave) {
    const BatchSubmission& submission = batch[index];
    obs::ScopedContextFrame frame(submission.context);
    util::Stopwatch member_watch;
    QuarantineReport& report = reports[index];
    ApprovalGate gate(ledger_.leader_enclave(), submission.approvals, submission.actor);
    std::vector<cfg::ConfigChange> candidates;
    for (const cfg::ConfigChange& change : submission.changes) {
      ChangeClassification classification = classify_change(change);
      priv::Decision decision =
          submission.privileges.evaluate(classification.action, classification.resource);
      if (!decision.allowed) {
        audit_event(clock, submission.actor, AuditCategory::Violation,
                    "quarantined (privilege): " + change.summary());
        report.quarantined.emplace_back(change, "privilege: " + decision.reason);
      } else if (auto blocked = gate.block_reason(classification.action)) {
        audit_event(clock, submission.actor, AuditCategory::Violation,
                    "quarantined (approval): " + change.summary());
        report.quarantined.emplace_back(change, *blocked);
      } else {
        candidates.push_back(change);
      }
    }

    std::vector<AttributionVerdict> verdicts = attribute_candidates(
        ctx.shadow, ctx.shadow, candidates, ctx.base, ctx.base_report, ctx.baseline_ids);

    WaveMember member;
    member.index = index;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const cfg::ConfigChange& change = candidates[i];
      switch (verdicts[i].kind) {
        case AttributionVerdict::Kind::ReplayError:
          audit_event(clock, submission.actor, AuditCategory::Violation,
                      "quarantined (replay): " + change.summary());
          report.quarantined.emplace_back(change, "replay: " + verdicts[i].detail);
          break;
        case AttributionVerdict::Kind::PolicyViolation: {
          std::string detail = "policy: " + verdicts[i].detail;
          audit_event(clock, submission.actor, AuditCategory::Violation,
                      "quarantined (" + detail + "): " + change.summary());
          report.quarantined.emplace_back(change, detail);
          break;
        }
        case AttributionVerdict::Kind::Clean:
          member.remainder.push_back(change);
          break;
      }
    }
    report.stages.verify_us += static_cast<std::uint64_t>(member_watch.elapsed_ms() * 1000.0);
    members.push_back(std::move(member));
  }

  // Coalesced phase 3: apply every surviving remainder to the single shadow
  // (session order within a member, members in submission order), then one
  // incremental analyze + one delta verification covers the whole wave.
  std::vector<cfg::ConfigChange> cumulative;
  auto rebuild_shadow = [&] {
    // Cold path for the unreachable no-inverse case: reconstruct the shadow
    // from production plus every still-pending remainder.
    ctx.shadow = production;
    for (const WaveMember& member : members)
      if (member.pending)
        for (const cfg::ConfigChange& change : member.remainder)
          cfg::apply_change(ctx.shadow, change);
  };

  for (WaveMember& member : members) {
    if (member.remainder.empty()) continue;
    const BatchSubmission& submission = batch[member.index];
    bool replay_ok = true;
    std::string replay_error;
    for (const cfg::ConfigChange& change : member.remainder) {
      std::optional<cfg::ConfigChange> inverse;
      try {
        inverse = cfg::invert_change(ctx.shadow, change);
      } catch (const util::Error&) {
      }
      try {
        cfg::apply_change(ctx.shadow, change);
      } catch (const util::Error& error) {
        replay_ok = false;
        replay_error = error.what();
        break;
      }
      if (inverse)
        member.inverses.push_back(*inverse);
      else
        member.invertible = false;
    }
    if (replay_ok) {
      member.pending = true;
      cumulative.insert(cumulative.end(), member.remainder.begin(), member.remainder.end());
    } else {
      // Peel this member's applied prefix back off; the other members'
      // applies stay (their devices are disjoint, so this member's failure
      // is independent of them — same outcome as a serialized run).
      if (member.invertible) {
        for (auto it = member.inverses.rbegin(); it != member.inverses.rend(); ++it)
          cfg::apply_change(ctx.shadow, *it);
      } else {
        rebuild_shadow();
      }
      member.inverses.clear();
      obs::ScopedContextFrame frame(submission.context);
      audit_event(clock, submission.actor, AuditCategory::Verify,
                  "remainder rejected (replay): " + replay_error);
      for (const cfg::ConfigChange& change : member.remainder) {
        reports[member.index].quarantined.emplace_back(change, "replay: " + replay_error);
      }
      member.remainder.clear();
    }
  }

  bool any_pending =
      std::any_of(members.begin(), members.end(), [](const WaveMember& m) { return m.pending; });
  if (any_pending) {
    std::size_t pending_count = static_cast<std::size_t>(std::count_if(
        members.begin(), members.end(), [](const WaveMember& m) { return m.pending; }));
    util::Stopwatch joint_watch;
    analysis::Snapshot joint = policies_.engine().analyze(ctx.shadow, ctx.base, cumulative);
    spec::VerificationReport joint_report = policies_.verify_incremental(joint, ctx.base_report);
    std::uint64_t joint_us = static_cast<std::uint64_t>(joint_watch.elapsed_ms() * 1000.0);
    // Each pending member owes an even share of the coalesced check whether
    // the wave holds or splits — the split path's extra solo checks are
    // timed separately below.
    for (const WaveMember& member : members)
      if (member.pending) reports[member.index].stages.verify_us += joint_us / pending_count;
    if (!introduces_new_violation(joint_report, ctx.baseline_ids, nullptr)) {
      // The coalesced state is clean; by disjointness every member's solo
      // joint state is too, so all of them apply.
      for (WaveMember& member : members) {
        if (!member.pending) continue;
        const BatchSubmission& submission = batch[member.index];
        obs::ScopedContextFrame frame(submission.context);
        obs::ScopedSpan schedule_span("enforcer.schedule", "enforcer");
        for (const cfg::ConfigChange& change : schedule_changes(member.remainder)) {
          cfg::apply_change(production, change);
          audit_event(clock, submission.actor, AuditCategory::Schedule,
                      "applied: " + change.summary());
          reports[member.index].applied_changes.push_back(change);
        }
        reports[member.index].applied_any = true;
      }
      ctx.base = std::move(joint);
      ctx.base_report = std::move(joint_report);
      ctx.baseline_ids = ctx.base_report.violated_ids();
      obs::Registry::global().counter("enforcer.waves_coalesced").add();
      if (journal.enabled()) {
        journal.append_in_context(obs::EventType::WaveCoalesce, "enforcer",
                                  std::to_string(pending_count) +
                                      " submissions verified in one coalesced analyze",
                                  joint_us);
      }
    } else {
      // Some member's remainder violates jointly (a combination-only
      // violation inside that member). Peel every pending remainder off the
      // shadow and fall back to per-member joint checks — exactly the
      // serialized phase 3, so the reports stay oracle-identical.
      obs::Registry::global().counter("enforcer.waves_split").add();
      if (journal.enabled()) {
        journal.append_in_context(obs::EventType::WaveSplit, "enforcer",
                                  "coalesced check violated; per-member joint checks for " +
                                      std::to_string(pending_count) + " submissions",
                                  joint_us);
      }
      bool all_invertible = std::all_of(members.begin(), members.end(), [](const WaveMember& m) {
        return !m.pending || m.invertible;
      });
      if (all_invertible) {
        for (auto mit = members.rbegin(); mit != members.rend(); ++mit) {
          if (!mit->pending) continue;
          for (auto it = mit->inverses.rbegin(); it != mit->inverses.rend(); ++it)
            cfg::apply_change(ctx.shadow, *it);
        }
      } else {
        ctx.shadow = production;
      }
      for (WaveMember& member : members) {
        if (!member.pending) continue;
        member.pending = false;
        const BatchSubmission& submission = batch[member.index];
        obs::ScopedContextFrame frame(submission.context);
        QuarantineReport& report = reports[member.index];
        bool replay_ok = true;
        bool invertible = true;
        std::string replay_error;
        std::vector<cfg::ConfigChange> inverses;
        for (const cfg::ConfigChange& change : member.remainder) {
          std::optional<cfg::ConfigChange> inverse;
          try {
            inverse = cfg::invert_change(ctx.shadow, change);
          } catch (const util::Error&) {
          }
          try {
            cfg::apply_change(ctx.shadow, change);
          } catch (const util::Error& error) {
            replay_ok = false;
            replay_error = error.what();
            break;
          }
          if (inverse)
            inverses.push_back(*inverse);
          else
            invertible = false;
        }
        auto revert_member = [&] {
          if (invertible) {
            for (auto it = inverses.rbegin(); it != inverses.rend(); ++it)
              cfg::apply_change(ctx.shadow, *it);
          } else {
            ctx.shadow = production;
          }
        };
        bool member_clean = false;
        analysis::Snapshot solo;
        spec::VerificationReport solo_report;
        if (replay_ok) {
          util::Stopwatch solo_watch;
          solo = policies_.engine().analyze(ctx.shadow, ctx.base, member.remainder);
          solo_report = policies_.verify_incremental(solo, ctx.base_report);
          member_clean = !introduces_new_violation(solo_report, ctx.baseline_ids, nullptr);
          report.stages.verify_us +=
              static_cast<std::uint64_t>(solo_watch.elapsed_ms() * 1000.0);
        }
        if (replay_ok && member_clean) {
          obs::ScopedSpan schedule_span("enforcer.schedule", "enforcer");
          for (const cfg::ConfigChange& change : schedule_changes(member.remainder)) {
            cfg::apply_change(production, change);
            audit_event(clock, submission.actor, AuditCategory::Schedule,
                        "applied: " + change.summary());
            report.applied_changes.push_back(change);
          }
          report.applied_any = true;
          ctx.base = std::move(solo);
          ctx.base_report = std::move(solo_report);
          ctx.baseline_ids = ctx.base_report.violated_ids();
        } else if (replay_ok) {
          revert_member();
          for (const cfg::ConfigChange& change : member.remainder) {
            report.quarantined.emplace_back(change, "combination violates policies");
          }
          audit_event(clock, submission.actor, AuditCategory::Verify,
                      "remainder rejected: combination violates policies");
        } else {
          revert_member();
          audit_event(clock, submission.actor, AuditCategory::Verify,
                      "remainder rejected (replay): " + replay_error);
          for (const cfg::ConfigChange& change : member.remainder) {
            report.quarantined.emplace_back(change, "replay: " + replay_error);
          }
        }
      }
    }
  }

  // Per-submission round summaries, in submission order (matching what a
  // serialized run audits after each submission).
  for (const WaveMember& member : members) {
    const BatchSubmission& submission = batch[member.index];
    const QuarantineReport& report = reports[member.index];
    obs::ScopedContextFrame frame(submission.context);
    obs::Registry::global().counter("enforcer.changes_applied").add(report.applied_changes.size());
    obs::Registry::global()
        .counter("enforcer.changes_quarantined")
        .add(report.quarantined.size());
    audit_event(clock, submission.actor, AuditCategory::Verify,
                "quarantine round: " + std::to_string(report.applied_changes.size()) +
                    " applied, " + std::to_string(report.quarantined.size()) + " intercepted");
    if (journal.enabled()) {
      for (const auto& [change, reason] : report.quarantined)
        journal_quarantine(submission.actor, reason, change);
      journal.append_in_context(obs::EventType::VerifyVerdict, submission.actor,
                                std::to_string(report.applied_changes.size()) + " applied, " +
                                    std::to_string(report.quarantined.size()) + " intercepted",
                                report.stages.verify_us);
    }
  }

  // The chain appends interleave across members, so the audit share is an
  // even split of the wave's total.
  std::uint64_t audit_share = (audit_elapsed_us() - audit_before) / wave.size();
  for (const WaveMember& member : members) reports[member.index].stages.audit_us = audit_share;
}

std::vector<QuarantineReport> PolicyEnforcer::enforce_with_quarantine_batch(
    net::Network& production, const std::vector<BatchSubmission>& batch,
    util::VirtualClock& clock) {
  std::vector<QuarantineReport> reports(batch.size());
  if (batch.empty()) return reports;
  obs::ScopedSpan span("enforcer.quarantine_batch", "enforcer",
                       {{"submissions", std::to_string(batch.size())}});
  obs::Registry::global().counter("enforcer.batches").add();
  obs::Registry::global().counter("enforcer.batch_submissions").add(batch.size());

  // One full baseline analysis serves the whole batch; every submission
  // after that verifies incrementally off the chained context.
  util::Stopwatch baseline_watch;
  ChainContext ctx = make_chain(production);
  std::uint64_t baseline_share =
      static_cast<std::uint64_t>(baseline_watch.elapsed_ms() * 1000.0) / batch.size();
  std::size_t pos = 0;
  while (pos < batch.size()) {
    std::vector<std::size_t> wave = form_wave(batch, pos, ctx);
    if (wave.size() == 1) {
      const BatchSubmission& submission = batch[pos];
      obs::ScopedContextFrame frame(submission.context);
      reports[pos] = quarantine_one(production, ctx, submission.changes, submission.privileges,
                                    clock, submission.actor, submission.approvals);
    } else {
      process_wave(production, ctx, batch, wave, clock, reports);
    }
    pos += wave.size();
  }
  for (QuarantineReport& report : reports) report.stages.analyze_us = baseline_share;
  return reports;
}

QuarantineReport PolicyEnforcer::enforce_with_quarantine_reference(
    net::Network& production, const std::vector<cfg::ConfigChange>& changes,
    const priv::PrivilegeSpec& privileges, util::VirtualClock& clock, const std::string& actor) {
  return enforce_with_quarantine_reference(production, changes, privileges, clock, actor,
                                           SubmissionApprovals{});
}

QuarantineReport PolicyEnforcer::enforce_with_quarantine_reference(
    net::Network& production, const std::vector<cfg::ConfigChange>& changes,
    const priv::PrivilegeSpec& privileges, util::VirtualClock& clock, const std::string& actor,
    const SubmissionApprovals& approvals) {
  obs::ScopedSpan span("enforcer.quarantine_reference", "enforcer",
                       {{"actor", actor}, {"changes", std::to_string(changes.size())}});
  QuarantineReport report;

  obs::SpanId verify_span = obs::tracer().begin("enforcer.verify", "enforcer");

  // 1. Privilege compliance per change, then the m-of-n approval gate —
  //    the same order and reasons as the incremental pipeline's phase 1.
  ApprovalGate gate(ledger_.leader_enclave(), approvals, actor);
  std::vector<cfg::ConfigChange> candidates;
  for (const cfg::ConfigChange& change : changes) {
    ChangeClassification classification = classify_change(change);
    priv::Decision decision = privileges.evaluate(classification.action, classification.resource);
    if (!decision.allowed) {
      audit_event(clock, actor, AuditCategory::Violation,
                  "quarantined (privilege): " + change.summary());
      report.quarantined.emplace_back(change, "privilege: " + decision.reason);
    } else if (auto blocked = gate.block_reason(classification.action)) {
      audit_event(clock, actor, AuditCategory::Violation,
                  "quarantined (approval): " + change.summary());
      report.quarantined.emplace_back(change, *blocked);
    } else {
      candidates.push_back(change);
    }
  }

  std::vector<std::string> baseline = policies_.verify_network(production).violated_ids();

  // 2. Individual policy attribution, the expensive way: copy the whole
  //    production network and run a from-scratch verification per change.
  std::vector<cfg::ConfigChange> remainder;
  for (const cfg::ConfigChange& change : candidates) {
    net::Network shadow = production;
    bool replayable = true;
    try {
      cfg::apply_change(shadow, change);
    } catch (const util::Error& error) {
      audit_event(clock, actor, AuditCategory::Violation,
                  "quarantined (replay): " + change.summary());
      report.quarantined.emplace_back(change, std::string("replay: ") + error.what());
      replayable = false;
    }
    if (!replayable) continue;
    std::string which;
    if (introduces_new_violation(policies_.verify_network(shadow), baseline, &which)) {
      std::string detail = "policy: " + which;
      audit_event(clock, actor, AuditCategory::Violation,
                  "quarantined (" + detail + "): " + change.summary());
      report.quarantined.emplace_back(change, detail);
    } else {
      remainder.push_back(change);
    }
  }

  // 3. Joint verification of the remainder.
  if (!remainder.empty()) {
    net::Network shadow = production;
    bool replay_ok = true;
    std::string replay_error;
    try {
      cfg::apply_changes(shadow, remainder);
    } catch (const util::Error& error) {
      replay_ok = false;
      replay_error = error.what();
    }
    if (replay_ok &&
        !introduces_new_violation(policies_.verify_network(shadow), baseline, nullptr)) {
      obs::tracer().end(verify_span);
      verify_span = 0;
      obs::ScopedSpan schedule_span("enforcer.schedule", "enforcer");
      for (const cfg::ConfigChange& change : schedule_changes(remainder)) {
        cfg::apply_change(production, change);
        audit_event(clock, actor, AuditCategory::Schedule, "applied: " + change.summary());
        report.applied_changes.push_back(change);
      }
      report.applied_any = true;
    } else if (replay_ok) {
      for (const cfg::ConfigChange& change : remainder) {
        report.quarantined.emplace_back(change, "combination violates policies");
      }
      audit_event(clock, actor, AuditCategory::Verify,
                  "remainder rejected: combination violates policies");
    } else {
      audit_event(clock, actor, AuditCategory::Verify,
                  "remainder rejected (replay): " + replay_error);
      for (const cfg::ConfigChange& change : remainder) {
        report.quarantined.emplace_back(change, "replay: " + replay_error);
      }
    }
  }

  obs::tracer().end(verify_span);
  obs::Registry::global().counter("enforcer.changes_applied").add(report.applied_changes.size());
  obs::Registry::global().counter("enforcer.changes_quarantined").add(report.quarantined.size());
  span.arg("applied", std::to_string(report.applied_changes.size()));
  span.arg("quarantined", std::to_string(report.quarantined.size()));
  audit_event(clock, actor, AuditCategory::Verify,
              "quarantine round: " + std::to_string(report.applied_changes.size()) +
                  " applied, " + std::to_string(report.quarantined.size()) + " intercepted");
  return report;
}

EmergencyResult PolicyEnforcer::emergency_execute(net::Network& production,
                                                  std::string_view command_line,
                                                  const priv::PrivilegeSpec& privileges,
                                                  util::VirtualClock& clock,
                                                  const std::string& actor) {
  obs::ScopedSpan span("enforcer.emergency", "enforcer", {{"actor", actor}});
  obs::Registry::global().counter("enforcer.emergency_commands").add();
  EmergencyResult result;
  twin::ParsedCommand command = twin::parse_command(command_line);

  priv::Decision decision = privileges.evaluate(command.action, command.resource);
  if (!decision.allowed) {
    audit_event(clock, actor, AuditCategory::Violation,
                "emergency command DENIED: " + command.raw + " (" + decision.reason + ")");
    result.output = "DENIED: " + decision.reason;
    return result;
  }
  result.permitted = true;

  // Execute against a shadow first; verify; only then touch production.
  twin::EmulationLayer shadow(production);
  twin::CommandResult executed = shadow.execute(command);
  result.output = executed.output;
  if (!executed.ok) {
    audit_event(clock, actor, AuditCategory::Command,
                "emergency command failed in shadow: " + command.raw);
    return result;
  }

  spec::VerificationReport report = policies_.verify_network(shadow.network());
  if (!report.ok()) {
    for (const spec::Violation& violation : report.violations)
      result.rejection_reasons.push_back(violation.policy.to_string() + ": " + violation.detail);
    audit_event(clock, actor, AuditCategory::Violation,
                "emergency command rolled back (policy violations): " + command.raw);
    return result;
  }

  for (const cfg::ConfigChange& change : executed.changes)
    cfg::apply_change(production, change);
  result.applied = true;
  audit_event(clock, actor, AuditCategory::Command, "emergency command applied: " + command.raw);
  return result;
}

AttestationReport PolicyEnforcer::attest() const {
  std::lock_guard<std::mutex> lock(audit_mutex_);
  return ledger_.leader_enclave().attest(util::to_hex(ledger_.leader_log().head()));
}

bool PolicyEnforcer::audit_intact() const {
  std::lock_guard<std::mutex> lock(audit_mutex_);
  return ledger_.intact();
}

std::vector<std::string> PolicyEnforcer::audit_problems() const {
  std::lock_guard<std::mutex> lock(audit_mutex_);
  return ledger_.problems();
}

PolicyEnforcer::LedgerStats PolicyEnforcer::ledger_stats() const {
  std::lock_guard<std::mutex> lock(audit_mutex_);
  return {ledger_.replica_count(), ledger_.commits(), ledger_.quorum_failures(),
          ledger_.rejected_acks()};
}

}  // namespace heimdall::enforce
