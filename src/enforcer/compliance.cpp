#include "enforcer/compliance.hpp"

namespace heimdall::enforce {

using namespace heimdall::cfg;
using priv::Action;
using priv::Resource;

namespace {

struct ClassifyVisitor {
  const net::DeviceId& device;

  ChangeClassification operator()(const InterfaceAdminChange& c) const {
    return {c.new_shutdown ? Action::InterfaceDown : Action::InterfaceUp,
            Resource::interface(device, c.iface)};
  }
  ChangeClassification operator()(const InterfaceAddressChange& c) const {
    return {Action::SetInterfaceAddress, Resource::interface(device, c.iface)};
  }
  ChangeClassification operator()(const InterfaceAclBindingChange& c) const {
    return {Action::BindAcl, Resource::interface(device, c.iface)};
  }
  ChangeClassification operator()(const SwitchportChange& c) const {
    return {Action::SetSwitchport, Resource::interface(device, c.iface)};
  }
  ChangeClassification operator()(const OspfCostChange& c) const {
    return {Action::SetOspfCost, Resource::interface(device, c.iface)};
  }
  ChangeClassification operator()(const AclEntryAdd& c) const {
    return {Action::AclEdit, Resource::acl(device, c.acl)};
  }
  ChangeClassification operator()(const AclEntryRemove& c) const {
    return {Action::AclEdit, Resource::acl(device, c.acl)};
  }
  ChangeClassification operator()(const AclCreate& c) const {
    return {Action::AclCreate, Resource::acl(device, c.acl.name)};
  }
  ChangeClassification operator()(const AclDelete& c) const {
    return {Action::AclDelete, Resource::acl(device, c.name)};
  }
  ChangeClassification operator()(const StaticRouteAdd&) const {
    return {Action::StaticRouteAdd, Resource::routes(device)};
  }
  ChangeClassification operator()(const StaticRouteRemove&) const {
    return {Action::StaticRouteRemove, Resource::routes(device)};
  }
  ChangeClassification operator()(const OspfNetworkAdd&) const {
    return {Action::OspfNetworkEdit, Resource::ospf(device)};
  }
  ChangeClassification operator()(const OspfNetworkRemove&) const {
    return {Action::OspfNetworkEdit, Resource::ospf(device)};
  }
  ChangeClassification operator()(const OspfProcessChange&) const {
    return {Action::OspfProcessEdit, Resource::ospf(device)};
  }
  ChangeClassification operator()(const VlanDeclare& c) const {
    return {Action::VlanEdit, Resource::vlan(device, c.vlan)};
  }
  ChangeClassification operator()(const VlanRemove& c) const {
    return {Action::VlanEdit, Resource::vlan(device, c.vlan)};
  }
  ChangeClassification operator()(const SecretChange& c) const {
    return {Action::ChangeSecret, Resource::secret(device, c.field)};
  }
};

}  // namespace

ChangeClassification classify_change(const ConfigChange& change) {
  return std::visit(ClassifyVisitor{change.device}, change.detail);
}

std::vector<PrivilegeViolation> check_privilege_compliance(
    const std::vector<ConfigChange>& changes, const priv::PrivilegeSpec& privileges) {
  std::vector<PrivilegeViolation> violations;
  for (const ConfigChange& change : changes) {
    ChangeClassification classification = classify_change(change);
    priv::Decision decision =
        privileges.evaluate(classification.action, classification.resource);
    if (!decision.allowed) {
      violations.push_back({change, classification, decision.reason});
    }
  }
  return violations;
}

}  // namespace heimdall::enforce
