#include "enforcer/scheduler.hpp"

#include <algorithm>
#include <map>

#include "util/error.hpp"

namespace heimdall::enforce {

using namespace heimdall::cfg;

std::vector<ConfigChange> SchedulePlan::ordered_changes() const {
  std::vector<ConfigChange> out;
  out.reserve(steps.size());
  for (const ScheduledStep& step : steps) out.push_back(step.change);
  return out;
}

std::size_t SchedulePlan::transient_violation_count() const {
  std::size_t total = 0;
  for (const ScheduledStep& step : steps) total += step.transient_violations.size();
  return total;
}

namespace {

struct PriorityVisitor {
  int operator()(const VlanDeclare&) const { return 0; }
  int operator()(const AclCreate&) const { return 0; }
  int operator()(const InterfaceAdminChange& c) const { return c.new_shutdown ? 3 : 1; }
  int operator()(const InterfaceAddressChange& c) const { return c.new_address ? 1 : 3; }
  int operator()(const AclEntryAdd& c) const {
    return c.entry.action == net::AclEntry::Action::Permit ? 1 : 3;
  }
  int operator()(const AclEntryRemove& c) const {
    // Removing a deny restores connectivity; removing a permit takes it away.
    return c.entry.action == net::AclEntry::Action::Deny ? 1 : 3;
  }
  int operator()(const StaticRouteAdd&) const { return 1; }
  int operator()(const OspfNetworkAdd&) const { return 1; }
  int operator()(const OspfCostChange&) const { return 2; }
  int operator()(const SwitchportChange&) const { return 2; }
  int operator()(const InterfaceAclBindingChange& c) const { return c.new_acl.empty() ? 1 : 2; }
  int operator()(const OspfProcessChange& c) const { return c.new_process ? 1 : 3; }
  int operator()(const StaticRouteRemove&) const { return 3; }
  int operator()(const OspfNetworkRemove&) const { return 3; }
  int operator()(const AclDelete&) const { return 3; }
  int operator()(const VlanRemove&) const { return 3; }
  int operator()(const SecretChange&) const { return 4; }
};

/// Key grouping changes that must keep their relative order.
std::string atomic_group_key(const ConfigChange& change) {
  if (const auto* add = std::get_if<AclEntryAdd>(&change.detail))
    return change.device.str() + "|acl|" + add->acl;
  if (const auto* remove = std::get_if<AclEntryRemove>(&change.detail))
    return change.device.str() + "|acl|" + remove->acl;
  return "";  // independent
}

}  // namespace

int change_priority(const ConfigChange& change) {
  return std::visit(PriorityVisitor{}, change.detail);
}

std::vector<ConfigChange> schedule_changes(const std::vector<ConfigChange>& changes) {
  // Build scheduling units: single changes, or per-ACL sequences kept atomic.
  struct Unit {
    int priority;
    std::size_t first_index;  // stable tiebreak
    std::vector<ConfigChange> members;
  };
  std::vector<Unit> units;
  std::map<std::string, std::size_t> group_index;

  for (std::size_t i = 0; i < changes.size(); ++i) {
    const ConfigChange& change = changes[i];
    std::string key = atomic_group_key(change);
    int priority = change_priority(change);
    if (key.empty()) {
      units.push_back({priority, i, {change}});
      continue;
    }
    auto it = group_index.find(key);
    if (it == group_index.end()) {
      group_index[key] = units.size();
      units.push_back({priority, i, {change}});
    } else {
      Unit& unit = units[it->second];
      unit.priority = std::min(unit.priority, priority);
      unit.members.push_back(change);
    }
  }

  std::stable_sort(units.begin(), units.end(), [](const Unit& a, const Unit& b) {
    if (a.priority != b.priority) return a.priority < b.priority;
    return a.first_index < b.first_index;
  });

  std::vector<ConfigChange> out;
  out.reserve(changes.size());
  for (const Unit& unit : units)
    out.insert(out.end(), unit.members.begin(), unit.members.end());
  return out;
}

namespace {

/// Marker recorded for steps after a replay failure: the shadow is no
/// longer a state the production network would ever pass through, so
/// checking (or applying) further steps against it misattributes
/// violations.
constexpr const char* kUncheckedAfterReplayError = "unchecked: aborted after replay error";

}  // namespace

SchedulePlan check_plan_order(const net::Network& production,
                              const std::vector<ConfigChange>& ordered,
                              const spec::PolicyVerifier& invariants) {
  SchedulePlan plan;
  if (ordered.empty()) return plan;
  net::Network shadow = production;
  analysis::Engine& engine = invariants.engine();
  analysis::Snapshot snapshot = engine.analyze(production);
  spec::VerificationReport last_report = invariants.verify(*snapshot.view());
  bool aborted = false;
  for (const ConfigChange& change : ordered) {
    ScheduledStep step;
    step.change = change;
    if (aborted) {
      step.transient_violations.push_back(kUncheckedAfterReplayError);
      plan.steps.push_back(std::move(step));
      continue;
    }
    try {
      cfg::apply_change(shadow, change);
      analysis::Snapshot next = engine.analyze(shadow, snapshot, {change});
      spec::VerificationReport report = invariants.verify_incremental(next, last_report);
      step.transient_violations = report.violated_ids();
      snapshot = std::move(next);
      last_report = std::move(report);
    } catch (const util::Error& error) {
      step.transient_violations.push_back(std::string("replay-error: ") + error.what());
      aborted = true;
    }
    plan.steps.push_back(std::move(step));
  }
  return plan;
}

SchedulePlan check_plan_order_reference(const net::Network& production,
                                        const std::vector<ConfigChange>& ordered,
                                        const spec::PolicyVerifier& invariants) {
  SchedulePlan plan;
  net::Network shadow = production;
  bool aborted = false;
  for (const ConfigChange& change : ordered) {
    ScheduledStep step;
    step.change = change;
    if (aborted) {
      step.transient_violations.push_back(kUncheckedAfterReplayError);
      plan.steps.push_back(std::move(step));
      continue;
    }
    try {
      cfg::apply_change(shadow, change);
      spec::VerificationReport report = invariants.verify_network(shadow);
      step.transient_violations = report.violated_ids();
    } catch (const util::Error& error) {
      step.transient_violations.push_back(std::string("replay-error: ") + error.what());
      aborted = true;
    }
    plan.steps.push_back(std::move(step));
  }
  return plan;
}

SchedulePlan build_plan(const net::Network& production, const std::vector<ConfigChange>& changes,
                        const spec::PolicyVerifier& invariants, bool check_transients) {
  std::vector<ConfigChange> ordered = schedule_changes(changes);
  if (check_transients) return check_plan_order(production, ordered, invariants);
  SchedulePlan plan;
  for (ConfigChange& change : ordered) plan.steps.push_back({std::move(change), {}});
  return plan;
}

}  // namespace heimdall::enforce
