// Tamper-evident audit trail (paper challenge 3: "provide tamper-resistant
// audit trails ... that can be reviewed later to analyze a technician's
// network modifications").
//
// Implementation: a SHA-256 hash chain. Each entry's hash covers its own
// content plus the previous entry's hash, so any in-place edit, deletion or
// reorder invalidates every later hash. The chain head is sealed inside the
// (simulated) enclave, making silent truncation detectable too.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/sha256.hpp"

namespace heimdall::enforce {

/// What kind of event an entry records.
enum class AuditCategory : std::uint8_t {
  Session,     ///< twin session opened/closed
  Command,     ///< a mediated technician command (with its decision)
  Escalation,  ///< privilege escalation request and verdict
  Verify,      ///< enforcer verification outcome
  Schedule,    ///< a change pushed to production
  Violation,   ///< an intercepted privilege/policy violation
};

std::string to_string(AuditCategory category);

/// One immutable audit record.
struct AuditEntry {
  std::uint64_t sequence = 0;
  std::int64_t timestamp_ms = 0;  ///< virtual-clock time
  std::string actor;              ///< technician / enforcer identity
  AuditCategory category = AuditCategory::Command;
  std::string message;
  util::Sha256Digest previous_hash{};
  util::Sha256Digest hash{};

  /// Canonical byte string covered by `hash` (excluding `hash` itself).
  std::string canonical() const;
};

/// Append-only hash-chained log.
class AuditLog {
 public:
  AuditLog() = default;

  /// Appends an entry, chaining it to the current head. Returns the entry.
  const AuditEntry& append(std::int64_t timestamp_ms, std::string actor, AuditCategory category,
                           std::string message);

  const std::vector<AuditEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }

  /// Hash of the last entry (all-zero when empty).
  util::Sha256Digest head() const;

  /// Walks the chain; true iff every link verifies.
  bool verify_chain() const;

  /// Index of the first corrupt entry, or size() when intact.
  std::size_t first_corrupt_index() const;

  /// True when `expected_head` matches the current head — detects
  /// truncation when the expected head is stored elsewhere (the enclave).
  bool matches_head(const util::Sha256Digest& expected_head) const {
    return head() == expected_head;
  }

  /// JSON export for offline review.
  util::Json to_json() const;

  /// Rebuilds a log from its JSON export (offline forensics: an auditor
  /// loads the shipped log and re-verifies the chain). Throws ParseError on
  /// malformed documents; the *chain* is not validated here — call
  /// verify_chain()/matches_head() afterwards, that is the point.
  static AuditLog from_json(const util::Json& document);

  /// TAMPERING HOOK (tests only): direct mutable access to entries.
  std::vector<AuditEntry>& mutable_entries_for_test() { return entries_; }

 private:
  std::vector<AuditEntry> entries_;
};

}  // namespace heimdall::enforce
