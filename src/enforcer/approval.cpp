#include "enforcer/approval.hpp"

#include <algorithm>

#include "util/sha256.hpp"

namespace heimdall::enforce {

std::string approval_statement(const priv::Approval& approval) {
  return "approval|" + approval.principal + "|" + priv::to_string(approval.role) + "|" +
         approval.subject;
}

priv::Approval make_attested_approval(const SimulatedEnclave& enclave,
                                      const std::string& principal, priv::PrincipalRole role,
                                      const std::string& subject) {
  priv::Approval approval;
  approval.principal = principal;
  approval.role = role;
  approval.subject = subject;
  approval.signature = util::to_hex(enclave.attest(approval_statement(approval)).mac);
  return approval;
}

bool verify_attested_approval(const SimulatedEnclave& enclave, const priv::Approval& approval) {
  return approval.signature == util::to_hex(enclave.attest(approval_statement(approval)).mac);
}

priv::ApprovalCheck check_submission_approvals(const SimulatedEnclave& enclave,
                                               const SubmissionApprovals& approvals,
                                               const std::string& requester) {
  return priv::check_approvals(
      approvals.approvals, requester, approvals.subject, approvals.min_required,
      [&](const priv::Approval& approval) { return verify_attested_approval(enclave, approval); });
}

bool needs_approval(priv::Action action, priv::TaskClass task) {
  if (priv::is_high_impact(action)) return true;
  if (!priv::is_mutating(action)) return false;
  const std::vector<priv::Action>& compatible = priv::mutating_actions_for(task);
  return std::find(compatible.begin(), compatible.end(), action) == compatible.end();
}

}  // namespace heimdall::enforce
