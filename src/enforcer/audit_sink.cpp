#include "enforcer/audit_sink.hpp"

#include <algorithm>
#include <functional>
#include <mutex>
#include <thread>

#include "obs/metrics.hpp"

namespace heimdall::enforce {

AuditSink::AuditSink(std::size_t shards) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) shards_.push_back(std::make_unique<Shard>());
}

AuditSink::Shard& AuditSink::shard_for_thread() {
  std::size_t index =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % shards_.size();
  return *shards_[index];
}

void AuditSink::record(std::int64_t timestamp_ms, std::string actor, AuditCategory category,
                       std::string message) {
  Staged staged;
  staged.timestamp_ms = timestamp_ms;
  staged.actor = std::move(actor);
  staged.category = category;
  staged.message = std::move(message);
  Shard& shard = shard_for_thread();
  std::lock_guard<std::mutex> lock(shard.mutex);
  // Stamp under the shard mutex: flush_into() holds every shard mutex while
  // draining, so a stamped event is always published before any flush that
  // could append a later stamp (see the header's ordering invariant).
  staged.stamp = next_stamp_.fetch_add(1, std::memory_order_relaxed);
  if (record_pause_) record_pause_();
  shard.staged.push_back(std::move(staged));
}

std::size_t AuditSink::flush_into(AuditLog& chain) {
  // All shard locks, in index order (record() only ever takes one, so the
  // ordered sweep cannot deadlock), before draining any shard.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (auto& shard : shards_) locks.emplace_back(shard->mutex);
  std::vector<Staged> merged;
  for (auto& shard : shards_) {
    merged.insert(merged.end(), std::make_move_iterator(shard->staged.begin()),
                  std::make_move_iterator(shard->staged.end()));
    shard->staged.clear();
  }
  locks.clear();
  std::sort(merged.begin(), merged.end(),
            [](const Staged& a, const Staged& b) { return a.stamp < b.stamp; });
  for (Staged& staged : merged) {
    chain.append(staged.timestamp_ms, std::move(staged.actor), staged.category,
                 std::move(staged.message));
  }
  obs::Registry::global().counter("audit.sink_flushed").add(merged.size());
  return merged.size();
}

std::size_t AuditSink::pending() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->staged.size();
  }
  return total;
}

}  // namespace heimdall::enforce
