// Sharded, mutex-striped staging buffer in front of the audit hash chain.
//
// The chain itself is inherently serial: every append hashes over the
// previous head, and the enforcer reseals the head in the enclave after each
// append. With many concurrent sessions that serialization (plus a SHA-256 +
// HMAC per event) becomes the hot lock. The sink decouples event *recording*
// from chain *sealing*: record() stamps the event with a global atomic
// sequence and pushes it onto one of K mutex-striped shards — no hashing, no
// shared tail — and flush_into() merges the shards by stamp and appends them
// to the chain in one pass, paying the hash walk and a single reseal at seal
// time (batch boundaries, drain, shutdown).
//
// The stamp order is the total order auditors see; it is assigned inside
// record() so the chain reflects the real interleaving of sessions even
// though the shards fill independently.
//
// Ordering invariant: a stamp is only ever taken while holding the writer's
// shard mutex, and flush_into() holds *every* shard mutex while draining.
// Together those guarantee the drained set is a stamp-prefix: no record()
// can sit between taking a stamp and publishing it while a flush runs, so
// chain order equals stamp order across flush boundaries. (Either half
// alone is insufficient — a stamp taken before the lock can lose the race
// to a later-stamped entry in an earlier flush.)
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "enforcer/audit.hpp"

namespace heimdall::enforce {

class AuditSink {
 public:
  /// `shards` stripes the staging mutexes (clamped to >= 1).
  explicit AuditSink(std::size_t shards = 8);

  AuditSink(const AuditSink&) = delete;
  AuditSink& operator=(const AuditSink&) = delete;

  /// Stages one event. Thread-safe; costs one atomic increment and one
  /// striped mutex push. `timestamp_ms` is virtual-clock time as in
  /// AuditLog::append.
  void record(std::int64_t timestamp_ms, std::string actor, AuditCategory category,
              std::string message);

  /// Drains every shard, merges the staged events by stamp and appends them
  /// to `chain` in that order. Returns the number of entries appended. The
  /// caller owns `chain`'s synchronization (the enforcer holds its audit
  /// mutex across the flush and reseals once afterwards).
  std::size_t flush_into(AuditLog& chain);

  /// Staged events not yet flushed (approximate under concurrency).
  std::size_t pending() const;

  std::size_t shard_count() const { return shards_.size(); }

  /// TEST HOOK: invoked inside record()'s critical section, after the stamp
  /// is taken and before the event is published to its shard. Lets the
  /// stamp-order regression test hold a writer at the exact point the old
  /// stamp-before-lock window used to open. Set before spawning writers.
  void set_record_pause_for_test(std::function<void()> hook) {
    record_pause_ = std::move(hook);
  }

 private:
  struct Staged {
    std::uint64_t stamp = 0;
    std::int64_t timestamp_ms = 0;
    std::string actor;
    AuditCategory category = AuditCategory::Command;
    std::string message;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::vector<Staged> staged;
  };

  Shard& shard_for_thread();

  std::atomic<std::uint64_t> next_stamp_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
  std::function<void()> record_pause_;
};

}  // namespace heimdall::enforce
