// PolicyEnforcer: the trusted component between the twin network and the
// production network (paper §4.3). Verifies changesets, schedules approved
// changes, applies them to production, and keeps the tamper-evident audit
// trail whose head is sealed inside the (simulated) SGX enclave.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "enforcer/audit.hpp"
#include "enforcer/enclave.hpp"
#include "enforcer/scheduler.hpp"
#include "enforcer/verifier.hpp"
#include "twin/console.hpp"
#include "twin/emulation.hpp"
#include "util/clock.hpp"
#include "util/thread_pool.hpp"

namespace heimdall::enforce {

/// Result of one enforcement round.
struct EnforcementReport {
  VerifyOutcome verification;
  SchedulePlan plan;
  bool applied = false;
  std::vector<std::string> rejection_reasons;
};

/// Result of a quarantining enforcement round: legitimate changes applied,
/// violating ones intercepted individually (paper §3: "legitimate changes
/// are applied to the production network and violations are intercepted").
struct QuarantineReport {
  std::vector<cfg::ConfigChange> applied_changes;
  /// Intercepted changes with the reason each was quarantined.
  std::vector<std::pair<cfg::ConfigChange, std::string>> quarantined;
  /// False when even the non-quarantined remainder violated policies
  /// jointly and everything was rejected.
  bool applied_any = false;
};

/// Outcome of one emergency-mode command.
struct EmergencyResult {
  bool permitted = false;
  bool applied = false;
  std::string output;
  std::vector<std::string> rejection_reasons;
};

/// Tuning knobs for the enforcement hot path.
struct EnforcerOptions {
  /// Worker threads for per-change quarantine attribution (each round is
  /// independent: apply one candidate, verify, revert); <= 1 keeps the
  /// attribution sequential on a single shadow network.
  std::size_t attribution_threads = 1;
};

class PolicyEnforcer {
 public:
  /// `policies` are the mined network policies the enterprise pins;
  /// `technician`/`enclave` identities feed attestation and audit records.
  PolicyEnforcer(spec::PolicyVerifier policies, SimulatedEnclave enclave,
                 EnforcerOptions options = {});

  const spec::PolicyVerifier& policies() const { return policies_; }

  /// Verifies `changes` against `production` + `privileges`; on approval,
  /// schedules and applies them to `production` (with transient checking
  /// when `check_transients`). Every outcome is audited.
  EnforcementReport enforce(net::Network& production,
                            const std::vector<cfg::ConfigChange>& changes,
                            const priv::PrivilegeSpec& privileges, util::VirtualClock& clock,
                            const std::string& actor, bool check_transients = true);

  /// Like enforce(), but intercepts violating changes *individually* and
  /// applies the legitimate remainder: (1) privilege violations are
  /// quarantined, (2) each remaining change is tested alone against the
  /// policies and quarantined when it violates by itself, (3) the remainder
  /// is verified jointly — combination-only violations reject the remainder
  /// wholesale (no safe attribution exists in that case).
  QuarantineReport enforce_with_quarantine(net::Network& production,
                                           const std::vector<cfg::ConfigChange>& changes,
                                           const priv::PrivilegeSpec& privileges,
                                           util::VirtualClock& clock, const std::string& actor);

  /// Copy-per-change reference implementation of enforce_with_quarantine:
  /// a fresh shadow network and a from-scratch verification per candidate.
  /// Kept in-tree as the correctness oracle — the incremental pipeline must
  /// produce a bit-identical QuarantineReport (property-tested) — and as
  /// the baseline the ablation benchmarks compare against.
  QuarantineReport enforce_with_quarantine_reference(
      net::Network& production, const std::vector<cfg::ConfigChange>& changes,
      const priv::PrivilegeSpec& privileges, util::VirtualClock& clock, const std::string& actor);

  /// Emergency mode (paper §7): a command bypasses the twin but still goes
  /// through privilege mediation and post-state verification before touching
  /// production. Rolls back on violation.
  EmergencyResult emergency_execute(net::Network& production, std::string_view command_line,
                                    const priv::PrivilegeSpec& privileges,
                                    util::VirtualClock& clock, const std::string& actor);

  /// Records a twin-session event into the audit trail (sessions route their
  /// logs through the enforcer so the chain covers them).
  void audit_event(util::VirtualClock& clock, const std::string& actor, AuditCategory category,
                   std::string message);

  const AuditLog& audit() const { return audit_; }

  /// Attestation report over the current audit head (freshness binding).
  AttestationReport attest() const;

  /// True when the chain verifies AND the sealed head matches — detects
  /// both in-place tampering and truncation.
  bool audit_intact() const;

  const SimulatedEnclave& enclave() const { return enclave_; }

  // TAMPERING HOOKS (tests only): let rollback/truncation tests swap in a
  // stale log + sealed-head pair the way an attacker with disk access would.
  AuditLog& mutable_audit_for_test() { return audit_; }
  SealedBlob& mutable_sealed_head_for_test() { return sealed_head_; }

 private:
  struct AttributionVerdict;

  void reseal_head();
  std::vector<AttributionVerdict> attribute_candidates(
      const net::Network& production, net::Network& shadow,
      const std::vector<cfg::ConfigChange>& candidates, const analysis::Snapshot& base,
      const spec::VerificationReport& baseline_report, const std::vector<std::string>& baseline);

  spec::PolicyVerifier policies_;
  SimulatedEnclave enclave_;
  EnforcerOptions options_;
  std::unique_ptr<util::ThreadPool> attribution_pool_;
  AuditLog audit_;
  SealedBlob sealed_head_;
};

}  // namespace heimdall::enforce
