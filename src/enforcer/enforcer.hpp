// PolicyEnforcer: the trusted component between the twin network and the
// production network (paper §4.3). Verifies changesets, schedules approved
// changes, applies them to production, and keeps the tamper-evident audit
// trail whose head is sealed inside the (simulated) SGX enclave.
//
// Threading contract (the service refactor made it explicit):
//   * audit_event(), flush_audit(), audit_sink(), attest() and
//     audit_intact() are thread-safe — an internal mutex guards the hash
//     chain, the sealed head and the enclave counter, and the sink stages
//     concurrent appends without touching the chain at all.
//   * the enforce* entry points are NOT thread-safe against each other: they
//     mutate the production network and drive the verifier's shared analysis
//     engine. The enforcement service serializes them on one worker thread
//     (and batches submissions there — see enforce_with_quarantine_batch);
//     standalone callers were always single-threaded.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "enforcer/approval.hpp"
#include "enforcer/audit.hpp"
#include "enforcer/audit_sink.hpp"
#include "enforcer/enclave.hpp"
#include "enforcer/ledger.hpp"
#include "enforcer/scheduler.hpp"
#include "enforcer/verifier.hpp"
#include "obs/trace.hpp"
#include "twin/console.hpp"
#include "twin/emulation.hpp"
#include "util/clock.hpp"
#include "util/thread_pool.hpp"

namespace heimdall::enforce {

/// Result of one enforcement round.
struct EnforcementReport {
  VerifyOutcome verification;
  SchedulePlan plan;
  bool applied = false;
  std::vector<std::string> rejection_reasons;
};

/// Result of a quarantining enforcement round: legitimate changes applied,
/// violating ones intercepted individually (paper §3: "legitimate changes
/// are applied to the production network and violations are intercepted").
struct QuarantineReport {
  std::vector<cfg::ConfigChange> applied_changes;
  /// Intercepted changes with the reason each was quarantined.
  std::vector<std::pair<cfg::ConfigChange, std::string>> quarantined;
  /// False when even the non-quarantined remainder violated policies
  /// jointly and everything was rejected.
  bool applied_any = false;

  /// Wall-time decomposition of this submission's round. Observability only
  /// — the serialized-oracle equivalence compares the fields above, never
  /// these (timings differ between the batched and oracle pipelines by
  /// construction).
  struct StageTimes {
    std::uint64_t analyze_us = 0;  ///< this submission's share of the batch baseline analysis
    std::uint64_t verify_us = 0;   ///< privilege check + attribution + joint verification
    std::uint64_t audit_us = 0;    ///< audit chain appends + enclave reseals
  };
  StageTimes stages;
};

/// Outcome of one emergency-mode command.
struct EmergencyResult {
  bool permitted = false;
  bool applied = false;
  std::string output;
  std::vector<std::string> rejection_reasons;
};

/// One session's submitted changeset inside an enforcement batch.
struct BatchSubmission {
  std::string actor;
  std::vector<cfg::ConfigChange> changes;
  priv::PrivilegeSpec privileges;
  /// The submitting session's obs::current_context(), replayed on the
  /// enforcement thread so the spans and audit records emitted while this
  /// submission is processed carry the session's correlation keys.
  obs::SpanArgs context;
  /// m-of-n authorization context; default (gate == false) preserves the
  /// pre-approval pipeline byte-for-byte.
  SubmissionApprovals approvals;
};

/// Tuning knobs for the enforcement hot path.
struct EnforcerOptions {
  /// Worker threads for per-change quarantine attribution (each round is
  /// independent: apply one candidate, verify, revert); <= 1 keeps the
  /// attribution sequential on a single shadow network.
  std::size_t attribution_threads = 1;
  /// Mutex stripes in the audit staging sink (see AuditSink).
  std::size_t audit_shards = 8;
  /// When false, enforce_with_quarantine_batch() never coalesces the joint
  /// verification of disjoint submissions — every submission still shares
  /// the batch baseline but gets its own phase-3 analyze. Ablation knob.
  bool coalesce_waves = true;
  /// Replicas in the quorum-appended audit ledger (1 == the classic single
  /// sealed chain). Appended last: the service initializes these fields by
  /// designated initializers in declaration order.
  std::size_t audit_replicas = 3;
};

class PolicyEnforcer {
 public:
  /// `policies` are the mined network policies the enterprise pins;
  /// `technician`/`enclave` identities feed attestation and audit records.
  PolicyEnforcer(spec::PolicyVerifier policies, SimulatedEnclave enclave,
                 EnforcerOptions options = {});

  const spec::PolicyVerifier& policies() const { return policies_; }

  /// Verifies `changes` against `production` + `privileges`; on approval,
  /// schedules and applies them to `production` (with transient checking
  /// when `check_transients`). Every outcome is audited.
  EnforcementReport enforce(net::Network& production,
                            const std::vector<cfg::ConfigChange>& changes,
                            const priv::PrivilegeSpec& privileges, util::VirtualClock& clock,
                            const std::string& actor, bool check_transients = true);

  /// Like enforce(), but intercepts violating changes *individually* and
  /// applies the legitimate remainder: (1) privilege violations are
  /// quarantined, (2) each remaining change is tested alone against the
  /// policies and quarantined when it violates by itself, (3) the remainder
  /// is verified jointly — combination-only violations reject the remainder
  /// wholesale (no safe attribution exists in that case).
  QuarantineReport enforce_with_quarantine(net::Network& production,
                                           const std::vector<cfg::ConfigChange>& changes,
                                           const priv::PrivilegeSpec& privileges,
                                           util::VirtualClock& clock, const std::string& actor);

  /// Approval-gated variant: changes whose action is high-impact or outside
  /// the ticket's task class are additionally quarantined ("approval: ...")
  /// unless `approvals` carries a satisfied m-of-n set. The legacy overload
  /// forwards a gate-off default.
  QuarantineReport enforce_with_quarantine(net::Network& production,
                                           const std::vector<cfg::ConfigChange>& changes,
                                           const priv::PrivilegeSpec& privileges,
                                           util::VirtualClock& clock, const std::string& actor,
                                           const SubmissionApprovals& approvals);

  /// Batched quarantine enforcement: processes every submission in FIFO
  /// order and returns one QuarantineReport per submission, each identical
  /// to what a serialized sequence of enforce_with_quarantine() calls would
  /// have produced (property-tested). The batch amortizes the expensive
  /// full baseline analysis — it is computed once and then *chained*:
  /// after a submission applies, the joint-verification snapshot becomes the
  /// next submission's baseline. On top of that, consecutive submissions
  /// whose device and (src,dst)-pair footprints are pairwise disjoint (the
  /// pairs come from the baseline matrix paths, the same crossing rule the
  /// incremental engine uses) form a *wave*: their per-candidate
  /// attributions share the wave baseline and their phase-3 joint checks
  /// coalesce into a single incremental analyze + delta verification. A
  /// wave whose coalesced check fails falls back to per-submission joint
  /// checks, which keeps the serialized-oracle equivalence exact.
  std::vector<QuarantineReport> enforce_with_quarantine_batch(
      net::Network& production, const std::vector<BatchSubmission>& batch,
      util::VirtualClock& clock);

  /// Copy-per-change reference implementation of enforce_with_quarantine:
  /// a fresh shadow network and a from-scratch verification per candidate.
  /// Kept in-tree as the correctness oracle — the incremental pipeline must
  /// produce a bit-identical QuarantineReport (property-tested) — and as
  /// the baseline the ablation benchmarks compare against.
  QuarantineReport enforce_with_quarantine_reference(
      net::Network& production, const std::vector<cfg::ConfigChange>& changes,
      const priv::PrivilegeSpec& privileges, util::VirtualClock& clock, const std::string& actor);

  /// Approval-gated reference oracle; must stay bit-identical to the
  /// approval-gated incremental pipeline (property-tested).
  QuarantineReport enforce_with_quarantine_reference(
      net::Network& production, const std::vector<cfg::ConfigChange>& changes,
      const priv::PrivilegeSpec& privileges, util::VirtualClock& clock, const std::string& actor,
      const SubmissionApprovals& approvals);

  /// Emergency mode (paper §7): a command bypasses the twin but still goes
  /// through privilege mediation and post-state verification before touching
  /// production. Rolls back on violation.
  EmergencyResult emergency_execute(net::Network& production, std::string_view command_line,
                                    const priv::PrivilegeSpec& privileges,
                                    util::VirtualClock& clock, const std::string& actor);

  /// Records a twin-session event into the audit trail (sessions route their
  /// logs through the enforcer so the chain covers them). Thread-safe; pays
  /// the chain hash + enclave reseal inline. Concurrent sessions should
  /// prefer audit_sink().record() + a later flush_audit().
  void audit_event(util::VirtualClock& clock, const std::string& actor, AuditCategory category,
                   std::string message);

  /// The striped staging sink for concurrent session events. Staged events
  /// reach the chain (in stamp order) at the next flush_audit().
  AuditSink& audit_sink() { return sink_; }

  /// Seals every staged sink event into the hash chain: one chain walk, one
  /// reseal. Thread-safe. Returns the number of entries appended.
  std::size_t flush_audit();

  /// The audit chain (the replicated ledger's leader copy). Callers must
  /// quiesce concurrent audit writers (the service drains its queue first)
  /// — the reference is unsynchronized.
  const AuditLog& audit() const { return ledger_.leader_log(); }

  /// The replicated ledger behind audit(). Same quiescence caveat.
  const ReplicatedAuditLedger& ledger() const { return ledger_; }

  /// Replication counters, read under the audit mutex — safe concurrently
  /// with enforcement (statusz polls this).
  struct LedgerStats {
    std::size_t replicas = 0;
    std::uint64_t commits = 0;
    std::uint64_t quorum_failures = 0;
    std::uint64_t rejected_acks = 0;
  };
  LedgerStats ledger_stats() const;

  /// Attestation report over the current audit head (freshness binding).
  AttestationReport attest() const;

  /// True when every replica's chain + seal verify AND the replicas agree
  /// entry-for-entry — detects in-place tampering, truncation, one
  /// replica's rollback, and equivocation (divergent sealed histories).
  bool audit_intact() const;

  /// Cross-replica integrity problems, human-readable (empty == intact).
  std::vector<std::string> audit_problems() const;

  const SimulatedEnclave& enclave() const { return ledger_.leader_enclave(); }

  /// Cumulative wall time spent inside audit_event() chain appends +
  /// reseals on this enforcer (microseconds). The service reads deltas of
  /// this around each submission to fill QuarantineReport::StageTimes.
  std::uint64_t audit_elapsed_us() const {
    return audit_elapsed_us_.load(std::memory_order_relaxed);
  }

  // TAMPERING HOOKS (tests only): let rollback/truncation tests swap in a
  // stale log + sealed-head pair the way an attacker with disk access would
  // (on the leader replica; mutable_ledger_for_test() reaches the others).
  AuditLog& mutable_audit_for_test() { return ledger_.leader_log(); }
  SealedBlob& mutable_sealed_head_for_test() {
    return ledger_.replica_for_test(0).sealed_head;
  }
  ReplicatedAuditLedger& mutable_ledger_for_test() { return ledger_; }

 private:
  struct AttributionVerdict;
  struct ChainContext;
  struct WaveMember;
  std::vector<AttributionVerdict> attribute_candidates(
      const net::Network& production, net::Network& shadow,
      const std::vector<cfg::ConfigChange>& candidates, const analysis::Snapshot& base,
      const spec::VerificationReport& baseline_report, const std::vector<std::string>& baseline);

  ChainContext make_chain(const net::Network& production);
  QuarantineReport quarantine_one(net::Network& production, ChainContext& ctx,
                                  const std::vector<cfg::ConfigChange>& changes,
                                  const priv::PrivilegeSpec& privileges, util::VirtualClock& clock,
                                  const std::string& actor, const SubmissionApprovals& approvals);
  std::vector<std::size_t> form_wave(const std::vector<BatchSubmission>& batch, std::size_t pos,
                                     const ChainContext& ctx) const;
  void process_wave(net::Network& production, ChainContext& ctx,
                    const std::vector<BatchSubmission>& batch,
                    const std::vector<std::size_t>& wave, util::VirtualClock& clock,
                    std::vector<QuarantineReport>& reports);

  spec::PolicyVerifier policies_;
  EnforcerOptions options_;
  std::unique_ptr<util::ThreadPool> attribution_pool_;
  /// Guards the replicated ledger (chains, seals, enclave counters). The
  /// enforcement paths take it only around chain appends, never across
  /// verification.
  mutable std::mutex audit_mutex_;
  ReplicatedAuditLedger ledger_;
  AuditSink sink_;
  std::atomic<std::uint64_t> audit_elapsed_us_{0};
};

}  // namespace heimdall::enforce
