// PolicyEnforcer: the trusted component between the twin network and the
// production network (paper §4.3). Verifies changesets, schedules approved
// changes, applies them to production, and keeps the tamper-evident audit
// trail whose head is sealed inside the (simulated) SGX enclave.
#pragma once

#include <string>
#include <vector>

#include "enforcer/audit.hpp"
#include "enforcer/enclave.hpp"
#include "enforcer/scheduler.hpp"
#include "enforcer/verifier.hpp"
#include "twin/console.hpp"
#include "twin/emulation.hpp"
#include "util/clock.hpp"

namespace heimdall::enforce {

/// Result of one enforcement round.
struct EnforcementReport {
  VerifyOutcome verification;
  SchedulePlan plan;
  bool applied = false;
  std::vector<std::string> rejection_reasons;
};

/// Result of a quarantining enforcement round: legitimate changes applied,
/// violating ones intercepted individually (paper §3: "legitimate changes
/// are applied to the production network and violations are intercepted").
struct QuarantineReport {
  std::vector<cfg::ConfigChange> applied_changes;
  /// Intercepted changes with the reason each was quarantined.
  std::vector<std::pair<cfg::ConfigChange, std::string>> quarantined;
  /// False when even the non-quarantined remainder violated policies
  /// jointly and everything was rejected.
  bool applied_any = false;
};

/// Outcome of one emergency-mode command.
struct EmergencyResult {
  bool permitted = false;
  bool applied = false;
  std::string output;
  std::vector<std::string> rejection_reasons;
};

class PolicyEnforcer {
 public:
  /// `policies` are the mined network policies the enterprise pins;
  /// `technician`/`enclave` identities feed attestation and audit records.
  PolicyEnforcer(spec::PolicyVerifier policies, SimulatedEnclave enclave);

  const spec::PolicyVerifier& policies() const { return policies_; }

  /// Verifies `changes` against `production` + `privileges`; on approval,
  /// schedules and applies them to `production` (with transient checking
  /// when `check_transients`). Every outcome is audited.
  EnforcementReport enforce(net::Network& production,
                            const std::vector<cfg::ConfigChange>& changes,
                            const priv::PrivilegeSpec& privileges, util::VirtualClock& clock,
                            const std::string& actor, bool check_transients = true);

  /// Like enforce(), but intercepts violating changes *individually* and
  /// applies the legitimate remainder: (1) privilege violations are
  /// quarantined, (2) each remaining change is tested alone against the
  /// policies and quarantined when it violates by itself, (3) the remainder
  /// is verified jointly — combination-only violations reject the remainder
  /// wholesale (no safe attribution exists in that case).
  QuarantineReport enforce_with_quarantine(net::Network& production,
                                           const std::vector<cfg::ConfigChange>& changes,
                                           const priv::PrivilegeSpec& privileges,
                                           util::VirtualClock& clock, const std::string& actor);

  /// Emergency mode (paper §7): a command bypasses the twin but still goes
  /// through privilege mediation and post-state verification before touching
  /// production. Rolls back on violation.
  EmergencyResult emergency_execute(net::Network& production, std::string_view command_line,
                                    const priv::PrivilegeSpec& privileges,
                                    util::VirtualClock& clock, const std::string& actor);

  /// Records a twin-session event into the audit trail (sessions route their
  /// logs through the enforcer so the chain covers them).
  void audit_event(util::VirtualClock& clock, const std::string& actor, AuditCategory category,
                   std::string message);

  const AuditLog& audit() const { return audit_; }

  /// Attestation report over the current audit head (freshness binding).
  AttestationReport attest() const;

  /// True when the chain verifies AND the sealed head matches — detects
  /// both in-place tampering and truncation.
  bool audit_intact() const;

  const SimulatedEnclave& enclave() const { return enclave_; }

 private:
  void reseal_head();

  spec::PolicyVerifier policies_;
  SimulatedEnclave enclave_;
  AuditLog audit_;
  SealedBlob sealed_head_;
};

}  // namespace heimdall::enforce
