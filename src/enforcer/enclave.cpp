#include "enforcer/enclave.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace heimdall::enforce {

using util::hmac_sha256;
using util::Sha256;
using util::Sha256Digest;

SimulatedEnclave::SimulatedEnclave(std::string code_identity, std::string hardware_key)
    : hardware_key_(std::move(hardware_key)),
      measurement_(Sha256::hash(code_identity)) {}

SimulatedEnclave::SimulatedEnclave(const SimulatedEnclave& other)
    : hardware_key_(other.hardware_key_),
      measurement_(other.measurement_),
      counter_(other.counter_.load(std::memory_order_relaxed)) {}

SimulatedEnclave& SimulatedEnclave::operator=(const SimulatedEnclave& other) {
  if (this != &other) {
    hardware_key_ = other.hardware_key_;
    measurement_ = other.measurement_;
    counter_.store(other.counter_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  }
  return *this;
}

SimulatedEnclave::SimulatedEnclave(SimulatedEnclave&& other) noexcept
    : hardware_key_(std::move(other.hardware_key_)),
      measurement_(other.measurement_),
      counter_(other.counter_.load(std::memory_order_relaxed)) {}

SimulatedEnclave& SimulatedEnclave::operator=(SimulatedEnclave&& other) noexcept {
  if (this != &other) {
    hardware_key_ = std::move(other.hardware_key_);
    measurement_ = other.measurement_;
    counter_.store(other.counter_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  }
  return *this;
}

SimulatedEnclave SimulatedEnclave::replica(std::size_t index) const {
  SimulatedEnclave copy(*this);
  copy.hardware_key_ = hardware_key_ + "#replica-" + std::to_string(index);
  copy.counter_.store(0, std::memory_order_relaxed);
  return copy;
}

Sha256Digest SimulatedEnclave::mac_over(std::string_view domain, std::string_view payload) const {
  std::string message = std::string(domain) + "|" + util::to_hex(measurement_) + "|" +
                        std::string(payload);
  return hmac_sha256(hardware_key_, message);
}

AttestationReport SimulatedEnclave::attest(std::string report_data) const {
  obs::ScopedSpan span("enclave.attest", "enforcer");
  obs::Registry::global().counter("enclave.attestations").add();
  AttestationReport report;
  report.measurement = measurement_;
  report.report_data = std::move(report_data);
  report.mac = mac_over("attest", report.report_data);
  return report;
}

bool SimulatedEnclave::verify_report(const AttestationReport& report,
                                     const Sha256Digest& expected_measurement) const {
  if (report.measurement != expected_measurement) return false;
  std::string message =
      "attest|" + util::to_hex(report.measurement) + "|" + report.report_data;
  return hmac_sha256(hardware_key_, message) == report.mac;
}

SealedBlob SimulatedEnclave::seal(std::string payload) const {
  obs::ScopedSpan span("enclave.seal", "enforcer");
  obs::Registry::global().counter("enclave.seals").add();
  SealedBlob blob;
  blob.payload = std::move(payload);
  blob.sealer_measurement = measurement_;
  blob.mac = mac_over("seal", blob.payload);
  return blob;
}

std::optional<std::string> SimulatedEnclave::unseal(const SealedBlob& blob) const {
  if (blob.sealer_measurement != measurement_) return std::nullopt;
  if (mac_over("seal", blob.payload) != blob.mac) return std::nullopt;
  return blob.payload;
}

}  // namespace heimdall::enforce
