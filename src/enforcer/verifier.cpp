#include "enforcer/verifier.hpp"

#include "analysis/engine.hpp"
#include "util/error.hpp"

namespace heimdall::enforce {

std::vector<std::string> VerifyOutcome::rejection_reasons() const {
  std::vector<std::string> out;
  for (const PrivilegeViolation& violation : privilege_violations) {
    out.push_back("privilege violation: " + violation.change.summary() + " (" + violation.reason +
                  ")");
  }
  for (const spec::Violation& violation : policy_report.violations) {
    out.push_back("policy violation: " + violation.policy.to_string() + " (" + violation.detail +
                  ")");
  }
  for (const std::string& error : replay_errors) {
    out.push_back("replay error: " + error);
  }
  return out;
}

VerifyOutcome verify_changes(const net::Network& production,
                             const std::vector<cfg::ConfigChange>& changes,
                             const spec::PolicyVerifier& verifier,
                             const priv::PrivilegeSpec& privileges) {
  VerifyOutcome outcome;
  outcome.privilege_violations = check_privilege_compliance(changes, privileges);

  // Analyze the production baseline first (memoized across sessions), then
  // replay and analyze the shadow incrementally from it: a changeset of
  // ACL / static-route edits re-traces only the affected pairs instead of
  // recomputing the whole pipeline.
  analysis::Engine& engine = verifier.engine();
  analysis::Snapshot base = engine.analyze(production);

  outcome.shadow = production;
  std::vector<cfg::ConfigChange> applied;
  applied.reserve(changes.size());
  for (const cfg::ConfigChange& change : changes) {
    try {
      cfg::apply_change(outcome.shadow, change);
      applied.push_back(change);
    } catch (const util::Error& error) {
      outcome.replay_errors.push_back(change.summary() + ": " + error.what());
    }
  }

  analysis::Snapshot shadow = engine.analyze(outcome.shadow, base, applied);
  outcome.policy_report = verifier.verify(*shadow.view());
  return outcome;
}

}  // namespace heimdall::enforce
