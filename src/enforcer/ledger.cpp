#include "enforcer/ledger.hpp"

#include <charconv>

#include "util/sha256.hpp"

namespace heimdall::enforce {

using util::Sha256;

ReplicatedAuditLedger::ReplicatedAuditLedger(SimulatedEnclave leader_enclave,
                                             std::size_t replica_count) {
  if (replica_count < 1) replica_count = 1;
  replicas_.reserve(replica_count);
  replicas_.push_back(Replica{std::move(leader_enclave), AuditLog{}, SealedBlob{}});
  for (std::size_t i = 1; i < replica_count; ++i) {
    replicas_.push_back(
        Replica{replicas_.front().enclave.replica(i), AuditLog{}, SealedBlob{}});
  }
  for (Replica& replica : replicas_) reseal(replica);
}

void ReplicatedAuditLedger::reseal(Replica& replica) {
  std::string head = util::to_hex(replica.log.head()) + "|" +
                     std::to_string(replica.enclave.bump_counter());
  replica.sealed_head = replica.enclave.seal(head);
}

bool ReplicatedAuditLedger::verify_replica_seal(const Replica& replica, std::size_t index,
                                                std::vector<std::string>* out) const {
  auto problem = [&](const std::string& text) {
    if (out) out->push_back("replica " + std::to_string(index) + ": " + text);
    return false;
  };
  auto unsealed = replica.enclave.unseal(replica.sealed_head);
  if (!unsealed) return problem("sealed head fails to unseal (tampered or foreign seal)");
  auto separator = unsealed->find('|');
  if (separator == std::string::npos) return problem("sealed head is malformed");
  if (unsealed->substr(0, separator) != util::to_hex(replica.log.head()))
    return problem("sealed head does not match the chain head (log rewritten or truncated)");
  const char* first = unsealed->data() + separator + 1;
  const char* last = unsealed->data() + unsealed->size();
  std::uint64_t sealed_counter = 0;
  auto [ptr, ec] = std::from_chars(first, last, sealed_counter);
  if (first == last || ec != std::errc() || ptr != last)
    return problem("sealed counter is malformed");
  if (sealed_counter != replica.enclave.counter())
    return problem("sealed counter " + std::to_string(sealed_counter) +
                   " lags the enclave counter " + std::to_string(replica.enclave.counter()) +
                   " (rollback to a stale sealed head)");
  return true;
}

QuorumStatus ReplicatedAuditLedger::commit_appended() {
  QuorumStatus status;
  status.replicas = replicas_.size();

  Replica& leader = replicas_.front();
  reseal(leader);
  ++status.acks;  // the leader trivially acks its own extension

  const std::vector<AuditEntry>& entries = leader.log.entries();
  for (std::size_t i = 1; i < replicas_.size(); ++i) {
    Replica& follower = replicas_[i];
    // A follower first re-checks its own seal: a rolled-back or rewritten
    // follower must not ack (nor silently re-converge and erase the
    // evidence) — it stays divergent for problems() to report.
    if (!verify_replica_seal(follower, i, nullptr)) {
      ++rejected_acks_;
      continue;
    }
    bool ok = true;
    while (follower.log.size() < entries.size()) {
      const AuditEntry& entry = entries[follower.log.size()];
      // Verify the extension exactly as a remote replica would before
      // trusting the leader: contiguous sequence, link to our own head,
      // content hash recomputes.
      if (entry.sequence != follower.log.size() ||
          entry.previous_hash != follower.log.head() ||
          entry.hash != Sha256::hash(entry.canonical())) {
        ok = false;
        break;
      }
      // append() recomputes sequence/previous_hash/hash from the follower's
      // own chain; the checks above guarantee the result is bit-identical.
      follower.log.append(entry.timestamp_ms, entry.actor, entry.category, entry.message);
    }
    if (!ok) {
      ++rejected_acks_;
      continue;
    }
    reseal(follower);
    ++status.acks;
  }

  status.committed = status.acks * 2 > status.replicas;
  if (status.committed)
    ++commits_;
  else
    ++quorum_failures_;
  return status;
}

std::vector<std::string> ReplicatedAuditLedger::problems() const {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    const Replica& replica = replicas_[i];
    std::size_t corrupt = replica.log.first_corrupt_index();
    if (corrupt != replica.log.size())
      out.push_back("replica " + std::to_string(i) + ": chain breaks at sequence " +
                    std::to_string(corrupt));
    verify_replica_seal(replica, i, &out);
  }
  // Cross-replica: every follower must agree with the leader entry-for-entry
  // over the shared prefix and must not lag. Divergent hashes at the same
  // sequence == equivocation (two "agreed" histories); a shorter follower
  // whose seal still verifies == it was never brought past quorum (the
  // leader failed to replicate) and the ledger is not intact either way.
  const std::vector<AuditEntry>& leader_entries = replicas_.front().log.entries();
  for (std::size_t i = 1; i < replicas_.size(); ++i) {
    const std::vector<AuditEntry>& follower_entries = replicas_[i].log.entries();
    std::size_t shared = std::min(leader_entries.size(), follower_entries.size());
    for (std::size_t seq = 0; seq < shared; ++seq) {
      if (follower_entries[seq].hash != leader_entries[seq].hash) {
        out.push_back("replica " + std::to_string(i) + " equivocates: divergent entry at sequence " +
                      std::to_string(seq) + " (leader and replica sealed different histories)");
        break;
      }
    }
    if (follower_entries.size() != leader_entries.size())
      out.push_back("replica " + std::to_string(i) + " holds " +
                    std::to_string(follower_entries.size()) + " entries, leader holds " +
                    std::to_string(leader_entries.size()));
  }
  return out;
}

util::Json ReplicatedAuditLedger::to_json() const {
  util::Json array{util::JsonArray{}};
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    const Replica& replica = replicas_[i];
    util::Json item = replica.log.to_json();
    item.set("replica", static_cast<double>(i));
    // Like the audit log's seq/t_ms, the counter goes out as a decimal
    // string: util::Json numbers are doubles.
    item.set("sealed_counter", util::Json(std::to_string(replica.enclave.counter())));
    array.push_back(std::move(item));
  }
  util::Json document;
  document.set("replicas", std::move(array));
  return document;
}

}  // namespace heimdall::enforce
