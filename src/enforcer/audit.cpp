#include "enforcer/audit.hpp"

#include <charconv>

#include "util/error.hpp"

namespace heimdall::enforce {

using util::Sha256;
using util::Sha256Digest;

std::string to_string(AuditCategory category) {
  switch (category) {
    case AuditCategory::Session: return "session";
    case AuditCategory::Command: return "command";
    case AuditCategory::Escalation: return "escalation";
    case AuditCategory::Verify: return "verify";
    case AuditCategory::Schedule: return "schedule";
    case AuditCategory::Violation: return "violation";
  }
  return "command";
}

std::string AuditEntry::canonical() const {
  return std::to_string(sequence) + "|" + std::to_string(timestamp_ms) + "|" + actor + "|" +
         to_string(category) + "|" + message + "|" + util::to_hex(previous_hash);
}

const AuditEntry& AuditLog::append(std::int64_t timestamp_ms, std::string actor,
                                   AuditCategory category, std::string message) {
  AuditEntry entry;
  entry.sequence = entries_.size();
  entry.timestamp_ms = timestamp_ms;
  entry.actor = std::move(actor);
  entry.category = category;
  entry.message = std::move(message);
  entry.previous_hash = head();
  entry.hash = Sha256::hash(entry.canonical());
  entries_.push_back(std::move(entry));
  return entries_.back();
}

Sha256Digest AuditLog::head() const {
  if (entries_.empty()) return Sha256Digest{};
  return entries_.back().hash;
}

bool AuditLog::verify_chain() const { return first_corrupt_index() == entries_.size(); }

std::size_t AuditLog::first_corrupt_index() const {
  Sha256Digest previous{};
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const AuditEntry& entry = entries_[i];
    if (entry.sequence != i) return i;
    if (entry.previous_hash != previous) return i;
    if (entry.hash != Sha256::hash(entry.canonical())) return i;
    previous = entry.hash;
  }
  return entries_.size();
}

namespace {

AuditCategory parse_category(const std::string& text) {
  for (AuditCategory category :
       {AuditCategory::Session, AuditCategory::Command, AuditCategory::Escalation,
        AuditCategory::Verify, AuditCategory::Schedule, AuditCategory::Violation}) {
    if (to_string(category) == text) return category;
  }
  throw util::ParseError("unknown audit category '" + text + "'");
}

Sha256Digest parse_digest(const std::string& hex) {
  if (hex.size() != 64) throw util::ParseError("audit hash must be 64 hex chars");
  Sha256Digest digest{};
  auto nibble = [](char c) -> unsigned {
    if (c >= '0' && c <= '9') return static_cast<unsigned>(c - '0');
    if (c >= 'a' && c <= 'f') return static_cast<unsigned>(c - 'a' + 10);
    if (c >= 'A' && c <= 'F') return static_cast<unsigned>(c - 'A' + 10);
    throw util::ParseError("bad hex character in audit hash");
  };
  for (std::size_t i = 0; i < 32; ++i) {
    digest[i] = static_cast<std::uint8_t>((nibble(hex[2 * i]) << 4) | nibble(hex[2 * i + 1]));
  }
  return digest;
}

/// Parses a 64-bit integer field serialized either as a JSON number (legacy
/// exports) or as a decimal string (the lossless format to_json writes —
/// util::Json numbers are doubles, which round above 2^53).
template <typename Int>
Int parse_int_field(const util::Json& value, const char* field) {
  if (value.is_number()) return static_cast<Int>(value.as_number());
  const std::string& text = value.as_string();
  Int parsed{};
  const char* first = text.data();
  const char* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(first, last, parsed);
  if (ec != std::errc() || ptr != last) {
    throw util::ParseError(std::string("audit field '") + field + "' is not an integer: '" +
                           text + "'");
  }
  return parsed;
}

}  // namespace

AuditLog AuditLog::from_json(const util::Json& document) {
  AuditLog log;
  for (const util::Json& item : document.at("audit_log").as_array()) {
    AuditEntry entry;
    entry.sequence = parse_int_field<std::uint64_t>(item.at("seq"), "seq");
    entry.timestamp_ms = parse_int_field<std::int64_t>(item.at("t_ms"), "t_ms");
    entry.actor = item.at("actor").as_string();
    entry.category = parse_category(item.at("category").as_string());
    entry.message = item.at("message").as_string();
    entry.previous_hash = parse_digest(item.at("prev").as_string());
    entry.hash = parse_digest(item.at("hash").as_string());
    log.entries_.push_back(std::move(entry));
  }
  return log;
}

util::Json AuditLog::to_json() const {
  util::Json array{util::JsonArray{}};
  for (const AuditEntry& entry : entries_) {
    util::Json item;
    // seq and t_ms go out as decimal strings: util::Json numbers are
    // doubles, which silently round 64-bit values above 2^53 — and a
    // rounded sequence number breaks the hash chain on re-import.
    item.set("seq", util::Json(std::to_string(entry.sequence)));
    item.set("t_ms", util::Json(std::to_string(entry.timestamp_ms)));
    item.set("actor", util::Json(entry.actor));
    item.set("category", util::Json(to_string(entry.category)));
    item.set("message", util::Json(entry.message));
    item.set("prev", util::Json(util::to_hex(entry.previous_hash)));
    item.set("hash", util::Json(util::to_hex(entry.hash)));
    array.push_back(std::move(item));
  }
  util::Json document;
  document.set("audit_log", std::move(array));
  return document;
}

}  // namespace heimdall::enforce
