// Replicated audit ledger: the hash-chained AuditLog copied across N
// simulated enclave replicas with quorum-append.
//
// A single sealed head detects tampering on one host, but an attacker who
// owns that host's disk *and* its (simulated) enclave instance can rewrite
// the log and reseal. Replication raises the bar: the leader stamps entries
// into its chain, every follower re-verifies the chain extension entry by
// entry (sequence, previous-hash link, content hash) before appending, and
// each replica seals its own head with its own monotonic counter. An append
// commits once a majority of replicas ack. Cross-replica verification then
// catches what a single replica cannot: one replica rolled back to a stale
// (correctly sealed) prefix, or equivocating — presenting a divergent entry
// at a sequence the quorum already agreed on.
//
// Ground: Kinkelin et al. (PAPERS.md) argue distributed-ledger replication
// for exactly this "who watches the audit log" gap in managed-network
// configuration management.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "enforcer/audit.hpp"
#include "enforcer/enclave.hpp"
#include "util/json.hpp"

namespace heimdall::enforce {

/// Outcome of one quorum-append round.
struct QuorumStatus {
  std::size_t replicas = 0;  ///< N
  std::size_t acks = 0;      ///< replicas that verified + sealed the extension (leader included)
  bool committed = false;    ///< acks form a majority of replicas
};

/// N copies of the audit chain, each sealed by its own enclave replica.
/// Replica 0 is the leader; the enforcer appends to leader_log() and then
/// calls commit_appended() to replicate. NOT thread-safe — the enforcer
/// serializes access under its audit mutex.
class ReplicatedAuditLedger {
 public:
  /// `leader_enclave` seals replica 0; followers run the same measured
  /// binary on distinct simulated hosts (SimulatedEnclave::replica()).
  /// `replica_count` < 1 is treated as 1 (unreplicated degenerates to the
  /// classic single sealed head).
  ReplicatedAuditLedger(SimulatedEnclave leader_enclave, std::size_t replica_count);

  std::size_t replica_count() const { return replicas_.size(); }

  /// The leader's chain — the one the enforcer appends to and exports.
  AuditLog& leader_log() { return replicas_.front().log; }
  const AuditLog& leader_log() const { return replicas_.front().log; }
  const SimulatedEnclave& leader_enclave() const { return replicas_.front().enclave; }

  /// Replicates every leader entry the followers have not seen yet: each
  /// follower verifies the extension (sequence contiguity, previous-hash
  /// link, content hash) and its own current seal before appending and
  /// resealing. The leader reseals unconditionally. Returns the quorum
  /// outcome; a follower whose seal or chain check fails refuses the ack
  /// (it does NOT silently heal — divergence stays visible to problems()).
  QuorumStatus commit_appended();

  /// True when every replica's chain + seal verify AND all replicas agree
  /// entry-for-entry with the leader. The cross-replica half is what a
  /// single sealed head cannot give: rollback of one replica to a stale
  /// sealed prefix, or equivocation (a divergent entry hash at a sequence
  /// another replica also holds), both surface here.
  bool intact() const { return problems().empty(); }

  /// Every integrity problem across the replica set, human-readable.
  std::vector<std::string> problems() const;

  /// Lifetime counters for /statusz and the bench harness.
  std::uint64_t commits() const { return commits_; }
  std::uint64_t quorum_failures() const { return quorum_failures_; }
  std::uint64_t rejected_acks() const { return rejected_acks_; }

  /// Offline export: every replica's chain + sealed counter, so an auditor
  /// (obs_report) can re-verify each chain and diff heads.
  util::Json to_json() const;

  // TAMPERING HOOKS (tests and attack scenarios only).
  struct Replica {
    SimulatedEnclave enclave;
    AuditLog log;
    SealedBlob sealed_head;
  };
  Replica& replica_for_test(std::size_t index) { return replicas_.at(index); }
  /// Reseals `index`'s current head through its own enclave — what a
  /// compromised replica does after rewriting its log.
  void reseal_replica_for_test(std::size_t index) { reseal(replicas_.at(index)); }

 private:
  void reseal(Replica& replica);
  /// Verifies `replica`'s sealed head against its log + counter; appends
  /// human-readable problems to `out` (when given) naming `index`.
  bool verify_replica_seal(const Replica& replica, std::size_t index,
                           std::vector<std::string>* out) const;

  std::vector<Replica> replicas_;
  std::uint64_t commits_ = 0;
  std::uint64_t quorum_failures_ = 0;
  std::uint64_t rejected_acks_ = 0;
};

}  // namespace heimdall::enforce
