// Simulated trusted execution environment.
//
// The paper runs the policy enforcer inside an Intel SGX enclave (§4.3) for
// data integrity with a small TCB. Real SGX is hardware; this simulation
// preserves the *interfaces and checkable properties* the design relies on:
//   * measurement-based identity (SHA-256 over the enclave's code identity),
//   * remote attestation reports (MAC over measurement + report data under a
//     key derived from the simulated hardware root),
//   * sealed storage (data + HMAC, unsealable only by the same measurement),
//   * a monotonic counter (rollback protection for the audit head).
// See DESIGN.md §1 for the substitution rationale.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/sha256.hpp"

namespace heimdall::enforce {

/// An attestation report a relying party (the enterprise) can check.
struct AttestationReport {
  util::Sha256Digest measurement{};   ///< enclave code identity
  std::string report_data;            ///< caller-supplied freshness data
  util::Sha256Digest mac{};           ///< MAC under the hardware key

  bool operator==(const AttestationReport&) const = default;
};

/// Sealed blob: ciphertext is modeled as plaintext+MAC (confidentiality is
/// out of scope for the properties being evaluated; integrity is what the
/// enforcer depends on).
struct SealedBlob {
  std::string payload;
  util::Sha256Digest mac{};
  util::Sha256Digest sealer_measurement{};
};

/// The simulated enclave.
class SimulatedEnclave {
 public:
  /// `code_identity` stands in for the measured enclave binary;
  /// `hardware_key` for the CPU's fused root key.
  SimulatedEnclave(std::string code_identity, std::string hardware_key);

  // Copy/move clone the simulated instance (std::atomic is neither): the
  // counter value travels with the clone, so moving an enclave into its
  // owner preserves rollback protection.
  SimulatedEnclave(const SimulatedEnclave& other);
  SimulatedEnclave& operator=(const SimulatedEnclave& other);
  SimulatedEnclave(SimulatedEnclave&& other) noexcept;
  SimulatedEnclave& operator=(SimulatedEnclave&& other) noexcept;

  /// A replica instance of the same enclave binary on another simulated
  /// host: identical measurement, distinct hardware root, fresh counter.
  /// The replicated audit ledger derives its followers this way.
  SimulatedEnclave replica(std::size_t index) const;

  const util::Sha256Digest& measurement() const { return measurement_; }

  /// Produces an attestation report binding `report_data` to this enclave.
  AttestationReport attest(std::string report_data) const;

  /// Verifies a report against an expected measurement, using the same
  /// hardware key (the relying party talks to the attestation service).
  bool verify_report(const AttestationReport& report,
                     const util::Sha256Digest& expected_measurement) const;

  /// Seals `payload` to this enclave's identity.
  SealedBlob seal(std::string payload) const;

  /// Unseals; nullopt when the blob was tampered with or sealed by a
  /// different enclave.
  std::optional<std::string> unseal(const SealedBlob& blob) const;

  /// Monotonic counter (rollback protection). Increments and returns.
  /// Atomic: reseals reach it from the enforcement worker, from any thread
  /// flushing the sharded audit sink, and from the quorum-append protocol.
  std::uint64_t bump_counter() {
    return counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  std::uint64_t counter() const { return counter_.load(std::memory_order_relaxed); }

 private:
  util::Sha256Digest mac_over(std::string_view domain, std::string_view payload) const;

  std::string hardware_key_;
  util::Sha256Digest measurement_{};
  std::atomic<std::uint64_t> counter_{0};
};

}  // namespace heimdall::enforce
