// Enclave binding for multi-party authorization (priv/approval.hpp holds
// the enclave-free data model and policy rules).
//
// An approval is "signed" by asking the enforcer's enclave to attest a
// canonical statement over (principal, role, subject); the report MAC —
// keyed by the simulated hardware root — stands in for the principal's
// signature issued through the attested approval UI. Verification
// recomputes the attestation inside the same enclave and compares MACs, so
// a signature minted against a different enclave (or a doctored statement)
// fails closed.
#pragma once

#include <cstddef>
#include <string>

#include "enforcer/enclave.hpp"
#include "privilege/action.hpp"
#include "privilege/approval.hpp"
#include "privilege/generator.hpp"

namespace heimdall::enforce {

/// The m-of-n context a BatchSubmission carries through the quarantine
/// pipeline. `gate == false` (the default) means the submission predates
/// the approval workflow — phase 1 then behaves exactly as before, which
/// keeps the serialized-oracle equivalence and legacy callers intact.
struct SubmissionApprovals {
  bool gate = false;  ///< enable m-of-n gating of high-impact / out-of-class changes
  priv::TaskClass task = priv::TaskClass::Monitoring;  ///< ticket task class
  std::string subject;             ///< ticket content hash the approvals must cover
  std::size_t min_required = 2;    ///< policy floor for m (downgrade detection)
  priv::ApprovalSet approvals;
};

/// Canonical statement an approval signs: "approval|principal|role|subject".
std::string approval_statement(const priv::Approval& approval);

/// Mints an approval for `subject` by `principal`, signed via `enclave`'s
/// attestation (signature = hex MAC of the attested statement).
priv::Approval make_attested_approval(const SimulatedEnclave& enclave,
                                      const std::string& principal, priv::PrincipalRole role,
                                      const std::string& subject);

/// True when `approval.signature` is the hex MAC `enclave` attests over the
/// approval's canonical statement.
bool verify_attested_approval(const SimulatedEnclave& enclave, const priv::Approval& approval);

/// priv::check_approvals bound to `enclave` attestation: evaluates the
/// submission's ApprovalSet for `requester` against its subject and policy
/// floor.
priv::ApprovalCheck check_submission_approvals(const SimulatedEnclave& enclave,
                                               const SubmissionApprovals& approvals,
                                               const std::string& requester);

/// Which changes the m-of-n gate covers: high-impact actions always, plus
/// mutations outside the ticket's task class (the same set the escalation
/// policy marks RequiresAdmin).
bool needs_approval(priv::Action action, priv::TaskClass task);

}  // namespace heimdall::enforce
