// Maps semantic config changes back onto privilege (Action, Resource) pairs
// so the enforcer can re-check the Privilege_msp at the production boundary.
// Defense in depth: even if the reference monitor were bypassed, a change
// the spec does not allow cannot cross into production.
#pragma once

#include <utility>
#include <vector>

#include "config/diff.hpp"
#include "privilege/spec.hpp"

namespace heimdall::enforce {

/// The privilege classification of one config change.
struct ChangeClassification {
  priv::Action action = priv::Action::ShowConfig;
  priv::Resource resource;
};

/// Classifies `change` (action + concrete resource).
ChangeClassification classify_change(const cfg::ConfigChange& change);

/// One privilege-violating change.
struct PrivilegeViolation {
  cfg::ConfigChange change;
  ChangeClassification classification;
  std::string reason;
};

/// Checks every change against `privileges`; returns the violations.
std::vector<PrivilegeViolation> check_privilege_compliance(
    const std::vector<cfg::ConfigChange>& changes, const priv::PrivilegeSpec& privileges);

}  // namespace heimdall::enforce
