// Change scheduler (paper §4.3: "a scheduler that orders changes and pushes
// them to the production network"; "updating routers in the wrong order can
// result in inconsistent behavior").
//
// Ordering rules (make-before-break):
//   1. object creation first (VLAN declarations, new ACLs),
//   2. connectivity-adding changes (permit entries, route/network adds,
//      interfaces up, address assignments),
//   3. neutral tweaks (costs, switchports, bindings),
//   4. connectivity-removing changes (deny entries, removals, shutdowns),
//   5. secrets last.
// Edits to the same ACL are kept in their original relative order (entry
// indexes refer to the evolving list) by scheduling them as one atomic group
// at the group's earliest priority.
//
// The plan can additionally be checked step-by-step: each prefix of the
// ordered changes is applied to a shadow network and the invariant policies
// verified, counting transient violations (the ablation_scheduler bench
// compares this against naive session order).
#pragma once

#include <string>
#include <vector>

#include "config/diff.hpp"
#include "spec/verify.hpp"

namespace heimdall::enforce {

/// One scheduled step with its transient-state check (when requested).
struct ScheduledStep {
  cfg::ConfigChange change;
  /// Policies violated in the intermediate state *after* this step.
  std::vector<std::string> transient_violations;
};

/// A complete ordered plan.
struct SchedulePlan {
  std::vector<ScheduledStep> steps;

  std::vector<cfg::ConfigChange> ordered_changes() const;

  /// Total transient violations across intermediate states.
  std::size_t transient_violation_count() const;
};

/// Priority class of a change (exposed for tests/ablation).
int change_priority(const cfg::ConfigChange& change);

/// Orders `changes` by the make-before-break rules. Stable within a class.
std::vector<cfg::ConfigChange> schedule_changes(const std::vector<cfg::ConfigChange>& changes);

/// Orders and, when `check_transients`, applies step by step to a shadow of
/// `production`, recording policies violated in each intermediate state.
/// `invariants` are the policies that should hold *throughout* the update.
SchedulePlan build_plan(const net::Network& production,
                        const std::vector<cfg::ConfigChange>& changes,
                        const spec::PolicyVerifier& invariants, bool check_transients);

/// Same stepwise check over an arbitrary (e.g. unscheduled) order; used by
/// the ablation bench to quantify what ordering buys. Steps are verified
/// incrementally: each step's analysis chains off the previous snapshot and
/// only policies over re-traced pairs are re-checked. When a step fails to
/// replay, checking aborts — the step records the replay error and every
/// subsequent step is marked unchecked (the shadow no longer represents any
/// reachable intermediate state).
SchedulePlan check_plan_order(const net::Network& production,
                              const std::vector<cfg::ConfigChange>& ordered,
                              const spec::PolicyVerifier& invariants);

/// Copy-based reference implementation of check_plan_order: a from-scratch
/// verify_network per step. Kept in-tree as the correctness oracle — the
/// incremental path must produce a bit-identical SchedulePlan — and as the
/// ablation benchmarks' baseline.
SchedulePlan check_plan_order_reference(const net::Network& production,
                                        const std::vector<cfg::ConfigChange>& ordered,
                                        const spec::PolicyVerifier& invariants);

}  // namespace heimdall::enforce
