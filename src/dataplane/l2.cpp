#include "dataplane/l2.hpp"

#include <algorithm>
#include <string>

namespace heimdall::dp {

using namespace heimdall::net;

namespace {

/// Union-find over string keys. Small networks; path compression only.
class UnionFind {
 public:
  void add(const std::string& key) { parent_.try_emplace(key, key); }

  std::string find(const std::string& key) {
    add(key);
    std::string root = key;
    while (parent_[root] != root) root = parent_[root];
    // Path compression.
    std::string walk = key;
    while (parent_[walk] != root) {
      std::string next = parent_[walk];
      parent_[walk] = root;
      walk = next;
    }
    return root;
  }

  void unite(const std::string& a, const std::string& b) { parent_[find(a)] = find(b); }

 private:
  std::map<std::string, std::string> parent_;
};

std::string l3_key(const Endpoint& endpoint) { return "l3|" + endpoint.to_string(); }

std::string vlan_key(const DeviceId& sw, VlanId vlan) {
  return "vlan|" + sw.str() + "|" + std::to_string(vlan);
}

/// Kind of one side of a link, for segment-merging purposes.
struct Side {
  enum class Kind { Down, L3, Access, Trunk } kind = Kind::Down;
  Endpoint endpoint;
  VlanId access_vlan = 1;
  std::vector<VlanId> trunk_allowed;
};

Side classify(const Network& network, const Endpoint& endpoint) {
  Side side;
  side.endpoint = endpoint;
  const Device* device = network.find_device(endpoint.device);
  if (!device) return side;
  const Interface* iface = device->find_interface(endpoint.iface);
  if (!iface || iface->shutdown) return side;
  // Switchport semantics apply to any device kind: routers acting as L3
  // switches carry access/trunk ports too.
  if (iface->mode == SwitchportMode::Access) {
    side.kind = Side::Kind::Access;
    side.access_vlan = iface->access_vlan;
  } else if (iface->mode == SwitchportMode::Trunk) {
    side.kind = Side::Kind::Trunk;
    side.trunk_allowed = iface->trunk_allowed;
  } else if (iface->address) {
    side.kind = Side::Kind::L3;
  }
  return side;
}

}  // namespace

namespace {

/// SVI detection: "Vlan<N>" interfaces are L3 endpoints attached to their
/// own device's VLAN-N broadcast domain (switched virtual interfaces).
std::optional<VlanId> svi_vlan(const Interface& iface) {
  const std::string& name = iface.id.str();
  if (name.size() < 5 || name.compare(0, 4, "Vlan") != 0) return std::nullopt;
  VlanId vlan = 0;
  for (std::size_t i = 4; i < name.size(); ++i) {
    char c = name[i];
    if (c < '0' || c > '9') return std::nullopt;
    vlan = static_cast<VlanId>(vlan * 10 + static_cast<VlanId>(c - '0'));
    if (vlan > 4094) return std::nullopt;
  }
  return vlan;
}

}  // namespace

L2Domains L2Domains::compute(const Network& network) {
  UnionFind uf;

  // Register every up L3 endpoint so isolated interfaces still get segments,
  // and attach SVIs to their device's VLAN domain.
  for (const Device& device : network.devices()) {
    for (const Interface& iface : device.interfaces()) {
      if (!iface.address || iface.shutdown) continue;
      Endpoint endpoint{device.id(), iface.id};
      uf.add(l3_key(endpoint));
      if (auto vlan = svi_vlan(iface)) {
        uf.unite(l3_key(endpoint), vlan_key(device.id(), *vlan));
      }
    }
  }

  for (const Link& link : network.topology().links()) {
    Side a = classify(network, link.a);
    Side b = classify(network, link.b);
    if (a.kind == Side::Kind::Down || b.kind == Side::Kind::Down) continue;
    auto key_of = [&](const Side& side, VlanId vlan) {
      return side.kind == Side::Kind::L3 ? l3_key(side.endpoint)
                                         : vlan_key(side.endpoint.device, vlan);
    };
    if (a.kind == Side::Kind::L3 && b.kind == Side::Kind::L3) {
      uf.unite(l3_key(a.endpoint), l3_key(b.endpoint));
    } else if (a.kind != Side::Kind::Trunk && b.kind != Side::Kind::Trunk) {
      // L3/access combinations: merge using each side's own VLAN domain.
      uf.unite(key_of(a, a.access_vlan), key_of(b, b.access_vlan));
    } else if (a.kind == Side::Kind::Trunk && b.kind == Side::Kind::Trunk) {
      for (VlanId vlan : a.trunk_allowed) {
        if (std::find(b.trunk_allowed.begin(), b.trunk_allowed.end(), vlan) !=
            b.trunk_allowed.end()) {
          uf.unite(vlan_key(a.endpoint.device, vlan), vlan_key(b.endpoint.device, vlan));
        }
      }
    } else {
      // One trunk, one access/L3.
      const Side& trunk = a.kind == Side::Kind::Trunk ? a : b;
      const Side& other = a.kind == Side::Kind::Trunk ? b : a;
      VlanId vlan = other.kind == Side::Kind::Access ? other.access_vlan : VlanId{1};
      if (std::find(trunk.trunk_allowed.begin(), trunk.trunk_allowed.end(), vlan) !=
          trunk.trunk_allowed.end()) {
        uf.unite(key_of(other, vlan), vlan_key(trunk.endpoint.device, vlan));
      }
    }
  }

  // Assign dense segment ids to roots that contain at least one L3 endpoint.
  L2Domains domains;
  std::map<std::string, SegmentId> root_ids;
  for (const Device& device : network.devices()) {
    for (const Interface& iface : device.interfaces()) {
      if (!iface.address || iface.shutdown) continue;
      Endpoint endpoint{device.id(), iface.id};
      std::string root = uf.find(l3_key(endpoint));
      auto [it, inserted] = root_ids.try_emplace(root, domains.segment_count_);
      if (inserted) ++domains.segment_count_;
      domains.endpoint_segment_[endpoint] = it->second;
      domains.segment_members_[it->second].push_back(endpoint);
    }
  }
  for (auto& [segment, members] : domains.segment_members_) std::sort(members.begin(), members.end());
  return domains;
}

std::optional<SegmentId> L2Domains::segment_of(const Endpoint& endpoint) const {
  auto it = endpoint_segment_.find(endpoint);
  if (it == endpoint_segment_.end()) return std::nullopt;
  return it->second;
}

std::vector<Endpoint> L2Domains::members(SegmentId segment) const {
  auto it = segment_members_.find(segment);
  if (it == segment_members_.end()) return {};
  return it->second;
}

bool L2Domains::adjacent(const Endpoint& a, const Endpoint& b) const {
  auto sa = segment_of(a);
  auto sb = segment_of(b);
  return sa && sb && *sa == *sb;
}

std::optional<Endpoint> L2Domains::resolve_ip(SegmentId segment, Ipv4Address ip,
                                              const Network& network) const {
  for (const Endpoint& endpoint : members(segment)) {
    const Device* device = network.find_device(endpoint.device);
    if (!device) continue;
    const Interface* iface = device->find_interface(endpoint.iface);
    if (iface && iface->address && iface->address->ip == ip) return endpoint;
  }
  return std::nullopt;
}

}  // namespace heimdall::dp
