// Flow tracing: simulates one packet's path through the computed dataplane,
// applying FIB lookups, L2 delivery and interface ACLs hop by hop.
#pragma once

#include <string>
#include <vector>

#include "dataplane/dataplane.hpp"
#include "netmodel/acl.hpp"

namespace heimdall::dp {

/// Why a trace ended.
enum class Disposition : std::uint8_t {
  Delivered,           ///< reached the device owning the destination IP
  DeniedInbound,       ///< dropped by an ingress ACL
  DeniedOutbound,      ///< dropped by an egress ACL
  NoRoute,             ///< FIB miss at some hop
  NextHopUnreachable,  ///< route present but the next hop did not resolve on L2
  Loop,                ///< hop limit exceeded
  UnknownSource,       ///< flow's source IP is not configured anywhere
  UnknownDestination,  ///< flow's destination IP is not configured anywhere
  SourceDown,          ///< source interface is shutdown
};

std::string to_string(Disposition disposition);

/// One forwarding step of a trace.
struct Hop {
  net::DeviceId device;
  net::InterfaceId in_iface;   ///< empty at the originating device
  net::InterfaceId out_iface;  ///< empty at the final device
};

/// The outcome of tracing one flow.
struct TraceResult {
  Disposition disposition = Disposition::NoRoute;
  std::vector<Hop> hops;
  /// Device where the trace ended (dropped or delivered).
  net::DeviceId last_device;
  /// Human-readable detail, e.g. which ACL dropped the packet.
  std::string detail;

  bool delivered() const { return disposition == Disposition::Delivered; }

  /// Devices touched, in order, without duplicates.
  std::vector<net::DeviceId> path() const;
};

/// Traces `flow` from the device owning its source IP.
TraceResult trace_flow(const net::Network& network, const Dataplane& dataplane,
                       const net::Flow& flow);

/// Convenience: ICMP flow between two hosts' primary addresses.
TraceResult trace_hosts(const net::Network& network, const Dataplane& dataplane,
                        const net::DeviceId& src, const net::DeviceId& dst);

}  // namespace heimdall::dp
