#include "dataplane/compiled_fib.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace heimdall::dp {

namespace {

constexpr std::size_t kChunkEntries = 256;

/// Stride choice when BuildOptions::stride is 0: pay for a large flat top
/// table only when the route count says lookups will actually spread across
/// it. Scenario-scale FIBs (tens of routes) stay in one or two L1-resident
/// pages; a datacenter-scale FIB gets the classic DIR-24-8 layout.
unsigned auto_stride(std::size_t route_count) {
  if (route_count >= 65536) return 24;
  if (route_count >= 256) return 16;
  return 8;
}

}  // namespace

CompiledFib CompiledFib::build(const Fib& fib, const BuildOptions& options) {
  CompiledFib compiled;
  compiled.routes_ = fib.routes();  // (length desc, network asc)

  const unsigned stride =
      options.stride != 0 ? options.stride : auto_stride(compiled.routes_.size());
  util::require(stride == 8 || stride == 16 || stride == 24,
                "CompiledFib stride must be 8, 16 or 24 bits");
  compiled.shift_ = 32u - stride;
  compiled.top_.assign(std::size_t(1) << stride, 0u);

  // Upper-bound the overflow arena from the route list: a route extending
  // `levels` strides past the top table spawns at most `levels` chunks. The
  // bound ignores chunk sharing between sibling prefixes, so trim to actual
  // occupancy after the paint — reserving up front keeps the paint loop from
  // re-copying the arena on every geometric growth step.
  std::size_t chunk_bound = 0;
  for (const Route& route : compiled.routes_) {
    if (route.prefix.length() > stride) chunk_bound += (route.prefix.length() - stride + 7) / 8;
  }
  compiled.chunks_.reserve(chunk_bound * kChunkEntries);

  // Paint shortest prefix first (routes_ is length-descending, so walk it
  // backwards): a longer prefix painted later overwrites exactly the entries
  // it refines, and equal-length prefixes are disjoint. Because lengths are
  // non-decreasing, a paint target range can never contain a chunk pointer —
  // chunks are only spawned by strictly longer prefixes — so every paint is
  // a plain range fill.
  for (std::size_t r = compiled.routes_.size(); r-- > 0;) {
    compiled.paint(compiled.routes_[r].prefix, static_cast<std::uint32_t>(r) + 1);
  }
  compiled.chunks_.shrink_to_fit();
  return compiled;
}

void CompiledFib::paint(const net::Ipv4Prefix& prefix, std::uint32_t leaf) {
  const std::uint32_t bits = prefix.network().value();
  const unsigned length = prefix.length();
  unsigned shift = shift_;
  bool in_top = true;
  std::size_t chunk_base = 0;  // offset of the current chunk in chunks_

  // Descend through every level the prefix extends past, materializing a
  // chunk on first refinement. A fresh chunk is pre-filled with the entry it
  // replaces so addresses missing the longer prefix keep resolving to the
  // shorter covering route.
  while (length > 32u - shift) {
    const std::size_t slot = in_top ? static_cast<std::size_t>(bits >> shift)
                                    : chunk_base + ((bits >> shift) & 0xffu);
    std::uint32_t entry = in_top ? top_[slot] : chunks_[slot];
    if (!(entry & kChunkBit)) {
      const std::uint32_t chunk = static_cast<std::uint32_t>(chunks_.size() / kChunkEntries);
      chunks_.resize(chunks_.size() + kChunkEntries, entry);
      entry = kChunkBit | chunk;
      (in_top ? top_[slot] : chunks_[slot]) = entry;
    }
    chunk_base = static_cast<std::size_t>(entry & ~kChunkBit) * kChunkEntries;
    in_top = false;
    shift -= 8;
  }

  // Fill the covered range at the target level. The range never crosses the
  // level's table (the prefix is longer than every level above it) and never
  // holds a chunk pointer (see build).
  const std::size_t first = in_top ? static_cast<std::size_t>(bits >> shift)
                                   : chunk_base + ((bits >> shift) & 0xffu);
  const std::size_t count = std::size_t(1) << (32u - shift - length);
  std::uint32_t* table = in_top ? top_.data() : chunks_.data();
  std::fill_n(table + first, count, leaf);
}

void CompiledFib::lookup_many(std::span<const net::Ipv4Address> addresses,
                              std::span<std::uint32_t> out) const {
  util::require(out.size() >= addresses.size(),
                "CompiledFib::lookup_many: output span too small");
  if (top_.empty()) {
    std::fill_n(out.begin(), addresses.size(), kMiss);
    return;
  }
  constexpr std::size_t kPrefetchAhead = 8;
  const std::size_t count = addresses.size();
  for (std::size_t i = 0; i < count; ++i) {
#if defined(__GNUC__) || defined(__clang__)
    if (i + kPrefetchAhead < count)
      __builtin_prefetch(&top_[addresses[i + kPrefetchAhead].value() >> shift_]);
#endif
    out[i] = lookup_index(addresses[i]);
  }
}

}  // namespace heimdall::dp
