#include "dataplane/compiled_fib.hpp"

#include <algorithm>

namespace heimdall::dp {

namespace {

std::uint32_t mask_of(unsigned length) {
  return length == 0 ? 0u : ~0u << (32u - length);
}

}  // namespace

CompiledFib CompiledFib::build(const Fib& fib) {
  CompiledFib compiled;
  compiled.routes_ = fib.routes();  // (length desc, network asc)

  for (std::uint32_t i = 0; i < compiled.routes_.size(); ++i) {
    const net::Ipv4Prefix& prefix = compiled.routes_[i].prefix;
    if (compiled.buckets_.empty() ||
        compiled.buckets_.back().mask != mask_of(prefix.length())) {
      Bucket bucket;
      bucket.mask = mask_of(prefix.length());
      bucket.first = i;
      compiled.buckets_.push_back(std::move(bucket));
    }
    compiled.buckets_.back().networks.push_back(prefix.network().value());
  }
  return compiled;
}

std::uint32_t CompiledFib::lookup_index(net::Ipv4Address address) const {
  const std::uint32_t bits = address.value();
  for (const Bucket& bucket : buckets_) {
    const std::uint32_t key = bits & bucket.mask;
    auto it = std::lower_bound(bucket.networks.begin(), bucket.networks.end(), key);
    if (it != bucket.networks.end() && *it == key) {
      return bucket.first + static_cast<std::uint32_t>(it - bucket.networks.begin());
    }
  }
  return kMiss;
}

}  // namespace heimdall::dp
