#include "dataplane/dataplane.hpp"

namespace heimdall::dp {

using namespace heimdall::net;

void Dataplane::install_local_routes(const Device& device, Fib& fib) {
  for (const Interface& iface : device.interfaces()) {
    if (!iface.address || iface.shutdown) continue;
    Route route;
    route.prefix = iface.address->subnet();
    route.protocol = RouteProtocol::Connected;
    route.out_iface = iface.id;
    route.admin_distance = default_admin_distance(RouteProtocol::Connected);
    fib.insert(route);
  }
  for (const StaticRoute& configured : device.static_routes()) {
    // A static route is usable only when its next hop lies in a connected
    // subnet of an up interface (no recursive resolution in this model).
    const Interface* egress = nullptr;
    for (const Interface& iface : device.interfaces()) {
      if (iface.address && !iface.shutdown && iface.address->subnet().contains(configured.next_hop)) {
        egress = &iface;
        break;
      }
    }
    if (!egress) continue;
    Route route;
    route.prefix = configured.prefix;
    route.protocol = RouteProtocol::Static;
    route.next_hop = configured.next_hop;
    route.out_iface = egress->id;
    route.admin_distance = configured.admin_distance;
    fib.insert(route);
  }
}

Dataplane Dataplane::compute(const Network& network) {
  Dataplane dataplane;
  dataplane.l2_ = L2Domains::compute(network);

  // Connected + static routes.
  for (const Device& device : network.devices()) {
    install_local_routes(device, dataplane.fibs_[device.id()]);
  }

  // OSPF.
  OspfResult ospf = compute_ospf(network, dataplane.l2_);
  dataplane.ospf_adjacencies_ = std::move(ospf.adjacencies);
  dataplane.ospf_routes_ = std::move(ospf.routes);
  for (const auto& [router, routes] : dataplane.ospf_routes_) {
    Fib& fib = dataplane.fibs_[router];
    for (const Route& route : routes) fib.insert(route);
  }

  return dataplane;
}

void Dataplane::rebuild_device_fib(const Device& device) {
  Fib& fib = fibs_[device.id()];
  fib = Fib{};
  install_local_routes(device, fib);
  auto ospf = ospf_routes_.find(device.id());
  if (ospf != ospf_routes_.end()) {
    for (const Route& route : ospf->second) fib.insert(route);
  }
}

const Fib& Dataplane::fib(const DeviceId& device) const {
  auto it = fibs_.find(device);
  return it == fibs_.end() ? empty_ : it->second;
}

std::size_t Dataplane::total_routes() const {
  std::size_t total = 0;
  for (const auto& [device, fib] : fibs_) total += fib.size();
  return total;
}

}  // namespace heimdall::dp
