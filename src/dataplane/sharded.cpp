#include "dataplane/sharded.hpp"

#include <algorithm>
#include <span>

#include "dataplane/compiled.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace heimdall::dp {

using namespace heimdall::net;

namespace {

struct ShardMetrics {
  obs::Gauge& matrix_bytes;
  obs::Gauge& matrix_equiv_classes;

  static ShardMetrics& get() {
    static ShardMetrics metrics{
        obs::Registry::global().gauge("matrix.bytes"),
        obs::Registry::global().gauge("matrix.equiv_classes"),
    };
    return metrics;
  }
};

/// Sorted boundary set of every discriminating prefix: two addresses fall in
/// the same cell iff every route and ACL prefix in the network contains
/// either both or neither.
class PrefixRefinement {
 public:
  explicit PrefixRefinement(const CompiledPlane& plane) {
    const NetworkIndex& idx = plane.index();
    std::size_t prefix_estimate = 0;
    for (std::uint32_t d = 0; d < idx.device_count(); ++d)
      prefix_estimate += plane.fib(d).size();
    for (const Acl& acl : idx.acls()) prefix_estimate += 2 * acl.entries.size();
    boundaries_.reserve(2 * prefix_estimate);

    auto add = [&](const Ipv4Prefix& prefix) {
      const std::uint64_t lo = prefix.network().value();
      const std::uint64_t size = std::uint64_t(1) << (32u - prefix.length());
      boundaries_.push_back(lo);
      boundaries_.push_back(lo + size);
    };
    for (std::uint32_t d = 0; d < idx.device_count(); ++d) {
      for (const Route& route : plane.fib(d).routes()) add(route.prefix);
    }
    for (const Acl& acl : idx.acls()) {
      for (const AclEntry& entry : acl.entries) {
        add(entry.src);
        add(entry.dst);
      }
    }
    std::sort(boundaries_.begin(), boundaries_.end());
    boundaries_.erase(std::unique(boundaries_.begin(), boundaries_.end()), boundaries_.end());
  }

  std::size_t cell(Ipv4Address ip) const {
    return static_cast<std::size_t>(
        std::upper_bound(boundaries_.begin(), boundaries_.end(), std::uint64_t(ip.value())) -
        boundaries_.begin());
  }

 private:
  std::vector<std::uint64_t> boundaries_;
};

void append_acl(std::string& sig, const NetworkIndex& idx, std::uint32_t acl_idx) {
  if (acl_idx == NetworkIndex::kInvalid) {
    sig += '-';
    return;
  }
  for (const AclEntry& entry : idx.acls()[acl_idx].entries) {
    sig += entry.to_string();
    sig += ';';
  }
}

}  // namespace

HostClasses HostClasses::compute(const CompiledPlane& plane) {
  const NetworkIndex& idx = plane.index();
  const std::vector<std::uint32_t>& hosts = idx.hosts();
  PrefixRefinement refinement(plane);

  // Exclusive-ownership census: a host address owned by more than one
  // interface (or whose first owner is not the host itself) makes
  // device_owns_ip / L2 resolution per-address in ways the refinement cells
  // cannot see — such hosts stay singleton classes.
  std::unordered_map<std::uint32_t, std::uint32_t> owner_count;
  std::unordered_map<std::uint32_t, std::uint32_t> first_owner;  // ip -> iface idx
  for (std::uint32_t i = 0; i < idx.interface_count(); ++i) {
    const NetworkIndex::InterfaceEntry& iface = idx.interface(i);
    if (!iface.address) continue;
    ++owner_count[iface.address->ip.value()];
    first_owner.try_emplace(iface.address->ip.value(), i);
  }

  HostClasses classes;
  classes.class_of_.assign(hosts.size(), kInvalid);
  std::unordered_map<std::string, std::uint32_t> by_signature;
  by_signature.reserve(hosts.size());

  for (std::uint32_t pos = 0; pos < hosts.size(); ++pos) {
    const std::uint32_t host = hosts[pos];
    const NetworkIndex::DeviceEntry& device = idx.device(host);
    auto primary = idx.primary_ip(host);

    bool clean = primary.has_value();
    if (clean) {
      auto count_it = owner_count.find(primary->value());
      clean = count_it != owner_count.end() && count_it->second == 1 &&
              idx.interface(first_owner[primary->value()]).device == host;
    }

    std::string sig;
    if (!clean) {
      // Unique signature: correctness never depends on the equivalence
      // argument for this host, only compression is lost.
      sig = "!" + device.id.str();
    } else {
      sig.reserve(96);
      sig += 'c';
      sig += std::to_string(refinement.cell(*primary));
      for (std::uint32_t i = device.iface_begin; i < device.iface_end; ++i) {
        const NetworkIndex::InterfaceEntry& iface = idx.interface(i);
        sig += "|i:";
        sig += iface.id.str();
        sig += ':';
        sig += std::to_string(plane.iface_segment(i));
        sig += iface.shutdown ? ":d:" : ":u:";
        if (iface.address) {
          sig += std::to_string(iface.address->prefix_length);
          sig += ':';
          sig += std::to_string(refinement.cell(iface.address->ip));
        } else {
          sig += '-';
        }
        sig += ':';
        append_acl(sig, idx, iface.acl_in);
        sig += ':';
        append_acl(sig, idx, iface.acl_out);
      }
      sig += "|r:";
      for (const Route& route : plane.fib(host).routes()) {
        sig += route.prefix.to_string();
        sig += ',';
        sig += std::to_string(static_cast<unsigned>(route.protocol));
        sig += ',';
        sig += route.next_hop ? std::to_string(route.next_hop->value()) : std::string("-");
        sig += ',';
        sig += route.out_iface.str();
        sig += ',';
        sig += std::to_string(route.admin_distance);
        sig += ',';
        sig += std::to_string(route.metric);
        sig += ';';
      }
    }

    auto [it, inserted] =
        by_signature.try_emplace(std::move(sig), static_cast<std::uint32_t>(classes.members_.size()));
    if (inserted) classes.members_.emplace_back();
    classes.class_of_[pos] = it->second;
    classes.members_[it->second].push_back(pos);
  }
  return classes;
}

void ShardedReachability::set_delivered_bit(std::uint32_t src_cls, std::uint32_t dst_cls,
                                            bool value) {
  const std::uint32_t k = classes_.class_count();
  const std::size_t words_per_row = (k + 63) / 64;
  std::uint64_t& word = delivered_bits_[dst_cls * words_per_row + (src_cls >> 6)];
  const std::uint64_t mask = std::uint64_t(1) << (src_cls & 63);
  if (value) {
    word |= mask;
  } else {
    word &= ~mask;
  }
}

bool ShardedReachability::delivered_bit_value(std::uint32_t src_cls, std::uint32_t dst_cls) const {
  const std::uint32_t k = classes_.class_count();
  const std::size_t words_per_row = (k + 63) / 64;
  return (delivered_bits_[dst_cls * words_per_row + (src_cls >> 6)] >> (src_cls & 63)) & 1u;
}

std::pair<const net::DeviceId*, const net::DeviceId*> ShardedReachability::rep_ids(
    std::uint32_t src_cls, std::uint32_t dst_cls) const {
  const auto& src_members = classes_.members()[src_cls];
  const auto& dst_members = classes_.members()[dst_cls];
  const std::uint32_t src_pos = src_cls == dst_cls ? src_members[1] : src_members[0];
  return {&host_ids_[src_pos], &host_ids_[dst_members[0]]};
}

void ShardedReachability::finalize_counts() {
  const std::uint32_t k = classes_.class_count();
  reachable_count_ = 0;
  traced_pairs_ = 0;
  for (std::uint32_t d = 0; d < k; ++d) {
    const std::size_t dst_size = classes_.members()[d].size();
    for (std::uint32_t c = 0; c < k; ++c) {
      const std::size_t src_size = classes_.members()[c].size();
      const std::size_t mult = c == d ? dst_size * (dst_size - 1) : src_size * dst_size;
      if (mult == 0) continue;
      ++traced_pairs_;
      if (delivered_bit_value(c, d)) reachable_count_ += mult;
    }
  }
}

void ShardedReachability::store_paths(const std::vector<std::vector<net::DeviceId>>& rep_paths) {
  path_pool_.clear();
  path_offsets_.assign(rep_paths.size() + 1, 0);
  path_entries_.clear();
  std::size_t total = 0;
  for (const auto& path : rep_paths) total += path.size();
  path_entries_.reserve(total);
  std::unordered_map<std::string, std::uint32_t> pool_index;
  for (std::size_t p = 0; p < rep_paths.size(); ++p) {
    for (const DeviceId& hop : rep_paths[p]) {
      auto [it, inserted] =
          pool_index.try_emplace(hop.str(), static_cast<std::uint32_t>(path_pool_.size()));
      if (inserted) path_pool_.push_back(hop);
      path_entries_.push_back(it->second);
    }
    path_offsets_[p + 1] = static_cast<std::uint32_t>(path_entries_.size());
  }
}

std::vector<net::DeviceId> ShardedReachability::decode_path(std::size_t pair_slot) const {
  std::vector<net::DeviceId> out;
  const std::uint32_t begin = path_offsets_[pair_slot];
  const std::uint32_t end = path_offsets_[pair_slot + 1];
  out.reserve(end - begin);
  for (std::uint32_t e = begin; e < end; ++e) out.push_back(path_pool_[path_entries_[e]]);
  return out;
}

ShardedReachability ShardedReachability::compute(const CompiledPlane& plane,
                                                 const ShardOptions& options) {
  ShardedReachability out;
  const NetworkIndex& idx = plane.index();
  const std::vector<std::uint32_t>& hosts = idx.hosts();

  out.host_ids_.reserve(hosts.size());
  std::vector<Ipv4Address> host_ips;
  host_ips.reserve(hosts.size());
  for (std::uint32_t host : hosts) {
    auto ip = idx.primary_ip(host);
    util::require(ip.has_value(), "trace_hosts: no address on " + idx.device_id(host).str());
    host_ips.push_back(*ip);
    out.host_ids_.push_back(idx.device_id(host));
  }
  out.host_pos_.reserve(hosts.size());
  for (std::uint32_t pos = 0; pos < out.host_ids_.size(); ++pos)
    out.host_pos_.emplace(out.host_ids_[pos].str(), pos);

  out.classes_ = HostClasses::compute(plane);
  const std::uint32_t k = out.classes_.class_count();
  const std::size_t slots = static_cast<std::size_t>(k) * k;
  const std::size_t words_per_row = (k + 63) / 64;
  out.dispositions_.assign(slots, Disposition::NoRoute);
  out.delivered_bits_.assign(words_per_row * k, 0);

  std::vector<Ipv4Address> rep_ips;
  rep_ips.reserve(k);
  for (std::uint32_t c = 0; c < k; ++c) rep_ips.push_back(host_ips[out.classes_.representative(c)]);

  // One lookup_many sweep per device prewarms every (device, dst class) LPM
  // answer — classes^2 column traces below never walk a FIB cold.
  const std::uint32_t device_count = idx.device_count();
  std::vector<std::uint32_t> route_by_device(static_cast<std::size_t>(device_count) * k);
  {
    CompiledPlane::TraceCounters counters;
    for (std::uint32_t d = 0; d < device_count; ++d) {
      plane.fib(d).lookup_many(
          rep_ips, std::span(route_by_device).subspan(static_cast<std::size_t>(d) * k, k));
    }
    counters.lpm_lookups += route_by_device.size();
    CompiledPlane::flush_counters(counters);
  }

  // Destination-class columns are the shards: each owns a DstCache seeded
  // with the prewarmed routes and writes only its own disposition row,
  // bitset row and path slots, so no synchronization beyond the pool join.
  std::vector<std::vector<DeviceId>> rep_paths(slots);
  auto trace_columns = [&](std::size_t begin, std::size_t end) {
    CompiledPlane::TraceCounters counters;
    for (std::size_t d = begin; d < end; ++d) {
      std::vector<std::uint32_t> hints(device_count);
      for (std::uint32_t dev = 0; dev < device_count; ++dev)
        hints[dev] = route_by_device[static_cast<std::size_t>(dev) * k + d];
      CompiledPlane::DstCache cache = plane.make_dst_cache(rep_ips[d], std::move(hints));
      Flow flow;
      flow.dst_ip = rep_ips[d];
      flow.protocol = IpProtocol::Icmp;
      for (std::uint32_t c = 0; c < k; ++c) {
        if (c == d) {
          const auto& members = out.classes_.members()[d];
          if (members.size() < 2) continue;  // singleton diagonal: no pair
          flow.src_ip = host_ips[members[1]];
        } else {
          flow.src_ip = rep_ips[c];
        }
        CompiledPlane::IndexedTrace trace = plane.trace_indexed(flow, cache, counters);
        const std::size_t s = out.slot(c, static_cast<std::uint32_t>(d));
        out.dispositions_[s] = trace.disposition;
        if (trace.delivered()) out.set_delivered_bit(c, static_cast<std::uint32_t>(d), true);
        rep_paths[s] = plane.path_of(trace);
      }
    }
    CompiledPlane::flush_counters(counters);
  };
  if (options.pool) {
    options.pool->parallel_for(k, trace_columns, /*grain=*/1);
  } else {
    trace_columns(0, k);
  }

  out.store_paths(rep_paths);
  out.finalize_counts();
  ShardMetrics& metrics = ShardMetrics::get();
  metrics.matrix_bytes.set(static_cast<std::int64_t>(out.bytes()));
  metrics.matrix_equiv_classes.set(static_cast<std::int64_t>(k));
  return out;
}

ShardedReachability ShardedReachability::recompute(const CompiledPlane& plane,
                                                   const ShardedReachability& base,
                                                   const std::set<net::DeviceId>& dirty,
                                                   const ShardOptions& options,
                                                   std::size_t* retraced) {
  const NetworkIndex& idx = plane.index();
  const std::vector<std::uint32_t>& hosts = idx.hosts();

  // The incremental path is only sound when the compressed pairs still
  // stand for the same member sets: a change that moves the partition (or
  // the host list) invalidates the representative choice, so fall back.
  bool same_hosts = hosts.size() == base.host_ids_.size();
  for (std::uint32_t pos = 0; same_hosts && pos < hosts.size(); ++pos)
    same_hosts = idx.device_id(hosts[pos]) == base.host_ids_[pos];
  HostClasses classes = HostClasses::compute(plane);
  if (!same_hosts || !classes.same_partition(base.classes_)) {
    ShardedReachability fresh = compute(plane, options);
    if (retraced) *retraced = fresh.traced_pairs();
    return fresh;
  }

  ShardedReachability out = base;
  const std::uint32_t k = out.classes_.class_count();
  const std::size_t slots = static_cast<std::size_t>(k) * k;

  // Materialize the paths once: stale slots get re-traced, the rest are
  // decoded from the base and re-interned wholesale at the end.
  std::vector<std::vector<DeviceId>> rep_paths(slots);
  std::vector<std::vector<std::uint32_t>> stale_by_dst(k);  // src classes per dst column
  std::size_t stale_count = 0;
  for (std::uint32_t d = 0; d < k; ++d) {
    for (std::uint32_t c = 0; c < k; ++c) {
      if (c == d && out.classes_.members()[d].size() < 2) continue;
      const std::size_t s = out.slot(c, d);
      rep_paths[s] = out.decode_path(s);
      bool touches_dirty =
          std::any_of(rep_paths[s].begin(), rep_paths[s].end(),
                      [&](const DeviceId& hop) { return dirty.count(hop) != 0; });
      if (touches_dirty) {
        stale_by_dst[d].push_back(c);
        ++stale_count;
      }
    }
  }
  if (retraced) *retraced = stale_count;

  std::vector<std::uint32_t> stale_columns;
  for (std::uint32_t d = 0; d < k; ++d)
    if (!stale_by_dst[d].empty()) stale_columns.push_back(d);

  std::vector<Ipv4Address> host_ips;
  host_ips.reserve(hosts.size());
  for (std::uint32_t host : hosts) host_ips.push_back(*idx.primary_ip(host));

  auto trace_groups = [&](std::size_t begin, std::size_t end) {
    CompiledPlane::TraceCounters counters;
    for (std::size_t g = begin; g < end; ++g) {
      const std::uint32_t d = stale_columns[g];
      const Ipv4Address dst_ip = host_ips[out.classes_.representative(d)];
      CompiledPlane::DstCache cache = plane.make_dst_cache(dst_ip);
      Flow flow;
      flow.dst_ip = dst_ip;
      flow.protocol = IpProtocol::Icmp;
      for (std::uint32_t c : stale_by_dst[d]) {
        flow.src_ip = c == d ? host_ips[out.classes_.members()[d][1]]
                             : host_ips[out.classes_.representative(c)];
        CompiledPlane::IndexedTrace trace = plane.trace_indexed(flow, cache, counters);
        const std::size_t s = out.slot(c, d);
        out.dispositions_[s] = trace.disposition;
        out.set_delivered_bit(c, d, trace.delivered());
        rep_paths[s] = plane.path_of(trace);
      }
    }
    CompiledPlane::flush_counters(counters);
  };
  if (options.pool) {
    options.pool->parallel_for(stale_columns.size(), trace_groups, /*grain=*/1);
  } else {
    trace_groups(0, stale_columns.size());
  }

  out.store_paths(rep_paths);
  out.finalize_counts();
  ShardMetrics& metrics = ShardMetrics::get();
  metrics.matrix_bytes.set(static_cast<std::int64_t>(out.bytes()));
  metrics.matrix_equiv_classes.set(static_cast<std::int64_t>(k));
  return out;
}

std::uint32_t ShardedReachability::host_pos(const net::DeviceId& id) const {
  auto it = host_pos_.find(id.str());
  return it == host_pos_.end() ? HostClasses::kInvalid : it->second;
}

bool ShardedReachability::has_pair(const net::DeviceId& src, const net::DeviceId& dst) const {
  if (src == dst) return false;
  return host_pos(src) != HostClasses::kInvalid && host_pos(dst) != HostClasses::kInvalid;
}

Disposition ShardedReachability::disposition(const net::DeviceId& src,
                                             const net::DeviceId& dst) const {
  const std::uint32_t src_pos = src == dst ? HostClasses::kInvalid : host_pos(src);
  const std::uint32_t dst_pos = src == dst ? HostClasses::kInvalid : host_pos(dst);
  if (src_pos == HostClasses::kInvalid || dst_pos == HostClasses::kInvalid)
    throw util::NotFoundError("no reachability entry for " + src.str() + " -> " + dst.str());
  return dispositions_[slot(classes_.class_of(src_pos), classes_.class_of(dst_pos))];
}

std::vector<net::DeviceId> ShardedReachability::path(const net::DeviceId& src,
                                                     const net::DeviceId& dst) const {
  const std::uint32_t src_pos = src == dst ? HostClasses::kInvalid : host_pos(src);
  const std::uint32_t dst_pos = src == dst ? HostClasses::kInvalid : host_pos(dst);
  if (src_pos == HostClasses::kInvalid || dst_pos == HostClasses::kInvalid)
    throw util::NotFoundError("no reachability entry for " + src.str() + " -> " + dst.str());
  const std::uint32_t src_cls = classes_.class_of(src_pos);
  const std::uint32_t dst_cls = classes_.class_of(dst_pos);
  std::vector<DeviceId> out = decode_path(slot(src_cls, dst_cls));
  // The representative path is exact for the member pair modulo the
  // endpoints themselves: substitute them when present (a trace that died
  // before its first hop has no endpoint to substitute).
  auto [rep_src, rep_dst] = rep_ids(src_cls, dst_cls);
  const bool front_is_src = !out.empty() && out.front() == *rep_src;
  const bool back_is_dst = !out.empty() && out.back() == *rep_dst;
  if (front_is_src) out.front() = src;
  if (back_is_dst) out.back() = dst;
  return out;
}

std::size_t ShardedReachability::total_count() const {
  const std::size_t h = host_ids_.size();
  return h < 2 ? 0 : h * (h - 1);
}

std::size_t ShardedReachability::bytes() const {
  // Estimate of the retained footprint: O(classes^2) verdict/path tables
  // plus O(hosts) id bookkeeping — the asymptotic contrast with the dense
  // matrix's O(hosts^2 . path) is the point.
  std::size_t total = 0;
  total += classes_.host_count() * sizeof(std::uint32_t);  // class_of
  total += dispositions_.capacity() * sizeof(Disposition);
  total += delivered_bits_.capacity() * sizeof(std::uint64_t);
  total += path_offsets_.capacity() * sizeof(std::uint32_t);
  total += path_entries_.capacity() * sizeof(std::uint32_t);
  for (const DeviceId& id : path_pool_) total += sizeof(DeviceId) + id.str().size();
  for (const DeviceId& id : host_ids_) total += sizeof(DeviceId) + id.str().size();
  total += host_pos_.size() * (sizeof(std::uint32_t) + 2 * sizeof(void*));
  return total;
}

std::vector<std::tuple<DeviceId, DeviceId, bool, bool>> ShardedReachability::diff(
    const ShardedReachability& before, const ShardedReachability& after) {
  return diff_views(before, after);
}

}  // namespace heimdall::dp
