#include "dataplane/compiled.hpp"

#include "obs/metrics.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"

namespace heimdall::dp {

using namespace heimdall::net;

namespace {

constexpr unsigned kHopLimit = 32;

/// Registry references resolved once; trace batches flush into these.
struct PlaneMetrics {
  obs::Histogram& compile_ms;
  obs::Counter& lpm_lookups;
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  obs::Gauge& fib_bytes;
  obs::Gauge& fib_overflow_chunks;

  static PlaneMetrics& get() {
    static PlaneMetrics metrics{
        obs::Registry::global().histogram("dp.compile_ms",
                                          {0.01, 0.05, 0.1, 0.5, 1, 5, 10, 50, 100}),
        obs::Registry::global().counter("dp.lpm_lookups"),
        obs::Registry::global().counter("dp.trace_cache_hits"),
        obs::Registry::global().counter("dp.trace_cache_misses"),
        obs::Registry::global().gauge("dp.fib_bytes"),
        obs::Registry::global().gauge("dp.fib_overflow_chunks"),
    };
    return metrics;
  }
};

}  // namespace

CompiledPlane CompiledPlane::compile(const Network& network, const Dataplane& dataplane,
                                     const CompileOptions& options) {
  util::Stopwatch watch;
  CompiledPlane plane;
  plane.idx_ = NetworkIndex::build(network);

  const CompiledFib::BuildOptions fib_options{options.fib_stride};
  const std::uint32_t device_count = plane.idx_.device_count();
  plane.fibs_.reserve(device_count);
  plane.out_iface_.reserve(device_count);
  for (std::uint32_t d = 0; d < device_count; ++d) {
    CompiledFib fib = CompiledFib::build(dataplane.fib(plane.idx_.device_id(d)), fib_options);
    std::vector<std::uint32_t> outs;
    outs.reserve(fib.size());
    for (const Route& route : fib.routes()) {
      outs.push_back(plane.idx_.find_interface(d, route.out_iface));
    }
    plane.fib_bytes_ += fib.table_bytes();
    plane.fib_overflow_chunks_ += fib.overflow_chunks();
    plane.fibs_.push_back(std::move(fib));
    plane.out_iface_.push_back(std::move(outs));
  }

  const L2Domains& l2 = dataplane.l2();
  plane.iface_segment_.assign(plane.idx_.interface_count(), kInvalid);
  for (std::uint32_t i = 0; i < plane.idx_.interface_count(); ++i) {
    const NetworkIndex::InterfaceEntry& iface = plane.idx_.interface(i);
    auto segment = l2.segment_of({plane.idx_.device_id(iface.device), iface.id});
    if (segment) plane.iface_segment_[i] = static_cast<std::uint32_t>(*segment);
  }
  // ARP precompute. Members are sorted, so try_emplace keeps the first owner
  // of each ip — the same endpoint L2Domains::resolve_ip's scan returns.
  for (std::uint32_t segment = 0; segment < l2.segment_count(); ++segment) {
    for (const Endpoint& member : l2.members(segment)) {
      std::uint32_t device = plane.idx_.find_device(member.device);
      if (device == kInvalid) continue;
      std::uint32_t iface = plane.idx_.find_interface(device, member.iface);
      if (iface == kInvalid) continue;
      const auto& entry = plane.idx_.interface(iface);
      if (!entry.address) continue;
      plane.segment_ip_.try_emplace(segment_key(segment, entry.address->ip), iface);
    }
  }

  PlaneMetrics& metrics = PlaneMetrics::get();
  metrics.compile_ms.observe(watch.elapsed_ms());
  metrics.fib_bytes.set(static_cast<std::int64_t>(plane.fib_bytes_));
  metrics.fib_overflow_chunks.set(static_cast<std::int64_t>(plane.fib_overflow_chunks_));
  return plane;
}

CompiledPlane::Decision CompiledPlane::compute_decision(std::uint32_t device_idx,
                                                        Ipv4Address dst_ip,
                                                        TraceCounters& counters) const {
  if (idx_.device_owns_ip(device_idx, dst_ip)) {
    Decision decision;
    decision.kind = Decision::Kind::Deliver;
    return decision;
  }
  ++counters.lpm_lookups;
  return resolve_route(device_idx, dst_ip, fibs_[device_idx].lookup_index(dst_ip));
}

CompiledPlane::Decision CompiledPlane::decision_from_route(std::uint32_t device_idx,
                                                           Ipv4Address dst_ip,
                                                           std::uint32_t route_idx) const {
  if (idx_.device_owns_ip(device_idx, dst_ip)) {
    Decision decision;
    decision.kind = Decision::Kind::Deliver;
    return decision;
  }
  return resolve_route(device_idx, dst_ip, route_idx);
}

CompiledPlane::Decision CompiledPlane::resolve_route(std::uint32_t device_idx,
                                                     Ipv4Address dst_ip,
                                                     std::uint32_t route_idx) const {
  Decision decision;
  if (route_idx == CompiledFib::kMiss) {
    decision.kind = Decision::Kind::NoRoute;
    return decision;
  }
  const Route& route = fibs_[device_idx].route(route_idx);
  decision.out_iface = out_iface_[device_idx][route_idx];
  if (decision.out_iface == kInvalid) {
    // A FIB route referencing a missing interface cannot be produced by
    // Dataplane::compute; mirror Device::interface's failure mode anyway.
    throw util::NotFoundError("no interface '" + route.out_iface.str() + "' on " +
                              idx_.device_id(device_idx).str());
  }
  decision.next_ip = route.next_hop.value_or(dst_ip);

  if (idx_.interface(decision.out_iface).shutdown) {
    decision.kind = Decision::Kind::EgressDown;
    return decision;
  }

  const std::uint32_t segment = iface_segment_[decision.out_iface];
  if (segment != kInvalid) {
    auto it = segment_ip_.find(segment_key(segment, decision.next_ip));
    if (it != segment_ip_.end()) {
      decision.next_iface = it->second;
      decision.next_device = idx_.interface(it->second).device;
      decision.kind = Decision::Kind::Forward;
      return decision;
    }
  }
  decision.kind = Decision::Kind::L2Unresolved;
  return decision;
}

CompiledPlane::IndexedTrace CompiledPlane::trace_indexed(const Flow& flow, DstCache& cache,
                                                         TraceCounters& counters) const {
  IndexedTrace result;

  const std::uint32_t src_iface = idx_.iface_of_ip(flow.src_ip);
  if (src_iface == kInvalid) {
    result.disposition = Disposition::UnknownSource;
    return result;
  }
  if (idx_.iface_of_ip(flow.dst_ip) == kInvalid) {
    result.disposition = Disposition::UnknownDestination;
    return result;
  }
  const NetworkIndex::InterfaceEntry& src_entry = idx_.interface(src_iface);
  if (src_entry.shutdown) {
    result.disposition = Disposition::SourceDown;
    result.last_device = src_entry.device;
    result.fail_iface = src_iface;
    return result;
  }

  std::uint32_t current = src_entry.device;
  std::uint32_t in_iface = kInvalid;  // origin

  for (unsigned hop_count = 0; hop_count < kHopLimit; ++hop_count) {
    // Ingress checks (not at the originating device). Per-flow: ACLs see the
    // full 5-tuple, so they are never memoized.
    if (in_iface != kInvalid) {
      const NetworkIndex::InterfaceEntry& iface = idx_.interface(in_iface);
      if (iface.shutdown) {
        result.disposition = Disposition::NextHopUnreachable;
        result.last_device = current;
        result.fail_reason = IndexedTrace::FailReason::IngressDown;
        result.fail_iface = in_iface;
        return result;
      }
      if (iface.acl_in != kInvalid && !acl_permits(idx_.acls()[iface.acl_in], flow)) {
        result.hops.push_back({current, in_iface, kInvalid});
        result.disposition = Disposition::DeniedInbound;
        result.last_device = current;
        result.fail_iface = in_iface;
        result.fail_acl = iface.acl_in;
        return result;
      }
    }

    const Decision& decision = cache.decision(*this, current, counters);
    switch (decision.kind) {
      case Decision::Kind::Deliver:
        result.hops.push_back({current, in_iface, kInvalid});
        result.disposition = Disposition::Delivered;
        result.last_device = current;
        return result;

      case Decision::Kind::NoRoute:
        result.hops.push_back({current, in_iface, kInvalid});
        result.disposition = Disposition::NoRoute;
        result.last_device = current;
        return result;

      case Decision::Kind::EgressDown:
        result.hops.push_back({current, in_iface, decision.out_iface});
        result.disposition = Disposition::NextHopUnreachable;
        result.last_device = current;
        result.fail_reason = IndexedTrace::FailReason::EgressDown;
        result.fail_iface = decision.out_iface;
        return result;

      case Decision::Kind::L2Unresolved:
      case Decision::Kind::Forward: {
        // Egress ACL precedes L2 delivery, as in the reference tracer.
        const NetworkIndex::InterfaceEntry& out = idx_.interface(decision.out_iface);
        if (out.acl_out != kInvalid && !acl_permits(idx_.acls()[out.acl_out], flow)) {
          result.hops.push_back({current, in_iface, decision.out_iface});
          result.disposition = Disposition::DeniedOutbound;
          result.last_device = current;
          result.fail_iface = decision.out_iface;
          result.fail_acl = out.acl_out;
          return result;
        }
        result.hops.push_back({current, in_iface, decision.out_iface});
        if (decision.kind == Decision::Kind::L2Unresolved) {
          result.disposition = Disposition::NextHopUnreachable;
          result.last_device = current;
          result.fail_reason = IndexedTrace::FailReason::L2Unresolved;
          result.fail_iface = decision.out_iface;
          result.fail_next_ip = decision.next_ip;
          return result;
        }
        current = decision.next_device;
        in_iface = decision.next_iface;
        break;
      }

      case Decision::Kind::Unknown:
        break;  // unreachable: DstCache::decision always computes
    }
  }

  result.disposition = Disposition::Loop;
  result.last_device = current;
  return result;
}

CompiledPlane::IndexedTrace CompiledPlane::trace_indexed(const Flow& flow) const {
  DstCache cache = make_dst_cache(flow.dst_ip);
  TraceCounters counters;
  IndexedTrace trace = trace_indexed(flow, cache, counters);
  flush_counters(counters);
  return trace;
}

TraceResult CompiledPlane::render(const IndexedTrace& trace, const Flow& flow) const {
  TraceResult result;
  result.disposition = trace.disposition;
  if (trace.last_device != kInvalid) result.last_device = idx_.device_id(trace.last_device);
  result.hops.reserve(trace.hops.size());
  for (const IndexedTrace::Hop& hop : trace.hops) {
    Hop rendered;
    rendered.device = idx_.device_id(hop.device);
    if (hop.in_iface != kInvalid) rendered.in_iface = idx_.interface_id(hop.in_iface);
    if (hop.out_iface != kInvalid) rendered.out_iface = idx_.interface_id(hop.out_iface);
    result.hops.push_back(std::move(rendered));
  }

  auto endpoint_str = [&](std::uint32_t iface) {
    return idx_.device_id(idx_.interface(iface).device).str() + ":" +
           idx_.interface_id(iface).str();
  };
  auto acl_detail = [&](bool inbound) {
    return "acl '" + idx_.acls()[trace.fail_acl].name + "' (" + (inbound ? "in" : "out") +
           ") on " + endpoint_str(trace.fail_iface) + " denied " + flow.to_string();
  };

  switch (trace.disposition) {
    case Disposition::UnknownSource:
      result.detail = "no interface owns " + flow.src_ip.to_string();
      break;
    case Disposition::UnknownDestination:
      result.detail = "no interface owns " + flow.dst_ip.to_string();
      break;
    case Disposition::SourceDown:
      result.detail = "source interface " + endpoint_str(trace.fail_iface) + " is shutdown";
      break;
    case Disposition::DeniedInbound:
      result.detail = acl_detail(/*inbound=*/true);
      break;
    case Disposition::DeniedOutbound:
      result.detail = acl_detail(/*inbound=*/false);
      break;
    case Disposition::NoRoute:
      result.detail =
          "no route to " + flow.dst_ip.to_string() + " on " + result.last_device.str();
      break;
    case Disposition::NextHopUnreachable:
      switch (trace.fail_reason) {
        case IndexedTrace::FailReason::IngressDown:
          result.detail =
              "ingress interface " + idx_.interface_id(trace.fail_iface).str() + " is down";
          break;
        case IndexedTrace::FailReason::EgressDown:
          result.detail =
              "egress interface " + idx_.interface_id(trace.fail_iface).str() + " is down";
          break;
        case IndexedTrace::FailReason::L2Unresolved:
          result.detail = "next hop " + trace.fail_next_ip.to_string() +
                          " not reachable on segment of " + endpoint_str(trace.fail_iface);
          break;
        case IndexedTrace::FailReason::None:
          break;
      }
      break;
    case Disposition::Loop:
      result.detail = "hop limit exceeded";
      break;
    case Disposition::Delivered:
      break;
  }
  return result;
}

TraceResult CompiledPlane::trace_flow(const Flow& flow) const {
  DstCache cache = make_dst_cache(flow.dst_ip);
  TraceCounters counters;
  IndexedTrace trace = trace_indexed(flow, cache, counters);
  flush_counters(counters);
  return render(trace, flow);
}

std::vector<DeviceId> CompiledPlane::path_of(const IndexedTrace& trace) const {
  std::vector<DeviceId> out;
  std::uint32_t last = kInvalid;
  for (const IndexedTrace::Hop& hop : trace.hops) {
    if (hop.device != last) {
      out.push_back(idx_.device_id(hop.device));
      last = hop.device;
    }
  }
  return out;
}

void CompiledPlane::flush_counters(const TraceCounters& counters) {
  PlaneMetrics& metrics = PlaneMetrics::get();
  if (counters.lpm_lookups) metrics.lpm_lookups.add(counters.lpm_lookups);
  if (counters.cache_hits) metrics.cache_hits.add(counters.cache_hits);
  if (counters.cache_misses) metrics.cache_misses.add(counters.cache_misses);
}

}  // namespace heimdall::dp
