#include "dataplane/trace.hpp"

#include "util/error.hpp"

namespace heimdall::dp {

using namespace heimdall::net;

std::string to_string(Disposition disposition) {
  switch (disposition) {
    case Disposition::Delivered: return "delivered";
    case Disposition::DeniedInbound: return "denied-inbound";
    case Disposition::DeniedOutbound: return "denied-outbound";
    case Disposition::NoRoute: return "no-route";
    case Disposition::NextHopUnreachable: return "next-hop-unreachable";
    case Disposition::Loop: return "loop";
    case Disposition::UnknownSource: return "unknown-source";
    case Disposition::UnknownDestination: return "unknown-destination";
    case Disposition::SourceDown: return "source-down";
  }
  return "no-route";
}

std::vector<DeviceId> TraceResult::path() const {
  std::vector<DeviceId> out;
  for (const Hop& hop : hops) {
    if (out.empty() || !(out.back() == hop.device)) out.push_back(hop.device);
  }
  return out;
}

namespace {

constexpr unsigned kHopLimit = 32;

/// Evaluates the ACL bound to `iface` in the given direction; true=permit.
/// Unbound (or dangling) ACL names permit everything, matching IOS behavior
/// for a missing access-group.
bool acl_allows(const Device& device, const Interface& iface, bool inbound, const Flow& flow,
                std::string& detail) {
  const std::string& name = inbound ? iface.acl_in : iface.acl_out;
  if (name.empty()) return true;
  const Acl* acl = device.find_acl(name);
  if (!acl) return true;  // dangling reference: no filter installed
  if (acl_permits(*acl, flow)) return true;
  detail = "acl '" + name + "' (" + (inbound ? "in" : "out") + ") on " + device.id().str() + ":" +
           iface.id.str() + " denied " + flow.to_string();
  return false;
}

}  // namespace

TraceResult trace_flow(const Network& network, const Dataplane& dataplane, const Flow& flow) {
  TraceResult result;

  auto src = network.endpoint_of_ip(flow.src_ip);
  if (!src) {
    result.disposition = Disposition::UnknownSource;
    result.detail = "no interface owns " + flow.src_ip.to_string();
    return result;
  }
  auto dst = network.endpoint_of_ip(flow.dst_ip);
  if (!dst) {
    result.disposition = Disposition::UnknownDestination;
    result.detail = "no interface owns " + flow.dst_ip.to_string();
    return result;
  }

  const Interface& src_iface = network.device(src->device).interface(src->iface);
  if (src_iface.shutdown) {
    result.disposition = Disposition::SourceDown;
    result.last_device = src->device;
    result.detail = "source interface " + src->to_string() + " is shutdown";
    return result;
  }

  DeviceId current = src->device;
  InterfaceId in_iface;  // empty at origin

  for (unsigned hop_count = 0; hop_count < kHopLimit; ++hop_count) {
    const Device& device = network.device(current);

    // Ingress ACL (not at the originating device).
    if (!in_iface.empty()) {
      const Interface& iface = device.interface(in_iface);
      if (iface.shutdown) {
        result.disposition = Disposition::NextHopUnreachable;
        result.last_device = current;
        result.detail = "ingress interface " + in_iface.str() + " is down";
        return result;
      }
      std::string detail;
      if (!acl_allows(device, iface, /*inbound=*/true, flow, detail)) {
        result.hops.push_back({current, in_iface, InterfaceId{}});
        result.disposition = Disposition::DeniedInbound;
        result.last_device = current;
        result.detail = detail;
        return result;
      }
    }

    // Delivered?
    if (device.interface_with_address(flow.dst_ip)) {
      result.hops.push_back({current, in_iface, InterfaceId{}});
      result.disposition = Disposition::Delivered;
      result.last_device = current;
      return result;
    }

    // FIB lookup.
    auto route = dataplane.fib(current).lookup(flow.dst_ip);
    if (!route) {
      result.hops.push_back({current, in_iface, InterfaceId{}});
      result.disposition = Disposition::NoRoute;
      result.last_device = current;
      result.detail = "no route to " + flow.dst_ip.to_string() + " on " + current.str();
      return result;
    }

    const Interface& out_iface = device.interface(route->out_iface);
    if (out_iface.shutdown) {
      result.hops.push_back({current, in_iface, route->out_iface});
      result.disposition = Disposition::NextHopUnreachable;
      result.last_device = current;
      result.detail = "egress interface " + route->out_iface.str() + " is down";
      return result;
    }

    // Egress ACL.
    {
      std::string detail;
      if (!acl_allows(device, out_iface, /*inbound=*/false, flow, detail)) {
        result.hops.push_back({current, in_iface, route->out_iface});
        result.disposition = Disposition::DeniedOutbound;
        result.last_device = current;
        result.detail = detail;
        return result;
      }
    }

    // L2 delivery to the next hop (the route's next hop, or the destination
    // itself for connected routes).
    Ipv4Address next_ip = route->next_hop.value_or(flow.dst_ip);
    auto segment = dataplane.l2().segment_of({current, route->out_iface});
    std::optional<Endpoint> next;
    if (segment) next = dataplane.l2().resolve_ip(*segment, next_ip, network);
    result.hops.push_back({current, in_iface, route->out_iface});
    if (!next) {
      result.disposition = Disposition::NextHopUnreachable;
      result.last_device = current;
      result.detail = "next hop " + next_ip.to_string() + " not reachable on segment of " +
                      current.str() + ":" + route->out_iface.str();
      return result;
    }

    current = next->device;
    in_iface = next->iface;
  }

  result.disposition = Disposition::Loop;
  result.last_device = current;
  result.detail = "hop limit exceeded";
  return result;
}

TraceResult trace_hosts(const Network& network, const Dataplane& dataplane, const DeviceId& src,
                        const DeviceId& dst) {
  auto src_ip = network.primary_ip(src);
  auto dst_ip = network.primary_ip(dst);
  util::require(src_ip.has_value(), "trace_hosts: no address on " + src.str());
  util::require(dst_ip.has_value(), "trace_hosts: no address on " + dst.str());
  Flow flow;
  flow.src_ip = *src_ip;
  flow.dst_ip = *dst_ip;
  flow.protocol = IpProtocol::Icmp;
  return trace_flow(network, dataplane, flow);
}

}  // namespace heimdall::dp
