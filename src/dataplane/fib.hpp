// Forwarding information base with longest-prefix-match lookup.
//
// Implemented as a binary trie over address bits; lookups walk at most 32
// nodes. Route selection among equal prefixes follows admin distance then
// metric (Route::preferred_over).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "dataplane/route.hpp"

namespace heimdall::dp {

/// One device's FIB.
class Fib {
 public:
  Fib();
  Fib(const Fib& other);
  Fib& operator=(const Fib& other);
  Fib(Fib&&) noexcept = default;
  Fib& operator=(Fib&&) noexcept = default;
  ~Fib() = default;

  /// Installs `route`. When a route for the same prefix exists, the preferred
  /// one (admin distance, metric) wins; the loser is dropped.
  void insert(const Route& route);

  /// Longest-prefix-match lookup; nullopt when no route covers `address`.
  std::optional<Route> lookup(net::Ipv4Address address) const;

  /// Exact-prefix lookup.
  std::optional<Route> route_for(const net::Ipv4Prefix& prefix) const;

  /// All installed routes, ordered by (prefix length desc, network).
  std::vector<Route> routes() const;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  struct Node {
    std::unique_ptr<Node> child[2];
    std::optional<Route> route;
  };

  static std::unique_ptr<Node> clone(const Node& node);
  void collect(const Node& node, std::vector<Route>& out) const;

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace heimdall::dp
