#include "dataplane/ospf.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>

#include "netmodel/interner.hpp"

namespace heimdall::dp {

using namespace heimdall::net;

namespace {

constexpr unsigned kInfinity = std::numeric_limits<unsigned>::max();

/// One OSPF-enabled interface.
struct OspfIface {
  DeviceId router;
  InterfaceId iface;
  InterfaceAddress address;
  unsigned area = 0;
  unsigned cost = kDefaultOspfCost;
  bool passive = false;
};

/// First hop used by a router to reach another router within an area.
struct FirstHop {
  InterfaceId out_iface;
  Ipv4Address next_hop_ip;
};

/// Directed edge of the per-area router graph, in interned router indices.
struct Edge {
  std::uint32_t to;           ///< router index within the area
  unsigned cost;              ///< egress interface cost at `from`
  InterfaceId out_iface;      ///< egress interface at `from`
  Ipv4Address next_hop_ip;    ///< the neighbor's interface address
};

/// Per-area shortest-path state for one source router, indexed by the
/// area's dense router ids. `has_hop` distinguishes "no first hop recorded"
/// from a default-constructed FirstHop.
struct SpfTree {
  std::vector<unsigned> dist;      ///< kInfinity when unreached
  std::vector<FirstHop> first_hop;
  std::vector<char> has_hop;
};

/// One area's interned router graph plus its all-sources SPF trees.
struct AreaState {
  std::vector<DeviceId> routers;         ///< sorted; index i <-> routers[i]
  net::Interner index;                   ///< DeviceId string -> dense index
  std::vector<std::vector<Edge>> edges;  ///< adjacency, by router index
  std::vector<SpfTree> trees;            ///< SPF result, by source index
};

SpfTree dijkstra(const AreaState& area, std::uint32_t source) {
  const std::size_t count = area.routers.size();
  SpfTree tree;
  tree.dist.assign(count, kInfinity);
  tree.first_hop.assign(count, FirstHop{});
  tree.has_hop.assign(count, 0);
  tree.dist[source] = 0;

  // Binary min-heap keyed by (distance, router) with lazy deletion: stale
  // entries are skipped when their recorded distance no longer matches.
  // Router indices follow sorted DeviceId order, so equal-distance pops
  // keep the same deterministic order an ordered set over DeviceIds had.
  using Item = std::pair<unsigned, std::uint32_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> frontier;
  frontier.push({0, source});
  while (!frontier.empty()) {
    auto [d, router] = frontier.top();
    frontier.pop();
    if (d != tree.dist[router]) continue;  // stale entry
    for (const Edge& edge : area.edges[router]) {
      unsigned nd = d + edge.cost;
      FirstHop hop = router == source ? FirstHop{edge.out_iface, edge.next_hop_ip}
                                      : tree.first_hop[router];
      if (nd < tree.dist[edge.to]) {
        tree.dist[edge.to] = nd;
        tree.first_hop[edge.to] = hop;
        tree.has_hop[edge.to] = 1;
        frontier.push({nd, edge.to});
      } else if (nd == tree.dist[edge.to]) {
        // Deterministic ECMP tie-break: keep the lower next-hop address.
        if (!tree.has_hop[edge.to]) tree.has_hop[edge.to] = 1;
        if (hop.next_hop_ip < tree.first_hop[edge.to].next_hop_ip)
          tree.first_hop[edge.to] = hop;
      }
    }
  }
  return tree;
}

}  // namespace

OspfResult compute_ospf(const Network& network, const L2Domains& l2) {
  OspfResult result;

  // 1. Collect OSPF-enabled interfaces.
  std::vector<OspfIface> ifaces;
  for (const Device& device : network.devices()) {
    if (!device.is_router() || !device.ospf()) continue;
    const OspfProcess& process = *device.ospf();
    for (const Interface& iface : device.interfaces()) {
      if (!iface.address || iface.shutdown) continue;
      auto area = process.area_for(iface.address->ip);
      if (!area) continue;
      OspfIface entry;
      entry.router = device.id();
      entry.iface = iface.id;
      entry.address = *iface.address;
      entry.area = *area;
      entry.cost = iface.ospf_cost.value_or(kDefaultOspfCost);
      entry.passive = process.is_passive(iface.id);
      ifaces.push_back(entry);
    }
  }

  // 2. Per-area membership; routers are interned in sorted-DeviceId order so
  // dense indices preserve the ordering the SPF tie-breaks rely on.
  std::map<unsigned, std::set<DeviceId>> area_routers;
  for (const OspfIface& iface : ifaces) area_routers[iface.area].insert(iface.router);

  std::map<unsigned, AreaState> areas;
  for (const auto& [area, routers] : area_routers) {
    AreaState& state = areas[area];
    state.routers.assign(routers.begin(), routers.end());
    for (const DeviceId& router : state.routers) state.index.intern(router.str());
    state.edges.resize(state.routers.size());
  }

  // 3. Adjacencies: same L2 segment + same subnet + same area, non-passive.
  std::set<OspfAdjacency> adjacencies;
  for (const OspfIface& a : ifaces) {
    for (const OspfIface& b : ifaces) {
      if (a.router == b.router) continue;
      if (a.area != b.area || a.passive || b.passive) continue;
      if (a.address.subnet() != b.address.subnet()) continue;
      if (!l2.adjacent({a.router, a.iface}, {b.router, b.iface})) continue;
      AreaState& state = areas[a.area];
      state.edges[state.index.find(a.router.str())].push_back(
          Edge{state.index.find(b.router.str()), a.cost, a.iface, b.address.ip});
      Endpoint ea{a.router, a.iface};
      Endpoint eb{b.router, b.iface};
      if (eb < ea) std::swap(ea, eb);
      adjacencies.insert(OspfAdjacency{ea, eb, a.area});
    }
  }
  result.adjacencies.assign(adjacencies.begin(), adjacencies.end());

  // All-sources SPF per area.
  for (auto& [area, state] : areas) {
    (void)area;
    state.trees.reserve(state.routers.size());
    for (std::uint32_t source = 0; source < state.routers.size(); ++source)
      state.trees.push_back(dijkstra(state, source));
  }

  auto dist_in_area = [&](unsigned area, const DeviceId& from, const DeviceId& to) -> unsigned {
    auto area_it = areas.find(area);
    if (area_it == areas.end()) return kInfinity;
    const AreaState& state = area_it->second;
    const std::uint32_t from_idx = state.index.find(from.str());
    const std::uint32_t to_idx = state.index.find(to.str());
    if (from_idx == net::Interner::kInvalid || to_idx == net::Interner::kInvalid)
      return kInfinity;
    return state.trees[from_idx].dist[to_idx];
  };

  auto first_hop_in_area = [&](unsigned area, const DeviceId& from,
                               const DeviceId& to) -> const FirstHop* {
    auto area_it = areas.find(area);
    if (area_it == areas.end()) return nullptr;
    const AreaState& state = area_it->second;
    const std::uint32_t from_idx = state.index.find(from.str());
    const std::uint32_t to_idx = state.index.find(to.str());
    if (from_idx == net::Interner::kInvalid || to_idx == net::Interner::kInvalid)
      return nullptr;
    const SpfTree& tree = state.trees[from_idx];
    return tree.has_hop[to_idx] ? &tree.first_hop[to_idx] : nullptr;
  };

  // ABRs per area: routers present in both the backbone and that area.
  std::map<unsigned, std::vector<DeviceId>> abrs;
  for (const auto& [area, routers] : area_routers) {
    if (area == 0) continue;
    for (const DeviceId& router : routers) {
      auto backbone = area_routers.find(0);
      if (backbone != area_routers.end() && backbone->second.count(router))
        abrs[area].push_back(router);
    }
  }

  // 4. Advertisements: every OSPF interface's subnet into its area.
  struct Advertisement {
    Ipv4Prefix prefix;
    unsigned area;
    DeviceId owner;
    unsigned stub_cost;
  };
  std::vector<Advertisement> advertisements;
  for (const OspfIface& iface : ifaces)
    advertisements.push_back({iface.address.subnet(), iface.area, iface.router, iface.cost});

  // 5. Routes: for each router, best path to each advertised prefix.
  auto areas_of = [&](const DeviceId& router) {
    std::vector<unsigned> out;
    for (const auto& [area, routers] : area_routers)
      if (routers.count(router)) out.push_back(area);
    return out;
  };

  for (const auto& [area_unused, routers] : area_routers) {
    (void)area_unused;
    for (const DeviceId& router : routers) {
      auto& installed = result.routes[router];  // ensure entry exists
      (void)installed;
    }
  }

  std::set<DeviceId> all_ospf_routers;
  for (const auto& [area, routers] : area_routers)
    for (const DeviceId& r : routers) all_ospf_routers.insert(r);

  for (const DeviceId& router : all_ospf_routers) {
    std::vector<unsigned> my_areas = areas_of(router);
    for (const Advertisement& adv : advertisements) {
      if (adv.owner == router) continue;  // connected route wins anyway

      unsigned best_cost = kInfinity;
      const FirstHop* best_hop = nullptr;

      // Intra-area candidate.
      for (unsigned area : my_areas) {
        if (area != adv.area) continue;
        unsigned d = dist_in_area(area, router, adv.owner);
        if (d == kInfinity) continue;
        unsigned total = d + adv.stub_cost;
        const FirstHop* hop = first_hop_in_area(area, router, adv.owner);
        if (d == 0 || !hop) continue;  // owner unreachable or self
        if (total < best_cost) {
          best_cost = total;
          best_hop = hop;
        }
      }

      // Inter-area candidates (only when no intra-area path exists, per OSPF
      // route preference: intra-area beats inter-area).
      if (best_cost == kInfinity && adv.area != 0) {
        // Reach an ABR of adv.area through the backbone (possibly via our
        // own area's ABR first when we are not in the backbone).
        bool in_backbone =
            std::find(my_areas.begin(), my_areas.end(), 0u) != my_areas.end();
        for (const DeviceId& b2 : abrs[adv.area]) {
          unsigned tail = dist_in_area(adv.area, b2, adv.owner);
          if (tail == kInfinity) continue;
          if (in_backbone) {
            unsigned head = dist_in_area(0, router, b2);
            if (head == kInfinity) continue;
            unsigned total = head + tail + adv.stub_cost;
            const FirstHop* hop =
                b2 == router ? nullptr : first_hop_in_area(0, router, b2);
            if (b2 == router) continue;
            if (hop && total < best_cost) {
              best_cost = total;
              best_hop = hop;
            }
          } else {
            for (unsigned my_area : my_areas) {
              for (const DeviceId& b1 : abrs[my_area]) {
                unsigned leg1 = dist_in_area(my_area, router, b1);
                unsigned leg2 = dist_in_area(0, b1, b2);
                if (leg1 == kInfinity || leg2 == kInfinity) continue;
                unsigned total = leg1 + leg2 + tail + adv.stub_cost;
                const FirstHop* hop =
                    b1 == router ? nullptr : first_hop_in_area(my_area, router, b1);
                if (b1 == router) continue;
                if (hop && total < best_cost) {
                  best_cost = total;
                  best_hop = hop;
                }
              }
            }
          }
        }
      }
      if (best_cost == kInfinity && adv.area == 0) {
        // Destination in backbone, we are not: go through our ABR.
        for (unsigned my_area : my_areas) {
          if (my_area == 0) continue;
          for (const DeviceId& b1 : abrs[my_area]) {
            unsigned leg1 = dist_in_area(my_area, router, b1);
            unsigned leg2 = dist_in_area(0, b1, adv.owner);
            if (leg1 == kInfinity || leg2 == kInfinity || b1 == router) continue;
            unsigned total = leg1 + leg2 + adv.stub_cost;
            const FirstHop* hop = first_hop_in_area(my_area, router, b1);
            if (hop && total < best_cost) {
              best_cost = total;
              best_hop = hop;
            }
          }
        }
      }

      if (best_cost == kInfinity || !best_hop) continue;

      Route route;
      route.prefix = adv.prefix;
      route.protocol = RouteProtocol::Ospf;
      route.next_hop = best_hop->next_hop_ip;
      route.out_iface = best_hop->out_iface;
      route.admin_distance = default_admin_distance(RouteProtocol::Ospf);
      route.metric = best_cost;
      result.routes[router].push_back(route);
    }
  }

  return result;
}

}  // namespace heimdall::dp
