#include "dataplane/ospf.hpp"

#include <algorithm>
#include <limits>
#include <set>

namespace heimdall::dp {

using namespace heimdall::net;

namespace {

constexpr unsigned kInfinity = std::numeric_limits<unsigned>::max();

/// One OSPF-enabled interface.
struct OspfIface {
  DeviceId router;
  InterfaceId iface;
  InterfaceAddress address;
  unsigned area = 0;
  unsigned cost = kDefaultOspfCost;
  bool passive = false;
};

/// First hop used by a router to reach another router within an area.
struct FirstHop {
  InterfaceId out_iface;
  Ipv4Address next_hop_ip;
};

/// Per-area shortest-path state for one source router.
struct SpfTree {
  std::map<DeviceId, unsigned> dist;
  std::map<DeviceId, FirstHop> first_hop;
};

/// Directed edge of the per-area router graph.
struct Edge {
  DeviceId to;
  unsigned cost;              ///< egress interface cost at `from`
  InterfaceId out_iface;      ///< egress interface at `from`
  Ipv4Address next_hop_ip;    ///< the neighbor's interface address
};

using AreaGraph = std::map<DeviceId, std::vector<Edge>>;

SpfTree dijkstra(const AreaGraph& graph, const DeviceId& source) {
  SpfTree tree;
  tree.dist[source] = 0;
  // Keyed by (distance, router, next-hop ip) for a deterministic order.
  std::set<std::tuple<unsigned, DeviceId>> frontier{{0, source}};
  while (!frontier.empty()) {
    auto [d, router] = *frontier.begin();
    frontier.erase(frontier.begin());
    auto edges = graph.find(router);
    if (edges == graph.end()) continue;
    for (const Edge& edge : edges->second) {
      unsigned nd = d + edge.cost;
      auto it = tree.dist.find(edge.to);
      FirstHop hop = router == source ? FirstHop{edge.out_iface, edge.next_hop_ip}
                                      : tree.first_hop[router];
      if (it == tree.dist.end() || nd < it->second) {
        if (it != tree.dist.end()) frontier.erase({it->second, edge.to});
        tree.dist[edge.to] = nd;
        tree.first_hop[edge.to] = hop;
        frontier.insert({nd, edge.to});
      } else if (nd == it->second) {
        // Deterministic ECMP tie-break: keep the lower next-hop address.
        FirstHop& existing = tree.first_hop[edge.to];
        if (hop.next_hop_ip < existing.next_hop_ip) existing = hop;
      }
    }
  }
  return tree;
}

}  // namespace

OspfResult compute_ospf(const Network& network, const L2Domains& l2) {
  OspfResult result;

  // 1. Collect OSPF-enabled interfaces.
  std::vector<OspfIface> ifaces;
  for (const Device& device : network.devices()) {
    if (!device.is_router() || !device.ospf()) continue;
    const OspfProcess& process = *device.ospf();
    for (const Interface& iface : device.interfaces()) {
      if (!iface.address || iface.shutdown) continue;
      auto area = process.area_for(iface.address->ip);
      if (!area) continue;
      OspfIface entry;
      entry.router = device.id();
      entry.iface = iface.id;
      entry.address = *iface.address;
      entry.area = *area;
      entry.cost = iface.ospf_cost.value_or(kDefaultOspfCost);
      entry.passive = process.is_passive(iface.id);
      ifaces.push_back(entry);
    }
  }

  // 2. Adjacencies: same L2 segment + same subnet + same area, non-passive.
  std::map<unsigned, AreaGraph> graphs;
  std::set<OspfAdjacency> adjacencies;
  for (const OspfIface& a : ifaces) {
    for (const OspfIface& b : ifaces) {
      if (a.router == b.router) continue;
      if (a.area != b.area || a.passive || b.passive) continue;
      if (a.address.subnet() != b.address.subnet()) continue;
      if (!l2.adjacent({a.router, a.iface}, {b.router, b.iface})) continue;
      graphs[a.area][a.router].push_back(
          Edge{b.router, a.cost, a.iface, b.address.ip});
      Endpoint ea{a.router, a.iface};
      Endpoint eb{b.router, b.iface};
      if (eb < ea) std::swap(ea, eb);
      adjacencies.insert(OspfAdjacency{ea, eb, a.area});
    }
  }
  result.adjacencies.assign(adjacencies.begin(), adjacencies.end());

  // 3. Per-area membership and all-pairs SPF.
  std::map<unsigned, std::set<DeviceId>> area_routers;
  for (const OspfIface& iface : ifaces) area_routers[iface.area].insert(iface.router);

  std::map<unsigned, std::map<DeviceId, SpfTree>> spf;  // area -> source -> tree
  for (const auto& [area, routers] : area_routers) {
    for (const DeviceId& router : routers) {
      auto graph_it = graphs.find(area);
      spf[area][router] = graph_it == graphs.end() ? SpfTree{.dist = {{router, 0}}, .first_hop = {}}
                                                   : dijkstra(graph_it->second, router);
      spf[area][router].dist.try_emplace(router, 0);
    }
  }

  auto dist_in_area = [&](unsigned area, const DeviceId& from, const DeviceId& to) -> unsigned {
    auto area_it = spf.find(area);
    if (area_it == spf.end()) return kInfinity;
    auto src_it = area_it->second.find(from);
    if (src_it == area_it->second.end()) return kInfinity;
    auto d = src_it->second.dist.find(to);
    return d == src_it->second.dist.end() ? kInfinity : d->second;
  };

  auto first_hop_in_area = [&](unsigned area, const DeviceId& from,
                               const DeviceId& to) -> const FirstHop* {
    auto& tree = spf[area][from];
    auto it = tree.first_hop.find(to);
    return it == tree.first_hop.end() ? nullptr : &it->second;
  };

  // ABRs per area: routers present in both the backbone and that area.
  std::map<unsigned, std::vector<DeviceId>> abrs;
  for (const auto& [area, routers] : area_routers) {
    if (area == 0) continue;
    for (const DeviceId& router : routers) {
      auto backbone = area_routers.find(0);
      if (backbone != area_routers.end() && backbone->second.count(router))
        abrs[area].push_back(router);
    }
  }

  // 4. Advertisements: every OSPF interface's subnet into its area.
  struct Advertisement {
    Ipv4Prefix prefix;
    unsigned area;
    DeviceId owner;
    unsigned stub_cost;
  };
  std::vector<Advertisement> advertisements;
  for (const OspfIface& iface : ifaces)
    advertisements.push_back({iface.address.subnet(), iface.area, iface.router, iface.cost});

  // 5. Routes: for each router, best path to each advertised prefix.
  auto areas_of = [&](const DeviceId& router) {
    std::vector<unsigned> out;
    for (const auto& [area, routers] : area_routers)
      if (routers.count(router)) out.push_back(area);
    return out;
  };

  for (const auto& [area_unused, routers] : area_routers) {
    (void)area_unused;
    for (const DeviceId& router : routers) {
      auto& installed = result.routes[router];  // ensure entry exists
      (void)installed;
    }
  }

  std::set<DeviceId> all_ospf_routers;
  for (const auto& [area, routers] : area_routers)
    for (const DeviceId& r : routers) all_ospf_routers.insert(r);

  for (const DeviceId& router : all_ospf_routers) {
    std::vector<unsigned> my_areas = areas_of(router);
    for (const Advertisement& adv : advertisements) {
      if (adv.owner == router) continue;  // connected route wins anyway

      unsigned best_cost = kInfinity;
      const FirstHop* best_hop = nullptr;

      // Intra-area candidate.
      for (unsigned area : my_areas) {
        if (area != adv.area) continue;
        unsigned d = dist_in_area(area, router, adv.owner);
        if (d == kInfinity) continue;
        unsigned total = d + adv.stub_cost;
        const FirstHop* hop = first_hop_in_area(area, router, adv.owner);
        if (d == 0 || !hop) continue;  // owner unreachable or self
        if (total < best_cost) {
          best_cost = total;
          best_hop = hop;
        }
      }

      // Inter-area candidates (only when no intra-area path exists, per OSPF
      // route preference: intra-area beats inter-area).
      if (best_cost == kInfinity && adv.area != 0) {
        // Reach an ABR of adv.area through the backbone (possibly via our
        // own area's ABR first when we are not in the backbone).
        bool in_backbone =
            std::find(my_areas.begin(), my_areas.end(), 0u) != my_areas.end();
        for (const DeviceId& b2 : abrs[adv.area]) {
          unsigned tail = dist_in_area(adv.area, b2, adv.owner);
          if (tail == kInfinity) continue;
          if (in_backbone) {
            unsigned head = dist_in_area(0, router, b2);
            if (head == kInfinity) continue;
            unsigned total = head + tail + adv.stub_cost;
            const FirstHop* hop =
                b2 == router ? nullptr : first_hop_in_area(0, router, b2);
            if (b2 == router) continue;
            if (hop && total < best_cost) {
              best_cost = total;
              best_hop = hop;
            }
          } else {
            for (unsigned my_area : my_areas) {
              for (const DeviceId& b1 : abrs[my_area]) {
                unsigned leg1 = dist_in_area(my_area, router, b1);
                unsigned leg2 = dist_in_area(0, b1, b2);
                if (leg1 == kInfinity || leg2 == kInfinity) continue;
                unsigned total = leg1 + leg2 + tail + adv.stub_cost;
                const FirstHop* hop =
                    b1 == router ? nullptr : first_hop_in_area(my_area, router, b1);
                if (b1 == router) continue;
                if (hop && total < best_cost) {
                  best_cost = total;
                  best_hop = hop;
                }
              }
            }
          }
        }
      }
      if (best_cost == kInfinity && adv.area == 0) {
        // Destination in backbone, we are not: go through our ABR.
        for (unsigned my_area : my_areas) {
          if (my_area == 0) continue;
          for (const DeviceId& b1 : abrs[my_area]) {
            unsigned leg1 = dist_in_area(my_area, router, b1);
            unsigned leg2 = dist_in_area(0, b1, adv.owner);
            if (leg1 == kInfinity || leg2 == kInfinity || b1 == router) continue;
            unsigned total = leg1 + leg2 + adv.stub_cost;
            const FirstHop* hop = first_hop_in_area(my_area, router, b1);
            if (hop && total < best_cost) {
              best_cost = total;
              best_hop = hop;
            }
          }
        }
      }

      if (best_cost == kInfinity || !best_hop) continue;

      Route route;
      route.prefix = adv.prefix;
      route.protocol = RouteProtocol::Ospf;
      route.next_hop = best_hop->next_hop_ip;
      route.out_iface = best_hop->out_iface;
      route.admin_distance = default_admin_distance(RouteProtocol::Ospf);
      route.metric = best_cost;
      result.routes[router].push_back(route);
    }
  }

  return result;
}

}  // namespace heimdall::dp
