// All-pairs host reachability analysis over a computed dataplane.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "dataplane/trace.hpp"

namespace heimdall::util {
class ThreadPool;
}

namespace heimdall::dp {

class CompiledPlane;

/// Reachability verdict for one ordered host pair.
struct PairReachability {
  net::DeviceId src;
  net::DeviceId dst;
  Disposition disposition = Disposition::NoRoute;
  std::vector<net::DeviceId> path;

  bool reachable() const { return disposition == Disposition::Delivered; }
};

/// Tuning knobs for the all-pairs trace.
struct TraceOptions {
  /// When non-null, pair traces are partitioned across this pool (each trace
  /// is independent and read-only over network + dataplane).
  util::ThreadPool* pool = nullptr;
};

/// The full ordered-pair matrix.
class ReachabilityMatrix {
 public:
  /// Traces every ordered pair of hosts (ICMP on primary addresses).
  static ReachabilityMatrix compute(const net::Network& network, const Dataplane& dataplane,
                                    const TraceOptions& options = {});

  /// Fast path over a compiled plane. Produces pairs in the identical order
  /// and with identical contents as the reference overload, but partitions
  /// work per destination column so all traces toward one host share a
  /// per-destination decision cache.
  static ReachabilityMatrix compute(const CompiledPlane& plane,
                                    const TraceOptions& options = {});

  /// Partial recompute: copies `base` and re-traces only the pairs whose
  /// recorded path touches a device in `dirty`. Valid only when every FIB,
  /// L2 segment and interface address outside `dirty` is unchanged since
  /// `base` was computed — tracing is deterministic, so a pair that never
  /// crossed a dirty device takes the identical hop sequence again. The
  /// analysis engine guarantees that precondition via change classification.
  /// `retraced` (optional) receives the number of re-traced pairs;
  /// `retraced_indices` (optional) receives their indices into pairs(), in
  /// ascending order — every pair NOT listed is bit-identical to `base`.
  static ReachabilityMatrix recompute(const net::Network& network, const Dataplane& dataplane,
                                      const ReachabilityMatrix& base,
                                      const std::set<net::DeviceId>& dirty,
                                      const TraceOptions& options = {},
                                      std::size_t* retraced = nullptr,
                                      std::vector<std::size_t>* retraced_indices = nullptr);

  /// Partial recompute over a compiled plane (same precondition as above);
  /// stale pairs are grouped by destination to share decision caches.
  static ReachabilityMatrix recompute(const CompiledPlane& plane, const ReachabilityMatrix& base,
                                      const std::set<net::DeviceId>& dirty,
                                      const TraceOptions& options = {},
                                      std::size_t* retraced = nullptr,
                                      std::vector<std::size_t>* retraced_indices = nullptr);

  const std::vector<PairReachability>& pairs() const { return pairs_; }

  /// Lookup; throws NotFoundError for unknown pairs.
  const PairReachability& pair(const net::DeviceId& src, const net::DeviceId& dst) const;

  bool reachable(const net::DeviceId& src, const net::DeviceId& dst) const;

  /// True when both endpoints were present when the matrix was computed.
  bool has_pair(const net::DeviceId& src, const net::DeviceId& dst) const;

  std::size_t reachable_count() const;
  std::size_t total_count() const { return pairs_.size(); }

  /// Ordered pairs whose reachability differs between two matrices. Each
  /// element is (src, dst, was_reachable, now_reachable).
  static std::vector<std::tuple<net::DeviceId, net::DeviceId, bool, bool>> diff(
      const ReachabilityMatrix& before, const ReachabilityMatrix& after);

 private:
  std::vector<PairReachability> pairs_;
  std::map<std::pair<net::DeviceId, net::DeviceId>, std::size_t> index_;
};

}  // namespace heimdall::dp
