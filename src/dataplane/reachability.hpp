// All-pairs host reachability analysis over a computed dataplane.
#pragma once

#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "dataplane/trace.hpp"

namespace heimdall::util {
class ThreadPool;
}

namespace heimdall::dp {

class CompiledPlane;

/// Reachability verdict for one ordered host pair.
struct PairReachability {
  net::DeviceId src;
  net::DeviceId dst;
  Disposition disposition = Disposition::NoRoute;
  std::vector<net::DeviceId> path;

  bool reachable() const { return disposition == Disposition::Delivered; }
};

/// Tuning knobs for the all-pairs trace.
struct TraceOptions {
  /// When non-null, pair traces are partitioned across this pool (each trace
  /// is independent and read-only over network + dataplane).
  util::ThreadPool* pool = nullptr;
  /// When false, the dense compute keeps only dispositions and leaves every
  /// pair's hop path empty. A matrix computed this way cannot seed a
  /// recompute() (the dirty-device scoping reads recorded paths) and answers
  /// path() with an empty vector; everything else is unaffected. The
  /// sharded representation ignores this knob — it always keeps its (cheap,
  /// per-class-pair) representative paths.
  bool record_paths = true;
};

/// Read-only interface over an all-pairs reachability result, implemented by
/// both the dense ReachabilityMatrix and the compressed ShardedReachability.
/// Consumers that only ask per-pair questions (the policy verifier, diffs,
/// examples) go through this so the representation can be swapped per
/// network scale.
class ReachabilityView {
 public:
  virtual ~ReachabilityView() = default;

  /// True when both endpoints were present when the result was computed.
  virtual bool has_pair(const net::DeviceId& src, const net::DeviceId& dst) const = 0;

  /// Disposition of one ordered pair; throws NotFoundError for unknown pairs.
  virtual Disposition disposition(const net::DeviceId& src, const net::DeviceId& dst) const = 0;

  /// The pair's forwarding path (devices touched in order). May be empty
  /// when paths were not recorded (TraceOptions::record_paths = false) or
  /// the trace died before the first hop.
  virtual std::vector<net::DeviceId> path(const net::DeviceId& src,
                                          const net::DeviceId& dst) const = 0;

  virtual std::size_t reachable_count() const = 0;
  virtual std::size_t total_count() const = 0;

  /// Hosts in the canonical (insertion) order the pair enumeration uses.
  virtual const std::vector<net::DeviceId>& hosts() const = 0;

  /// Approximate heap footprint of the stored result, for the matrix.bytes
  /// gauge and memory-ceiling benchmarks.
  virtual std::size_t bytes() const = 0;

  bool reachable(const net::DeviceId& src, const net::DeviceId& dst) const {
    return disposition(src, dst) == Disposition::Delivered;
  }
};

/// Ordered pairs whose reachability differs between two views, enumerated
/// src-major in `before`'s host order — the exact tuple sequence
/// ReachabilityMatrix::diff produces. Pairs absent from `after` are skipped.
std::vector<std::tuple<net::DeviceId, net::DeviceId, bool, bool>> diff_views(
    const ReachabilityView& before, const ReachabilityView& after);

/// The full ordered-pair matrix.
class ReachabilityMatrix : public ReachabilityView {
 public:
  /// Traces every ordered pair of hosts (ICMP on primary addresses).
  static ReachabilityMatrix compute(const net::Network& network, const Dataplane& dataplane,
                                    const TraceOptions& options = {});

  /// Fast path over a compiled plane. Produces pairs in the identical order
  /// and with identical contents as the reference overload, but partitions
  /// work per destination column so all traces toward one host share a
  /// per-destination decision cache.
  static ReachabilityMatrix compute(const CompiledPlane& plane,
                                    const TraceOptions& options = {});

  /// Partial recompute: copies `base` and re-traces only the pairs whose
  /// recorded path touches a device in `dirty`. Valid only when every FIB,
  /// L2 segment and interface address outside `dirty` is unchanged since
  /// `base` was computed — tracing is deterministic, so a pair that never
  /// crossed a dirty device takes the identical hop sequence again. The
  /// analysis engine guarantees that precondition via change classification.
  /// `base` must have been computed with record_paths (the default).
  /// `retraced` (optional) receives the number of re-traced pairs;
  /// `retraced_indices` (optional) receives their indices into pairs(), in
  /// ascending order — every pair NOT listed is bit-identical to `base`.
  static ReachabilityMatrix recompute(const net::Network& network, const Dataplane& dataplane,
                                      const ReachabilityMatrix& base,
                                      const std::set<net::DeviceId>& dirty,
                                      const TraceOptions& options = {},
                                      std::size_t* retraced = nullptr,
                                      std::vector<std::size_t>* retraced_indices = nullptr);

  /// Partial recompute over a compiled plane (same precondition as above);
  /// stale pairs are grouped by destination to share decision caches.
  static ReachabilityMatrix recompute(const CompiledPlane& plane, const ReachabilityMatrix& base,
                                      const std::set<net::DeviceId>& dirty,
                                      const TraceOptions& options = {},
                                      std::size_t* retraced = nullptr,
                                      std::vector<std::size_t>* retraced_indices = nullptr);

  const std::vector<PairReachability>& pairs() const { return pairs_; }

  /// Lookup; throws NotFoundError for unknown pairs.
  const PairReachability& pair(const net::DeviceId& src, const net::DeviceId& dst) const;

  /// True when every pair carries its recorded hop path (the matrix was
  /// computed with TraceOptions::record_paths, the default).
  bool paths_recorded() const { return paths_recorded_; }

  // ReachabilityView:
  bool has_pair(const net::DeviceId& src, const net::DeviceId& dst) const override;
  Disposition disposition(const net::DeviceId& src, const net::DeviceId& dst) const override;
  std::vector<net::DeviceId> path(const net::DeviceId& src,
                                  const net::DeviceId& dst) const override;
  std::size_t reachable_count() const override;
  std::size_t total_count() const override { return pairs_.size(); }
  const std::vector<net::DeviceId>& hosts() const override { return hosts_; }
  std::size_t bytes() const override;

  /// Ordered pairs whose reachability differs between two matrices. Each
  /// element is (src, dst, was_reachable, now_reachable).
  static std::vector<std::tuple<net::DeviceId, net::DeviceId, bool, bool>> diff(
      const ReachabilityMatrix& before, const ReachabilityMatrix& after);

 private:
  std::vector<net::DeviceId> hosts_;
  std::vector<PairReachability> pairs_;
  std::map<std::pair<net::DeviceId, net::DeviceId>, std::size_t> index_;
  bool paths_recorded_ = true;
};

}  // namespace heimdall::dp
