// The compiled forwarding plane: an immutable, dense-index representation
// of one (Network, Dataplane) snapshot that the tracer and all-pairs
// reachability run on instead of the string-keyed object model.
//
// Compilation interns every device/interface (net::NetworkIndex), flattens
// each FIB trie into a CompiledFib array LPM, and precomputes the L2
// adjacency (interface -> segment, (segment, ip) -> interface) that the
// reference tracer re-derives through maps at every hop.
//
// The trace loop additionally memoizes the flow-independent part of each
// hop per destination: the FIB decision and resolved L2 next hop for a
// (device, dst_ip) pair do not depend on the flow's source, so the H traces
// toward one destination in an all-pairs run share that work through a
// DstCache while ACL evaluation stays per-flow.
//
// A CompiledPlane is self-contained (it copies addresses, shutdown flags
// and ACL bodies); it never dangles into the Network it was compiled from.
// Recompile after any config change — the analysis engine does this per
// snapshot and the cost is telemetered as dp.compile_ms.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dataplane/compiled_fib.hpp"
#include "dataplane/dataplane.hpp"
#include "dataplane/trace.hpp"
#include "netmodel/interner.hpp"

namespace heimdall::dp {

class CompiledPlane {
 public:
  static constexpr std::uint32_t kInvalid = net::NetworkIndex::kInvalid;

  /// Compiles `network` + `dataplane` into the flat representation.
  /// Observes dp.compile_ms in the global metrics registry.
  static CompiledPlane compile(const net::Network& network, const Dataplane& dataplane);

  const net::NetworkIndex& index() const { return idx_; }
  const CompiledFib& fib(std::uint32_t device_idx) const { return fibs_[device_idx]; }

  /// Counters accumulated across one trace batch; the caller flushes them to
  /// the metrics registry once (dp.lpm_lookups, dp.trace_cache_hits) so the
  /// hot loop never touches atomics.
  struct TraceCounters {
    std::uint64_t lpm_lookups = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
  };

  /// The memoized flow-independent forwarding decision of one device for
  /// one destination IP.
  struct Decision {
    enum class Kind : std::uint8_t {
      Unknown,       ///< not computed yet
      Deliver,       ///< this device owns the destination address
      NoRoute,       ///< FIB miss
      EgressDown,    ///< route found but its egress interface is shutdown
      L2Unresolved,  ///< egress up but the next hop did not resolve on L2
      Forward,       ///< forward out `out_iface` to (`next_device`, `next_iface`)
    };
    Kind kind = Kind::Unknown;
    std::uint32_t out_iface = kInvalid;
    std::uint32_t next_device = kInvalid;
    std::uint32_t next_iface = kInvalid;
    net::Ipv4Address next_ip;  ///< resolved next-hop IP (for diagnostics)
  };

  /// Per-destination decision memo, shared by every trace toward one dst_ip.
  class DstCache {
   public:
    DstCache(net::Ipv4Address dst_ip, std::uint32_t device_count)
        : dst_ip_(dst_ip), decisions_(device_count) {}

    net::Ipv4Address dst_ip() const { return dst_ip_; }

    const Decision& decision(const CompiledPlane& plane, std::uint32_t device_idx,
                             TraceCounters& counters) {
      Decision& cached = decisions_[device_idx];
      if (cached.kind == Decision::Kind::Unknown) {
        ++counters.cache_misses;
        cached = plane.compute_decision(device_idx, dst_ip_, counters);
      } else {
        ++counters.cache_hits;
      }
      return cached;
    }

   private:
    net::Ipv4Address dst_ip_;
    std::vector<Decision> decisions_;
  };

  /// Raw trace outcome in dense indices: no strings are materialized. The
  /// reference TraceResult (with detail text) can be rendered from it.
  struct IndexedTrace {
    struct Hop {
      std::uint32_t device = kInvalid;
      std::uint32_t in_iface = kInvalid;   ///< kInvalid at the origin
      std::uint32_t out_iface = kInvalid;  ///< kInvalid at the final device
    };
    /// Why a NextHopUnreachable/denial happened, for detail rendering.
    enum class FailReason : std::uint8_t { None, IngressDown, EgressDown, L2Unresolved };

    Disposition disposition = Disposition::NoRoute;
    std::vector<Hop> hops;
    std::uint32_t last_device = kInvalid;
    FailReason fail_reason = FailReason::None;
    std::uint32_t fail_iface = kInvalid;  ///< interface involved in the failure
    std::uint32_t fail_acl = kInvalid;    ///< denying ACL (Denied* dispositions)
    net::Ipv4Address fail_next_ip;        ///< unresolved next hop (L2Unresolved)

    bool delivered() const { return disposition == Disposition::Delivered; }
  };

  /// Traces `flow` sharing per-destination work through `cache` (which must
  /// have been created for flow.dst_ip).
  IndexedTrace trace_indexed(const net::Flow& flow, DstCache& cache,
                             TraceCounters& counters) const;

  /// Convenience single-flow trace with a throwaway cache.
  IndexedTrace trace_indexed(const net::Flow& flow) const;

  /// Full-fidelity trace, bit-for-bit equivalent to dp::trace_flow on the
  /// snapshot this plane was compiled from (same dispositions, hops and
  /// detail strings).
  TraceResult trace_flow(const net::Flow& flow) const;

  /// Renders an IndexedTrace into the reference TraceResult format.
  TraceResult render(const IndexedTrace& trace, const net::Flow& flow) const;

  /// Devices touched in order, deduplicated — PairReachability::path form.
  std::vector<net::DeviceId> path_of(const IndexedTrace& trace) const;

  /// Fresh per-destination cache sized for this plane.
  DstCache make_dst_cache(net::Ipv4Address dst_ip) const {
    return DstCache(dst_ip, idx_.device_count());
  }

  /// Flushes accumulated counters to the global metrics registry
  /// (dp.lpm_lookups, dp.trace_cache_hits, dp.trace_cache_misses).
  static void flush_counters(const TraceCounters& counters);

 private:
  Decision compute_decision(std::uint32_t device_idx, net::Ipv4Address dst_ip,
                            TraceCounters& counters) const;

  static std::uint64_t segment_key(std::uint32_t segment, net::Ipv4Address ip) {
    return (static_cast<std::uint64_t>(segment) << 32) | ip.value();
  }

  net::NetworkIndex idx_;
  std::vector<CompiledFib> fibs_;  ///< by device index
  /// Per compiled route, the interned egress interface: out_iface_[device][i]
  /// resolves fibs_[device].route(i).out_iface.
  std::vector<std::vector<std::uint32_t>> out_iface_;
  /// Interface -> L2 segment; kInvalid when the interface has no segment.
  std::vector<std::uint32_t> iface_segment_;
  /// (segment << 32 | ip) -> interface owning that ip in the segment (ARP).
  std::unordered_map<std::uint64_t, std::uint32_t> segment_ip_;
};

}  // namespace heimdall::dp
