// The compiled forwarding plane: an immutable, dense-index representation
// of one (Network, Dataplane) snapshot that the tracer and all-pairs
// reachability run on instead of the string-keyed object model.
//
// Compilation interns every device/interface (net::NetworkIndex), flattens
// each FIB trie into a CompiledFib array LPM, and precomputes the L2
// adjacency (interface -> segment, (segment, ip) -> interface) that the
// reference tracer re-derives through maps at every hop.
//
// The trace loop additionally memoizes the flow-independent part of each
// hop per destination: the FIB decision and resolved L2 next hop for a
// (device, dst_ip) pair do not depend on the flow's source, so the H traces
// toward one destination in an all-pairs run share that work through a
// DstCache while ACL evaluation stays per-flow.
//
// A CompiledPlane is self-contained (it copies addresses, shutdown flags
// and ACL bodies); it never dangles into the Network it was compiled from.
// Recompile after any config change — the analysis engine does this per
// snapshot and the cost is telemetered as dp.compile_ms.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dataplane/compiled_fib.hpp"
#include "dataplane/dataplane.hpp"
#include "dataplane/trace.hpp"
#include "netmodel/interner.hpp"

namespace heimdall::dp {

class CompiledPlane {
 public:
  static constexpr std::uint32_t kInvalid = net::NetworkIndex::kInvalid;

  struct CompileOptions {
    /// Top-table stride forwarded to CompiledFib::build for every device's
    /// FIB (0 = auto per FIB by route count). Tests force both /16 and /24
    /// through the whole trace stack with this.
    unsigned fib_stride = 0;
  };

  /// Compiles `network` + `dataplane` into the flat representation.
  /// Observes dp.compile_ms and the dp.fib_bytes / dp.fib_overflow_chunks
  /// gauges in the global metrics registry.
  static CompiledPlane compile(const net::Network& network, const Dataplane& dataplane) {
    return compile(network, dataplane, CompileOptions());
  }
  static CompiledPlane compile(const net::Network& network, const Dataplane& dataplane,
                               const CompileOptions& options);

  const net::NetworkIndex& index() const { return idx_; }
  const CompiledFib& fib(std::uint32_t device_idx) const { return fibs_[device_idx]; }

  /// L2 segment of interface `iface_idx` (kInvalid when the interface is in
  /// no broadcast domain). Exposed so the sharded reachability layer can
  /// group hosts by attachment segment when building forwarding-equivalence
  /// classes.
  std::uint32_t iface_segment(std::uint32_t iface_idx) const { return iface_segment_[iface_idx]; }

  /// Total LPM table memory (top tables + overflow chunks) across all
  /// device FIBs; what the dp.fib_bytes gauge last reported.
  std::size_t fib_bytes() const { return fib_bytes_; }
  /// Total 256-entry overflow chunks across all device FIBs.
  std::size_t fib_overflow_chunks() const { return fib_overflow_chunks_; }

  /// Counters accumulated across one trace batch; the caller flushes them to
  /// the metrics registry once (dp.lpm_lookups, dp.trace_cache_hits) so the
  /// hot loop never touches atomics.
  struct TraceCounters {
    std::uint64_t lpm_lookups = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
  };

  /// The memoized flow-independent forwarding decision of one device for
  /// one destination IP.
  struct Decision {
    enum class Kind : std::uint8_t {
      Unknown,       ///< not computed yet
      Deliver,       ///< this device owns the destination address
      NoRoute,       ///< FIB miss
      EgressDown,    ///< route found but its egress interface is shutdown
      L2Unresolved,  ///< egress up but the next hop did not resolve on L2
      Forward,       ///< forward out `out_iface` to (`next_device`, `next_iface`)
    };
    Kind kind = Kind::Unknown;
    std::uint32_t out_iface = kInvalid;
    std::uint32_t next_device = kInvalid;
    std::uint32_t next_iface = kInvalid;
    net::Ipv4Address next_ip;  ///< resolved next-hop IP (for diagnostics)
  };

  /// Per-destination decision memo, shared by every trace toward one dst_ip.
  /// Optionally seeded with per-device LPM answers (route_hints) produced by
  /// a CompiledFib::lookup_many prewarm sweep — a hinted miss skips the FIB
  /// walk entirely and only resolves egress/L2 state.
  class DstCache {
   public:
    DstCache(net::Ipv4Address dst_ip, std::uint32_t device_count)
        : dst_ip_(dst_ip), decisions_(device_count) {}

    DstCache(net::Ipv4Address dst_ip, std::uint32_t device_count,
             std::vector<std::uint32_t> route_hints)
        : dst_ip_(dst_ip), decisions_(device_count), route_hints_(std::move(route_hints)) {}

    net::Ipv4Address dst_ip() const { return dst_ip_; }

    const Decision& decision(const CompiledPlane& plane, std::uint32_t device_idx,
                             TraceCounters& counters) {
      Decision& cached = decisions_[device_idx];
      if (cached.kind == Decision::Kind::Unknown) {
        ++counters.cache_misses;
        cached = route_hints_.empty()
                     ? plane.compute_decision(device_idx, dst_ip_, counters)
                     : plane.decision_from_route(device_idx, dst_ip_, route_hints_[device_idx]);
      } else {
        ++counters.cache_hits;
      }
      return cached;
    }

   private:
    net::Ipv4Address dst_ip_;
    std::vector<Decision> decisions_;
    std::vector<std::uint32_t> route_hints_;  ///< by device; empty = lazy lookups
  };

  /// Raw trace outcome in dense indices: no strings are materialized. The
  /// reference TraceResult (with detail text) can be rendered from it.
  struct IndexedTrace {
    struct Hop {
      std::uint32_t device = kInvalid;
      std::uint32_t in_iface = kInvalid;   ///< kInvalid at the origin
      std::uint32_t out_iface = kInvalid;  ///< kInvalid at the final device
    };
    /// Why a NextHopUnreachable/denial happened, for detail rendering.
    enum class FailReason : std::uint8_t { None, IngressDown, EgressDown, L2Unresolved };

    Disposition disposition = Disposition::NoRoute;
    std::vector<Hop> hops;
    std::uint32_t last_device = kInvalid;
    FailReason fail_reason = FailReason::None;
    std::uint32_t fail_iface = kInvalid;  ///< interface involved in the failure
    std::uint32_t fail_acl = kInvalid;    ///< denying ACL (Denied* dispositions)
    net::Ipv4Address fail_next_ip;        ///< unresolved next hop (L2Unresolved)

    bool delivered() const { return disposition == Disposition::Delivered; }
  };

  /// Traces `flow` sharing per-destination work through `cache` (which must
  /// have been created for flow.dst_ip).
  IndexedTrace trace_indexed(const net::Flow& flow, DstCache& cache,
                             TraceCounters& counters) const;

  /// Convenience single-flow trace with a throwaway cache.
  IndexedTrace trace_indexed(const net::Flow& flow) const;

  /// Full-fidelity trace, bit-for-bit equivalent to dp::trace_flow on the
  /// snapshot this plane was compiled from (same dispositions, hops and
  /// detail strings).
  TraceResult trace_flow(const net::Flow& flow) const;

  /// Renders an IndexedTrace into the reference TraceResult format.
  TraceResult render(const IndexedTrace& trace, const net::Flow& flow) const;

  /// Devices touched in order, deduplicated — PairReachability::path form.
  std::vector<net::DeviceId> path_of(const IndexedTrace& trace) const;

  /// Fresh per-destination cache sized for this plane.
  DstCache make_dst_cache(net::Ipv4Address dst_ip) const {
    return DstCache(dst_ip, idx_.device_count());
  }

  /// Per-destination cache seeded with one prewarmed LPM answer per device
  /// (CompiledFib::lookup_many output for dst_ip, in device-index order).
  DstCache make_dst_cache(net::Ipv4Address dst_ip,
                          std::vector<std::uint32_t> route_hints) const {
    return DstCache(dst_ip, idx_.device_count(), std::move(route_hints));
  }

  /// Flushes accumulated counters to the global metrics registry
  /// (dp.lpm_lookups, dp.trace_cache_hits, dp.trace_cache_misses).
  static void flush_counters(const TraceCounters& counters);

 private:
  Decision compute_decision(std::uint32_t device_idx, net::Ipv4Address dst_ip,
                            TraceCounters& counters) const;
  /// compute_decision with the LPM already answered (route_idx, possibly
  /// CompiledFib::kMiss) by a batched prewarm sweep.
  Decision decision_from_route(std::uint32_t device_idx, net::Ipv4Address dst_ip,
                               std::uint32_t route_idx) const;
  Decision resolve_route(std::uint32_t device_idx, net::Ipv4Address dst_ip,
                         std::uint32_t route_idx) const;

  static std::uint64_t segment_key(std::uint32_t segment, net::Ipv4Address ip) {
    return (static_cast<std::uint64_t>(segment) << 32) | ip.value();
  }

  net::NetworkIndex idx_;
  std::vector<CompiledFib> fibs_;  ///< by device index
  std::size_t fib_bytes_ = 0;           ///< total LPM table memory
  std::size_t fib_overflow_chunks_ = 0; ///< total 256-entry overflow chunks
  /// Per compiled route, the interned egress interface: out_iface_[device][i]
  /// resolves fibs_[device].route(i).out_iface.
  std::vector<std::vector<std::uint32_t>> out_iface_;
  /// Interface -> L2 segment; kInvalid when the interface has no segment.
  std::vector<std::uint32_t> iface_segment_;
  /// (segment << 32 | ip) -> interface owning that ip in the segment (ARP).
  std::unordered_map<std::uint64_t, std::uint32_t> segment_ip_;
};

}  // namespace heimdall::dp
