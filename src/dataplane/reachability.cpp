#include "dataplane/reachability.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace heimdall::dp {

using namespace heimdall::net;

namespace {

PairReachability trace_pair(const Network& network, const Dataplane& dataplane,
                            const DeviceId& src, const DeviceId& dst) {
  TraceResult result = trace_hosts(network, dataplane, src, dst);
  PairReachability pair;
  pair.src = src;
  pair.dst = dst;
  pair.disposition = result.disposition;
  pair.path = result.path();
  return pair;
}

}  // namespace

ReachabilityMatrix ReachabilityMatrix::compute(const Network& network, const Dataplane& dataplane,
                                               const TraceOptions& options) {
  ReachabilityMatrix matrix;
  std::vector<DeviceId> hosts = network.device_ids(DeviceKind::Host);
  for (const DeviceId& src : hosts) {
    for (const DeviceId& dst : hosts) {
      if (src == dst) continue;
      PairReachability pair;
      pair.src = src;
      pair.dst = dst;
      matrix.index_[{src, dst}] = matrix.pairs_.size();
      matrix.pairs_.push_back(std::move(pair));
    }
  }

  auto trace_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      PairReachability& pair = matrix.pairs_[i];
      pair = trace_pair(network, dataplane, pair.src, pair.dst);
    }
  };
  if (options.pool) {
    options.pool->parallel_for(matrix.pairs_.size(), trace_range);
  } else {
    trace_range(0, matrix.pairs_.size());
  }
  return matrix;
}

ReachabilityMatrix ReachabilityMatrix::recompute(const Network& network, const Dataplane& dataplane,
                                                 const ReachabilityMatrix& base,
                                                 const std::set<DeviceId>& dirty,
                                                 const TraceOptions& options,
                                                 std::size_t* retraced) {
  ReachabilityMatrix matrix = base;
  std::vector<std::size_t> stale;
  for (std::size_t i = 0; i < matrix.pairs_.size(); ++i) {
    const PairReachability& pair = matrix.pairs_[i];
    bool touches_dirty = std::any_of(pair.path.begin(), pair.path.end(), [&](const DeviceId& hop) {
      return dirty.count(hop) != 0;
    });
    if (touches_dirty) stale.push_back(i);
  }
  if (retraced) *retraced = stale.size();

  auto trace_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t s = begin; s < end; ++s) {
      PairReachability& pair = matrix.pairs_[stale[s]];
      pair = trace_pair(network, dataplane, pair.src, pair.dst);
    }
  };
  if (options.pool) {
    options.pool->parallel_for(stale.size(), trace_range);
  } else {
    trace_range(0, stale.size());
  }
  return matrix;
}

const PairReachability& ReachabilityMatrix::pair(const DeviceId& src, const DeviceId& dst) const {
  auto it = index_.find({src, dst});
  if (it == index_.end())
    throw util::NotFoundError("no reachability entry for " + src.str() + " -> " + dst.str());
  return pairs_[it->second];
}

bool ReachabilityMatrix::reachable(const DeviceId& src, const DeviceId& dst) const {
  return pair(src, dst).reachable();
}

bool ReachabilityMatrix::has_pair(const DeviceId& src, const DeviceId& dst) const {
  return index_.count({src, dst}) != 0;
}

std::size_t ReachabilityMatrix::reachable_count() const {
  return static_cast<std::size_t>(std::count_if(
      pairs_.begin(), pairs_.end(), [](const PairReachability& p) { return p.reachable(); }));
}

std::vector<std::tuple<DeviceId, DeviceId, bool, bool>> ReachabilityMatrix::diff(
    const ReachabilityMatrix& before, const ReachabilityMatrix& after) {
  std::vector<std::tuple<DeviceId, DeviceId, bool, bool>> out;
  for (const PairReachability& b : before.pairs_) {
    auto it = after.index_.find({b.src, b.dst});
    if (it == after.index_.end()) continue;
    const PairReachability& a = after.pairs_[it->second];
    if (b.reachable() != a.reachable())
      out.emplace_back(b.src, b.dst, b.reachable(), a.reachable());
  }
  return out;
}

}  // namespace heimdall::dp
