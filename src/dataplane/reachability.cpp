#include "dataplane/reachability.hpp"

#include <algorithm>
#include <span>

#include "dataplane/compiled.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace heimdall::dp {

using namespace heimdall::net;

namespace {

PairReachability trace_pair(const Network& network, const Dataplane& dataplane,
                            const DeviceId& src, const DeviceId& dst, bool record_path) {
  TraceResult result = trace_hosts(network, dataplane, src, dst);
  PairReachability pair;
  pair.src = src;
  pair.dst = dst;
  pair.disposition = result.disposition;
  if (record_path) pair.path = result.path();
  return pair;
}

}  // namespace

std::vector<std::tuple<DeviceId, DeviceId, bool, bool>> diff_views(
    const ReachabilityView& before, const ReachabilityView& after) {
  std::vector<std::tuple<DeviceId, DeviceId, bool, bool>> out;
  for (const DeviceId& src : before.hosts()) {
    for (const DeviceId& dst : before.hosts()) {
      if (src == dst) continue;
      if (!after.has_pair(src, dst)) continue;
      const bool was = before.reachable(src, dst);
      const bool now = after.reachable(src, dst);
      if (was != now) out.emplace_back(src, dst, was, now);
    }
  }
  return out;
}

ReachabilityMatrix ReachabilityMatrix::compute(const Network& network, const Dataplane& dataplane,
                                               const TraceOptions& options) {
  ReachabilityMatrix matrix;
  matrix.paths_recorded_ = options.record_paths;
  matrix.hosts_ = network.device_ids(DeviceKind::Host);
  const std::vector<DeviceId>& hosts = matrix.hosts_;
  for (const DeviceId& src : hosts) {
    for (const DeviceId& dst : hosts) {
      if (src == dst) continue;
      PairReachability pair;
      pair.src = src;
      pair.dst = dst;
      matrix.index_[{src, dst}] = matrix.pairs_.size();
      matrix.pairs_.push_back(std::move(pair));
    }
  }

  auto trace_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      PairReachability& pair = matrix.pairs_[i];
      pair = trace_pair(network, dataplane, pair.src, pair.dst, options.record_paths);
    }
  };
  if (options.pool) {
    options.pool->parallel_for(matrix.pairs_.size(), trace_range);
  } else {
    trace_range(0, matrix.pairs_.size());
  }
  return matrix;
}

ReachabilityMatrix ReachabilityMatrix::compute(const CompiledPlane& plane,
                                               const TraceOptions& options) {
  ReachabilityMatrix matrix;
  matrix.paths_recorded_ = options.record_paths;
  const net::NetworkIndex& idx = plane.index();
  const std::vector<std::uint32_t>& hosts = idx.hosts();
  const std::size_t count = hosts.size();

  std::vector<Ipv4Address> host_ips;
  host_ips.reserve(count);
  matrix.hosts_.reserve(count);
  for (std::uint32_t host : hosts) {
    auto ip = idx.primary_ip(host);
    util::require(ip.has_value(), "trace_hosts: no address on " + idx.device_id(host).str());
    host_ips.push_back(*ip);
    matrix.hosts_.push_back(idx.device_id(host));
  }

  // Pairs are laid out src-major, exactly like the reference overload, so
  // the pair for (src i, dst j) lives at i*(count-1) + j - (j > i).
  matrix.pairs_.resize(count < 2 ? 0 : count * (count - 1));
  for (std::size_t i = 0; i < count; ++i) {
    for (std::size_t j = 0; j < count; ++j) {
      if (i == j) continue;
      const std::size_t slot = i * (count - 1) + j - (j > i ? 1 : 0);
      PairReachability& pair = matrix.pairs_[slot];
      pair.src = idx.device_id(hosts[i]);
      pair.dst = idx.device_id(hosts[j]);
      matrix.index_[{pair.src, pair.dst}] = slot;
    }
  }

  // Batch-prewarm the LPM: one software-prefetched lookup_many sweep per
  // device answers every (device, destination) route query up front, so the
  // column traces below never walk a FIB one miss at a time.
  const std::uint32_t device_count = idx.device_count();
  std::vector<std::uint32_t> route_by_device(static_cast<std::size_t>(device_count) * count);
  {
    CompiledPlane::TraceCounters counters;
    for (std::uint32_t d = 0; d < device_count; ++d) {
      plane.fib(d).lookup_many(
          host_ips, std::span(route_by_device).subspan(static_cast<std::size_t>(d) * count));
    }
    counters.lpm_lookups += route_by_device.size();
    CompiledPlane::flush_counters(counters);
  }

  // One destination column per work item: every trace toward hosts[j]
  // shares a DstCache seeded with the prewarmed routes, so the FIB walk and
  // L2 resolution for a device are paid once per destination rather than
  // once per pair.
  auto trace_columns = [&](std::size_t begin, std::size_t end) {
    CompiledPlane::TraceCounters counters;
    for (std::size_t j = begin; j < end; ++j) {
      std::vector<std::uint32_t> hints(device_count);
      for (std::uint32_t d = 0; d < device_count; ++d)
        hints[d] = route_by_device[static_cast<std::size_t>(d) * count + j];
      CompiledPlane::DstCache cache = plane.make_dst_cache(host_ips[j], std::move(hints));
      Flow flow;
      flow.dst_ip = host_ips[j];
      flow.protocol = IpProtocol::Icmp;
      for (std::size_t i = 0; i < count; ++i) {
        if (i == j) continue;
        flow.src_ip = host_ips[i];
        CompiledPlane::IndexedTrace trace = plane.trace_indexed(flow, cache, counters);
        PairReachability& pair = matrix.pairs_[i * (count - 1) + j - (j > i ? 1 : 0)];
        pair.disposition = trace.disposition;
        if (options.record_paths) pair.path = plane.path_of(trace);
      }
    }
    CompiledPlane::flush_counters(counters);
  };
  if (options.pool) {
    // grain=1: a column is already count-1 traces of work.
    options.pool->parallel_for(count, trace_columns, /*grain=*/1);
  } else {
    trace_columns(0, count);
  }
  return matrix;
}

ReachabilityMatrix ReachabilityMatrix::recompute(const Network& network, const Dataplane& dataplane,
                                                 const ReachabilityMatrix& base,
                                                 const std::set<DeviceId>& dirty,
                                                 const TraceOptions& options,
                                                 std::size_t* retraced,
                                                 std::vector<std::size_t>* retraced_indices) {
  util::require(base.paths_recorded_,
                "recompute: base matrix was computed without recorded paths");
  ReachabilityMatrix matrix = base;
  std::vector<std::size_t> stale;
  for (std::size_t i = 0; i < matrix.pairs_.size(); ++i) {
    const PairReachability& pair = matrix.pairs_[i];
    bool touches_dirty = std::any_of(pair.path.begin(), pair.path.end(), [&](const DeviceId& hop) {
      return dirty.count(hop) != 0;
    });
    if (touches_dirty) stale.push_back(i);
  }
  if (retraced) *retraced = stale.size();
  if (retraced_indices) *retraced_indices = stale;

  auto trace_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t s = begin; s < end; ++s) {
      PairReachability& pair = matrix.pairs_[stale[s]];
      pair = trace_pair(network, dataplane, pair.src, pair.dst, /*record_path=*/true);
    }
  };
  if (options.pool) {
    options.pool->parallel_for(stale.size(), trace_range);
  } else {
    trace_range(0, stale.size());
  }
  return matrix;
}

ReachabilityMatrix ReachabilityMatrix::recompute(const CompiledPlane& plane,
                                                 const ReachabilityMatrix& base,
                                                 const std::set<DeviceId>& dirty,
                                                 const TraceOptions& options,
                                                 std::size_t* retraced,
                                                 std::vector<std::size_t>* retraced_indices) {
  util::require(base.paths_recorded_,
                "recompute: base matrix was computed without recorded paths");
  ReachabilityMatrix matrix = base;
  const net::NetworkIndex& idx = plane.index();

  // Group stale pairs by destination so re-traces share decision caches.
  std::map<DeviceId, std::vector<std::size_t>> stale_by_dst;
  std::size_t stale_count = 0;
  if (retraced_indices) retraced_indices->clear();
  for (std::size_t i = 0; i < matrix.pairs_.size(); ++i) {
    const PairReachability& pair = matrix.pairs_[i];
    bool touches_dirty = std::any_of(pair.path.begin(), pair.path.end(), [&](const DeviceId& hop) {
      return dirty.count(hop) != 0;
    });
    if (touches_dirty) {
      stale_by_dst[pair.dst].push_back(i);
      ++stale_count;
      if (retraced_indices) retraced_indices->push_back(i);
    }
  }
  if (retraced) *retraced = stale_count;

  std::vector<const std::vector<std::size_t>*> groups;
  std::vector<Ipv4Address> group_ips;
  groups.reserve(stale_by_dst.size());
  for (const auto& [dst, slots] : stale_by_dst) {
    const std::uint32_t dst_idx = idx.find_device(dst);
    util::require(dst_idx != net::NetworkIndex::kInvalid,
                  "recompute: unknown destination " + dst.str());
    auto ip = idx.primary_ip(dst_idx);
    util::require(ip.has_value(), "trace_hosts: no address on " + dst.str());
    groups.push_back(&slots);
    group_ips.push_back(*ip);
  }

  auto trace_groups = [&](std::size_t begin, std::size_t end) {
    CompiledPlane::TraceCounters counters;
    for (std::size_t g = begin; g < end; ++g) {
      CompiledPlane::DstCache cache = plane.make_dst_cache(group_ips[g]);
      for (std::size_t slot : *groups[g]) {
        PairReachability& pair = matrix.pairs_[slot];
        const std::uint32_t src_idx = idx.find_device(pair.src);
        util::require(src_idx != net::NetworkIndex::kInvalid,
                      "recompute: unknown source " + pair.src.str());
        auto src_ip = idx.primary_ip(src_idx);
        util::require(src_ip.has_value(), "trace_hosts: no address on " + pair.src.str());
        Flow flow;
        flow.src_ip = *src_ip;
        flow.dst_ip = group_ips[g];
        flow.protocol = IpProtocol::Icmp;
        CompiledPlane::IndexedTrace trace = plane.trace_indexed(flow, cache, counters);
        pair.disposition = trace.disposition;
        pair.path = plane.path_of(trace);
      }
    }
    CompiledPlane::flush_counters(counters);
  };
  if (options.pool) {
    options.pool->parallel_for(groups.size(), trace_groups, /*grain=*/1);
  } else {
    trace_groups(0, groups.size());
  }
  return matrix;
}

const PairReachability& ReachabilityMatrix::pair(const DeviceId& src, const DeviceId& dst) const {
  auto it = index_.find({src, dst});
  if (it == index_.end())
    throw util::NotFoundError("no reachability entry for " + src.str() + " -> " + dst.str());
  return pairs_[it->second];
}

bool ReachabilityMatrix::has_pair(const DeviceId& src, const DeviceId& dst) const {
  return index_.count({src, dst}) != 0;
}

Disposition ReachabilityMatrix::disposition(const DeviceId& src, const DeviceId& dst) const {
  return pair(src, dst).disposition;
}

std::vector<DeviceId> ReachabilityMatrix::path(const DeviceId& src, const DeviceId& dst) const {
  return pair(src, dst).path;
}

std::size_t ReachabilityMatrix::reachable_count() const {
  return static_cast<std::size_t>(std::count_if(
      pairs_.begin(), pairs_.end(), [](const PairReachability& p) { return p.reachable(); }));
}

std::size_t ReachabilityMatrix::bytes() const {
  // Estimate: vector/map storage plus the per-pair hop paths (DeviceId wraps
  // a std::string; count its heap payload). The point is the asymptotic
  // O(hosts^2 . path) shape, not byte-exact accounting.
  std::size_t total = pairs_.capacity() * sizeof(PairReachability);
  for (const PairReachability& pair : pairs_) {
    total += pair.src.str().size() + pair.dst.str().size();
    total += pair.path.capacity() * sizeof(DeviceId);
    for (const DeviceId& hop : pair.path) total += hop.str().size();
  }
  // index_ nodes: key pair of DeviceIds + size_t + red-black overhead.
  total += index_.size() * (2 * sizeof(DeviceId) + sizeof(std::size_t) + 4 * sizeof(void*));
  for (const auto& [key, slot] : index_) {
    (void)slot;
    total += key.first.str().size() + key.second.str().size();
  }
  for (const DeviceId& host : hosts_) total += sizeof(DeviceId) + host.str().size();
  return total;
}

std::vector<std::tuple<DeviceId, DeviceId, bool, bool>> ReachabilityMatrix::diff(
    const ReachabilityMatrix& before, const ReachabilityMatrix& after) {
  std::vector<std::tuple<DeviceId, DeviceId, bool, bool>> out;
  for (const PairReachability& b : before.pairs_) {
    auto it = after.index_.find({b.src, b.dst});
    if (it == after.index_.end()) continue;
    const PairReachability& a = after.pairs_[it->second];
    if (b.reachable() != a.reachable())
      out.emplace_back(b.src, b.dst, b.reachable(), a.reachable());
  }
  return out;
}

}  // namespace heimdall::dp
