#include "dataplane/reachability.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace heimdall::dp {

using namespace heimdall::net;

ReachabilityMatrix ReachabilityMatrix::compute(const Network& network, const Dataplane& dataplane) {
  ReachabilityMatrix matrix;
  std::vector<DeviceId> hosts = network.device_ids(DeviceKind::Host);
  for (const DeviceId& src : hosts) {
    for (const DeviceId& dst : hosts) {
      if (src == dst) continue;
      TraceResult result = trace_hosts(network, dataplane, src, dst);
      PairReachability pair;
      pair.src = src;
      pair.dst = dst;
      pair.disposition = result.disposition;
      pair.path = result.path();
      matrix.index_[{src, dst}] = matrix.pairs_.size();
      matrix.pairs_.push_back(std::move(pair));
    }
  }
  return matrix;
}

const PairReachability& ReachabilityMatrix::pair(const DeviceId& src, const DeviceId& dst) const {
  auto it = index_.find({src, dst});
  if (it == index_.end())
    throw util::NotFoundError("no reachability entry for " + src.str() + " -> " + dst.str());
  return pairs_[it->second];
}

bool ReachabilityMatrix::reachable(const DeviceId& src, const DeviceId& dst) const {
  return pair(src, dst).reachable();
}

bool ReachabilityMatrix::has_pair(const DeviceId& src, const DeviceId& dst) const {
  return index_.count({src, dst}) != 0;
}

std::size_t ReachabilityMatrix::reachable_count() const {
  return static_cast<std::size_t>(std::count_if(
      pairs_.begin(), pairs_.end(), [](const PairReachability& p) { return p.reachable(); }));
}

std::vector<std::tuple<DeviceId, DeviceId, bool, bool>> ReachabilityMatrix::diff(
    const ReachabilityMatrix& before, const ReachabilityMatrix& after) {
  std::vector<std::tuple<DeviceId, DeviceId, bool, bool>> out;
  for (const PairReachability& b : before.pairs_) {
    auto it = after.index_.find({b.src, b.dst});
    if (it == after.index_.end()) continue;
    const PairReachability& a = after.pairs_[it->second];
    if (b.reachable() != a.reachable())
      out.emplace_back(b.src, b.dst, b.reachable(), a.reachable());
  }
  return out;
}

}  // namespace heimdall::dp
