// DIR-24-8-style multibit longest-prefix-match table compiled from a Fib
// trie.
//
// The binary trie (Fib) walks up to 32 heap nodes per lookup. CompiledFib
// paints the routes into a flat top-level table indexed by the address's
// leading `stride` bits plus 256-entry overflow chunks for prefixes longer
// than the stride (each further chunk level resolves 8 more bits). A lookup
// is one top-table load and, only under refined prefixes, one chunk load per
// remaining 8-bit level — no search, no pointer chase proportional to prefix
// length. Chunk entries are pre-filled with the covering shorter route, so a
// refined range that does not match still falls back correctly.
//
// The table is built from the trie in Fib::routes() order (prefix length
// desc, network asc): route indices returned by lookup_index are stable and
// bit-for-bit identical to a trie walk, which DstCache/CompiledPlane
// memoization relies on.
//
// The stride is a memory knob: /24 is the classic DIR-24-8 layout (64 MiB
// top table — datacenter-scale FIBs), /16 and /8 shrink the top table for
// small FIBs at the cost of one or two extra chunk levels. The default
// (stride 0) picks per FIB by route count. The trie remains the
// build-time/reference implementation; CompiledFib is immutable — recompile
// after route changes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dataplane/fib.hpp"

namespace heimdall::dp {

class CompiledFib {
 public:
  static constexpr std::uint32_t kMiss = 0xffffffffu;

  struct BuildOptions {
    /// Top-table stride in bits: 8, 16 or 24. 0 picks per FIB by route
    /// count (small FIBs get /8, mid-size /16, 64k+ routes the full /24).
    unsigned stride = 0;
  };

  CompiledFib() = default;

  /// Flattens `fib`. Routes keep Fib::routes() order, so indices are stable
  /// and most-specific-first.
  static CompiledFib build(const Fib& fib) { return build(fib, BuildOptions()); }
  static CompiledFib build(const Fib& fib, const BuildOptions& options);

  /// Longest-prefix-match; returns an index into routes() or kMiss.
  std::uint32_t lookup_index(net::Ipv4Address address) const {
    if (top_.empty()) return kMiss;  // default-constructed (never built)
    const std::uint32_t bits = address.value();
    std::uint32_t entry = top_[bits >> shift_];
    unsigned shift = shift_;
    while (entry & kChunkBit) {
      shift -= 8;
      entry = chunks_[(static_cast<std::size_t>(entry & ~kChunkBit) << 8) |
                      ((bits >> shift) & 0xffu)];
    }
    return entry - 1;  // entries store route index + 1; 0 wraps to kMiss
  }

  /// Batch lookup: out[i] = lookup_index(addresses[i]). Software-prefetches
  /// the top-table rows a few probes ahead so a large table (whose rows are
  /// not cache-resident) overlaps its memory latency across the batch.
  void lookup_many(std::span<const net::Ipv4Address> addresses,
                   std::span<std::uint32_t> out) const;

  /// Reference-equivalent API mirroring Fib::lookup.
  std::optional<Route> lookup(net::Ipv4Address address) const {
    std::uint32_t idx = lookup_index(address);
    if (idx == kMiss) return std::nullopt;
    return routes_[idx];
  }

  const Route& route(std::uint32_t index) const { return routes_[index]; }
  const std::vector<Route>& routes() const { return routes_; }
  std::size_t size() const { return routes_.size(); }
  bool empty() const { return routes_.empty(); }

  /// Top-table stride in bits this FIB was built with.
  unsigned stride() const { return 32u - shift_; }
  /// Bytes held by the lookup tables (top table + overflow chunks).
  std::size_t table_bytes() const {
    return (top_.size() + chunks_.size()) * sizeof(std::uint32_t);
  }
  /// Number of 256-entry overflow chunks backing prefixes longer than the
  /// stride.
  std::size_t overflow_chunks() const { return chunks_.size() >> 8; }

 private:
  /// Table entry encoding: 0 = miss, high bit set = overflow chunk index,
  /// otherwise route index + 1.
  static constexpr std::uint32_t kChunkBit = 0x80000000u;

  void paint(const net::Ipv4Prefix& prefix, std::uint32_t leaf);

  std::vector<Route> routes_;
  std::vector<std::uint32_t> top_;     ///< 2^stride entries
  std::vector<std::uint32_t> chunks_;  ///< overflow arena, 256 entries per chunk
  unsigned shift_ = 24;                ///< 32 - stride
};

}  // namespace heimdall::dp
