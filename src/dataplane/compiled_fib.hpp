// Flat, cache-friendly longest-prefix-match table compiled from a Fib trie.
//
// The binary trie (Fib) walks up to 32 heap nodes per lookup. CompiledFib
// flattens the routes into one contiguous array sorted by (prefix length
// desc, network asc) — i.e. Fib::routes() order — with one bucket per
// populated prefix length. A lookup masks the address per bucket and binary
// searches that bucket's sorted network values; the first (longest) hit
// wins, which is exactly the trie's longest-prefix-match answer. Enterprise
// FIBs populate only a handful of distinct lengths, so a lookup touches a
// few small sorted arrays that stay in cache.
//
// The trie remains the build-time/reference implementation; CompiledFib is
// immutable — recompile after route changes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dataplane/fib.hpp"

namespace heimdall::dp {

class CompiledFib {
 public:
  static constexpr std::uint32_t kMiss = 0xffffffffu;

  CompiledFib() = default;

  /// Flattens `fib`. Routes keep Fib::routes() order, so indices are stable
  /// and most-specific-first.
  static CompiledFib build(const Fib& fib);

  /// Longest-prefix-match; returns an index into routes() or kMiss.
  std::uint32_t lookup_index(net::Ipv4Address address) const;

  /// Reference-equivalent API mirroring Fib::lookup.
  std::optional<Route> lookup(net::Ipv4Address address) const {
    std::uint32_t idx = lookup_index(address);
    if (idx == kMiss) return std::nullopt;
    return routes_[idx];
  }

  const Route& route(std::uint32_t index) const { return routes_[index]; }
  const std::vector<Route>& routes() const { return routes_; }
  std::size_t size() const { return routes_.size(); }
  bool empty() const { return routes_.empty(); }

 private:
  /// One populated prefix length: routes_[first, first + networks.size())
  /// share this length; `networks` holds their network addresses, ascending.
  struct Bucket {
    std::uint32_t mask = 0;   ///< ~0u << (32 - length); 0 for the default route
    std::uint32_t first = 0;  ///< index of the bucket's first route in routes_
    std::vector<std::uint32_t> networks;
  };

  std::vector<Route> routes_;
  std::vector<Bucket> buckets_;  ///< by prefix length, descending
};

}  // namespace heimdall::dp
