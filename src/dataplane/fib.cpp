#include "dataplane/fib.hpp"

#include <algorithm>

namespace heimdall::dp {

Fib::Fib() : root_(std::make_unique<Node>()) {}

Fib::Fib(const Fib& other) : root_(clone(*other.root_)), size_(other.size_) {}

Fib& Fib::operator=(const Fib& other) {
  if (this != &other) {
    root_ = clone(*other.root_);
    size_ = other.size_;
  }
  return *this;
}

std::unique_ptr<Fib::Node> Fib::clone(const Node& node) {
  auto copy = std::make_unique<Node>();
  copy->route = node.route;
  for (int i = 0; i < 2; ++i)
    if (node.child[i]) copy->child[i] = clone(*node.child[i]);
  return copy;
}

void Fib::insert(const Route& route) {
  Node* node = root_.get();
  std::uint32_t bits = route.prefix.network().value();
  for (unsigned depth = 0; depth < route.prefix.length(); ++depth) {
    unsigned bit = (bits >> (31 - depth)) & 1;
    if (!node->child[bit]) node->child[bit] = std::make_unique<Node>();
    node = node->child[bit].get();
  }
  if (!node->route) {
    node->route = route;
    ++size_;
  } else if (route.preferred_over(*node->route)) {
    node->route = route;
  }
}

std::optional<Route> Fib::lookup(net::Ipv4Address address) const {
  const Node* node = root_.get();
  std::optional<Route> best = node->route;
  std::uint32_t bits = address.value();
  for (unsigned depth = 0; depth < 32 && node; ++depth) {
    unsigned bit = (bits >> (31 - depth)) & 1;
    node = node->child[bit].get();
    if (node && node->route) best = node->route;
  }
  return best;
}

std::optional<Route> Fib::route_for(const net::Ipv4Prefix& prefix) const {
  const Node* node = root_.get();
  std::uint32_t bits = prefix.network().value();
  for (unsigned depth = 0; depth < prefix.length(); ++depth) {
    unsigned bit = (bits >> (31 - depth)) & 1;
    if (!node->child[bit]) return std::nullopt;
    node = node->child[bit].get();
  }
  return node->route;
}

std::vector<Route> Fib::routes() const {
  std::vector<Route> out;
  out.reserve(size_);
  collect(*root_, out);
  std::sort(out.begin(), out.end(), [](const Route& a, const Route& b) {
    if (a.prefix.length() != b.prefix.length()) return a.prefix.length() > b.prefix.length();
    return a.prefix.network() < b.prefix.network();
  });
  return out;
}

void Fib::collect(const Node& node, std::vector<Route>& out) const {
  if (node.route) out.push_back(*node.route);
  for (int i = 0; i < 2; ++i)
    if (node.child[i]) collect(*node.child[i], out);
}

}  // namespace heimdall::dp
