// RIB/FIB route entries.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>

#include "netmodel/ipv4.hpp"
#include "netmodel/types.hpp"

namespace heimdall::dp {

/// Origin protocol of a route, ordered by preference via admin distance.
enum class RouteProtocol : std::uint8_t { Connected, Static, Ospf };

std::string to_string(RouteProtocol protocol);

/// Cisco-style administrative distance for each protocol.
unsigned default_admin_distance(RouteProtocol protocol);

/// One route installed in a device's FIB.
struct Route {
  net::Ipv4Prefix prefix;
  RouteProtocol protocol = RouteProtocol::Connected;
  /// Next-hop IP; nullopt for connected routes (deliver on-link).
  std::optional<net::Ipv4Address> next_hop;
  /// Egress interface.
  net::InterfaceId out_iface;
  unsigned admin_distance = 0;
  unsigned metric = 0;

  auto operator<=>(const Route&) const = default;

  /// True when `other` is less preferred for the same prefix
  /// (admin distance, then metric, then next-hop as the tiebreak).
  bool preferred_over(const Route& other) const {
    if (admin_distance != other.admin_distance) return admin_distance < other.admin_distance;
    if (metric != other.metric) return metric < other.metric;
    return next_hop.value_or(net::Ipv4Address(0)) < other.next_hop.value_or(net::Ipv4Address(0));
  }

  std::string to_string() const;
};

}  // namespace heimdall::dp
