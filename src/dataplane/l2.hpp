// Layer-2 broadcast-domain computation.
//
// The model: every up L3 endpoint (router interface or host NIC) and every
// (switch, VLAN) pair is a node in a union-find structure. Physical links
// merge nodes according to switchport semantics:
//   * L3 <-> L3: a point-to-point segment.
//   * L3 <-> access port (S, V): the L3 endpoint joins S's VLAN-V domain.
//   * access (S1,V) <-> access (S2,W): domains merge (untagged bridging;
//     this also models the classic wrong-VLAN misconfig when W differs).
//   * trunk <-> trunk: each VLAN allowed on both sides merges.
//   * access (S1,V) <-> trunk: merges when V is allowed on the trunk.
// Links with a shutdown endpoint carry nothing.
//
// Two L3 endpoints can exchange frames directly iff they end up in the same
// segment.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "netmodel/network.hpp"

namespace heimdall::dp {

/// Opaque broadcast-domain id (stable within one computation).
using SegmentId = std::size_t;

/// The computed L2 view of a network.
class L2Domains {
 public:
  /// Computes broadcast domains for `network`.
  static L2Domains compute(const net::Network& network);

  /// Segment of an L3 endpoint; nullopt when the interface is down, has no
  /// link, or is not L3.
  std::optional<SegmentId> segment_of(const net::Endpoint& endpoint) const;

  /// All L3 endpoints in `segment`, sorted.
  std::vector<net::Endpoint> members(SegmentId segment) const;

  /// True when the two endpoints share a broadcast domain.
  bool adjacent(const net::Endpoint& a, const net::Endpoint& b) const;

  /// The endpoint in `segment` whose interface is configured with `ip`
  /// (ARP resolution); nullopt when absent.
  std::optional<net::Endpoint> resolve_ip(SegmentId segment, net::Ipv4Address ip,
                                          const net::Network& network) const;

  std::size_t segment_count() const { return segment_count_; }

 private:
  std::map<net::Endpoint, SegmentId> endpoint_segment_;
  std::map<SegmentId, std::vector<net::Endpoint>> segment_members_;
  std::size_t segment_count_ = 0;
};

}  // namespace heimdall::dp
