#include "dataplane/route.hpp"

namespace heimdall::dp {

std::string to_string(RouteProtocol protocol) {
  switch (protocol) {
    case RouteProtocol::Connected: return "connected";
    case RouteProtocol::Static: return "static";
    case RouteProtocol::Ospf: return "ospf";
  }
  return "connected";
}

unsigned default_admin_distance(RouteProtocol protocol) {
  switch (protocol) {
    case RouteProtocol::Connected: return 0;
    case RouteProtocol::Static: return 1;
    case RouteProtocol::Ospf: return 110;
  }
  return 255;
}

std::string Route::to_string() const {
  std::string out = dp::to_string(protocol) + " " + prefix.to_string();
  if (next_hop) out += " via " + next_hop->to_string();
  out += " dev " + out_iface.str();
  out += " [" + std::to_string(admin_distance) + "/" + std::to_string(metric) + "]";
  return out;
}

}  // namespace heimdall::dp
