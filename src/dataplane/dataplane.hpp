// Whole-network dataplane snapshot: per-device FIBs + L2 domains + OSPF
// adjacencies, computed from a Network's configurations. This is the
// Batfish-equivalent substrate the verifier and the twin emulation layer
// both run on.
#pragma once

#include <map>

#include "dataplane/fib.hpp"
#include "dataplane/l2.hpp"
#include "dataplane/ospf.hpp"
#include "netmodel/network.hpp"

namespace heimdall::dp {

/// A computed dataplane. Immutable snapshot: recompute after config changes.
/// (The one exception is rebuild_device_fib(), the analysis engine's
/// incremental path for changes that provably stay device-local.)
class Dataplane {
 public:
  /// Computes the dataplane for `network`:
  ///   1. L2 broadcast domains,
  ///   2. connected routes from up L3 interfaces,
  ///   3. configured static routes,
  ///   4. OSPF routes (routers only).
  static Dataplane compute(const net::Network& network);

  /// Rebuilds one device's FIB from its current connected/static
  /// configuration, reusing the L2 domains and per-router OSPF routes of
  /// this snapshot. Only valid when the triggering config change cannot
  /// affect L2 domains or OSPF (static-route edits); the analysis engine
  /// enforces that classification.
  void rebuild_device_fib(const net::Device& device);

  /// The FIB of `device`; an empty FIB for pure-L2 devices.
  const Fib& fib(const net::DeviceId& device) const;

  const L2Domains& l2() const { return l2_; }
  const std::vector<OspfAdjacency>& ospf_adjacencies() const { return ospf_adjacencies_; }

  /// Total routes across all devices (micro-bench statistic).
  std::size_t total_routes() const;

 private:
  static void install_local_routes(const net::Device& device, Fib& fib);

  std::map<net::DeviceId, Fib> fibs_;
  L2Domains l2_;
  std::vector<OspfAdjacency> ospf_adjacencies_;
  /// Per-router OSPF routes kept alongside the merged FIBs so one device's
  /// FIB can be rebuilt without rerunning SPF.
  std::map<net::DeviceId, std::vector<Route>> ospf_routes_;
  Fib empty_;
};

}  // namespace heimdall::dp
