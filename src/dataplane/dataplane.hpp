// Whole-network dataplane snapshot: per-device FIBs + L2 domains + OSPF
// adjacencies, computed from a Network's configurations. This is the
// Batfish-equivalent substrate the verifier and the twin emulation layer
// both run on.
#pragma once

#include <map>

#include "dataplane/fib.hpp"
#include "dataplane/l2.hpp"
#include "dataplane/ospf.hpp"
#include "netmodel/network.hpp"

namespace heimdall::dp {

/// A computed dataplane. Immutable snapshot: recompute after config changes.
class Dataplane {
 public:
  /// Computes the dataplane for `network`:
  ///   1. L2 broadcast domains,
  ///   2. connected routes from up L3 interfaces,
  ///   3. configured static routes,
  ///   4. OSPF routes (routers only).
  static Dataplane compute(const net::Network& network);

  /// The FIB of `device`; an empty FIB for pure-L2 devices.
  const Fib& fib(const net::DeviceId& device) const;

  const L2Domains& l2() const { return l2_; }
  const std::vector<OspfAdjacency>& ospf_adjacencies() const { return ospf_adjacencies_; }

  /// Total routes across all devices (micro-bench statistic).
  std::size_t total_routes() const;

 private:
  std::map<net::DeviceId, Fib> fibs_;
  L2Domains l2_;
  std::vector<OspfAdjacency> ospf_adjacencies_;
  Fib empty_;
};

}  // namespace heimdall::dp
