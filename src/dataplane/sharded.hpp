// Sharded, compressed all-pairs reachability for fabric-scale topologies.
//
// The dense ReachabilityMatrix stores a PairReachability (with a hop-path
// vector) for every ordered host pair — O(hosts^2 . path) memory, fine at
// paper scale (9-17 hosts), hopeless for a datacenter fabric standing in for
// thousands of host addresses. This layer exploits what makes fabrics
// tractable: hosts sharing a (leaf, subnet) forwarding class are
// indistinguishable to every FIB and ACL in the network, so one
// representative trace per ordered *class* pair answers every member pair.
//
// Class construction is sound by prefix refinement, not topology heuristics:
// every discriminating prefix in the network (each device's FIB route
// prefixes, each ACL entry's src/dst prefixes) contributes its boundaries to
// a sorted interval partition of the IPv4 space. Two host addresses in the
// same refinement cell match the identical set of route and ACL prefixes at
// every device, so every LPM answer and ACL row they can ever hit is the
// same. The class signature additionally pins everything else a trace can
// read from an endpoint: the host's own FIB (serialized routes), each NIC's
// L2 segment / shutdown flag / ACL bindings, and exclusive ownership of its
// primary IP. Hosts that fail the cleanliness checks (duplicate or shadowed
// IPs) become singleton classes — correct by construction, just
// uncompressed.
//
// Storage is O(classes^2 + hosts): a disposition byte and a delivered bit
// per ordered class pair (per-destination bitset rows), one interned
// representative path per class pair, and a class id per host. The compute
// is sharded by destination-class column across a util::ThreadPool, each
// column owning a DstCache seeded from one CompiledFib::lookup_many prewarm
// sweep — the same structure the dense compiled compute uses, applied to
// classes instead of hosts.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "dataplane/reachability.hpp"

namespace heimdall::util {
class ThreadPool;
}

namespace heimdall::dp {

class CompiledPlane;

/// Tuning knobs for the sharded all-pairs compute.
struct ShardOptions {
  /// When non-null, destination-class columns are partitioned across this
  /// pool (grain 1: a column is a full sweep of source classes).
  util::ThreadPool* pool = nullptr;
};

/// The forwarding-equivalence partition of a compiled plane's hosts.
class HostClasses {
 public:
  static constexpr std::uint32_t kInvalid = 0xffffffffu;

  /// Partitions the plane's hosts (NetworkIndex::hosts() order) into
  /// forwarding-equivalence classes. Deterministic: classes are numbered by
  /// first-member host position.
  static HostClasses compute(const CompiledPlane& plane);

  std::uint32_t class_count() const { return static_cast<std::uint32_t>(members_.size()); }
  std::uint32_t host_count() const { return static_cast<std::uint32_t>(class_of_.size()); }

  /// Class of the host at `host_pos` (position in NetworkIndex::hosts()).
  std::uint32_t class_of(std::uint32_t host_pos) const { return class_of_[host_pos]; }

  /// Member host positions per class, each ascending.
  const std::vector<std::vector<std::uint32_t>>& members() const { return members_; }

  /// First member host position of `cls` — the class representative.
  std::uint32_t representative(std::uint32_t cls) const { return members_[cls].front(); }

  /// True when `other` partitions the same number of hosts identically.
  bool same_partition(const HostClasses& other) const { return class_of_ == other.class_of_; }

 private:
  std::vector<std::uint32_t> class_of_;              ///< by host position
  std::vector<std::vector<std::uint32_t>> members_;  ///< by class
};

/// Compressed all-pairs reachability: one representative verdict per ordered
/// forwarding-equivalence class pair, expanded on demand through the
/// ReachabilityView interface. Agrees pair-for-pair with the dense
/// ReachabilityMatrix computed on the same plane (property-tested oracle).
class ShardedReachability : public ReachabilityView {
 public:
  /// Traces one representative ordered pair per class pair, sharded by
  /// destination-class column. Sets the matrix.bytes / matrix.equiv_classes
  /// gauges in the global metrics registry.
  static ShardedReachability compute(const CompiledPlane& plane, const ShardOptions& options = {});

  /// Partial recompute mirroring ReachabilityMatrix::recompute: copies
  /// `base` and re-traces only the class pairs whose representative path
  /// touches a device in `dirty` (same determinism precondition). Falls
  /// back to a full compute when the class partition or host set moved.
  /// `retraced` (optional) receives the number of re-traced class pairs.
  static ShardedReachability recompute(const CompiledPlane& plane,
                                       const ShardedReachability& base,
                                       const std::set<net::DeviceId>& dirty,
                                       const ShardOptions& options = {},
                                       std::size_t* retraced = nullptr);

  // ReachabilityView:
  bool has_pair(const net::DeviceId& src, const net::DeviceId& dst) const override;
  Disposition disposition(const net::DeviceId& src, const net::DeviceId& dst) const override;
  /// The representative path with the class representatives substituted by
  /// the queried endpoints — identical to the dense matrix's recorded path
  /// for the pair.
  std::vector<net::DeviceId> path(const net::DeviceId& src,
                                  const net::DeviceId& dst) const override;
  std::size_t reachable_count() const override { return reachable_count_; }
  std::size_t total_count() const override;
  const std::vector<net::DeviceId>& hosts() const override { return host_ids_; }
  std::size_t bytes() const override;

  const HostClasses& classes() const { return classes_; }
  std::size_t class_count() const { return classes_.class_count(); }
  /// Ordered class pairs actually traced (classes^2 minus empty diagonals).
  std::size_t traced_pairs() const { return traced_pairs_; }

  /// Ordered host pairs whose reachability differs, src-major in `before`'s
  /// host order — the same tuple sequence ReachabilityMatrix::diff emits for
  /// the equivalent dense matrices. Pairs absent from `after` are skipped.
  static std::vector<std::tuple<net::DeviceId, net::DeviceId, bool, bool>> diff(
      const ShardedReachability& before, const ShardedReachability& after);

 private:
  std::uint32_t host_pos(const net::DeviceId& id) const;
  /// Disposition slot for ordered class pair (src_cls -> dst_cls);
  /// dst-major so one destination column is contiguous.
  std::size_t slot(std::uint32_t src_cls, std::uint32_t dst_cls) const {
    return static_cast<std::size_t>(dst_cls) * classes_.class_count() + src_cls;
  }
  /// Bitset rows are padded to whole words so two destination columns never
  /// share a word — the parallel column shards write bits lock-free.
  bool delivered_bit_value(std::uint32_t src_cls, std::uint32_t dst_cls) const;
  void set_delivered_bit(std::uint32_t src_cls, std::uint32_t dst_cls, bool value);
  /// (representative src id, representative dst id) for one class pair; the
  /// diagonal uses (second member, first member).
  std::pair<const net::DeviceId*, const net::DeviceId*> rep_ids(std::uint32_t src_cls,
                                                                std::uint32_t dst_cls) const;
  void finalize_counts();
  void store_paths(const std::vector<std::vector<net::DeviceId>>& rep_paths);
  std::vector<net::DeviceId> decode_path(std::size_t pair_slot) const;

  std::vector<net::DeviceId> host_ids_;  ///< NetworkIndex::hosts() order
  std::unordered_map<std::string, std::uint32_t> host_pos_;
  HostClasses classes_;
  /// Per ordered class pair (dst-major, see slot()). The diagonal of a
  /// singleton class has no pair; its slot stays NoRoute / bit 0 and is
  /// never exposed.
  std::vector<Disposition> dispositions_;
  /// Per-destination bitset rows: row d holds the delivered bit of every
  /// source class toward destination class d.
  std::vector<std::uint64_t> delivered_bits_;
  /// Representative paths, interned: path_pool_ holds each distinct device
  /// id once; pair slot p's path is path_entries_[path_offsets_[p] ..
  /// path_offsets_[p+1]) indices into the pool.
  std::vector<net::DeviceId> path_pool_;
  std::vector<std::uint32_t> path_offsets_;
  std::vector<std::uint32_t> path_entries_;
  std::size_t reachable_count_ = 0;
  std::size_t traced_pairs_ = 0;
};

}  // namespace heimdall::dp
