// OSPF control-plane simulation.
//
// Model (sufficient for enterprise-style configs, mirroring what Batfish
// computes for the paper's networks):
//   * An interface participates in OSPF when a "network ... area N" statement
//     covers its address. It advertises its connected subnet into that area.
//   * Two routers form an adjacency when they have up, same-subnet, same-area
//     interfaces in one L2 segment and neither side is passive.
//   * Per-area SPF (Dijkstra, egress-interface costs, default cost 10).
//   * Inter-area routes traverse the backbone through ABRs (two-level
//     hierarchy, standard OSPF area routing).
//   * Deterministic ECMP tie-break: lowest next-hop address wins.
#pragma once

#include <map>
#include <vector>

#include "dataplane/l2.hpp"
#include "dataplane/route.hpp"
#include "netmodel/network.hpp"

namespace heimdall::dp {

/// A formed OSPF adjacency (for `show ip ospf neighbor` in the twin console
/// and for slicer dependency analysis).
struct OspfAdjacency {
  net::Endpoint a;
  net::Endpoint b;
  unsigned area = 0;

  auto operator<=>(const OspfAdjacency&) const = default;
};

/// Result of the OSPF computation over one network snapshot.
struct OspfResult {
  /// Routes per router (hosts/switches never appear).
  std::map<net::DeviceId, std::vector<Route>> routes;
  /// All formed adjacencies, sorted.
  std::vector<OspfAdjacency> adjacencies;
};

/// Runs OSPF over `network` using precomputed L2 domains.
OspfResult compute_ospf(const net::Network& network, const L2Domains& l2);

/// Default OSPF interface cost when no override is configured.
inline constexpr unsigned kDefaultOspfCost = 10;

}  // namespace heimdall::dp
