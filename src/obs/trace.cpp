#include "obs/trace.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <mutex>
#include <thread>

#include "obs/metrics.hpp"

namespace heimdall::obs {

namespace {

/// One open span per frame; the stack gives parent/child nesting per thread.
struct OpenFrame {
  const Tracer* tracer;
  SpanId id;
};

thread_local std::vector<OpenFrame> t_open_stack;
thread_local SpanArgs t_context;

}  // namespace

struct Tracer::State {
  mutable std::mutex mutex;
  TimeSource time;  // empty -> steady_now_us
  SpanId next_id = 1;
  std::map<SpanId, SpanRecord> open;
  std::deque<SpanRecord> finished;  ///< bounded ring: oldest spans evicted
  std::map<std::thread::id, std::uint32_t> thread_indices;
};

void Tracer::push_finished_locked(State& s, SpanRecord record) {
  s.finished.push_back(std::move(record));
  std::size_t capacity = capacity_.load(std::memory_order_relaxed);
  std::uint64_t evicted = 0;
  while (s.finished.size() > capacity) {
    s.finished.pop_front();
    ++evicted;
  }
  if (evicted > 0) {
    dropped_.fetch_add(evicted, std::memory_order_relaxed);
    static Counter& drop_counter = Registry::global().counter("obs.trace_dropped");
    drop_counter.add(evicted);
  }
}

Tracer::~Tracer() { delete state_.load(); }

Tracer::State& Tracer::state() const {
  // Allocated lazily so a never-enabled tracer costs nothing but a pointer.
  if (!state_.load(std::memory_order_acquire)) {
    State* fresh = new State();
    State* expected = nullptr;
    if (!state_.compare_exchange_strong(expected, fresh, std::memory_order_acq_rel)) delete fresh;
  }
  return *state_.load(std::memory_order_acquire);
}

std::uint32_t Tracer::thread_index_locked(State& state) const {
  auto [it, inserted] =
      state.thread_indices.emplace(std::this_thread::get_id(),
                                   static_cast<std::uint32_t>(state.thread_indices.size()));
  (void)inserted;
  return it->second;
}

void Tracer::set_time_source(TimeSource source) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.time = std::move(source);
}

SpanId Tracer::begin(std::string name, std::string category, SpanArgs args) {
  if (!enabled()) return 0;
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  SpanRecord record;
  record.id = s.next_id++;
  record.name = std::move(name);
  record.category = std::move(category);
  record.start_us = s.time ? s.time() : steady_now_us();
  record.tid = thread_index_locked(s);
  // Context first, then explicit args, so explicit args win on key clashes
  // in viewers that keep the last value.
  record.args = t_context;
  for (auto& kv : args) record.args.push_back(std::move(kv));
  for (auto it = t_open_stack.rbegin(); it != t_open_stack.rend(); ++it) {
    if (it->tracer == this) {
      record.parent = it->id;
      break;
    }
  }
  SpanId id = record.id;
  s.open.emplace(id, std::move(record));
  t_open_stack.push_back({this, id});
  return id;
}

void Tracer::arg(SpanId id, std::string key, std::string value) {
  if (id == 0) return;
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  auto it = s.open.find(id);
  if (it != s.open.end()) it->second.args.emplace_back(std::move(key), std::move(value));
}

void Tracer::end(SpanId id) {
  if (id == 0) return;
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  auto it = s.open.find(id);
  if (it == s.open.end()) return;
  SpanRecord record = std::move(it->second);
  s.open.erase(it);
  std::uint64_t now = s.time ? s.time() : steady_now_us();
  record.duration_us = now >= record.start_us ? now - record.start_us : 0;
  push_finished_locked(s, std::move(record));
  // Pop this thread's frame (RAII makes it the innermost one for `this`).
  for (auto frame = t_open_stack.rbegin(); frame != t_open_stack.rend(); ++frame) {
    if (frame->tracer == this && frame->id == id) {
      t_open_stack.erase(std::next(frame).base());
      break;
    }
  }
}

void Tracer::instant(std::string name, std::string category, SpanArgs args) {
  if (!enabled()) return;
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  SpanRecord record;
  record.id = s.next_id++;
  record.name = std::move(name);
  record.category = std::move(category);
  record.start_us = s.time ? s.time() : steady_now_us();
  record.duration_us = 0;
  record.tid = thread_index_locked(s);
  record.args = t_context;
  for (auto& kv : args) record.args.push_back(std::move(kv));
  for (auto it = t_open_stack.rbegin(); it != t_open_stack.rend(); ++it) {
    if (it->tracer == this) {
      record.parent = it->id;
      break;
    }
  }
  push_finished_locked(s, std::move(record));
}

std::vector<SpanRecord> Tracer::spans() const {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return std::vector<SpanRecord>(s.finished.begin(), s.finished.end());
}

std::vector<SpanRecord> Tracer::open_spans() const {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  std::vector<SpanRecord> out;
  out.reserve(s.open.size());
  for (const auto& [id, record] : s.open) out.push_back(record);
  return out;
}

void Tracer::set_capacity(std::size_t capacity) {
  capacity_.store(std::max<std::size_t>(capacity, 1), std::memory_order_relaxed);
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  std::size_t limit = capacity_.load(std::memory_order_relaxed);
  std::uint64_t evicted = 0;
  while (s.finished.size() > limit) {
    s.finished.pop_front();
    ++evicted;
  }
  if (evicted > 0) {
    dropped_.fetch_add(evicted, std::memory_order_relaxed);
    static Counter& drop_counter = Registry::global().counter("obs.trace_dropped");
    drop_counter.add(evicted);
  }
}

std::size_t Tracer::span_count() const {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.finished.size();
}

void Tracer::clear() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.finished.clear();
}

std::string Tracer::to_chrome_json() const {
  std::vector<SpanRecord> records = spans();
  std::sort(records.begin(), records.end(),
            [](const SpanRecord& a, const SpanRecord& b) { return a.start_us < b.start_us; });
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& record : records) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":";
    detail::append_json_string(out, record.name);
    out += ",\"cat\":";
    detail::append_json_string(out, record.category.empty() ? "heimdall" : record.category);
    out += ",\"ph\":\"X\",\"ts\":" + std::to_string(record.start_us);
    out += ",\"dur\":" + std::to_string(record.duration_us);
    out += ",\"pid\":1,\"tid\":" + std::to_string(record.tid);
    out += ",\"args\":{";
    bool first_arg = true;
    for (const auto& [key, value] : record.args) {
      if (!first_arg) out.push_back(',');
      first_arg = false;
      detail::append_json_string(out, key);
      out.push_back(':');
      detail::append_json_string(out, value);
    }
    out += "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

Tracer& tracer() {
  static Tracer the_tracer;
  return the_tracer;
}

ScopedSpan::ScopedSpan(std::string name, std::string category, SpanArgs args)
    : ScopedSpan(tracer(), std::move(name), std::move(category), std::move(args)) {}

ScopedSpan::ScopedSpan(Tracer& tracer, std::string name, std::string category, SpanArgs args)
    : tracer_(tracer), id_(tracer.begin(std::move(name), std::move(category), std::move(args))) {}

ScopedSpan::~ScopedSpan() { tracer_.end(id_); }

void ScopedSpan::arg(std::string key, std::string value) {
  tracer_.arg(id_, std::move(key), std::move(value));
}

ScopedContext::ScopedContext(std::string key, std::string value) {
  t_context.emplace_back(std::move(key), std::move(value));
}

ScopedContext::~ScopedContext() { t_context.pop_back(); }

ScopedContextFrame::ScopedContextFrame(SpanArgs context) : added_(context.size()) {
  for (auto& [key, value] : context) t_context.emplace_back(std::move(key), std::move(value));
}

ScopedContextFrame::~ScopedContextFrame() {
  t_context.resize(t_context.size() - added_);
}

const SpanArgs& current_context() { return t_context; }

}  // namespace heimdall::obs
