#include "obs/rolling.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/journal.hpp"

namespace heimdall::obs {

namespace {

void append_double(std::string& out, double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.6g", value);
  out += buffer;
}

}  // namespace

RollingHistogram::RollingHistogram(std::vector<double> bounds, std::uint64_t window_us,
                                   std::size_t slices) {
  Histogram normalizer(std::move(bounds));  // reuse sort/unique/default rules
  bounds_ = normalizer.bounds();
  slices = std::max<std::size_t>(slices, 2);
  slice_us_ = std::max<std::uint64_t>(1, window_us / slices);
  slices_.resize(slices);
  for (Slice& slice : slices_) slice.counts.assign(bounds_.size() + 1, 0);
}

std::uint64_t RollingHistogram::now_us_locked() const {
  return time_ ? time_() : steady_now_us();
}

RollingHistogram::Slice& RollingHistogram::slice_for_locked(std::uint64_t slot) {
  Slice& slice = slices_[slot % slices_.size()];
  if (slice.slot != slot) {
    // The ring moved past this slice's old window: recycle it.
    slice.slot = slot;
    std::fill(slice.counts.begin(), slice.counts.end(), 0);
    slice.count = 0;
    slice.sum = 0;
  }
  return slice;
}

void RollingHistogram::observe(double value) {
  std::size_t bucket =
      static_cast<std::size_t>(std::lower_bound(bounds_.begin(), bounds_.end(), value) -
                               bounds_.begin());
  std::lock_guard<std::mutex> lock(mutex_);
  Slice& slice = slice_for_locked(now_us_locked() / slice_us_);
  slice.counts[bucket] += 1;
  slice.count += 1;
  slice.sum += value;
}

HistogramSnapshot RollingHistogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t now_slot = now_us_locked() / slice_us_;
  std::uint64_t oldest = now_slot >= slices_.size() - 1 ? now_slot - (slices_.size() - 1) : 0;
  HistogramSnapshot merged;
  merged.bounds = bounds_;
  merged.counts.assign(bounds_.size() + 1, 0);
  for (const Slice& slice : slices_) {
    if (slice.count == 0 || slice.slot < oldest || slice.slot > now_slot) continue;
    for (std::size_t i = 0; i < slice.counts.size(); ++i) merged.counts[i] += slice.counts[i];
    merged.count += slice.count;
    merged.sum += slice.sum;
  }
  return merged;
}

void RollingHistogram::set_time_source(TimeSource source) {
  std::lock_guard<std::mutex> lock(mutex_);
  time_ = std::move(source);
}

void RollingHistogram::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Slice& slice : slices_) {
    slice.slot = 0;
    std::fill(slice.counts.begin(), slice.counts.end(), 0);
    slice.count = 0;
    slice.sum = 0;
  }
}

RollingRegistry& RollingRegistry::global() {
  static RollingRegistry the_registry;
  return the_registry;
}

RollingHistogram& RollingRegistry::histogram(const std::string& name, std::vector<double> bounds,
                                             std::uint64_t window_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    auto fresh = std::make_unique<RollingHistogram>(std::move(bounds), window_us);
    if (time_) fresh->set_time_source(time_);
    it = histograms_.emplace(name, std::move(fresh)).first;
  }
  return *it->second;
}

void RollingRegistry::set_time_source(TimeSource source) {
  std::lock_guard<std::mutex> lock(mutex_);
  time_ = source;
  for (auto& [name, histogram] : histograms_) histogram->set_time_source(time_);
}

std::string RollingRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{";
  bool first = true;
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot snap = histogram->snapshot();
    if (!first) out.push_back(',');
    first = false;
    detail::append_json_string(out, name);
    out += ":{\"window_us\":" + std::to_string(histogram->window_us());
    out += ",\"count\":" + std::to_string(snap.count);
    out += ",\"mean\":";
    append_double(out, snap.mean());
    out += ",\"p50\":";
    append_double(out, snap.p50());
    out += ",\"p95\":";
    append_double(out, snap.p95());
    out += ",\"p99\":";
    append_double(out, snap.p99());
    out.push_back('}');
  }
  out.push_back('}');
  return out;
}

void RollingRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

SloTracker& SloTracker::global() {
  static SloTracker the_tracker;
  return the_tracker;
}

void SloTracker::define(const std::string& name, double threshold) {
  std::lock_guard<std::mutex> lock(mutex_);
  SloStatus& status = objectives_[name];
  status.name = name;
  status.threshold = threshold;
}

bool SloTracker::observe(const std::string& name, double value) {
  bool breached = false;
  double threshold = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = objectives_.find(name);
    if (it == objectives_.end()) return false;
    SloStatus& status = it->second;
    status.last = value;
    status.samples += 1;
    if (value > status.threshold) {
      status.breaches += 1;
      breached = true;
      threshold = status.threshold;
    }
  }
  if (breached) {
    static Counter& breach_counter = Registry::global().counter("slo.breaches");
    breach_counter.add();
    char detail[96];
    std::snprintf(detail, sizeof detail, "%.3g > threshold %.3g", value, threshold);
    EventJournal::global().append_in_context(EventType::SloBreach, name, detail,
                                             static_cast<std::uint64_t>(value));
  }
  return breached;
}

std::vector<SloStatus> SloTracker::status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SloStatus> out;
  out.reserve(objectives_.size());
  for (const auto& [name, status] : objectives_) out.push_back(status);
  return out;
}

std::uint64_t SloTracker::total_breaches() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [name, status] : objectives_) total += status.breaches;
  return total;
}

std::string SloTracker::to_json() const {
  std::vector<SloStatus> all = status();
  std::string out = "[";
  bool first = true;
  for (const SloStatus& status : all) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":";
    detail::append_json_string(out, status.name);
    out += ",\"threshold\":";
    append_double(out, status.threshold);
    out += ",\"last\":";
    append_double(out, status.last);
    out += ",\"samples\":" + std::to_string(status.samples);
    out += ",\"breaches\":" + std::to_string(status.breaches);
    out += ",\"healthy\":";
    out += status.healthy() ? "true" : "false";
    out.push_back('}');
  }
  out.push_back(']');
  return out;
}

void SloTracker::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  objectives_.clear();
}

}  // namespace heimdall::obs
