#include "obs/telemetry.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/flight.hpp"
#include "obs/journal.hpp"

namespace heimdall::obs {

namespace {

bool write_file(const std::string& path, const std::string& content, const char* what) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (!file) {
    OBS_LOG(Error) << "cannot open " << what << " output file '" << path << "'";
    return false;
  }
  std::size_t written = std::fwrite(content.data(), 1, content.size(), file);
  bool ok = written == content.size() && std::fclose(file) == 0;
  if (!ok) OBS_LOG(Error) << "short write to " << what << " output file '" << path << "'";
  return ok;
}

std::string prom_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
              c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

void append_prom_double(std::string& out, double value) {
  if (std::isinf(value)) {
    out += value > 0 ? "+Inf" : "-Inf";
    return;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  out += buffer;
}

}  // namespace

Tracer& enable_tracing() {
  Tracer& t = tracer();
  t.set_enabled(true);
  return t;
}

bool write_trace_file(const Tracer& tracer, const std::string& path) {
  return write_file(path, tracer.to_chrome_json(), "trace");
}

bool write_metrics_file(const Registry& registry, const std::string& path, bool as_json) {
  return write_file(path, as_json ? registry.to_json() : registry.to_text(), "metrics");
}

bool write_string_file(const std::string& path, const std::string& content, const char* what) {
  return write_file(path, content, what);
}

std::string export_prometheus(const Registry& registry) {
  MetricsSnapshot snap = registry.snapshot();
  std::string out;
  out.reserve(4096);
  for (const auto& [name, value] : snap.counters) {
    std::string metric = prom_name(name);
    out += "# TYPE " + metric + " counter\n";
    out += metric + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    std::string metric = prom_name(name);
    out += "# TYPE " + metric + " gauge\n";
    out += metric + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, hist] : snap.histograms) {
    std::string metric = prom_name(name);
    out += "# TYPE " + metric + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < hist.bounds.size(); ++i) {
      cumulative += i < hist.counts.size() ? hist.counts[i] : 0;
      out += metric + "_bucket{le=\"";
      append_prom_double(out, hist.bounds[i]);
      out += "\"} " + std::to_string(cumulative) + "\n";
    }
    out += metric + "_bucket{le=\"+Inf\"} " + std::to_string(hist.count) + "\n";
    out += metric + "_sum ";
    append_prom_double(out, hist.sum);
    out += "\n";
    out += metric + "_count " + std::to_string(hist.count) + "\n";
  }
  return out;
}

bool TelemetryFlags::consume(int argc, char** argv, int& i) {
  auto take_value = [&](std::string& slot) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      std::exit(2);
    }
    slot = argv[++i];
  };
  const char* flag = argv[i];
  if (std::strcmp(flag, "--trace-out") == 0) {
    take_value(trace_out);
  } else if (std::strcmp(flag, "--metrics-out") == 0) {
    take_value(metrics_out);
  } else if (std::strcmp(flag, "--prom-out") == 0) {
    take_value(prom_out);
  } else if (std::strcmp(flag, "--journal-out") == 0) {
    take_value(journal_out);
  } else if (std::strcmp(flag, "--flight-dir") == 0) {
    take_value(flight_dir);
  } else if (std::strcmp(flag, "--statusz-out") == 0) {
    take_value(statusz_out);
  } else if (std::strcmp(flag, "--audit-out") == 0) {
    take_value(audit_out);
  } else if (std::strcmp(flag, "--statusz-period-ms") == 0) {
    std::string value;
    take_value(value);
    statusz_period_ms = std::strtoull(value.c_str(), nullptr, 10);
    if (statusz_period_ms == 0) statusz_period_ms = 200;
  } else {
    return false;
  }
  return true;
}

const char* TelemetryFlags::usage() {
  return "  --trace-out FILE          write Chrome trace JSON\n"
         "  --metrics-out FILE        write metrics registry JSON\n"
         "  --prom-out FILE           write Prometheus text exposition\n"
         "  --journal-out FILE        write structured event journal JSON\n"
         "  --flight-dir DIR          write flight-recorder dumps on anomalies\n"
         "  --statusz-out FILE        periodically write service statusz JSON\n"
         "  --statusz-period-ms N     statusz refresh period (default 200)\n"
         "  --audit-out FILE          write the sealed audit log JSON\n";
}

void TelemetryFlags::apply() const {
  if (!trace_out.empty()) enable_tracing();
  if (!journal_out.empty() || !statusz_out.empty() || !flight_dir.empty()) {
    EventJournal::global().set_enabled(true);
  }
  if (!flight_dir.empty()) {
    FlightRecorder::Options options;
    options.output_dir = flight_dir;
    FlightRecorder::global().configure(std::move(options));
  }
}

bool TelemetryFlags::write_outputs() const {
  bool ok = true;
  if (!trace_out.empty()) ok &= write_trace_file(tracer(), trace_out);
  if (!metrics_out.empty()) ok &= write_metrics_file(Registry::global(), metrics_out);
  if (!prom_out.empty()) {
    ok &= write_file(prom_out, export_prometheus(Registry::global()), "prometheus");
  }
  if (!journal_out.empty()) {
    ok &= write_file(journal_out, EventJournal::global().to_json(), "journal");
  }
  return ok;
}

}  // namespace heimdall::obs
