#include "obs/telemetry.hpp"

#include <cstdio>

namespace heimdall::obs {

namespace {

bool write_file(const std::string& path, const std::string& content, const char* what) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (!file) {
    OBS_LOG(Error) << "cannot open " << what << " output file '" << path << "'";
    return false;
  }
  std::size_t written = std::fwrite(content.data(), 1, content.size(), file);
  bool ok = written == content.size() && std::fclose(file) == 0;
  if (!ok) OBS_LOG(Error) << "short write to " << what << " output file '" << path << "'";
  return ok;
}

}  // namespace

Tracer& enable_tracing() {
  Tracer& t = tracer();
  t.set_enabled(true);
  return t;
}

bool write_trace_file(const Tracer& tracer, const std::string& path) {
  return write_file(path, tracer.to_chrome_json(), "trace");
}

bool write_metrics_file(const Registry& registry, const std::string& path, bool as_json) {
  return write_file(path, as_json ? registry.to_json() : registry.to_text(), "metrics");
}

}  // namespace heimdall::obs
