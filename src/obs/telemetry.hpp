// Telemetry facade: one-call setup and file export for the global tracer
// and metrics registry — what examples and benches use to implement their
// --trace-out / --metrics-out flags.
#pragma once

#include <string>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace heimdall::obs {

/// Enables span collection on the global tracer and returns it.
Tracer& enable_tracing();

/// Writes the tracer's Chrome trace_event JSON to `path` (loadable in
/// chrome://tracing and Perfetto). Returns false (and logs an Error) when
/// the file cannot be written.
bool write_trace_file(const Tracer& tracer, const std::string& path);

/// Writes a registry snapshot to `path`; JSON by default, plain text when
/// `as_json` is false.
bool write_metrics_file(const Registry& registry, const std::string& path, bool as_json = true);

}  // namespace heimdall::obs
