// Telemetry facade: one-call setup and file export for the global tracer,
// metrics registry and event journal — what examples, tools and benches use
// to implement their --trace-out / --metrics-out / --journal-out flags.
//
// TelemetryFlags centralises the flag surface so every binary spells the
// flags the same way: call consume() from the argv loop, apply() once flags
// are parsed (enables the tracer / journal / flight recorder as requested),
// and write_outputs() on the way out. Flags whose payload the obs layer
// cannot produce itself (--statusz-out, --audit-out) are still parsed here
// so usage() stays complete; the binary reads the stored paths.
#pragma once

#include <cstdint>
#include <string>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace heimdall::obs {

/// Enables span collection on the global tracer and returns it.
Tracer& enable_tracing();

/// Writes the tracer's Chrome trace_event JSON to `path` (loadable in
/// chrome://tracing and Perfetto). Returns false (and logs an Error) when
/// the file cannot be written.
bool write_trace_file(const Tracer& tracer, const std::string& path);

/// Writes a registry snapshot to `path`; JSON by default, plain text when
/// `as_json` is false.
bool write_metrics_file(const Registry& registry, const std::string& path, bool as_json = true);

/// Writes `content` to `path`, logging an Error on failure. `what` names the
/// payload in the error message ("statusz", "flight dump", ...).
bool write_string_file(const std::string& path, const std::string& content, const char* what);

/// Prometheus text exposition (version 0.0.4) of a registry snapshot.
/// Metric names are sanitised ('.' and '-' become '_'); histograms export
/// cumulative _bucket{le=...} series plus _sum and _count.
std::string export_prometheus(const Registry& registry);

/// The shared observability flag set.
struct TelemetryFlags {
  std::string trace_out;       ///< --trace-out: Chrome trace JSON
  std::string metrics_out;     ///< --metrics-out: registry JSON
  std::string prom_out;        ///< --prom-out: Prometheus text format
  std::string journal_out;     ///< --journal-out: event journal JSON
  std::string flight_dir;      ///< --flight-dir: flight-recorder dump dir
  std::string statusz_out;     ///< --statusz-out: periodic service statusz
  std::string audit_out;       ///< --audit-out: sealed audit log JSON
  std::uint64_t statusz_period_ms = 200;  ///< --statusz-period-ms

  /// Tries to consume argv[i] (and its value). Returns true when the flag
  /// was recognised, advancing `i` past the value. Exits with status 2 when
  /// a recognised flag is missing its value.
  bool consume(int argc, char** argv, int& i);

  /// One usage line per flag, for --help text.
  static const char* usage();

  /// Enables the subsystems the requested outputs need: the tracer when a
  /// trace file is wanted, the journal when a journal / statusz / flight
  /// output is wanted, and the flight recorder when a dump dir is set.
  void apply() const;

  /// Writes trace / metrics / prometheus / journal files (the outputs the
  /// obs layer can produce alone). Returns false if any write failed.
  bool write_outputs() const;
};

}  // namespace heimdall::obs
