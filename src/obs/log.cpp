#include "obs/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>

namespace heimdall::obs {

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "trace";
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}

namespace {

/// Basename of a __FILE__ path, so records stay readable across build dirs.
const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

void default_sink(const LogRecord& record) {
  std::fprintf(stderr, "[%s] %s:%d %s\n", to_string(record.level), basename_of(record.file),
               record.line, record.message.c_str());
}

}  // namespace

struct Logger::Impl {
  std::atomic<std::uint8_t> level{static_cast<std::uint8_t>(LogLevel::Warn)};
  std::mutex mutex;
  LogSink sink;          // empty -> default_sink
  TimeSource time;       // empty -> steady_now_us
};

Logger::Impl& Logger::impl() {
  static Impl the_impl;
  return the_impl;
}

Logger& Logger::instance() {
  static Logger the_logger;
  return the_logger;
}

LogLevel Logger::level() const {
  return static_cast<LogLevel>(
      const_cast<Logger*>(this)->impl().level.load(std::memory_order_relaxed));
}

void Logger::set_level(LogLevel level) {
  impl().level.store(static_cast<std::uint8_t>(level), std::memory_order_relaxed);
}

void Logger::set_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(impl().mutex);
  impl().sink = std::move(sink);
}

void Logger::set_time_source(TimeSource source) {
  std::lock_guard<std::mutex> lock(impl().mutex);
  impl().time = std::move(source);
}

void Logger::submit(LogLevel level, const char* file, int line, std::string message) {
  if (!enabled(level)) return;
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  LogRecord record;
  record.level = level;
  record.file = file;
  record.line = line;
  record.timestamp_us = state.time ? state.time() : steady_now_us();
  record.message = std::move(message);
  if (state.sink)
    state.sink(record);
  else
    default_sink(record);
}

}  // namespace heimdall::obs
