// Metrics registry: named counters, gauges and fixed-bucket latency
// histograms with percentile snapshots and JSON / plain-text export.
//
// Counters and gauges are single relaxed atomics. Histograms are
// lock-sharded: observe() takes one of kShards mutexes chosen by thread
// identity, so the thread-pool trace path never serializes on a single
// histogram lock; snapshot() merges the shards.
//
// Registry::global() is the process-wide registry instrumentation sites
// update; metric references returned by the registry are stable for the
// registry's lifetime, so hot paths can look a metric up once and keep the
// reference.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace heimdall::obs {

class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void add(std::int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Merged view of a histogram at one instant.
struct HistogramSnapshot {
  std::vector<double> bounds;         ///< bucket upper bounds, ascending
  std::vector<std::uint64_t> counts;  ///< bounds.size()+1 (last = overflow)
  std::uint64_t count = 0;
  double sum = 0;

  /// Percentile estimate by linear interpolation inside the hit bucket
  /// (overflow bucket reports the largest finite bound). p in [0, 100].
  double percentile(double p) const;
  double p50() const { return percentile(50); }
  double p95() const { return percentile(95); }
  double p99() const { return percentile(99); }
  double mean() const { return count ? sum / static_cast<double>(count) : 0; }
};

/// Exponential-ish default bounds for millisecond latencies.
std::vector<double> default_latency_buckets_ms();

class Histogram {
 public:
  /// `bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);
  HistogramSnapshot snapshot() const;
  void reset();

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  static constexpr std::size_t kShards = 8;
  struct Shard {
    mutable std::mutex mutex;
    std::vector<std::uint64_t> counts;
    std::uint64_t count = 0;
    double sum = 0;
  };

  Shard& shard_for_thread();

  std::vector<double> bounds_;
  std::array<Shard, kShards> shards_;
};

/// Everything the registry holds, frozen at one instant.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& global();

  /// Finds or creates. References stay valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` is used only on first creation of `name`.
  Histogram& histogram(const std::string& name, std::vector<double> bounds = {});

  MetricsSnapshot snapshot() const;

  /// JSON document: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string to_json() const;

  /// One metric per line, for terminal dumps.
  std::string to_text() const;

  /// Zeroes every metric (references stay valid). Test isolation hook.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace heimdall::obs
