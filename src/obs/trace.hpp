// Span-based tracing with Chrome trace_event export.
//
// Instrumented code opens RAII spans against the process-global tracer:
//
//   obs::ScopedSpan span("engine.analyze", "analysis");
//   span.arg("cache", "hit");
//
// Parent/child nesting comes from a thread-local span stack, so spans opened
// on thread-pool workers appear on their own tracks and spans opened while
// another span is live become its children. A thread-local key/value context
// (ScopedContext) is stamped onto every span begun while it is alive — the
// enforcer's spans carry the workflow's ticket ID that way, making traces
// cross-correlatable with the audit trail.
//
// The tracer is disabled by default; every instrumentation site then costs a
// single relaxed atomic load. Finished spans live in a bounded ring
// (set_capacity) — a week-long service run retains the most recent window
// and counts evictions in obs.trace_dropped instead of growing without
// bound. to_chrome_json() emits complete ("ph":"X") events over that
// retained window, loadable in chrome://tracing and https://ui.perfetto.dev.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/common.hpp"

namespace heimdall::obs {

using SpanId = std::uint64_t;
using SpanArgs = std::vector<std::pair<std::string, std::string>>;

/// One finished span.
struct SpanRecord {
  SpanId id = 0;
  SpanId parent = 0;  ///< 0 = root span on its thread
  std::string name;
  std::string category;
  std::uint64_t start_us = 0;
  std::uint64_t duration_us = 0;
  std::uint32_t tid = 0;  ///< normalized small thread index (0 = first seen)
  SpanArgs args;
};

class Tracer {
 public:
  Tracer() = default;
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  /// Replaces the timestamp source ({} restores steady_now_us).
  void set_time_source(TimeSource source);

  /// Opens a span (parent = innermost open span on this thread). Returns 0
  /// when tracing is disabled; end()/arg() ignore id 0.
  SpanId begin(std::string name, std::string category, SpanArgs args = {});

  /// Attaches an argument to a still-open span.
  void arg(SpanId id, std::string key, std::string value);

  /// Closes a span and records it.
  void end(SpanId id);

  /// Zero-duration instant event (e.g. "audit.append").
  void instant(std::string name, std::string category, SpanArgs args = {});

  /// Finished spans retained in the ring, in completion order.
  std::vector<SpanRecord> spans() const;

  /// Spans begun but not yet ended (duration 0), flight-recorder fodder.
  std::vector<SpanRecord> open_spans() const;

  std::size_t span_count() const;

  /// Ring capacity for finished spans (clamped >= 1). Shrinking drops the
  /// oldest retained spans; every eviction counts into obs.trace_dropped.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const { return capacity_.load(std::memory_order_relaxed); }

  /// Finished spans evicted from the ring so far.
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Drops finished spans (open spans and thread bookkeeping are kept).
  void clear();

  /// Chrome trace_event JSON: {"traceEvents":[...],"displayTimeUnit":"ms"}.
  std::string to_chrome_json() const;

 private:
  struct State;
  State& state() const;

  std::uint32_t thread_index_locked(State& state) const;
  void push_finished_locked(State& state, SpanRecord record);

  static constexpr std::size_t kDefaultCapacity = 262144;

  std::atomic<bool> enabled_{false};
  std::atomic<std::size_t> capacity_{kDefaultCapacity};
  std::atomic<std::uint64_t> dropped_{0};
  mutable std::atomic<State*> state_{nullptr};
};

/// The process-global tracer instrumentation sites bind to.
Tracer& tracer();

/// RAII span on the global tracer (or an explicit one). No-op while the
/// tracer is disabled.
class ScopedSpan {
 public:
  ScopedSpan(std::string name, std::string category, SpanArgs args = {});
  ScopedSpan(Tracer& tracer, std::string name, std::string category, SpanArgs args = {});
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches an argument discovered mid-span.
  void arg(std::string key, std::string value);

 private:
  Tracer& tracer_;
  SpanId id_ = 0;
};

/// Thread-local key/value attached to every span begun while alive. Nests;
/// inner duplicates shadow outer keys at export time (both are recorded).
class ScopedContext {
 public:
  ScopedContext(std::string key, std::string value);
  ~ScopedContext();

  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;
};

/// Reinstalls a captured context stack on the current thread (RAII). The
/// enforcement worker captures current_context() at submit time and replays
/// it here while processing that submission, so spans recorded on the worker
/// thread carry the submitting session's keys (ticket, session id) and stay
/// correlatable with the session's own spans and audit records.
class ScopedContextFrame {
 public:
  explicit ScopedContextFrame(SpanArgs context);
  ~ScopedContextFrame();

  ScopedContextFrame(const ScopedContextFrame&) = delete;
  ScopedContextFrame& operator=(const ScopedContextFrame&) = delete;

 private:
  std::size_t added_ = 0;
};

/// The current thread's context stack (outermost first).
const SpanArgs& current_context();

}  // namespace heimdall::obs
