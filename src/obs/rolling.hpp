// Rolling-window telemetry + SLO tracking on top of the cumulative registry.
//
// The cumulative Registry answers "what happened since the process started";
// a live service also needs "what is happening *now*". RollingHistogram
// keeps a ring of time slices and forgets slices older than the window, so
// its snapshot is a time-decayed view (p99 over the last minute, not the
// last week). RollingRegistry is the named, process-global layer the service
// reports into; SloTracker turns selected observations into explicit
// service-level objectives with breach counters and a health verdict.
//
// An SLO breach is an *event*: the tracker journals it (with the breaching
// ticket's context) and bumps a breach counter, so statusz and the flight
// recorder can show not just "p99 is high" but which tickets blew the
// objective and when.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/common.hpp"
#include "obs/metrics.hpp"

namespace heimdall::obs {

class RollingHistogram {
 public:
  /// `bounds` as in Histogram (empty -> default latency buckets). The window
  /// is `slices` ring slots of `window_us / slices` each; an observation
  /// lands in the current slot and expires once the window moves past it.
  explicit RollingHistogram(std::vector<double> bounds = {},
                            std::uint64_t window_us = kDefaultWindowUs, std::size_t slices = 6);

  void observe(double value);

  /// Merged view of the slices still inside the window.
  HistogramSnapshot snapshot() const;

  std::uint64_t window_us() const { return slice_us_ * slices_.size(); }
  const std::vector<double>& bounds() const { return bounds_; }

  void set_time_source(TimeSource source);
  void reset();

  static constexpr std::uint64_t kDefaultWindowUs = 60ull * 1000 * 1000;

 private:
  struct Slice {
    std::uint64_t slot = 0;  ///< absolute slot index this slice holds
    std::vector<std::uint64_t> counts;
    std::uint64_t count = 0;
    double sum = 0;
  };

  std::uint64_t now_us_locked() const;
  Slice& slice_for_locked(std::uint64_t slot);

  mutable std::mutex mutex_;
  std::vector<double> bounds_;
  std::uint64_t slice_us_;
  mutable std::vector<Slice> slices_;
  TimeSource time_;  ///< guarded by mutex_; empty -> steady_now_us
};

/// Named rolling histograms, mirroring Registry's find-or-create contract.
class RollingRegistry {
 public:
  RollingRegistry() = default;
  RollingRegistry(const RollingRegistry&) = delete;
  RollingRegistry& operator=(const RollingRegistry&) = delete;

  static RollingRegistry& global();

  /// Finds or creates; `bounds`/`window_us` are used only on first creation.
  /// References stay valid for the registry's lifetime.
  RollingHistogram& histogram(const std::string& name, std::vector<double> bounds = {},
                              std::uint64_t window_us = RollingHistogram::kDefaultWindowUs);

  /// Applied to every existing and future histogram (deterministic tests).
  void set_time_source(TimeSource source);

  /// {"name":{"window_us":N,"count":N,"p50":..,"p95":..,"p99":..,"mean":..}}
  std::string to_json() const;

  void reset();

 private:
  mutable std::mutex mutex_;
  TimeSource time_;
  std::map<std::string, std::unique_ptr<RollingHistogram>> histograms_;
};

/// One objective's live health.
struct SloStatus {
  std::string name;
  double threshold = 0;  ///< breach when an observation exceeds this
  double last = 0;       ///< most recent observation
  std::uint64_t samples = 0;
  std::uint64_t breaches = 0;
  bool healthy() const { return breaches == 0; }
};

class SloTracker {
 public:
  SloTracker() = default;
  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  static SloTracker& global();

  /// Registers (or re-thresholds) an objective. Counters are kept.
  void define(const std::string& name, double threshold);

  /// Records one observation; returns true on breach. A breach bumps the
  /// "slo.breaches" registry counter and journals an SloBreach event under
  /// the calling thread's context. Unknown names are ignored (returns
  /// false) so instrumentation sites don't need to know which objectives
  /// the operator configured.
  bool observe(const std::string& name, double value);

  std::vector<SloStatus> status() const;
  std::uint64_t total_breaches() const;

  /// [{"name":..,"threshold":..,"last":..,"samples":N,"breaches":N,"healthy":b}]
  std::string to_json() const;

  /// Drops every objective and its counters. Test isolation hook.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, SloStatus> objectives_;
};

}  // namespace heimdall::obs
