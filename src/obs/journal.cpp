#include "obs/journal.hpp"

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace heimdall::obs {

std::string_view to_string(EventType type) {
  switch (type) {
    case EventType::SessionOpen: return "session_open";
    case EventType::SessionSubmit: return "session_submit";
    case EventType::SessionClose: return "session_close";
    case EventType::QueueEnqueue: return "queue_enqueue";
    case EventType::QueueDequeue: return "queue_dequeue";
    case EventType::WaveCoalesce: return "wave_coalesce";
    case EventType::WaveSplit: return "wave_split";
    case EventType::VerifyVerdict: return "verify_verdict";
    case EventType::Quarantine: return "quarantine";
    case EventType::ReplayFailure: return "replay_failure";
    case EventType::AuditFlush: return "audit_flush";
    case EventType::AuditSeal: return "audit_seal";
    case EventType::TamperAlert: return "tamper_alert";
    case EventType::SloBreach: return "slo_breach";
    case EventType::FlightDump: return "flight_dump";
  }
  return "unknown";
}

namespace detail {

void append_event_json(std::string& out, const EventRecord& record) {
  out += "{\"seq\":" + std::to_string(record.seq);
  out += ",\"t_us\":" + std::to_string(record.t_us);
  out += ",\"type\":";
  append_json_string(out, to_string(record.type));
  out += ",\"ticket\":" + std::to_string(record.ticket);
  out += ",\"session\":" + std::to_string(record.session);
  out += ",\"actor\":";
  append_json_string(out, record.actor);
  out += ",\"detail\":";
  append_json_string(out, record.detail);
  out += ",\"value_us\":" + std::to_string(record.value_us);
  out.push_back('}');
}

}  // namespace detail

EventJournal::EventJournal(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, kShards)) {
  shards_.reserve(kShards);
  for (std::size_t i = 0; i < kShards; ++i) shards_.push_back(std::make_unique<Shard>());
}

std::size_t EventJournal::per_shard_capacity() const {
  return std::max<std::size_t>(1, capacity_.load(std::memory_order_relaxed) / kShards);
}

void EventJournal::set_capacity(std::size_t capacity) {
  capacity_.store(std::max<std::size_t>(capacity, kShards), std::memory_order_relaxed);
  std::size_t per_shard = per_shard_capacity();
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    if (shard->ring.size() <= per_shard) continue;
    // Keep the newest events: rotate the ring into stamp order, then trim
    // the front (oldest) down to the new budget.
    std::rotate(shard->ring.begin(), shard->ring.begin() + static_cast<std::ptrdiff_t>(shard->next),
                shard->ring.end());
    std::size_t excess = shard->ring.size() - per_shard;
    shard->ring.erase(shard->ring.begin(), shard->ring.begin() + static_cast<std::ptrdiff_t>(excess));
    shard->next = 0;
    dropped_.fetch_add(excess, std::memory_order_relaxed);
  }
}

void EventJournal::set_time_source(TimeSource source) {
  std::lock_guard<std::mutex> lock(time_mutex_);
  time_ = std::move(source);
}

EventJournal::Shard& EventJournal::shard_for_thread() {
  std::size_t index = std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
  return *shards_[index];
}

void EventJournal::append(EventType type, std::int64_t ticket, std::uint64_t session,
                          std::string actor, std::string detail, std::uint64_t value_us) {
  if (!enabled()) return;
  EventRecord record;
  record.seq = next_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  {
    std::lock_guard<std::mutex> lock(time_mutex_);
    record.t_us = time_ ? time_() : steady_now_us();
  }
  record.type = type;
  record.ticket = ticket;
  record.session = session;
  record.actor = std::move(actor);
  record.detail = std::move(detail);
  record.value_us = value_us;
  appended_.fetch_add(1, std::memory_order_relaxed);

  std::size_t per_shard = per_shard_capacity();
  Shard& shard = shard_for_thread();
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.ring.size() < per_shard) {
    shard.ring.push_back(std::move(record));
    return;
  }
  // Ring full: overwrite the oldest slot. The registry counter reference is
  // looked up once — the drop path stays two relaxed adds + the assignment.
  static Counter& drop_counter = Registry::global().counter("obs.journal_dropped");
  drop_counter.add();
  dropped_.fetch_add(1, std::memory_order_relaxed);
  if (shard.next >= shard.ring.size()) shard.next = 0;
  shard.ring[shard.next] = std::move(record);
  shard.next = (shard.next + 1) % shard.ring.size();
}

void EventJournal::append_in_context(EventType type, std::string actor, std::string detail,
                                     std::uint64_t value_us) {
  if (!enabled()) return;
  std::int64_t ticket = 0;
  std::uint64_t session = 0;
  for (const auto& [key, value] : current_context()) {
    // Inner frames shadow outer ones, so the last match wins.
    if (key == "ticket")
      ticket = std::strtoll(value.c_str(), nullptr, 10);
    else if (key == "session")
      session = std::strtoull(value.c_str(), nullptr, 10);
  }
  append(type, ticket, session, std::move(actor), std::move(detail), value_us);
}

std::vector<EventRecord> EventJournal::snapshot() const {
  std::vector<EventRecord> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    out.insert(out.end(), shard->ring.begin(), shard->ring.end());
  }
  std::sort(out.begin(), out.end(),
            [](const EventRecord& a, const EventRecord& b) { return a.seq < b.seq; });
  return out;
}

std::vector<EventRecord> EventJournal::for_ticket(std::int64_t ticket) const {
  std::vector<EventRecord> all = snapshot();
  std::vector<EventRecord> out;
  for (EventRecord& record : all)
    if (record.ticket == ticket) out.push_back(std::move(record));
  return out;
}

std::vector<EventRecord> EventJournal::tail(std::size_t count) const {
  std::vector<EventRecord> all = snapshot();
  if (all.size() > count) all.erase(all.begin(), all.end() - static_cast<std::ptrdiff_t>(count));
  return all;
}

std::size_t EventJournal::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->ring.size();
  }
  return total;
}

void EventJournal::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->ring.clear();
    shard->next = 0;
  }
}

std::string EventJournal::to_json() const {
  std::vector<EventRecord> events = snapshot();
  std::string out = "{\"events\":[";
  bool first = true;
  for (const EventRecord& record : events) {
    if (!first) out.push_back(',');
    first = false;
    detail::append_event_json(out, record);
  }
  out += "],\"appended\":" + std::to_string(appended());
  out += ",\"dropped\":" + std::to_string(dropped());
  out.push_back('}');
  return out;
}

EventJournal& EventJournal::global() {
  static EventJournal the_journal;
  return the_journal;
}

}  // namespace heimdall::obs
