#include "obs/flight.hpp"

#include <cstdio>
#include <filesystem>

#include "obs/journal.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/rolling.hpp"
#include "obs/trace.hpp"

namespace heimdall::obs {

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder the_recorder;
  return the_recorder;
}

void FlightRecorder::configure(Options options) {
  if (!options.output_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.output_dir, ec);
    if (ec) {
      OBS_LOG(Error) << "flight recorder cannot create output dir '" << options.output_dir
                     << "': " << ec.message();
    }
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    options_ = std::move(options);
  }
  set_enabled(true);
}

std::string FlightRecorder::trigger(std::string_view reason, std::int64_t ticket) {
  if (!enabled()) return {};
  Options options;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    options = options_;
  }
  std::uint64_t index = dumps_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (index > options.max_dumps) {
    dumps_.fetch_sub(1, std::memory_order_relaxed);
    suppressed_.fetch_add(1, std::memory_order_relaxed);
    return {};
  }

  EventJournal& journal = EventJournal::global();
  std::string out = "{\"reason\":";
  detail::append_json_string(out, reason);
  out += ",\"ticket\":" + std::to_string(ticket);
  out += ",\"t_us\":" + std::to_string(steady_now_us());
  out += ",\"dump\":" + std::to_string(index);

  out += ",\"recent_events\":[";
  bool first = true;
  for (const EventRecord& record : journal.tail(options.last_events)) {
    if (!first) out.push_back(',');
    first = false;
    detail::append_event_json(out, record);
  }
  out += "]";

  if (ticket != 0) {
    out += ",\"ticket_events\":[";
    first = true;
    for (const EventRecord& record : journal.for_ticket(ticket)) {
      if (!first) out.push_back(',');
      first = false;
      detail::append_event_json(out, record);
    }
    out += "]";
  }

  out += ",\"open_spans\":[";
  first = true;
  for (const SpanRecord& span : tracer().open_spans()) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":";
    detail::append_json_string(out, span.name);
    out += ",\"cat\":";
    detail::append_json_string(out, span.category);
    out += ",\"start_us\":" + std::to_string(span.start_us);
    out += ",\"tid\":" + std::to_string(span.tid);
    out += ",\"args\":{";
    bool first_arg = true;
    for (const auto& [key, value] : span.args) {
      if (!first_arg) out.push_back(',');
      first_arg = false;
      detail::append_json_string(out, key);
      out.push_back(':');
      detail::append_json_string(out, value);
    }
    out += "}}";
  }
  out += "]";

  // Registry / rolling / SLO exports are already JSON documents.
  out += ",\"metrics\":" + Registry::global().to_json();
  out += ",\"rolling\":" + RollingRegistry::global().to_json();
  out += ",\"slo\":" + SloTracker::global().to_json();
  out.push_back('}');

  journal.append(EventType::FlightDump, ticket, 0, "flight-recorder", std::string(reason), index);

  if (!options.output_dir.empty()) {
    std::string path = options.output_dir + "/flight-" + std::to_string(index) + "-" +
                       std::string(reason) + ".json";
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file) {
      std::fwrite(out.data(), 1, out.size(), file);
      std::fclose(file);
    } else {
      OBS_LOG(Error) << "flight recorder cannot write '" << path << "'";
    }
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    last_dump_ = out;
  }
  return out;
}

std::string FlightRecorder::last_dump() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_dump_;
}

void FlightRecorder::reset() {
  dumps_.store(0, std::memory_order_relaxed);
  suppressed_.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  last_dump_.clear();
}

}  // namespace heimdall::obs
