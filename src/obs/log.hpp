// Leveled structured logging with pluggable sinks.
//
//   OBS_LOG(Warn) << "twin link references unknown device " << id;
//
// The macro evaluates its stream arguments only when the level is enabled,
// so disabled log sites cost one relaxed atomic load. The process-wide
// Logger dispatches complete records to a single sink; the default sink
// writes "[level] file:line message" to stderr for Warn and above —
// replacing the ad-hoc std::cerr diagnostics the library used to have.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

#include "obs/common.hpp"

namespace heimdall::obs {

enum class LogLevel : std::uint8_t { Trace = 0, Debug, Info, Warn, Error, Off };

const char* to_string(LogLevel level);

/// One complete log record handed to the sink.
struct LogRecord {
  LogLevel level = LogLevel::Info;
  const char* file = "";  ///< __FILE__ of the log site
  int line = 0;
  std::uint64_t timestamp_us = 0;
  std::string message;
};

using LogSink = std::function<void(const LogRecord&)>;

/// Process-wide logger. Thread-safe; sinks are invoked under a mutex so a
/// sink never sees interleaved records.
class Logger {
 public:
  static Logger& instance();

  LogLevel level() const;
  void set_level(LogLevel level);
  bool enabled(LogLevel level) const { return level >= this->level(); }

  /// Replaces the sink ({} restores the default stderr sink).
  void set_sink(LogSink sink);

  /// Replaces the timestamp source ({} restores steady_now_us).
  void set_time_source(TimeSource source);

  void submit(LogLevel level, const char* file, int line, std::string message);

 private:
  Logger() = default;
  struct Impl;
  Impl& impl();
};

/// Stream-style builder created by OBS_LOG; submits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { Logger::instance().submit(level_, file_, line_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace heimdall::obs

// `if (!enabled) ; else LogMessage(...)` keeps the stream expression
// unevaluated when the level is filtered, and stays an expression-statement
// safe inside unbraced if/else.
#define OBS_LOG(level_)                                                               \
  if (!::heimdall::obs::Logger::instance().enabled(::heimdall::obs::LogLevel::level_)) \
    ;                                                                                 \
  else                                                                                \
    ::heimdall::obs::LogMessage(::heimdall::obs::LogLevel::level_, __FILE__, __LINE__)
