#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <thread>

#include "obs/common.hpp"

namespace heimdall::obs {

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0;
  p = std::min(std::max(p, 0.0), 100.0);
  double rank = p / 100.0 * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    std::uint64_t in_bucket = counts[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      // Overflow bucket has no finite upper edge; report the largest bound.
      if (i >= bounds.size()) return bounds.empty() ? 0 : bounds.back();
      double lower = i == 0 ? 0 : bounds[i - 1];
      double upper = bounds[i];
      double into = (rank - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
      return lower + (upper - lower) * std::min(std::max(into, 0.0), 1.0);
    }
    cumulative += in_bucket;
  }
  return bounds.empty() ? 0 : bounds.back();
}

std::vector<double> default_latency_buckets_ms() {
  return {0.01, 0.05, 0.1, 0.5, 1, 5, 10, 50, 100, 500, 1000, 5000};
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = default_latency_buckets_ms();
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  for (Shard& shard : shards_) shard.counts.assign(bounds_.size() + 1, 0);
}

Histogram::Shard& Histogram::shard_for_thread() {
  std::size_t index = std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
  return shards_[index];
}

void Histogram::observe(double value) {
  std::size_t bucket =
      static_cast<std::size_t>(std::lower_bound(bounds_.begin(), bounds_.end(), value) -
                               bounds_.begin());
  Shard& shard = shard_for_thread();
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.counts[bucket] += 1;
  shard.count += 1;
  shard.sum += value;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot merged;
  merged.bounds = bounds_;
  merged.counts.assign(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (std::size_t i = 0; i < shard.counts.size(); ++i) merged.counts[i] += shard.counts[i];
    merged.count += shard.count;
    merged.sum += shard.sum;
  }
  return merged;
}

void Histogram::reset() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    std::fill(shard.counts.begin(), shard.counts.end(), 0);
    shard.count = 0;
    shard.sum = 0;
  }
}

Registry& Registry::global() {
  static Registry the_registry;
  return the_registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) it = counters_.emplace(name, std::make_unique<Counter>()).first;
  return *it->second;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& Registry::histogram(const std::string& name, std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(name, std::make_unique<Histogram>(std::move(bounds))).first;
  return *it->second;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  for (const auto& [name, counter] : counters_) out.counters.emplace_back(name, counter->value());
  for (const auto& [name, gauge] : gauges_) out.gauges.emplace_back(name, gauge->value());
  for (const auto& [name, histogram] : histograms_)
    out.histograms.emplace_back(name, histogram->snapshot());
  return out;
}

namespace {

void append_double(std::string& out, double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.6g", value);
  out += buffer;
}

}  // namespace

std::string Registry::to_json() const {
  MetricsSnapshot snap = snapshot();
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) out.push_back(',');
    first = false;
    detail::append_json_string(out, name);
    out.push_back(':');
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) out.push_back(',');
    first = false;
    detail::append_json_string(out, name);
    out.push_back(':');
    out += std::to_string(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : snap.histograms) {
    if (!first) out.push_back(',');
    first = false;
    detail::append_json_string(out, name);
    out += ":{\"count\":" + std::to_string(histogram.count) + ",\"sum\":";
    append_double(out, histogram.sum);
    out += ",\"p50\":";
    append_double(out, histogram.p50());
    out += ",\"p95\":";
    append_double(out, histogram.p95());
    out += ",\"p99\":";
    append_double(out, histogram.p99());
    out += ",\"buckets\":[";
    for (std::size_t i = 0; i < histogram.counts.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += "{\"le\":";
      if (i < histogram.bounds.size())
        append_double(out, histogram.bounds[i]);
      else
        out += "\"inf\"";
      out += ",\"count\":" + std::to_string(histogram.counts[i]) + "}";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string Registry::to_text() const {
  MetricsSnapshot snap = snapshot();
  std::string out;
  for (const auto& [name, value] : snap.counters)
    out += name + " " + std::to_string(value) + "\n";
  for (const auto& [name, value] : snap.gauges) out += name + " " + std::to_string(value) + "\n";
  for (const auto& [name, histogram] : snap.histograms) {
    out += name + " count=" + std::to_string(histogram.count) + " sum=";
    append_double(out, histogram.sum);
    out += " p50=";
    append_double(out, histogram.p50());
    out += " p95=";
    append_double(out, histogram.p95());
    out += " p99=";
    append_double(out, histogram.p99());
    out += "\n";
  }
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

}  // namespace heimdall::obs
