// Bounded, lock-sharded structured event journal — the service's flight
// recorder memory.
//
// Instrumented code appends typed events (session open/submit/close, queue
// enqueue/dequeue, wave coalesce/split, verification verdicts, quarantines,
// audit flush/seal, SLO breaches) tagged with the ticket and session they
// belong to. Events carry a global atomic stamp, so a merged snapshot is
// totally ordered even though the shards fill independently. Storage is a
// ring per shard: week-long runs keep the most recent window and count what
// they dropped instead of growing without bound.
//
// The journal is disabled by default; an instrumentation site then costs one
// relaxed atomic load. The enforcement service enables the global journal,
// and tools/obs_report joins the exported events with the trace and the
// audit chain into per-ticket timelines.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/common.hpp"

namespace heimdall::obs {

enum class EventType : std::uint8_t {
  SessionOpen,
  SessionSubmit,
  SessionClose,
  QueueEnqueue,
  QueueDequeue,
  WaveCoalesce,
  WaveSplit,
  VerifyVerdict,
  Quarantine,
  ReplayFailure,
  AuditFlush,
  AuditSeal,
  TamperAlert,
  SloBreach,
  FlightDump,
};

std::string_view to_string(EventType type);

/// One journaled event. `ticket` 0 / `session` 0 mean "not scoped".
struct EventRecord {
  std::uint64_t seq = 0;   ///< global stamp: the total order auditors see
  std::uint64_t t_us = 0;  ///< time-source microseconds
  EventType type = EventType::SessionOpen;
  std::int64_t ticket = 0;
  std::uint64_t session = 0;
  std::string actor;
  std::string detail;
  std::uint64_t value_us = 0;  ///< optional payload (stage duration, count)
};

namespace detail {
/// Appends one event as a JSON object (shared by journal export and the
/// flight recorder).
void append_event_json(std::string& out, const EventRecord& record);
}  // namespace detail

class EventJournal {
 public:
  static constexpr std::size_t kDefaultCapacity = 65536;

  explicit EventJournal(std::size_t capacity = kDefaultCapacity);

  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }

  /// Total retained-event budget, split across the shards (clamped >= shard
  /// count). Shrinking drops the oldest events of affected shards.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const { return capacity_.load(std::memory_order_relaxed); }

  /// Replaces the timestamp source ({} restores steady_now_us).
  void set_time_source(TimeSource source);

  /// Appends one event. Thread-safe: one atomic stamp + one striped mutex.
  void append(EventType type, std::int64_t ticket, std::uint64_t session, std::string actor,
              std::string detail, std::uint64_t value_us = 0);

  /// Like append(), but resolves ticket/session from the calling thread's
  /// obs::current_context() ("ticket"/"session" keys) — what enforcement-
  /// worker sites use under a replayed ScopedContextFrame.
  void append_in_context(EventType type, std::string actor, std::string detail,
                         std::uint64_t value_us = 0);

  /// Retained events merged across shards, in stamp order.
  std::vector<EventRecord> snapshot() const;

  /// Retained events for one ticket, in stamp order.
  std::vector<EventRecord> for_ticket(std::int64_t ticket) const;

  /// The newest `count` retained events, in stamp order.
  std::vector<EventRecord> tail(std::size_t count) const;

  std::size_t size() const;
  std::uint64_t appended() const { return appended_.load(std::memory_order_relaxed); }
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Drops every retained event (stamps keep counting up).
  void clear();

  /// {"events":[...],"appended":N,"dropped":N}
  std::string to_json() const;

  /// The process-global journal instrumentation sites bind to.
  static EventJournal& global();

 private:
  static constexpr std::size_t kShards = 8;

  struct Shard {
    mutable std::mutex mutex;
    std::vector<EventRecord> ring;  ///< ring buffer once full
    std::size_t next = 0;           ///< overwrite position when full
  };

  Shard& shard_for_thread();
  std::size_t per_shard_capacity() const;

  std::atomic<bool> enabled_{false};
  std::atomic<std::size_t> capacity_;
  std::atomic<std::uint64_t> next_seq_{0};
  std::atomic<std::uint64_t> appended_{0};
  std::atomic<std::uint64_t> dropped_{0};
  mutable std::mutex time_mutex_;
  TimeSource time_;  ///< guarded by time_mutex_; empty -> steady_now_us
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace heimdall::obs
