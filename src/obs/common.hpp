// Shared plumbing for the telemetry subsystem (src/obs/): the injectable
// monotonic time source every component stamps with, and the JSON string
// escaper the exporters share.
//
// heimdall_obs sits *below* heimdall_util (so even util/json.cpp can log
// through it) and therefore depends on nothing but the standard library —
// exporters build their JSON by hand instead of via util::Json.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace heimdall::obs {

/// Monotonic microseconds. Injectable everywhere (logger, tracer, timers) so
/// tests and the virtual-clock workflows produce deterministic timestamps;
/// util::clock.hpp provides adapters from util::VirtualClock.
using TimeSource = std::function<std::uint64_t()>;

/// Default source: steady-clock microseconds since the first call — the only
/// place in the telemetry subsystem that reads the OS clock.
inline std::uint64_t steady_now_us() {
  static const auto origin = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        std::chrono::steady_clock::now() - origin)
                                        .count());
}

namespace detail {

/// Appends `text` to `out` as a quoted JSON string.
inline void append_json_string(std::string& out, std::string_view text) {
  out.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out.push_back(hex[(c >> 4) & 0xF]);
          out.push_back(hex[c & 0xF]);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace detail

}  // namespace heimdall::obs
