// Flight recorder: on an anomaly (violation/quarantine, replay failure,
// audit-tamper detection, SLO meltdown) capture everything an operator
// needs to reconstruct "what was the service doing right then" — the last-N
// journal events, the offending ticket's full event trail, every span still
// open, and a metrics + SLO snapshot — as one JSON dump.
//
// Dumps are written to a configured directory (flight-<n>-<reason>.json) or,
// when no directory is set, kept in memory for the caller (tests read
// last_dump()). A per-run cap keeps a pathological run from flooding the
// disk; suppressed dumps are counted.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

namespace heimdall::obs {

class FlightRecorder {
 public:
  struct Options {
    /// Directory dumps are written into ("" keeps them in memory only).
    std::string output_dir;
    /// How many trailing journal events a dump includes.
    std::size_t last_events = 256;
    /// Dumps per run before triggers are suppressed (counted, not written).
    std::size_t max_dumps = 32;
  };

  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  static FlightRecorder& global();

  /// Configure + enable in one step (what TelemetryFlags::apply does).
  void configure(Options options);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }

  /// Captures a dump for `reason` (and `ticket` when != 0). Returns the dump
  /// JSON, or "" when disabled or over the dump cap. Thread-safe; the
  /// capture itself is journaled as a FlightDump event.
  std::string trigger(std::string_view reason, std::int64_t ticket);

  std::uint64_t dumps() const { return dumps_.load(std::memory_order_relaxed); }
  std::uint64_t suppressed() const { return suppressed_.load(std::memory_order_relaxed); }

  /// The most recent dump (copy; "" when none yet).
  std::string last_dump() const;

  /// Re-arms the recorder (counters + last dump). Test isolation hook.
  void reset();

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> dumps_{0};
  std::atomic<std::uint64_t> suppressed_{0};
  mutable std::mutex mutex_;  ///< guards options_ and last_dump_
  Options options_;
  std::string last_dump_;
};

}  // namespace heimdall::obs
