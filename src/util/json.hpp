// Minimal, dependency-free JSON document model, parser and writer.
//
// This backs the Privilege_msp front-end ("a convenient front-end interface,
// based on JSON", paper §4.1) and the audit-trail export format. It supports
// the full JSON grammar except for \u escapes beyond Latin-1 (sufficient for
// configuration identifiers, which are ASCII).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace heimdall::util {

class Json;

/// Ordered object representation: preserves insertion order so serialized
/// policies diff cleanly.
using JsonObject = std::vector<std::pair<std::string, Json>>;
using JsonArray = std::vector<Json>;

/// A JSON value (null, bool, number, string, array, object).
class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}
  Json(std::size_t i) : value_(static_cast<double>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  /// Typed accessors; throw ParseError when the value has a different type.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;

  /// Object field lookup; throws ParseError when absent or not an object.
  const Json& at(std::string_view key) const;

  /// Object field lookup; returns nullptr when absent.
  const Json* find(std::string_view key) const;

  /// Appends / sets fields (creates the aggregate type on first use).
  void push_back(Json value);
  void set(std::string key, Json value);

  /// Parses a JSON document. Throws ParseError with position info.
  static Json parse(std::string_view text);

  /// Serializes. `indent` > 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = 0) const;

  bool operator==(const Json& other) const { return value_ == other.value_; }

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject> value_;
};

// -- Shared frontend helpers -------------------------------------------------
//
// The JSON frontends (privilege specs, policy sets) all walk arrays of
// objects and demand typed fields. These helpers centralize the lookup +
// type check and, unlike Json::at, name the enclosing entity in the error:
//   "policy: missing field 'src'", "privilege: field 'actions' must be an
//   array".

/// `object[key]`; throws ParseError naming `context` when absent.
const Json& require_field(const Json& object, std::string_view key, std::string_view context);

/// `object[key]` as a string; throws ParseError naming `context` when the
/// field is absent or not a string.
const std::string& require_string(const Json& object, std::string_view key,
                                  std::string_view context);

/// `object[key]` as an array; throws ParseError naming `context` when the
/// field is absent or not an array.
const JsonArray& require_array(const Json& object, std::string_view key,
                               std::string_view context);

/// `object[key]` as a string when present, nullopt when absent; throws
/// ParseError naming `context` when present with a non-string type.
std::optional<std::string> optional_string(const Json& object, std::string_view key,
                                           std::string_view context);

}  // namespace heimdall::util
