// Bounded-latency producer/consumer queue for the enforcement service.
//
// Many session threads push submissions; one worker pops them in batches so
// the enforcer can coalesce verification across a whole drain. The queue is
// deliberately minimal: mutex + condition variable, FIFO order preserved,
// close() wakes every waiter, and an optional pause gate lets tests and
// benchmarks accumulate a deterministic batch before the consumer runs.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

namespace heimdall::util {

template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Enqueues one item (FIFO). Returns false (and destroys the item)
  /// when the queue is already closed.
  bool push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks until at least one item is available (and the queue is not
  /// paused), then pops up to `max` items in FIFO order. Returns an empty
  /// vector only once the queue is closed and drained.
  std::vector<T> pop_some(std::size_t max) {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [&] { return (!paused_ && !items_.empty()) || (closed_ && items_.empty()); });
    std::vector<T> out;
    while (!items_.empty() && out.size() < max) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    return out;
  }

  /// While paused, pop_some() blocks even when items are queued. Lets a
  /// caller stage several submissions and release them as one batch.
  void set_paused(bool paused) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      paused_ = paused;
    }
    ready_.notify_all();
  }

  /// Wakes every blocked pop_some(); subsequent pushes are dropped. Already
  /// queued items are still handed out (drain-then-stop semantics).
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
      paused_ = false;  // a paused closed queue would deadlock its consumer
    }
    ready_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool paused_ = false;
  bool closed_ = false;
};

}  // namespace heimdall::util
