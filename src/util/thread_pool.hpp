// Small fixed-size worker pool for data-parallel loops.
//
// Built for the analysis engine's all-pairs reachability trace: the trace of
// each host pair is independent and read-only over the network + dataplane,
// so the pairs can be partitioned across workers with no locking beyond the
// pool's own queue.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace heimdall::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = std::thread::hardware_concurrency()).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Splits [0, count) into per-worker chunks, runs `body(begin, end)` for
  /// each chunk concurrently and blocks until all chunks finish. Ranges
  /// smaller than `grain` run inline on the calling thread — below that the
  /// queue handshake costs more than the work saved.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t, std::size_t)>& body,
                    std::size_t grain = 32);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stop_ = false;
};

}  // namespace heimdall::util
