// Small string utilities used throughout the library.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace heimdall::util {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Splits `text` on runs of whitespace, dropping empty fields.
std::vector<std::string> split_ws(std::string_view text);

/// Removes leading and trailing whitespace.
std::string_view trim(std::string_view text);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// True if `text` ends with `suffix`.
bool ends_with(std::string_view text, std::string_view suffix);

/// Joins `parts` with `sep` between elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Lower-cases ASCII characters.
std::string to_lower(std::string_view text);

/// Parses a non-negative integer; throws ParseError on malformed input or
/// overflow past `max`.
unsigned long parse_uint(std::string_view text, unsigned long max);

/// Simple glob match supporting '*' (any run, including empty) and '?'
/// (exactly one character). Used by the privilege resource language.
bool glob_match(std::string_view pattern, std::string_view text);

}  // namespace heimdall::util
