#include "util/json.hpp"

#include <cmath>
#include <cstdio>

#include "obs/log.hpp"
#include "util/error.hpp"

namespace heimdall::util {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) {
    // Diagnostics route through the leveled logger (silent at the default
    // Warn threshold); the caller still gets the full story in the throw.
    OBS_LOG(Debug) << "JSON parse error at offset " << pos_ << ": " << message;
    throw ParseError("JSON parse error at offset " + std::to_string(pos_) + ": " + message);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) fail(std::string("expected '") + c + "'");
  }

  void expect_literal(std::string_view literal) {
    for (char c : literal) expect(c);
  }

  Json parse_value() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't': expect_literal("true"); return Json(true);
      case 'f': expect_literal("false"); return Json(false);
      case 'n': expect_literal("null"); return Json(nullptr);
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    JsonObject object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(object));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      object.emplace_back(std::move(key), parse_value());
      skip_ws();
      char c = take();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return Json(std::move(object));
  }

  Json parse_array() {
    expect('[');
    JsonArray array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(array));
    }
    for (;;) {
      array.push_back(parse_value());
      skip_ws();
      char c = take();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return Json(std::move(array));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      char c = take();
      if (c == '"') break;
      if (c == '\\') {
        char esc = take();
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = take();
              code <<= 4;
              if (h >= '0' && h <= '9')
                code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else
                fail("bad \\u escape");
            }
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: fail("bad escape character");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  Json parse_number() {
    size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() && (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                                   text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
                                   text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    std::string token(text_.substr(start, pos_ - start));
    try {
      size_t consumed = 0;
      double value = std::stod(token, &consumed);
      if (consumed != token.size()) fail("malformed number '" + token + "'");
      return Json(value);
    } catch (const std::exception&) {
      fail("malformed number '" + token + "'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

void dump_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_number(std::string& out, double d) {
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    out += std::to_string(static_cast<long long>(d));
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out += buf;
  }
}

}  // namespace

bool Json::as_bool() const {
  if (!is_bool()) throw ParseError("JSON value is not a bool");
  return std::get<bool>(value_);
}

double Json::as_number() const {
  if (!is_number()) throw ParseError("JSON value is not a number");
  return std::get<double>(value_);
}

const std::string& Json::as_string() const {
  if (!is_string()) throw ParseError("JSON value is not a string");
  return std::get<std::string>(value_);
}

const JsonArray& Json::as_array() const {
  if (!is_array()) throw ParseError("JSON value is not an array");
  return std::get<JsonArray>(value_);
}

const JsonObject& Json::as_object() const {
  if (!is_object()) throw ParseError("JSON value is not an object");
  return std::get<JsonObject>(value_);
}

const Json& Json::at(std::string_view key) const {
  const Json* found = find(key);
  if (!found) throw ParseError("JSON object has no field '" + std::string(key) + "'");
  return *found;
}

const Json* Json::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : std::get<JsonObject>(value_)) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::push_back(Json value) {
  if (is_null()) value_ = JsonArray{};
  if (!is_array()) throw ParseError("Json::push_back on non-array");
  std::get<JsonArray>(value_).push_back(std::move(value));
}

void Json::set(std::string key, Json value) {
  if (is_null()) value_ = JsonObject{};
  if (!is_object()) throw ParseError("Json::set on non-object");
  auto& object = std::get<JsonObject>(value_);
  for (auto& [k, v] : object) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object.emplace_back(std::move(key), std::move(value));
}

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent > 0) {
      out.push_back('\n');
      out.append(static_cast<size_t>(indent * d), ' ');
    }
  };
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_number()) {
    dump_number(out, as_number());
  } else if (is_string()) {
    dump_string(out, as_string());
  } else if (is_array()) {
    const auto& array = as_array();
    if (array.empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    for (size_t i = 0; i < array.size(); ++i) {
      if (i > 0) out.push_back(',');
      newline(depth + 1);
      array[i].dump_to(out, indent, depth + 1);
    }
    newline(depth);
    out.push_back(']');
  } else {
    const auto& object = as_object();
    if (object.empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    bool first = true;
    for (const auto& [key, value] : object) {
      if (!first) out.push_back(',');
      first = false;
      newline(depth + 1);
      dump_string(out, key);
      out.push_back(':');
      if (indent > 0) out.push_back(' ');
      value.dump_to(out, indent, depth + 1);
    }
    newline(depth);
    out.push_back('}');
  }
}

const Json& require_field(const Json& object, std::string_view key, std::string_view context) {
  const Json* field = object.find(key);
  if (!field)
    throw ParseError(std::string(context) + ": missing field '" + std::string(key) + "'");
  return *field;
}

const std::string& require_string(const Json& object, std::string_view key,
                                  std::string_view context) {
  const Json& field = require_field(object, key, context);
  if (!field.is_string())
    throw ParseError(std::string(context) + ": field '" + std::string(key) +
                     "' must be a string");
  return field.as_string();
}

const JsonArray& require_array(const Json& object, std::string_view key,
                               std::string_view context) {
  const Json& field = require_field(object, key, context);
  if (!field.is_array())
    throw ParseError(std::string(context) + ": field '" + std::string(key) +
                     "' must be an array");
  return field.as_array();
}

std::optional<std::string> optional_string(const Json& object, std::string_view key,
                                           std::string_view context) {
  const Json* field = object.find(key);
  if (!field) return std::nullopt;
  if (!field->is_string())
    throw ParseError(std::string(context) + ": field '" + std::string(key) +
                     "' must be a string");
  return field->as_string();
}

}  // namespace heimdall::util
