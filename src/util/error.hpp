// Error-handling primitives shared across the Heimdall library.
//
// The library signals unrecoverable API misuse with exceptions derived from
// heimdall::util::Error (per I.10 of the C++ Core Guidelines), and uses
// std::optional / status structs for expected, recoverable conditions such as
// "this flow has no route".
#pragma once

#include <stdexcept>
#include <string>

namespace heimdall::util {

/// Base class for all exceptions thrown by the Heimdall library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when textual input (configs, JSON, DSL, CLI commands) cannot be
/// parsed. Carries a human-readable location in `what()`.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// Thrown when a lookup by identifier fails (unknown device, interface, ...).
class NotFoundError : public Error {
 public:
  explicit NotFoundError(const std::string& what) : Error(what) {}
};

/// Thrown when an operation would violate a structural invariant of the
/// model (duplicate ids, link to a missing interface, ...).
class InvariantError : public Error {
 public:
  explicit InvariantError(const std::string& what) : Error(what) {}
};

/// Precondition check used at public API boundaries. Unlike assert() it is
/// active in all build types: network-facing code must not disable its
/// argument validation in release builds.
inline void require(bool condition, const std::string& message) {
  if (!condition) throw InvariantError(message);
}

}  // namespace heimdall::util
