// Virtual clock used to model human/technician latencies deterministically.
//
// The paper's pilot study (Figure 7) measures wall-clock time that is mostly
// human think/typing time. To reproduce the *shape* deterministically we keep
// human latencies on a virtual clock and measure machine steps (twin setup,
// verification, scheduling) with a real steady clock; both are reported in
// the same unit.
#pragma once

#include <chrono>
#include <cstdint>

#include "obs/common.hpp"

namespace heimdall::util {

/// Milliseconds on the virtual timeline.
using VirtualMillis = std::int64_t;

/// A monotonically advancing virtual clock. Advancing is explicit; nothing
/// in the library reads the OS clock through this type.
class VirtualClock {
 public:
  VirtualClock() = default;

  /// Current virtual time in milliseconds since construction.
  VirtualMillis now() const { return now_ms_; }

  /// Moves the clock forward. Negative advances are rejected.
  void advance(VirtualMillis delta_ms);

 private:
  VirtualMillis now_ms_ = 0;
};

/// Wall-clock stopwatch for measuring real compute inside benches.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  /// Elapsed time in milliseconds (fractional).
  double elapsed_ms() const {
    auto d = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double, std::milli>(d).count();
  }

  void restart() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Adapts a VirtualClock into the telemetry TimeSource (virtual ms -> µs),
/// so traces and log timestamps ride the deterministic timeline in tests and
/// workflows. `clock` must outlive every component holding the source.
obs::TimeSource virtual_time_source(const VirtualClock& clock);

/// The default real time source (steady-clock µs) under the util clock
/// vocabulary — call sites never touch std::chrono directly.
obs::TimeSource steady_time_source();

}  // namespace heimdall::util
