// Deterministic PRNG (splitmix64 + xoshiro256**). The library never uses OS
// randomness; every scenario and test seeds one of these explicitly so runs
// are reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

namespace heimdall::util {

/// Deterministic 64-bit PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// True with probability `p` (clamped to [0,1]).
  bool chance(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Picks a uniformly random element; requires non-empty input.
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return items[static_cast<std::size_t>(next_below(items.size()))];
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace heimdall::util
