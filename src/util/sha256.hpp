// Self-contained SHA-256 (FIPS 180-4). Used by the audit hash chain and the
// simulated enclave's measurement/attestation machinery.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace heimdall::util {

/// A 256-bit digest.
using Sha256Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 hasher.
///
/// Usage:
///   Sha256 h;
///   h.update("hello");
///   Sha256Digest d = h.finish();
class Sha256 {
 public:
  Sha256();

  /// Absorbs `data` into the hash state. May be called repeatedly.
  void update(const void* data, std::size_t len);
  void update(std::string_view data) { update(data.data(), data.size()); }

  /// Finalizes and returns the digest. The hasher must not be reused after.
  Sha256Digest finish();

  /// One-shot convenience.
  static Sha256Digest hash(std::string_view data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::uint64_t total_len_ = 0;
  std::size_t buffer_len_ = 0;
  bool finished_ = false;
};

/// Hex-encodes a digest (lowercase, 64 chars).
std::string to_hex(const Sha256Digest& digest);

/// Keyed MAC built from SHA-256 (HMAC, RFC 2104). Used by the simulated
/// enclave to seal data so tampering outside the enclave is detectable.
Sha256Digest hmac_sha256(std::string_view key, std::string_view message);

}  // namespace heimdall::util
