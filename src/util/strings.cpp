#include "util/strings.hpp"

#include <cctype>

#include "util/error.hpp"

namespace heimdall::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

unsigned long parse_uint(std::string_view text, unsigned long max) {
  if (text.empty()) throw ParseError("expected integer, got empty string");
  unsigned long value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') throw ParseError("malformed integer: '" + std::string(text) + "'");
    unsigned long digit = static_cast<unsigned long>(c - '0');
    if (value > (max - digit) / 10) throw ParseError("integer out of range: '" + std::string(text) + "'");
    value = value * 10 + digit;
  }
  return value;
}

bool glob_match(std::string_view pattern, std::string_view text) {
  // Iterative glob with backtracking over the most recent '*'.
  size_t p = 0, t = 0;
  size_t star = std::string_view::npos, match = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      match = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++match;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

}  // namespace heimdall::util
