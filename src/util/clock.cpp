#include "util/clock.hpp"

#include "util/error.hpp"

namespace heimdall::util {

void VirtualClock::advance(VirtualMillis delta_ms) {
  require(delta_ms >= 0, "VirtualClock::advance: negative delta");
  now_ms_ += delta_ms;
}

}  // namespace heimdall::util
