#include "util/clock.hpp"

#include "util/error.hpp"

namespace heimdall::util {

void VirtualClock::advance(VirtualMillis delta_ms) {
  require(delta_ms >= 0, "VirtualClock::advance: negative delta");
  now_ms_ += delta_ms;
}

obs::TimeSource virtual_time_source(const VirtualClock& clock) {
  return [&clock] { return static_cast<std::uint64_t>(clock.now()) * 1000; };
}

obs::TimeSource steady_time_source() {
  return [] { return obs::steady_now_us(); };
}

}  // namespace heimdall::util
