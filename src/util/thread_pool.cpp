#include "util/thread_pool.hpp"

#include <algorithm>

namespace heimdall::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t, std::size_t)>& body,
                              std::size_t grain) {
  if (count == 0) return;
  if (workers_.empty() || count < grain) {
    body(0, count);
    return;
  }

  std::size_t chunks = std::min(workers_.size(), (count + grain - 1) / grain);
  std::size_t chunk_size = (count + chunks - 1) / chunks;

  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t remaining = chunks;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t c = 0; c < chunks; ++c) {
      std::size_t begin = c * chunk_size;
      std::size_t end = std::min(count, begin + chunk_size);
      tasks_.push([&, begin, end] {
        body(begin, end);
        // Notify while holding the lock: the waiter owns done_mutex until its
        // wait() returns, so done_cv cannot be destroyed mid-notify.
        std::lock_guard<std::mutex> done_lock(done_mutex);
        --remaining;
        done_cv.notify_one();
      });
    }
  }
  wake_.notify_all();

  std::unique_lock<std::mutex> done_lock(done_mutex);
  done_cv.wait(done_lock, [&] { return remaining == 0; });
}

}  // namespace heimdall::util
