#include "util/random.hpp"

#include "util/error.hpp"

namespace heimdall::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  require(bound > 0, "Rng::next_below: bound must be positive");
  // Rejection sampling to avoid modulo bias.
  std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    std::uint64_t value = next();
    if (value >= threshold) return value % bound;
  }
}

std::uint64_t Rng::next_in(std::uint64_t lo, std::uint64_t hi) {
  require(lo <= hi, "Rng::next_in: lo > hi");
  return lo + next_below(hi - lo + 1);
}

double Rng::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return next_double() < p;
}

}  // namespace heimdall::util
