#include "analysis/engine.hpp"

#include <algorithm>
#include <utility>

#include "config/serialize.hpp"
#include "dataplane/compiled.hpp"
#include "dataplane/sharded.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/clock.hpp"
#include "util/sha256.hpp"

namespace heimdall::analysis {

using heimdall::cfg::ConfigChange;

namespace {

/// Global-registry mirrors of Engine::Stats, resolved once: hot analysis
/// paths bump relaxed atomics instead of re-looking metrics up by name.
struct EngineMetrics {
  obs::Counter& analyses;
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  obs::Counter& full_recomputes;
  obs::Counter& incremental_recomputes;
  obs::Counter& carried_forward;
  obs::Counter& retraced_pairs;
  obs::Histogram& analyze_ms;
  obs::Histogram& dirty_devices;

  static EngineMetrics& get() {
    static EngineMetrics metrics{
        obs::Registry::global().counter("engine.analyses"),
        obs::Registry::global().counter("engine.cache_hits"),
        obs::Registry::global().counter("engine.cache_misses"),
        obs::Registry::global().counter("engine.full_recomputes"),
        obs::Registry::global().counter("engine.incremental_recomputes"),
        obs::Registry::global().counter("engine.carried_forward"),
        obs::Registry::global().counter("engine.retraced_pairs"),
        obs::Registry::global().histogram("engine.analyze_ms"),
        obs::Registry::global().histogram("engine.dirty_devices",
                                          {0, 1, 2, 4, 8, 16, 32, 64, 128}),
    };
    return metrics;
  }
};

/// Compiles the flat forwarding plane one analysis runs on. Always rebuilt
/// when any artifact changed: the plane copies ACL bodies and interface
/// state, so even a TraceOnly change (shared dataplane) needs a fresh one.
std::shared_ptr<const dp::CompiledPlane> compile_plane(const net::Network& network,
                                                       const dp::Dataplane& dataplane,
                                                       unsigned fib_stride) {
  obs::ScopedSpan span("engine.compile", "analysis");
  return std::make_shared<dp::CompiledPlane>(
      dp::CompiledPlane::compile(network, dataplane, {fib_stride}));
}

/// Representation choice for one analysis (see MatrixMode). Deliberately a
/// function of the *network*, not the cached artifacts: repeated analyses
/// of related snapshots keep picking the same representation, so
/// incremental recomputes always find a matching base.
bool wants_sharded(const Options& options, const net::Network& network) {
  switch (options.matrix_mode) {
    case MatrixMode::Dense:
      return false;
    case MatrixMode::Sharded:
      return true;
    case MatrixMode::Auto:
      break;
  }
  return network.count(net::DeviceKind::Host) >= options.sharded_host_threshold;
}

}  // namespace

const dp::ReachabilityView* Snapshot::view() const {
  if (reachability) return reachability.get();
  if (sharded) return sharded.get();
  return nullptr;
}

Impact classify_impact(const ConfigChange& change) {
  struct Visitor {
    // Secrets never enter FIB computation or tracing.
    Impact operator()(const cfg::SecretChange&) const { return Impact::None; }

    // ACLs are consulted only while tracing flows; FIBs, L2 domains and OSPF
    // never read them. Pairs whose path avoids the device are unaffected.
    Impact operator()(const cfg::AclEntryAdd&) const { return Impact::TraceOnly; }
    Impact operator()(const cfg::AclEntryRemove&) const { return Impact::TraceOnly; }
    Impact operator()(const cfg::AclCreate&) const { return Impact::TraceOnly; }
    Impact operator()(const cfg::AclDelete&) const { return Impact::TraceOnly; }
    Impact operator()(const cfg::InterfaceAclBindingChange&) const { return Impact::TraceOnly; }

    // Static routes live in exactly one device's FIB and are invisible to
    // L2 domain computation and OSPF.
    Impact operator()(const cfg::StaticRouteAdd&) const { return Impact::FibLocal; }
    Impact operator()(const cfg::StaticRouteRemove&) const { return Impact::FibLocal; }

    // Everything else can move broadcast domains, interface addresses, or
    // the OSPF topology — all of which feed every router's SPF.
    Impact operator()(const cfg::InterfaceAdminChange&) const { return Impact::Global; }
    Impact operator()(const cfg::InterfaceAddressChange&) const { return Impact::Global; }
    Impact operator()(const cfg::SwitchportChange&) const { return Impact::Global; }
    Impact operator()(const cfg::OspfCostChange&) const { return Impact::Global; }
    Impact operator()(const cfg::OspfNetworkAdd&) const { return Impact::Global; }
    Impact operator()(const cfg::OspfNetworkRemove&) const { return Impact::Global; }
    Impact operator()(const cfg::OspfProcessChange&) const { return Impact::Global; }
    Impact operator()(const cfg::VlanDeclare&) const { return Impact::Global; }
    Impact operator()(const cfg::VlanRemove&) const { return Impact::Global; }
  };
  return std::visit(Visitor{}, change.detail);
}

Engine::Engine(Options options) : options_(options) {
  if (options_.trace_threads > 1)
    pool_ = std::make_unique<util::ThreadPool>(options_.trace_threads);
}

std::string Engine::fingerprint(const net::Network& network) const {
  obs::ScopedSpan span("engine.fingerprint", "analysis");
  util::Sha256 hasher;
  hasher.update(cfg::serialize_network(network));
  hasher.update(cfg::serialize_topology(network.topology()));
  return util::to_hex(hasher.finish());
}

dp::TraceOptions Engine::trace_options() { return dp::TraceOptions{pool_.get()}; }

dp::ShardOptions Engine::shard_options() { return dp::ShardOptions{pool_.get()}; }

Engine::Entry* Engine::lookup(const std::string& digest) {
  auto it = cache_.find(digest);
  if (it == cache_.end()) return nullptr;
  lru_.remove(digest);
  lru_.push_front(digest);
  return &it->second;
}

void Engine::remember(const std::string& digest, Entry entry) {
  if (options_.cache_capacity == 0) return;
  auto it = cache_.find(digest);
  if (it != cache_.end()) {
    it->second = std::move(entry);
    lru_.remove(digest);
  } else {
    while (cache_.size() >= options_.cache_capacity) {
      cache_.erase(lru_.back());
      lru_.pop_back();
    }
    cache_.emplace(digest, std::move(entry));
  }
  lru_.push_front(digest);
}

void Engine::clear() {
  cache_.clear();
  lru_.clear();
}

Engine::Entry Engine::compute_full(const net::Network& network, bool want_matrix) {
  ++stats_.full_recomputes;
  EngineMetrics::get().full_recomputes.add();
  Entry entry;
  {
    obs::ScopedSpan span("engine.dataplane", "analysis");
    entry.dataplane = std::make_shared<dp::Dataplane>(dp::Dataplane::compute(network));
  }
  entry.compiled = compile_plane(network, *entry.dataplane, options_.fib_stride);
  if (want_matrix) {
    obs::ScopedSpan span("engine.reachability", "analysis");
    if (wants_sharded(options_, network)) {
      entry.sharded = std::make_shared<dp::ShardedReachability>(
          dp::ShardedReachability::compute(*entry.compiled, shard_options()));
    } else {
      entry.matrix = std::make_shared<dp::ReachabilityMatrix>(
          dp::ReachabilityMatrix::compute(*entry.compiled, trace_options()));
    }
  }
  return entry;
}

Engine::Entry Engine::compute_incremental(
    const net::Network& network, const Snapshot& base, const std::vector<ConfigChange>& changes,
    Impact worst, bool want_matrix,
    std::shared_ptr<const std::vector<std::size_t>>* retraced_out) {
  ++stats_.incremental_recomputes;
  EngineMetrics::get().incremental_recomputes.add();
  std::set<net::DeviceId> dirty;
  for (const ConfigChange& change : changes) {
    if (classify_impact(change) != Impact::None) dirty.insert(change.device);
  }
  EngineMetrics::get().dirty_devices.observe(static_cast<double>(dirty.size()));
  obs::ScopedSpan span("engine.incremental", "analysis",
                       {{"dirty_devices", std::to_string(dirty.size())}});

  Entry entry;
  if (worst == Impact::TraceOnly) {
    // FIBs, L2 domains and OSPF are untouched: share the base dataplane.
    entry.dataplane = base.dataplane;
  } else {
    // FibLocal: copy the snapshot and rebuild only the dirty devices' FIBs,
    // reusing the cached L2 domains and per-router OSPF routes.
    auto dataplane = std::make_shared<dp::Dataplane>(*base.dataplane);
    for (const net::DeviceId& device : dirty) dataplane->rebuild_device_fib(network.device(device));
    entry.dataplane = std::move(dataplane);
  }
  entry.compiled = compile_plane(network, *entry.dataplane, options_.fib_stride);

  if (want_matrix) {
    if (wants_sharded(options_, network)) {
      std::size_t retraced = 0;
      entry.sharded = base.sharded
                          ? std::make_shared<dp::ShardedReachability>(
                                dp::ShardedReachability::recompute(*entry.compiled, *base.sharded,
                                                                   dirty, shard_options(),
                                                                   &retraced))
                          : std::make_shared<dp::ShardedReachability>(
                                dp::ShardedReachability::compute(*entry.compiled, shard_options()));
      stats_.retraced_pairs += retraced;
      EngineMetrics::get().retraced_pairs.add(retraced);
      span.arg("retraced_pairs", std::to_string(retraced));
      // No retraced_out: sharded retraces are class pairs, not indices into
      // a dense pair vector — delta consumers fall back to a full check.
    } else if (base.reachability) {
      std::size_t retraced = 0;
      auto retraced_indices = std::make_shared<std::vector<std::size_t>>();
      entry.matrix = std::make_shared<dp::ReachabilityMatrix>(dp::ReachabilityMatrix::recompute(
          *entry.compiled, *base.reachability, dirty, trace_options(), &retraced,
          retraced_indices.get()));
      stats_.retraced_pairs += retraced;
      EngineMetrics::get().retraced_pairs.add(retraced);
      span.arg("retraced_pairs", std::to_string(retraced));
      if (retraced_out) *retraced_out = std::move(retraced_indices);
    } else {
      entry.matrix = std::make_shared<dp::ReachabilityMatrix>(
          dp::ReachabilityMatrix::compute(*entry.compiled, trace_options()));
    }
  }
  return entry;
}

Snapshot Engine::analyze_impl(const net::Network& network, const Snapshot* base,
                              const std::vector<ConfigChange>* changes, bool want_matrix) {
  ++stats_.analyses;
  EngineMetrics& metrics = EngineMetrics::get();
  metrics.analyses.add();
  obs::ScopedSpan span("engine.analyze", "analysis",
                       {{"want_matrix", want_matrix ? "true" : "false"}});
  util::Stopwatch watch;
  // The histogram records every exit path, including cache hits — that is
  // the point: the snapshot shows what analyses cost *in situ*.
  struct ObserveOnExit {
    util::Stopwatch& watch;
    obs::Histogram& histogram;
    ~ObserveOnExit() { histogram.observe(watch.elapsed_ms()); }
  } observe{watch, metrics.analyze_ms};

  // Digests exist to serve the memo cache; with caching disabled the
  // serialize-and-hash cost would be pure overhead on every analysis, so
  // snapshots then carry an empty digest.
  const bool caching = options_.cache_capacity > 0;
  std::string digest = caching ? fingerprint(network) : std::string();

  // Unchanged network (e.g. a changeset that cancels out, or a secret edit
  // against the same base): the base snapshot already answers.
  if (caching && base && base->valid() && base->digest == digest &&
      (!want_matrix || base->reachability || base->sharded)) {
    ++stats_.cache_hits;
    metrics.cache_hits.add();
    span.arg("cache", "hit-base");
    Snapshot out = *base;
    // The result IS the base, so relative to it nothing was re-traced. Any
    // retraced set the base carried referred to an older ancestor.
    out.retraced_pairs = std::make_shared<std::vector<std::size_t>>();
    return out;
  }

  if (Entry* cached = caching ? lookup(digest) : nullptr) {
    if (!want_matrix || cached->has_reachability()) {
      ++stats_.cache_hits;
      metrics.cache_hits.add();
      span.arg("cache", "hit");
      return Snapshot{digest, cached->dataplane, cached->matrix, cached->compiled,
                      /*retraced_pairs=*/nullptr, cached->sharded};
    }
    // Dataplane known, matrix missing: complete the cached entry in place.
    ++stats_.matrix_completions;
    metrics.cache_misses.add();
    span.arg("cache", "complete-matrix");
    Entry entry;
    entry.dataplane = cached->dataplane;
    entry.compiled = cached->compiled;
    if (!entry.compiled) entry.compiled = compile_plane(network, *entry.dataplane, options_.fib_stride);
    if (wants_sharded(options_, network)) {
      entry.sharded = std::make_shared<dp::ShardedReachability>(
          dp::ShardedReachability::compute(*entry.compiled, shard_options()));
    } else {
      entry.matrix = std::make_shared<dp::ReachabilityMatrix>(
          dp::ReachabilityMatrix::compute(*entry.compiled, trace_options()));
    }
    remember(digest, entry);
    return Snapshot{std::move(digest), std::move(entry.dataplane), std::move(entry.matrix),
                    std::move(entry.compiled), /*retraced_pairs=*/nullptr,
                    std::move(entry.sharded)};
  }
  metrics.cache_misses.add();
  span.arg("cache", "miss");

  Impact worst = Impact::None;
  if (base && base->valid() && changes) {
    for (const ConfigChange& change : *changes) worst = std::max(worst, classify_impact(change));
  } else {
    worst = Impact::Global;
  }

  Entry entry;
  std::shared_ptr<const std::vector<std::size_t>> retraced_view;
  if (worst == Impact::None) {
    // Secrets only: the base artifacts describe this network verbatim.
    ++stats_.carried_forward;
    entry.dataplane = base->dataplane;
    entry.matrix = base->reachability;
    entry.sharded = base->sharded;
    entry.compiled = base->compiled;
    if (entry.matrix) retraced_view = std::make_shared<std::vector<std::size_t>>();
    if (want_matrix && !entry.has_reachability()) {
      ++stats_.matrix_completions;
      if (!entry.compiled) entry.compiled = compile_plane(network, *entry.dataplane, options_.fib_stride);
      if (wants_sharded(options_, network)) {
        entry.sharded = std::make_shared<dp::ShardedReachability>(
            dp::ShardedReachability::compute(*entry.compiled, shard_options()));
      } else {
        entry.matrix = std::make_shared<dp::ReachabilityMatrix>(
            dp::ReachabilityMatrix::compute(*entry.compiled, trace_options()));
      }
    }
  } else if (worst == Impact::Global || (!base->reachability && !base->sharded)) {
    // Incremental retrace needs the base matrix's recorded paths; without
    // them (dataplane-only base) a non-global change still recomputes the
    // dataplane incrementally but cannot scope the trace.
    if (worst != Impact::Global && base && base->valid()) {
      entry = compute_incremental(network, *base, *changes, worst, want_matrix, &retraced_view);
    } else {
      entry = compute_full(network, want_matrix);
    }
  } else {
    entry = compute_incremental(network, *base, *changes, worst, want_matrix, &retraced_view);
  }

  remember(digest, entry);
  return Snapshot{std::move(digest), std::move(entry.dataplane), std::move(entry.matrix),
                  std::move(entry.compiled), std::move(retraced_view),
                  std::move(entry.sharded)};
}

Snapshot Engine::analyze(const net::Network& network) {
  return analyze_impl(network, nullptr, nullptr, /*want_matrix=*/true);
}

Snapshot Engine::analyze(const net::Network& network, const Snapshot& base,
                         const std::vector<ConfigChange>& changes) {
  return analyze_impl(network, &base, &changes, /*want_matrix=*/true);
}

Snapshot Engine::analyze_dataplane(const net::Network& network) {
  return analyze_impl(network, nullptr, nullptr, /*want_matrix=*/false);
}

Snapshot Engine::analyze_dataplane(const net::Network& network, const Snapshot& base,
                                   const std::vector<ConfigChange>& changes) {
  return analyze_impl(network, &base, &changes, /*want_matrix=*/false);
}

}  // namespace heimdall::analysis
