// The unified analysis pipeline: network -> dataplane -> reachability,
// behind one incremental, memoizing facade.
//
// Every layer of the system (twin emulation, the enforcer's shadow
// verification, policy mining, workflows, benchmarks) needs the same chain
//   Dataplane::compute -> ReachabilityMatrix::compute -> policy checks
// and used to hand-roll it from scratch. The Engine owns that chain and adds
// what scattered recomputation cannot:
//
//   * content-hash memoization — snapshots are keyed by the SHA-256 of their
//     serialized configs + topology, so analyzing an identical network twice
//     (tweak/undo, repeated shadow verification) never recomputes;
//   * ConfigChange-driven dirty tracking — a change that provably stays
//     device-local (static routes) rebuilds only that device's FIB and
//     re-traces only the host pairs whose path crossed it; ACL edits reuse
//     the entire dataplane and re-trace crossing pairs; anything that can
//     move L2 domains or OSPF falls back to a full recompute;
//   * an opt-in thread pool that parallelizes the all-pairs trace.
#pragma once

#include <list>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "config/diff.hpp"
#include "dataplane/reachability.hpp"
#include "util/thread_pool.hpp"

namespace heimdall::dp {
class ShardedReachability;
struct ShardOptions;
}

namespace heimdall::analysis {

/// How a ConfigChange can affect a cached analysis, from cheapest to most
/// expensive. The engine reacts to the worst class in a changeset.
enum class Impact : std::uint8_t {
  None,       ///< secrets: no dataplane or reachability effect
  TraceOnly,  ///< ACL edits: FIBs untouched, re-trace pairs crossing the device
  FibLocal,   ///< static routes: rebuild one FIB, re-trace crossing pairs
  Global,     ///< interfaces / VLANs / OSPF: L2 or SPF may move, full recompute
};

/// Classifies one semantic change (see Impact).
Impact classify_impact(const cfg::ConfigChange& change);

/// Which all-pairs reachability representation analyses produce.
enum class MatrixMode : std::uint8_t {
  Auto,     ///< dense below sharded_host_threshold hosts, sharded at or above
  Dense,    ///< always the full ReachabilityMatrix (per-pair paths, diffable)
  Sharded,  ///< always the compressed ShardedReachability (fabric scale)
};

struct Options {
  /// Memoized snapshots kept (LRU). 0 disables memoization entirely —
  /// benchmarks use that to measure honest recompute cost.
  std::size_t cache_capacity = 8;
  /// Worker threads for the all-pairs trace; <= 1 keeps it sequential
  /// (0 would mean hardware_concurrency, but the pool is only built when
  /// trace_threads > 1).
  std::size_t trace_threads = 1;
  /// CompiledFib top-table stride (8, 16 or 24 bits) for every snapshot's
  /// compiled plane; 0 sizes each device's table by its route count.
  /// Property tests force both /16 and /24 through the full trace stack.
  unsigned fib_stride = 0;
  /// Reachability representation policy (see MatrixMode).
  MatrixMode matrix_mode = MatrixMode::Auto;
  /// Host count at which MatrixMode::Auto switches to the sharded
  /// representation: fabric-scale networks would otherwise pay
  /// O(hosts^2 . path) matrix memory per memoized snapshot.
  std::size_t sharded_host_threshold = 512;
};

struct Stats {
  std::size_t analyses = 0;                 ///< analyze* calls
  std::size_t cache_hits = 0;               ///< served from memo (or the base snapshot)
  std::size_t full_recomputes = 0;          ///< complete dataplane rebuilds
  std::size_t incremental_recomputes = 0;   ///< dirty-device fast path taken
  std::size_t carried_forward = 0;          ///< Impact::None — artifacts reused as-is
  std::size_t retraced_pairs = 0;           ///< pairs re-traced by incremental paths
  std::size_t matrix_completions = 0;       ///< matrix added to a dataplane-only snapshot

  /// Dataplane computations of any kind — the twin emulation layer's
  /// historical recompute_count() statistic.
  std::size_t recompute_count() const { return full_recomputes + incremental_recomputes; }
};

/// One analyzed network state. Cheap to copy (shared immutable artifacts).
/// `reachability` is null when only the dataplane stage was requested.
struct Snapshot {
  /// Hex SHA-256 of serialized configs + topology; empty when produced by an
  /// engine with caching disabled (cache_capacity == 0).
  std::string digest;
  std::shared_ptr<const dp::Dataplane> dataplane;
  std::shared_ptr<const dp::ReachabilityMatrix> reachability;
  /// Immutable compiled forwarding plane for this snapshot — what the
  /// all-pairs trace actually ran on. Self-contained (never dangles into
  /// the analyzed Network); useful for fast ad-hoc flow traces.
  std::shared_ptr<const dp::CompiledPlane> compiled;
  /// Indices into reachability->pairs() of the pairs the incremental path
  /// re-traced relative to the `base` snapshot passed to analyze(); every
  /// pair not listed is bit-identical to the base matrix. Empty vector =
  /// nothing changed. Null = unknown provenance (full recompute, memo hit,
  /// or no base) — a delta consumer must then treat every cell as changed.
  /// Always null on sharded snapshots (the sharded recompute counts class
  /// pairs, which are not indices into a dense pair vector).
  std::shared_ptr<const std::vector<std::size_t>> retraced_pairs;
  /// Compressed reachability when the engine chose the sharded
  /// representation (see MatrixMode); `reachability` is then null.
  std::shared_ptr<const dp::ShardedReachability> sharded;

  bool valid() const { return dataplane != nullptr; }

  /// Whichever reachability representation this snapshot carries, as the
  /// common read interface; null when only the dataplane stage ran.
  const dp::ReachabilityView* view() const;
};

/// The facade. Not thread-safe itself (internal trace parallelism is);
/// give each concurrent session its own Engine.
class Engine {
 public:
  explicit Engine(Options options = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  Engine(Engine&&) = default;
  Engine& operator=(Engine&&) = default;

  /// Full pipeline: dataplane + all-pairs reachability. Memoized.
  Snapshot analyze(const net::Network& network);

  /// Incremental full pipeline: `network` must be `base`'s network with
  /// `changes` applied (in order). Falls back to a full recompute when any
  /// change is Impact::Global or `base` is invalid.
  Snapshot analyze(const net::Network& network, const Snapshot& base,
                   const std::vector<cfg::ConfigChange>& changes);

  /// Dataplane stage only — the twin console needs FIBs and single-flow
  /// traces, not the all-pairs matrix. Memoized; a later analyze() of the
  /// same snapshot completes the matrix in place.
  Snapshot analyze_dataplane(const net::Network& network);

  /// Incremental dataplane stage (see the incremental analyze()).
  Snapshot analyze_dataplane(const net::Network& network, const Snapshot& base,
                             const std::vector<cfg::ConfigChange>& changes);

  /// Content hash used as the memo key (exposed for staleness checks).
  std::string fingerprint(const net::Network& network) const;

  const Stats& stats() const { return stats_; }
  const Options& options() const { return options_; }

  /// Drops all memoized snapshots (stats are kept).
  void clear();

 private:
  struct Entry {
    std::shared_ptr<const dp::Dataplane> dataplane;
    std::shared_ptr<const dp::ReachabilityMatrix> matrix;  // may lag behind dataplane
    std::shared_ptr<const dp::CompiledPlane> compiled;
    std::shared_ptr<const dp::ShardedReachability> sharded;  // exclusive with matrix

    bool has_reachability() const { return matrix != nullptr || sharded != nullptr; }
  };

  Snapshot analyze_impl(const net::Network& network, const Snapshot* base,
                        const std::vector<cfg::ConfigChange>* changes, bool want_matrix);
  Entry compute_full(const net::Network& network, bool want_matrix);
  Entry compute_incremental(const net::Network& network, const Snapshot& base,
                            const std::vector<cfg::ConfigChange>& changes, Impact worst,
                            bool want_matrix,
                            std::shared_ptr<const std::vector<std::size_t>>* retraced_out);
  dp::TraceOptions trace_options();
  dp::ShardOptions shard_options();
  Entry* lookup(const std::string& digest);
  void remember(const std::string& digest, Entry entry);

  Options options_;
  Stats stats_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::map<std::string, Entry> cache_;
  std::list<std::string> lru_;  // front = most recently used
};

}  // namespace heimdall::analysis
