#include "msp/metrics.hpp"

#include <algorithm>
#include <set>

#include "util/error.hpp"

namespace heimdall::msp {

using namespace heimdall::net;
using priv::Action;
using priv::Resource;

std::vector<std::pair<Action, Resource>> device_command_catalog(const Device& device) {
  std::vector<std::pair<Action, Resource>> catalog;
  Resource whole = Resource::whole_device(device.id());

  for (Action action : {Action::ShowConfig, Action::ShowInterfaces, Action::ShowRoutes,
                        Action::ShowAcls, Action::ShowOspf, Action::ShowVlans, Action::Ping,
                        Action::Traceroute, Action::Reboot, Action::EraseConfig,
                        Action::SaveConfig, Action::AclCreate}) {
    catalog.emplace_back(action, whole);
  }
  for (const Interface& iface : device.interfaces()) {
    Resource resource = Resource::interface(device.id(), iface.id);
    for (Action action : {Action::InterfaceUp, Action::InterfaceDown,
                          Action::SetInterfaceAddress, Action::BindAcl, Action::SetSwitchport,
                          Action::SetOspfCost}) {
      catalog.emplace_back(action, resource);
    }
  }
  for (const Acl& acl : device.acls()) {
    Resource resource = Resource::acl(device.id(), acl.name);
    catalog.emplace_back(Action::AclEdit, resource);
    catalog.emplace_back(Action::AclDelete, resource);
  }
  catalog.emplace_back(Action::StaticRouteAdd, Resource::routes(device.id()));
  catalog.emplace_back(Action::StaticRouteRemove, Resource::routes(device.id()));
  if (device.ospf()) {
    catalog.emplace_back(Action::OspfNetworkEdit, Resource::ospf(device.id()));
    catalog.emplace_back(Action::OspfProcessEdit, Resource::ospf(device.id()));
  }
  for (VlanId vlan : device.vlans()) {
    catalog.emplace_back(Action::VlanEdit, Resource::vlan(device.id(), vlan));
  }
  for (const char* field : {"enable_password", "snmp_community", "ipsec_key"}) {
    catalog.emplace_back(Action::ChangeSecret, Resource::secret(device.id(), field));
  }
  return catalog;
}

std::vector<AttackProbe> device_attack_probes(const Device& device) {
  std::vector<AttackProbe> probes;
  const DeviceId& id = device.id();

  // Shut down every up interface.
  for (const Interface& iface : device.interfaces()) {
    if (iface.shutdown) continue;
    probes.push_back({cfg::ConfigChange{id, cfg::InterfaceAdminChange{iface.id, false, true}},
                      Action::InterfaceDown, Resource::interface(id, iface.id)});
  }

  // Prepend deny-any and permit-any to every ACL (break reachability /
  // break isolation respectively).
  for (const Acl& acl : device.acls()) {
    AclEntry deny_any;
    deny_any.action = AclEntry::Action::Deny;
    probes.push_back({cfg::ConfigChange{id, cfg::AclEntryAdd{acl.name, 0, deny_any}},
                      Action::AclEdit, Resource::acl(id, acl.name)});
    AclEntry permit_any;
    permit_any.action = AclEntry::Action::Permit;
    probes.push_back({cfg::ConfigChange{id, cfg::AclEntryAdd{acl.name, 0, permit_any}},
                      Action::AclEdit, Resource::acl(id, acl.name)});
  }

  // Unbind every interface ACL (defeats intentional isolation).
  for (const Interface& iface : device.interfaces()) {
    if (!iface.acl_in.empty()) {
      probes.push_back(
          {cfg::ConfigChange{id, cfg::InterfaceAclBindingChange{iface.id, cfg::AclDirection::In,
                                                                iface.acl_in, ""}},
           Action::BindAcl, Resource::interface(id, iface.id)});
    }
    if (!iface.acl_out.empty()) {
      probes.push_back(
          {cfg::ConfigChange{id, cfg::InterfaceAclBindingChange{iface.id, cfg::AclDirection::Out,
                                                                iface.acl_out, ""}},
           Action::BindAcl, Resource::interface(id, iface.id)});
    }
  }

  // Remove every static route.
  for (const StaticRoute& route : device.static_routes()) {
    probes.push_back({cfg::ConfigChange{id, cfg::StaticRouteRemove{route}},
                      Action::StaticRouteRemove, Resource::routes(id)});
  }

  // Remove every OSPF network statement, and the whole process.
  if (device.ospf()) {
    for (const OspfNetwork& network : device.ospf()->networks) {
      probes.push_back({cfg::ConfigChange{id, cfg::OspfNetworkRemove{network}},
                        Action::OspfNetworkEdit, Resource::ospf(id)});
    }
    probes.push_back({cfg::ConfigChange{id, cfg::OspfProcessChange{device.ospf(), std::nullopt}},
                      Action::OspfProcessEdit, Resource::ospf(id)});
  }

  // Move every access port to an unused VLAN (strands the attached host).
  for (const Interface& iface : device.interfaces()) {
    if (iface.mode != SwitchportMode::Access) continue;
    VlanId stray = 4094;
    probes.push_back(
        {cfg::ConfigChange{id, cfg::SwitchportChange{iface.id, iface.mode, SwitchportMode::Access,
                                                     iface.access_vlan, stray,
                                                     iface.trunk_allowed, iface.trunk_allowed}},
         Action::SetSwitchport, Resource::interface(id, iface.id)});
  }

  return probes;
}

SurfaceResult compute_attack_surface(const Network& production,
                                     const spec::PolicyVerifier& policies,
                                     const SurfaceQuery& query) {
  SurfaceResult result;
  result.total_policies = policies.policies().size();

  // Command exposure: ΣC_n / ΣA_n over *all* nodes.
  for (const Device& device : production.devices()) {
    auto catalog = device_command_catalog(device);
    result.available_commands += catalog.size();
    if (!query.accessible.count(device.id())) continue;
    if (query.privileges == nullptr) {
      result.allowed_commands += catalog.size();  // unrestricted root
    } else {
      result.allowed_commands += query.privileges->count_allowed(catalog);
    }
  }

  // VP: policies violable by at least one allowed probe.
  std::set<std::string> violated;
  for (const Device& device : production.devices()) {
    if (!query.accessible.count(device.id())) continue;
    for (const AttackProbe& probe : device_attack_probes(device)) {
      if (query.privileges != nullptr &&
          !query.privileges->allows(probe.action, probe.resource))
        continue;
      Network shadow = production;
      try {
        cfg::apply_change(shadow, probe.change);
      } catch (const util::Error&) {
        continue;  // probe does not apply to this state
      }
      spec::VerificationReport report = policies.verify_network(shadow);
      for (const std::string& policy_id : report.violated_ids()) violated.insert(policy_id);
    }
  }
  result.violable_policies = violated.size();

  double exposure = result.exposure_ratio();
  double violation_ratio =
      result.total_policies == 0
          ? 0.0
          : static_cast<double>(result.violable_policies) /
                static_cast<double>(result.total_policies);
  result.surface_pct = (exposure * 0.5 + violation_ratio * 0.5) * 100.0;
  return result;
}

bool is_feasible(const DeviceId& root_cause, const Network& production,
                 const SurfaceQuery& query) {
  if (!query.accessible.count(root_cause)) return false;
  if (query.privileges == nullptr) return true;
  const Device* device = production.find_device(root_cause);
  if (!device) return false;
  for (const auto& [action, resource] : device_command_catalog(*device)) {
    if (priv::is_mutating(action) && query.privileges->allows(action, resource)) return true;
  }
  return false;
}

}  // namespace heimdall::msp
