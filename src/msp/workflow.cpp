#include "msp/workflow.hpp"

#include "analysis/engine.hpp"
#include "msp/rmm.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace heimdall::msp {

using namespace heimdall::net;

namespace {

/// Step timings feed the per-step latency histogram so a metrics snapshot
/// shows where workflow time goes without re-running Figure 7.
void record_step(WorkflowResult& result, StepTiming step) {
  obs::Registry::global()
      .histogram("workflow.step_ms")
      .observe(step.human_ms + step.machine_ms);
  result.steps.push_back(std::move(step));
}

}  // namespace

double WorkflowResult::total_ms() const {
  double total = 0;
  for (const StepTiming& step : steps) total += step.total_ms();
  return total;
}

const StepTiming* WorkflowResult::step(const std::string& name) const {
  for (const StepTiming& step : steps)
    if (step.step == name) return &step;
  return nullptr;
}

WorkflowResult run_current_workflow(Network& production, const Ticket& ticket,
                                    const std::vector<std::string>& fix_script,
                                    const Technician& technician, const ResolvedCheck& resolved) {
  obs::ScopedContext ticket_context("ticket", std::to_string(ticket.id));
  obs::ScopedSpan workflow_span("workflow.current", "workflow");
  obs::Registry::global().counter("workflow.current_runs").add();
  WorkflowResult result;
  result.workflow = "current";
  util::VirtualClock clock;
  const LatencyModel& latency = technician.latency;

  // Step 1: connect (authenticate to the RMM server).
  RmmServer server(production);
  server.register_user(RmmUser{technician.name, "hunter2", false});
  {
    util::Stopwatch watch;
    clock.advance(latency.login_ms + latency.ticket_review_ms);
    // The session outlives the connect step, so the span is closed by hand.
    obs::SpanId connect_span = obs::tracer().begin("workflow.connect", "workflow");
    RmmSession session = server.open_session(Credentials{technician.name, "hunter2", false});
    obs::tracer().end(connect_span);
    record_step(result,
                {"connect", static_cast<double>(latency.login_ms + latency.ticket_review_ms),
                 watch.elapsed_ms()});

    // Step 2: perform operations, directly on production.
    util::Stopwatch operate_watch;
    util::VirtualMillis human = 0;
    {
      obs::ScopedSpan operate_span("workflow.operate", "workflow");
      for (const std::string& line : fix_script) {
        twin::ParsedCommand command = twin::parse_command(line);
        human += latency.command_cost(command);
        session.execute(line);
      }
    }
    clock.advance(human);
    record_step(result, {"operate", static_cast<double>(human), operate_watch.elapsed_ms()});

    // Step 3: save changes (committed unverified).
    util::Stopwatch save_watch;
    clock.advance(latency.save_ms);
    {
      obs::ScopedSpan save_span("workflow.save", "workflow");
      session.commit();
    }
    record_step(result,
                {"save", static_cast<double>(latency.save_ms), save_watch.elapsed_ms()});
  }

  result.changes_applied = true;
  result.issue_resolved = resolved(production);
  return result;
}

WorkflowResult run_heimdall_workflow(Network& production, enforce::PolicyEnforcer& enforcer,
                                     const Ticket& ticket,
                                     const std::vector<std::string>& fix_script,
                                     const Technician& technician, const ResolvedCheck& resolved,
                                     twin::SliceStrategy strategy) {
  obs::ScopedContext ticket_context("ticket", std::to_string(ticket.id));
  obs::ScopedSpan workflow_span("workflow.heimdall", "workflow");
  obs::Registry::global().counter("workflow.heimdall_runs").add();
  WorkflowResult result;
  result.workflow = "heimdall";
  util::VirtualClock clock;
  const LatencyModel& latency = technician.latency;

  // Step 1: connect + generate Privilege_msp.
  util::Stopwatch generate_watch;
  analysis::Engine engine;
  obs::SpanId connect_span = obs::tracer().begin("workflow.connect+privilege", "workflow");
  analysis::Snapshot snapshot = engine.analyze_dataplane(production);
  obs::tracer().end(connect_span);
  const dp::Dataplane& dataplane = *snapshot.dataplane;
  clock.advance(latency.login_ms + latency.ticket_review_ms + latency.privilege_gen_ms);
  record_step(result, {"connect+privilege",
                       static_cast<double>(latency.login_ms + latency.ticket_review_ms +
                                           latency.privilege_gen_ms),
                       generate_watch.elapsed_ms()});

  // Step 2: set up the twin network (slice + scrub + privileges + boot).
  // Construction runs through the artifacts API so the workflow exercises
  // the same build+instantiate split the enforcement service caches.
  util::Stopwatch twin_watch;
  obs::SpanId setup_span = obs::tracer().begin("workflow.twin-setup", "workflow");
  twin::TwinArtifacts artifacts =
      twin::build_twin_artifacts(production, dataplane, ticket, strategy);
  twin::TwinNetwork twin = twin::TwinNetwork::instantiate(artifacts, ticket);
  obs::tracer().end(setup_span);
  util::VirtualMillis boot =
      latency.twin_boot_per_device_ms *
      static_cast<util::VirtualMillis>(twin.slice().devices.size());
  clock.advance(boot);
  enforcer.audit_event(clock, technician.name, enforce::AuditCategory::Session,
                       "twin created for ticket #" + std::to_string(ticket.id) + " (" +
                           std::to_string(twin.slice().devices.size()) + " devices)");
  record_step(result, {"twin-setup", static_cast<double>(boot), twin_watch.elapsed_ms()});

  // Step 3: perform operations inside the twin.
  util::Stopwatch operate_watch;
  util::VirtualMillis human = 0;
  {
    obs::ScopedSpan operate_span("workflow.operate", "workflow");
    for (const std::string& line : fix_script) {
      twin::ParsedCommand command = twin::parse_command(line);
      human += latency.command_cost(command);
      twin::CommandResult outcome = twin.run(line);
      enforcer.audit_event(clock, technician.name, enforce::AuditCategory::Command,
                           line + (outcome.ok ? " [ok]" : " [failed/denied]"));
    }
  }
  clock.advance(human);
  result.commands_denied = twin.monitor().denied_count();
  record_step(result, {"operate", static_cast<double>(human), operate_watch.elapsed_ms()});

  // Step 4: verify & schedule through the policy enforcer.
  util::Stopwatch verify_watch;
  std::vector<cfg::ConfigChange> changes = twin.extract_changes();
  enforce::EnforcementReport report;
  {
    obs::ScopedSpan verify_span("workflow.verify+schedule", "workflow");
    report = enforcer.enforce(production, changes, twin.privileges(), clock, technician.name);
  }
  util::VirtualMillis push =
      latency.push_per_change_ms * static_cast<util::VirtualMillis>(changes.size());
  clock.advance(push);
  record_step(result,
              {"verify+schedule", static_cast<double>(push), verify_watch.elapsed_ms()});

  result.changes_applied = report.applied;
  result.issue_resolved = resolved(production);
  return result;
}

}  // namespace heimdall::msp
