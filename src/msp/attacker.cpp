#include "msp/attacker.hpp"

namespace heimdall::msp {

AttackScript data_exfiltration_attack(const std::vector<net::DeviceId>& targets) {
  AttackScript script;
  script.name = "apt10-exfiltration";
  script.goal = "harvest credentials/configs from every reachable device, then persist";
  for (const net::DeviceId& device : targets) {
    script.commands.push_back("show config " + device.str());
  }
  if (!targets.empty()) {
    script.commands.push_back("secret " + targets.front().str() +
                              " enable_password attacker-owned");
  }
  return script;
}

AttackScript careless_erase(const net::DeviceId& gateway) {
  AttackScript script;
  script.name = "careless-erase";
  script.goal = "accidentally wipe the gateway router (the 'rm -rf' moment)";
  script.commands = {"erase " + gateway.str()};
  return script;
}

AttackScript insider_acl_attack(const net::DeviceId& device, const std::string& acl,
                                const std::string& legitimate_fix,
                                const std::string& malicious_entry) {
  AttackScript script;
  script.name = "insider-acl";
  script.goal = "hide a malicious permit next to a legitimate ACL fix";
  script.commands = {
      legitimate_fix,
      "acl " + device.str() + " " + acl + " add 0 " + malicious_entry,
  };
  return script;
}

}  // namespace heimdall::msp
