// Trouble tickets: the unit of work an MSP technician receives (paper §2.1,
// workflow step 1). Header-only so the twin module can consume tickets
// without a link-time dependency on the MSP substrate.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "netmodel/acl.hpp"
#include "netmodel/types.hpp"
#include "privilege/generator.hpp"

namespace heimdall::msp {

/// Lifecycle state of a ticket.
enum class TicketState : std::uint8_t { Open, InProgress, Resolved, Closed };

inline std::string to_string(TicketState state) {
  switch (state) {
    case TicketState::Open: return "open";
    case TicketState::InProgress: return "in-progress";
    case TicketState::Resolved: return "resolved";
    case TicketState::Closed: return "closed";
  }
  return "open";
}

/// One trouble ticket.
struct Ticket {
  int id = 0;
  priv::TaskClass task = priv::TaskClass::Connectivity;
  std::string description;
  /// Devices named by the reporter (e.g. the two hosts that cannot talk).
  std::vector<net::DeviceId> affected;
  /// The reported failing flow, when the ticket is about connectivity.
  std::optional<net::Flow> flow;
  TicketState state = TicketState::Open;

  /// Convenience factory for "src cannot reach dst" tickets.
  static Ticket connectivity(int id, const net::DeviceId& src, const net::DeviceId& dst,
                             std::string description, priv::TaskClass task) {
    Ticket ticket;
    ticket.id = id;
    ticket.task = task;
    ticket.description = std::move(description);
    ticket.affected = {src, dst};
    return ticket;
  }
};

}  // namespace heimdall::msp
