// Ticketing system (paper §2.1, Figure 1): tickets are created by the
// network admin or by a monitoring system, assigned to MSP technicians,
// and closed with resolution notes. The monitoring hook turns policy
// violations into connectivity tickets automatically.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "msp/ticket.hpp"
#include "spec/verify.hpp"

namespace heimdall::msp {

/// One ticket's record inside the system.
struct TicketRecord {
  Ticket ticket;
  std::string assignee;
  std::vector<std::string> notes;
};

/// The MSP-side ticket queue with a validated lifecycle:
/// Open -> InProgress -> Resolved -> Closed.
class TicketingSystem {
 public:
  /// Files a ticket. A zero id is replaced with the next free id. Returns
  /// the assigned id.
  int open(Ticket ticket);

  /// Lookup; throws NotFoundError for unknown ids.
  const TicketRecord& record(int id) const;

  /// Tickets in a given state, ordered by id.
  std::vector<int> in_state(TicketState state) const;

  std::size_t size() const { return records_.size(); }

  /// Open -> InProgress, recording the technician. Throws InvariantError on
  /// invalid transitions.
  void assign(int id, std::string technician);

  /// InProgress -> Resolved with a resolution note.
  void resolve(int id, std::string note);

  /// Resolved -> Closed (admin sign-off).
  void close(int id);

  /// Free-form annotation at any state.
  void annotate(int id, std::string note);

  /// Monitoring hook: verifies `network` and opens one Connectivity ticket
  /// per violated reachability/waypoint policy whose pair has no open or
  /// in-progress ticket yet. Returns the newly-opened ids.
  std::vector<int> monitor(const net::Network& network, const spec::PolicyVerifier& verifier);

 private:
  TicketRecord& mutable_record(int id);

  std::map<int, TicketRecord> records_;
  int next_id_ = 1;
};

}  // namespace heimdall::msp
