#include "msp/ticketing.hpp"

#include "util/error.hpp"

namespace heimdall::msp {

using util::InvariantError;
using util::NotFoundError;

int TicketingSystem::open(Ticket ticket) {
  if (ticket.id == 0) ticket.id = next_id_;
  util::require(records_.find(ticket.id) == records_.end(),
                "ticket id already in use: " + std::to_string(ticket.id));
  ticket.state = TicketState::Open;
  next_id_ = std::max(next_id_, ticket.id + 1);
  int id = ticket.id;
  records_.emplace(id, TicketRecord{std::move(ticket), "", {}});
  return id;
}

const TicketRecord& TicketingSystem::record(int id) const {
  auto it = records_.find(id);
  if (it == records_.end()) throw NotFoundError("no ticket #" + std::to_string(id));
  return it->second;
}

TicketRecord& TicketingSystem::mutable_record(int id) {
  auto it = records_.find(id);
  if (it == records_.end()) throw NotFoundError("no ticket #" + std::to_string(id));
  return it->second;
}

std::vector<int> TicketingSystem::in_state(TicketState state) const {
  std::vector<int> out;
  for (const auto& [id, entry] : records_) {
    if (entry.ticket.state == state) out.push_back(id);
  }
  return out;
}

void TicketingSystem::assign(int id, std::string technician) {
  TicketRecord& entry = mutable_record(id);
  util::require(entry.ticket.state == TicketState::Open,
                "ticket #" + std::to_string(id) + " is not open (state: " +
                    to_string(entry.ticket.state) + ")");
  util::require(!technician.empty(), "assignee must be non-empty");
  entry.ticket.state = TicketState::InProgress;
  entry.assignee = std::move(technician);
  entry.notes.push_back("assigned to " + entry.assignee);
}

void TicketingSystem::resolve(int id, std::string note) {
  TicketRecord& entry = mutable_record(id);
  util::require(entry.ticket.state == TicketState::InProgress,
                "ticket #" + std::to_string(id) + " is not in progress");
  entry.ticket.state = TicketState::Resolved;
  entry.notes.push_back("resolved: " + note);
}

void TicketingSystem::close(int id) {
  TicketRecord& entry = mutable_record(id);
  util::require(entry.ticket.state == TicketState::Resolved,
                "ticket #" + std::to_string(id) + " is not resolved");
  entry.ticket.state = TicketState::Closed;
  entry.notes.push_back("closed");
}

void TicketingSystem::annotate(int id, std::string note) {
  mutable_record(id).notes.push_back(std::move(note));
}

std::vector<int> TicketingSystem::monitor(const net::Network& network,
                                          const spec::PolicyVerifier& verifier) {
  std::vector<int> opened;
  spec::VerificationReport report = verifier.verify_network(network);
  for (const spec::Violation& violation : report.violations) {
    if (violation.policy.type == spec::PolicyType::Isolation) continue;  // security alert, not a ticket
    bool already_tracked = false;
    for (const auto& [id, entry] : records_) {
      if (entry.ticket.state != TicketState::Open &&
          entry.ticket.state != TicketState::InProgress)
        continue;
      if (entry.ticket.affected.size() == 2 && entry.ticket.affected[0] == violation.policy.src &&
          entry.ticket.affected[1] == violation.policy.dst) {
        already_tracked = true;
        break;
      }
    }
    if (already_tracked) continue;
    Ticket ticket = Ticket::connectivity(
        0, violation.policy.src, violation.policy.dst,
        "monitoring: " + violation.policy.to_string() + " (" + violation.detail + ")",
        priv::TaskClass::Connectivity);
    opened.push_back(open(std::move(ticket)));
  }
  return opened;
}

}  // namespace heimdall::msp
