// End-to-end ticket-resolution workflows: the baseline ("current approach")
// and the Heimdall workflow, with per-step timing (Figure 7's quantity).
//
// Time accounting: human actions advance a virtual clock via the
// LatencyModel; machine steps (twin setup, verification, scheduling) are
// measured with a real stopwatch. Each step's reported milliseconds is the
// sum of both, so Figure 7's bars have the same composition as the paper's
// (operations dominated by human time, Heimdall adding setup + verify).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "enforcer/enforcer.hpp"
#include "msp/technician.hpp"
#include "msp/ticket.hpp"
#include "twin/twin.hpp"

namespace heimdall::msp {

/// One timed workflow step.
struct StepTiming {
  std::string step;
  double human_ms = 0;    ///< virtual-clock time
  double machine_ms = 0;  ///< measured compute time

  double total_ms() const { return human_ms + machine_ms; }
};

/// Outcome of running one workflow on one issue.
struct WorkflowResult {
  std::string workflow;  ///< "current" or "heimdall"
  std::vector<StepTiming> steps;
  bool issue_resolved = false;
  bool changes_applied = false;
  std::size_t commands_denied = 0;

  double total_ms() const;
  const StepTiming* step(const std::string& name) const;
};

/// Checks whether the production network is healthy again after the fix.
using ResolvedCheck = std::function<bool(const net::Network&)>;

/// Baseline: login -> operate directly on production -> save (unverified).
WorkflowResult run_current_workflow(net::Network& production, const Ticket& ticket,
                                    const std::vector<std::string>& fix_script,
                                    const Technician& technician,
                                    const ResolvedCheck& resolved);

/// Heimdall: generate Privilege_msp + twin -> operate in the twin ->
/// verify & schedule through the policy enforcer.
WorkflowResult run_heimdall_workflow(net::Network& production,
                                     enforce::PolicyEnforcer& enforcer, const Ticket& ticket,
                                     const std::vector<std::string>& fix_script,
                                     const Technician& technician, const ResolvedCheck& resolved,
                                     twin::SliceStrategy strategy = twin::SliceStrategy::TaskDriven);

}  // namespace heimdall::msp
