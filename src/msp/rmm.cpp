#include "msp/rmm.hpp"

#include "config/diff.hpp"
#include "util/error.hpp"

namespace heimdall::msp {

using namespace heimdall::net;

RmmSession::RmmSession(Network& production, std::string user)
    : production_(production), emulation_(production), user_(std::move(user)) {}

twin::CommandResult RmmSession::execute(std::string_view command_line) {
  history_.emplace_back(command_line);
  twin::ParsedCommand command = twin::parse_command(command_line);
  return emulation_.execute(command);
}

std::size_t RmmSession::commit() {
  std::vector<cfg::ConfigChange> changes = emulation_.session_changes();
  cfg::apply_changes(production_, changes);
  return changes.size();
}

RmmServer::RmmServer(Network& production) : production_(production) {
  for (const Device& device : production.devices()) {
    agents_.push_back(RmmAgent{device.id(), true});
  }
}

bool RmmServer::authenticate(const Credentials& credentials) const {
  for (const RmmUser& user : users_) {
    if (user.user != credentials.user) continue;
    if (user.password != credentials.password) return false;
    if (user.requires_mfa && !credentials.mfa_passed) return false;
    return true;
  }
  return false;
}

RmmSession RmmServer::open_session(const Credentials& credentials) {
  util::require(authenticate(credentials),
                "RMM authentication failed for user '" + credentials.user + "'");
  return RmmSession(production_, credentials.user);
}

}  // namespace heimdall::msp
