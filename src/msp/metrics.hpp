// Attack-surface and feasibility metrics (paper §5).
//
// Attack_Surface(%) = ( ΣC_n / ΣA_n · 0.5  +  VP / P · 0.5 ) · 100
//   C_n = commands *allowed* to the technician on node n,
//   A_n = commands *available* on node n,
//   VP  = policies violable by some allowed command on an accessible node
//         (found by searching a battery of concrete mutations),
//   P   = total provided policies.
// Feasibility = can the technician still reach (and mutate) the root-cause
// node of the injected issue.
#pragma once

#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "config/diff.hpp"
#include "netmodel/network.hpp"
#include "privilege/spec.hpp"
#include "spec/verify.hpp"

namespace heimdall::msp {

/// Every concrete (action, resource) command available on `device` — the
/// A_n catalog. Deterministic order.
std::vector<std::pair<priv::Action, priv::Resource>> device_command_catalog(
    const net::Device& device);

/// One candidate malicious/destructive mutation used by the VP search.
struct AttackProbe {
  cfg::ConfigChange change;
  priv::Action action = priv::Action::ShowConfig;
  priv::Resource resource;
};

/// The battery of concrete single-change probes on `device`: interface
/// shutdowns, deny-any/permit-any ACL prepends, route/network removals,
/// OSPF process disable, switchport moves, secret changes.
std::vector<AttackProbe> device_attack_probes(const net::Device& device);

/// Inputs for one attack-surface evaluation.
struct SurfaceQuery {
  /// Devices the technician can see/touch under the strategy being scored.
  std::set<net::DeviceId> accessible;
  /// Privilege_msp in force; nullptr means unrestricted root on accessible
  /// nodes (the All / Neighbor baselines).
  const priv::PrivilegeSpec* privileges = nullptr;
};

/// The metric's components plus the final percentage.
struct SurfaceResult {
  std::size_t allowed_commands = 0;    ///< Σ C_n
  std::size_t available_commands = 0;  ///< Σ A_n
  std::size_t violable_policies = 0;   ///< VP
  std::size_t total_policies = 0;      ///< P
  double surface_pct = 0;

  double exposure_ratio() const {
    return available_commands == 0
               ? 0.0
               : static_cast<double>(allowed_commands) / static_cast<double>(available_commands);
  }
};

/// Computes the attack surface of `query` against `production` + policies.
SurfaceResult compute_attack_surface(const net::Network& production,
                                     const spec::PolicyVerifier& policies,
                                     const SurfaceQuery& query);

/// Feasibility: the root-cause device is accessible AND at least one
/// mutating command is allowed on it.
bool is_feasible(const net::DeviceId& root_cause, const net::Network& production,
                 const SurfaceQuery& query);

}  // namespace heimdall::msp
