// Attacker and accident models from the paper's motivating incidents (§2.2):
// the APT10-style data-exfiltration campaign (Figure 2) and the careless
// technician wiping a gateway (Figure 3), plus the §4.3 insider who slips a
// malicious rule change in next to a legitimate fix.
#pragma once

#include <string>
#include <vector>

#include "netmodel/types.hpp"

namespace heimdall::msp {

/// A named sequence of console commands pursuing a malicious/accidental goal.
struct AttackScript {
  std::string name;
  std::string goal;
  std::vector<std::string> commands;
};

/// APT10-style reconnaissance + credential theft: read configs (hunting for
/// secrets) on every given device, then try to rotate a credential to
/// establish persistence.
AttackScript data_exfiltration_attack(const std::vector<net::DeviceId>& targets);

/// Careless technician (Figure 3): erases the gateway's configuration.
AttackScript careless_erase(const net::DeviceId& gateway);

/// The §4.3 insider: fixes the ticket legitimately but also opens a path to
/// a sensitive host by inserting `malicious_entry` into `acl` on `device`.
AttackScript insider_acl_attack(const net::DeviceId& device, const std::string& acl,
                                const std::string& legitimate_fix,
                                const std::string& malicious_entry);

}  // namespace heimdall::msp
