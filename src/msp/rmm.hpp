// Baseline RMM (Remote Management & Monitoring) substrate — the paper's
// "current approach" (§2.1, Figure 1): a central server authenticates a
// technician, after which agents with root privileges execute commands
// directly on production devices, with no mediation and no tamper-evident
// audit. Heimdall's evaluation compares against exactly this workflow.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "twin/emulation.hpp"

namespace heimdall::msp {

/// Login credentials (the baseline's only protection).
struct Credentials {
  std::string user;
  std::string password;
  bool mfa_passed = false;
};

/// A registered RMM user.
struct RmmUser {
  std::string user;
  std::string password;
  bool requires_mfa = false;
};

/// An agent deployed on one device. Always root — that is the point.
struct RmmAgent {
  net::DeviceId device;
  bool root = true;
};

/// A direct-access session on the production network. Commands execute with
/// no privilege mediation; commit() pushes all session changes to production
/// with no verification.
class RmmSession {
 public:
  RmmSession(net::Network& production, std::string user);

  /// Executes a console command with root privileges. Every command is
  /// permitted; semantic failures still surface as ok=false.
  twin::CommandResult execute(std::string_view command_line);

  /// Pushes every change made this session into the production network,
  /// unverified — the baseline behavior.
  std::size_t commit();

  /// Plain (non-tamper-evident) command history.
  const std::vector<std::string>& history() const { return history_; }

  const net::Network& view() const { return emulation_.network(); }
  twin::EmulationLayer& emulation() { return emulation_; }

 private:
  net::Network& production_;
  twin::EmulationLayer emulation_;
  std::string user_;
  std::vector<std::string> history_;
};

/// The central RMM server.
class RmmServer {
 public:
  /// Deploys root agents on every device of `production`.
  explicit RmmServer(net::Network& production);

  void register_user(RmmUser user) { users_.push_back(std::move(user)); }

  /// Authentication: password match, plus MFA when required.
  bool authenticate(const Credentials& credentials) const;

  /// Opens a session; throws InvariantError when authentication fails.
  RmmSession open_session(const Credentials& credentials);

  const std::vector<RmmAgent>& agents() const { return agents_; }

 private:
  net::Network& production_;
  std::vector<RmmAgent> agents_;
  std::vector<RmmUser> users_;
};

}  // namespace heimdall::msp
