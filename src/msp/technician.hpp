// Scripted technician + deterministic latency model.
//
// The paper's pilot study "levels the playing field" by having the
// technician run a prepared list of commands per issue (§5). We reproduce
// exactly that: a scripted technician executes the prepared commands, and a
// virtual-clock latency model accounts for the human time (think, type,
// read) that dominates Figure 7. Machine steps are measured separately by
// the workflow harness.
#pragma once

#include <string>
#include <vector>

#include "twin/console.hpp"
#include "util/clock.hpp"

namespace heimdall::msp {

/// Deterministic human / provisioning latencies (virtual milliseconds).
/// Values chosen to land in the regime the paper reports (tens of seconds
/// per issue); see EXPERIMENTS.md for the calibration note.
struct LatencyModel {
  util::VirtualMillis login_ms = 8000;              ///< authenticate to RMM / portal
  util::VirtualMillis ticket_review_ms = 5000;      ///< read the ticket
  util::VirtualMillis command_type_ms = 3000;       ///< think + type one command
  util::VirtualMillis show_read_ms = 2000;          ///< read a show/ping output
  util::VirtualMillis save_ms = 2000;               ///< save/close out
  util::VirtualMillis twin_boot_per_device_ms = 2000;  ///< emulated node provisioning
  util::VirtualMillis privilege_gen_ms = 1000;      ///< Privilege_msp generation overhead
  util::VirtualMillis push_per_change_ms = 1500;    ///< scheduled push of one change

  /// Human cost of one command: typing plus reading its output when it is a
  /// read-only command.
  util::VirtualMillis command_cost(const twin::ParsedCommand& command) const;
};

/// A technician identity with its latency profile.
struct Technician {
  std::string name = "msp-tech";
  LatencyModel latency;
};

}  // namespace heimdall::msp
