#include "msp/technician.hpp"

#include "privilege/action.hpp"

namespace heimdall::msp {

util::VirtualMillis LatencyModel::command_cost(const twin::ParsedCommand& command) const {
  util::VirtualMillis cost = command_type_ms;
  if (priv::is_read_only(command.action)) cost += show_read_ms;
  return cost;
}

}  // namespace heimdall::msp
