#include "netmodel/device.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace heimdall::net {

std::string to_string(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::Router: return "router";
    case DeviceKind::Switch: return "switch";
    case DeviceKind::Host: return "host";
  }
  return "router";
}

DeviceKind parse_device_kind(std::string_view text) {
  std::string lower = util::to_lower(text);
  if (lower == "router") return DeviceKind::Router;
  if (lower == "switch") return DeviceKind::Switch;
  if (lower == "host") return DeviceKind::Host;
  throw util::ParseError("unknown device kind: '" + std::string(text) + "'");
}

std::string to_string(SwitchportMode mode) {
  switch (mode) {
    case SwitchportMode::None: return "none";
    case SwitchportMode::Access: return "access";
    case SwitchportMode::Trunk: return "trunk";
  }
  return "none";
}

Interface& Device::add_interface(Interface iface) {
  util::require(!iface.id.empty(), "interface must have a name");
  util::require(find_interface(iface.id) == nullptr,
                "duplicate interface '" + iface.id.str() + "' on device '" + id_.str() + "'");
  interfaces_.push_back(std::move(iface));
  return interfaces_.back();
}

Interface& Device::interface(const InterfaceId& id) {
  Interface* found = find_interface(id);
  if (!found)
    throw util::NotFoundError("no interface '" + id.str() + "' on device '" + id_.str() + "'");
  return *found;
}

const Interface& Device::interface(const InterfaceId& id) const {
  return const_cast<Device*>(this)->interface(id);
}

Interface* Device::find_interface(const InterfaceId& id) {
  for (Interface& iface : interfaces_)
    if (iface.id == id) return &iface;
  return nullptr;
}

const Interface* Device::find_interface(const InterfaceId& id) const {
  return const_cast<Device*>(this)->find_interface(id);
}

const Interface* Device::interface_with_address(Ipv4Address address) const {
  for (const Interface& iface : interfaces_) {
    if (iface.address && iface.address->ip == address) return &iface;
  }
  return nullptr;
}

Acl& Device::add_acl(Acl acl) {
  util::require(!acl.name.empty(), "ACL must have a name");
  util::require(find_acl(acl.name) == nullptr,
                "duplicate ACL '" + acl.name + "' on device '" + id_.str() + "'");
  acls_.push_back(std::move(acl));
  return acls_.back();
}

Acl* Device::find_acl(std::string_view name) {
  for (Acl& acl : acls_)
    if (acl.name == name) return &acl;
  return nullptr;
}

const Acl* Device::find_acl(std::string_view name) const {
  return const_cast<Device*>(this)->find_acl(name);
}

void Device::remove_acl(std::string_view name) {
  auto it = std::remove_if(acls_.begin(), acls_.end(),
                           [&](const Acl& acl) { return acl.name == name; });
  acls_.erase(it, acls_.end());
}

bool Device::has_vlan(VlanId vlan) const {
  return std::find(vlans_.begin(), vlans_.end(), vlan) != vlans_.end();
}

}  // namespace heimdall::net
