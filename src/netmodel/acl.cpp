#include "netmodel/acl.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace heimdall::net {

std::string to_string(IpProtocol protocol) {
  switch (protocol) {
    case IpProtocol::Any: return "ip";
    case IpProtocol::Icmp: return "icmp";
    case IpProtocol::Tcp: return "tcp";
    case IpProtocol::Udp: return "udp";
  }
  return "ip";
}

IpProtocol parse_protocol(std::string_view text) {
  std::string lower = util::to_lower(text);
  if (lower == "ip" || lower == "any") return IpProtocol::Any;
  if (lower == "icmp") return IpProtocol::Icmp;
  if (lower == "tcp") return IpProtocol::Tcp;
  if (lower == "udp") return IpProtocol::Udp;
  throw util::ParseError("unknown IP protocol: '" + std::string(text) + "'");
}

namespace {

std::string render_prefix(const Ipv4Prefix& prefix) {
  if (prefix.length() == 0) return "any";
  if (prefix.length() == 32) return "host " + prefix.network().to_string();
  return prefix.network().to_string() + " " + prefix.wildcard().to_string();
}

std::string render_ports(const PortRange& ports) {
  if (ports.is_any()) return "";
  if (ports.lo == ports.hi) return " eq " + std::to_string(ports.lo);
  return " range " + std::to_string(ports.lo) + " " + std::to_string(ports.hi);
}

}  // namespace

std::string AclEntry::to_string() const {
  std::string out = action == Action::Permit ? "permit" : "deny";
  out += " " + net::to_string(protocol);
  out += " " + render_prefix(src) + render_ports(src_ports);
  out += " " + render_prefix(dst) + render_ports(dst_ports);
  return out;
}

std::string Flow::to_string() const {
  std::string out = net::to_string(protocol) + " " + src_ip.to_string();
  if (src_port != 0) out += ":" + std::to_string(src_port);
  out += " -> " + dst_ip.to_string();
  if (dst_port != 0) out += ":" + std::to_string(dst_port);
  return out;
}

bool entry_matches(const AclEntry& entry, const Flow& flow) {
  if (entry.protocol != IpProtocol::Any && flow.protocol != IpProtocol::Any &&
      entry.protocol != flow.protocol)
    return false;
  if (!entry.src.contains(flow.src_ip)) return false;
  if (!entry.dst.contains(flow.dst_ip)) return false;
  // Port selectors only constrain TCP/UDP flows.
  bool has_ports = flow.protocol == IpProtocol::Tcp || flow.protocol == IpProtocol::Udp;
  if (has_ports) {
    if (!entry.src_ports.matches(flow.src_port)) return false;
    if (!entry.dst_ports.matches(flow.dst_port)) return false;
  } else {
    // An entry with a port constraint cannot match a portless protocol.
    if (!entry.src_ports.is_any() || !entry.dst_ports.is_any()) return false;
  }
  return true;
}

bool acl_permits(const Acl& acl, const Flow& flow) {
  for (const AclEntry& entry : acl.entries) {
    if (entry_matches(entry, flow)) return entry.action == AclEntry::Action::Permit;
  }
  return false;  // implicit deny
}

}  // namespace heimdall::net
