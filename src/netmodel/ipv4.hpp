// IPv4 address and prefix value types.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace heimdall::net {

/// An IPv4 address stored as a host-order 32-bit integer.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t value) : value_(value) {}

  /// Builds from dotted octets: Ipv4Address::of(10, 0, 1, 2).
  static constexpr Ipv4Address of(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d) {
    return Ipv4Address((std::uint32_t(a) << 24) | (std::uint32_t(b) << 16) |
                       (std::uint32_t(c) << 8) | std::uint32_t(d));
  }

  /// Parses "a.b.c.d"; throws util::ParseError on malformed input.
  static Ipv4Address parse(std::string_view text);

  /// Parses, returning nullopt on malformed input.
  static std::optional<Ipv4Address> try_parse(std::string_view text);

  constexpr std::uint32_t value() const { return value_; }

  /// Dotted-quad representation.
  std::string to_string() const;

  auto operator<=>(const Ipv4Address&) const = default;

 private:
  std::uint32_t value_ = 0;
};

/// An IPv4 prefix (address + mask length), canonicalized so host bits are 0.
class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() = default;

  /// Canonicalizes: host bits below `length` are cleared.
  Ipv4Prefix(Ipv4Address address, unsigned length);

  /// Parses "a.b.c.d/len"; throws util::ParseError on malformed input.
  static Ipv4Prefix parse(std::string_view text);

  /// Builds from an address and a dotted netmask like 255.255.255.0.
  static Ipv4Prefix from_netmask(Ipv4Address address, Ipv4Address netmask);

  Ipv4Address network() const { return network_; }
  unsigned length() const { return length_; }

  /// Dotted netmask (e.g. /24 -> 255.255.255.0).
  Ipv4Address netmask() const;

  /// Inverted mask used by Cisco ACL/OSPF syntax (/24 -> 0.0.0.255).
  Ipv4Address wildcard() const;

  /// Highest address in the prefix.
  Ipv4Address broadcast() const;

  bool contains(Ipv4Address address) const;
  bool contains(const Ipv4Prefix& other) const;
  bool overlaps(const Ipv4Prefix& other) const;

  /// "a.b.c.d/len".
  std::string to_string() const;

  auto operator<=>(const Ipv4Prefix&) const = default;

 private:
  Ipv4Address network_;
  unsigned length_ = 0;
};

/// Default route 0.0.0.0/0.
inline Ipv4Prefix default_route() { return Ipv4Prefix(Ipv4Address(0), 0); }

/// A host address together with its subnet mask length, as configured on an
/// interface ("ip address 10.0.1.1 255.255.255.0"). Unlike Ipv4Prefix this
/// preserves the host bits.
struct InterfaceAddress {
  Ipv4Address ip;
  unsigned prefix_length = 24;

  auto operator<=>(const InterfaceAddress&) const = default;

  /// The connected subnet (host bits cleared).
  Ipv4Prefix subnet() const { return Ipv4Prefix(ip, prefix_length); }

  /// The host route for this address (a /32).
  Ipv4Prefix host_prefix() const { return Ipv4Prefix(ip, 32); }

  /// Parses "a.b.c.d/len".
  static InterfaceAddress parse(std::string_view text);

  std::string to_string() const {
    return ip.to_string() + "/" + std::to_string(prefix_length);
  }
};

}  // namespace heimdall::net
