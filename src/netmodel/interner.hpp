// Dense-id interning for network identifiers, plus the per-snapshot
// NetworkIndex the compiled forwarding plane runs on.
//
// The object model keys everything by DeviceId/InterfaceId strings; every
// hop of a flow trace then pays string hashing and map walks. NetworkIndex
// assigns each device and interface a dense uint32_t once per snapshot and
// exposes flat side tables (interface attributes, resolved ACL bindings,
// interface-owned IPs, host list), so hot loops index vectors instead of
// chasing string-keyed maps.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "netmodel/network.hpp"

namespace heimdall::net {

/// Maps strings to dense ids, first-come first-served. Ids are stable for
/// the interner's lifetime; `name(id)` is the inverse.
class Interner {
 public:
  static constexpr std::uint32_t kInvalid = 0xffffffffu;

  /// Returns the id of `name`, assigning the next dense id on first sight.
  std::uint32_t intern(const std::string& name);

  /// Id of `name`, or kInvalid when never interned.
  std::uint32_t find(const std::string& name) const;

  const std::string& name(std::uint32_t id) const { return names_[id]; }
  std::uint32_t size() const { return static_cast<std::uint32_t>(names_.size()); }

 private:
  std::unordered_map<std::string, std::uint32_t> ids_;
  std::vector<std::string> names_;
};

/// Immutable dense-id view of one Network snapshot. Self-contained: it
/// copies everything the trace hot path reads (addresses, shutdown flags,
/// ACL bodies), so it stays valid after the source Network is gone.
class NetworkIndex {
 public:
  static constexpr std::uint32_t kInvalid = 0xffffffffu;

  struct DeviceEntry {
    DeviceId id;
    DeviceKind kind = DeviceKind::Router;
    /// This device's interfaces occupy [iface_begin, iface_end) in the
    /// global interface table.
    std::uint32_t iface_begin = 0;
    std::uint32_t iface_end = 0;
    /// First interface with an address (the device's primary IP), or kInvalid.
    std::uint32_t primary_iface = kInvalid;
  };

  struct InterfaceEntry {
    InterfaceId id;
    std::uint32_t device = kInvalid;
    std::optional<InterfaceAddress> address;
    bool shutdown = false;
    /// ACL bindings resolved to indices into acls(); kInvalid when the
    /// interface has no binding or the name dangles (both permit-all).
    std::uint32_t acl_in = kInvalid;
    std::uint32_t acl_out = kInvalid;
  };

  static NetworkIndex build(const Network& network);

  std::uint32_t device_count() const { return static_cast<std::uint32_t>(devices_.size()); }
  std::uint32_t interface_count() const { return static_cast<std::uint32_t>(ifaces_.size()); }

  const DeviceEntry& device(std::uint32_t idx) const { return devices_[idx]; }
  const InterfaceEntry& interface(std::uint32_t idx) const { return ifaces_[idx]; }
  const DeviceId& device_id(std::uint32_t idx) const { return devices_[idx].id; }
  const InterfaceId& interface_id(std::uint32_t idx) const { return ifaces_[idx].id; }

  /// Dense id of `id`, or kInvalid when absent.
  std::uint32_t find_device(const DeviceId& id) const { return device_ids_.find(id.str()); }

  /// Dense id of `iface` on device `device_idx`, or kInvalid.
  std::uint32_t find_interface(std::uint32_t device_idx, const InterfaceId& iface) const;

  /// ACL bodies copied from every device, in (device, declaration) order.
  const std::vector<Acl>& acls() const { return acls_; }

  /// First interface configured with exactly `ip`, in device/interface
  /// insertion order — mirrors Network::endpoint_of_ip. kInvalid when none.
  std::uint32_t iface_of_ip(Ipv4Address ip) const;

  /// True when any interface of `device_idx` (up or down) owns `ip` —
  /// mirrors Device::interface_with_address.
  bool device_owns_ip(std::uint32_t device_idx, Ipv4Address ip) const;

  /// Host-kind devices in insertion order.
  const std::vector<std::uint32_t>& hosts() const { return hosts_; }

  /// Primary IP of `device_idx` (first interface with an address).
  std::optional<Ipv4Address> primary_ip(std::uint32_t device_idx) const;

 private:
  static std::uint64_t owner_key(std::uint32_t device_idx, Ipv4Address ip) {
    return (static_cast<std::uint64_t>(device_idx) << 32) | ip.value();
  }

  Interner device_ids_;
  std::vector<DeviceEntry> devices_;
  std::vector<InterfaceEntry> ifaces_;
  std::vector<Acl> acls_;
  std::unordered_map<std::uint32_t, std::uint32_t> ip_iface_;  ///< ip -> first owner iface
  std::unordered_set<std::uint64_t> owned_ips_;                ///< (device << 32) | ip
  std::vector<std::uint32_t> hosts_;
};

}  // namespace heimdall::net
