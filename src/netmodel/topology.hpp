// Physical topology: links between device interfaces, with graph queries
// (neighbors, BFS paths) used by the twin-network slicer.
#pragma once

#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "netmodel/types.hpp"

namespace heimdall::net {

/// An undirected physical link between two interface endpoints.
struct Link {
  Endpoint a;
  Endpoint b;

  auto operator<=>(const Link&) const = default;

  /// True when `endpoint` is one side of the link.
  bool touches(const Endpoint& endpoint) const { return a == endpoint || b == endpoint; }

  /// The endpoint opposite `endpoint`; throws when the link does not touch it.
  const Endpoint& other(const Endpoint& endpoint) const;

  std::string to_string() const { return a.to_string() + " <-> " + b.to_string(); }
};

/// The link graph. Devices themselves live in Network; Topology only knows
/// endpoints.
class Topology {
 public:
  /// Adds a link; throws InvariantError when either endpoint already has a
  /// link (interfaces are point-to-point in this model).
  void add_link(Link link);

  const std::vector<Link>& links() const { return links_; }

  /// The link attached to `endpoint`, or nullptr.
  const Link* link_at(const Endpoint& endpoint) const;

  /// The endpoint wired to `endpoint`, or nullopt when unwired.
  std::optional<Endpoint> peer_of(const Endpoint& endpoint) const;

  /// Devices adjacent to `device` (one hop over any link).
  std::vector<DeviceId> neighbors(const DeviceId& device) const;

  /// All devices mentioned by any link, sorted.
  std::vector<DeviceId> devices() const;

  /// Shortest device path (by hop count) between two devices; empty when
  /// unreachable. Both endpoints are included.
  std::vector<DeviceId> shortest_path(const DeviceId& from, const DeviceId& to) const;

  /// Every device lying on at least one shortest path between `from` and
  /// `to` (the union over equal-cost paths). Used by the task-driven slicer.
  std::set<DeviceId> devices_on_shortest_paths(const DeviceId& from, const DeviceId& to) const;

  bool operator==(const Topology&) const = default;

 private:
  std::vector<Link> links_;
};

}  // namespace heimdall::net
