#include "netmodel/interner.hpp"

namespace heimdall::net {

std::uint32_t Interner::intern(const std::string& name) {
  auto [it, inserted] = ids_.try_emplace(name, static_cast<std::uint32_t>(names_.size()));
  if (inserted) names_.push_back(name);
  return it->second;
}

std::uint32_t Interner::find(const std::string& name) const {
  auto it = ids_.find(name);
  return it == ids_.end() ? kInvalid : it->second;
}

NetworkIndex NetworkIndex::build(const Network& network) {
  NetworkIndex index;
  index.devices_.reserve(network.devices().size());

  for (const Device& device : network.devices()) {
    const std::uint32_t device_idx = index.device_ids_.intern(device.id().str());
    DeviceEntry entry;
    entry.id = device.id();
    entry.kind = device.kind();
    entry.iface_begin = static_cast<std::uint32_t>(index.ifaces_.size());

    // Resolve this device's ACLs into the global table up front so interface
    // bindings become indices.
    const std::uint32_t acl_base = static_cast<std::uint32_t>(index.acls_.size());
    for (const Acl& acl : device.acls()) index.acls_.push_back(acl);
    auto resolve_acl = [&](const std::string& name) -> std::uint32_t {
      if (name.empty()) return kInvalid;
      const std::vector<Acl>& acls = device.acls();
      for (std::uint32_t i = 0; i < acls.size(); ++i) {
        if (acls[i].name == name) return acl_base + i;
      }
      return kInvalid;  // dangling reference: permit-all, like the tracer
    };

    for (const Interface& iface : device.interfaces()) {
      const std::uint32_t iface_idx = static_cast<std::uint32_t>(index.ifaces_.size());
      InterfaceEntry rec;
      rec.id = iface.id;
      rec.device = device_idx;
      rec.address = iface.address;
      rec.shutdown = iface.shutdown;
      rec.acl_in = resolve_acl(iface.acl_in);
      rec.acl_out = resolve_acl(iface.acl_out);
      index.ifaces_.push_back(std::move(rec));

      if (iface.address) {
        if (entry.primary_iface == kInvalid) entry.primary_iface = iface_idx;
        index.ip_iface_.try_emplace(iface.address->ip.value(), iface_idx);
        index.owned_ips_.insert(owner_key(device_idx, iface.address->ip));
      }
    }
    entry.iface_end = static_cast<std::uint32_t>(index.ifaces_.size());
    if (device.is_host()) index.hosts_.push_back(device_idx);
    index.devices_.push_back(std::move(entry));
  }
  return index;
}

std::uint32_t NetworkIndex::find_interface(std::uint32_t device_idx,
                                           const InterfaceId& iface) const {
  const DeviceEntry& device = devices_[device_idx];
  for (std::uint32_t i = device.iface_begin; i < device.iface_end; ++i) {
    if (ifaces_[i].id == iface) return i;
  }
  return kInvalid;
}

std::uint32_t NetworkIndex::iface_of_ip(Ipv4Address ip) const {
  auto it = ip_iface_.find(ip.value());
  return it == ip_iface_.end() ? kInvalid : it->second;
}

bool NetworkIndex::device_owns_ip(std::uint32_t device_idx, Ipv4Address ip) const {
  return owned_ips_.count(owner_key(device_idx, ip)) != 0;
}

std::optional<Ipv4Address> NetworkIndex::primary_ip(std::uint32_t device_idx) const {
  const DeviceEntry& device = devices_[device_idx];
  if (device.primary_iface == kInvalid) return std::nullopt;
  return ifaces_[device.primary_iface].address->ip;
}

}  // namespace heimdall::net
