// Access control lists, Cisco extended-ACL style.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netmodel/ipv4.hpp"

namespace heimdall::net {

/// IP protocol selector for ACL entries.
enum class IpProtocol : std::uint8_t { Any, Icmp, Tcp, Udp };

std::string to_string(IpProtocol protocol);
IpProtocol parse_protocol(std::string_view text);

/// Inclusive port range. {0, 65535} matches any port.
struct PortRange {
  std::uint16_t lo = 0;
  std::uint16_t hi = 65535;

  bool matches(std::uint16_t port) const { return port >= lo && port <= hi; }
  bool is_any() const { return lo == 0 && hi == 65535; }
  auto operator<=>(const PortRange&) const = default;

  static PortRange any() { return {}; }
  static PortRange exactly(std::uint16_t port) { return {port, port}; }
};

/// One entry (line) of an access list; first match wins.
struct AclEntry {
  enum class Action : std::uint8_t { Permit, Deny };

  Action action = Action::Deny;
  IpProtocol protocol = IpProtocol::Any;
  Ipv4Prefix src;  // 0.0.0.0/0 == any
  Ipv4Prefix dst;
  PortRange src_ports = PortRange::any();
  PortRange dst_ports = PortRange::any();

  auto operator<=>(const AclEntry&) const = default;

  /// Cisco-style rendering, e.g. "permit tcp 10.0.1.0 0.0.0.255 any eq 80".
  std::string to_string() const;
};

/// A named access list. Evaluation is first-match with an implicit trailing
/// deny, as on Cisco IOS.
struct Acl {
  std::string name;
  std::vector<AclEntry> entries;

  auto operator<=>(const Acl&) const = default;
};

/// The flow tuple ACLs and the flow tracer operate on.
struct Flow {
  Ipv4Address src_ip;
  Ipv4Address dst_ip;
  IpProtocol protocol = IpProtocol::Any;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  auto operator<=>(const Flow&) const = default;

  std::string to_string() const;
};

/// Evaluates `flow` against `acl`; true = permitted. The implicit trailing
/// deny applies when no entry matches.
bool acl_permits(const Acl& acl, const Flow& flow);

/// True when `entry` matches `flow`.
bool entry_matches(const AclEntry& entry, const Flow& flow);

}  // namespace heimdall::net
