#include "netmodel/ipv4.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace heimdall::net {

namespace {

std::uint32_t mask_bits(unsigned length) {
  if (length == 0) return 0;
  return ~std::uint32_t{0} << (32 - length);
}

}  // namespace

Ipv4Address Ipv4Address::parse(std::string_view text) {
  auto parsed = try_parse(text);
  if (!parsed) throw util::ParseError("malformed IPv4 address: '" + std::string(text) + "'");
  return *parsed;
}

std::optional<Ipv4Address> Ipv4Address::try_parse(std::string_view text) {
  auto parts = util::split(text, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t value = 0;
  for (const auto& part : parts) {
    if (part.empty() || part.size() > 3) return std::nullopt;
    unsigned octet = 0;
    for (char c : part) {
      if (c < '0' || c > '9') return std::nullopt;
      octet = octet * 10 + static_cast<unsigned>(c - '0');
    }
    if (octet > 255) return std::nullopt;
    value = (value << 8) | octet;
  }
  return Ipv4Address(value);
}

std::string Ipv4Address::to_string() const {
  return std::to_string((value_ >> 24) & 0xff) + "." + std::to_string((value_ >> 16) & 0xff) +
         "." + std::to_string((value_ >> 8) & 0xff) + "." + std::to_string(value_ & 0xff);
}

Ipv4Prefix::Ipv4Prefix(Ipv4Address address, unsigned length) : length_(length) {
  util::require(length <= 32, "prefix length out of range: " + std::to_string(length));
  network_ = Ipv4Address(address.value() & mask_bits(length));
}

Ipv4Prefix Ipv4Prefix::parse(std::string_view text) {
  auto slash = text.find('/');
  if (slash == std::string_view::npos)
    throw util::ParseError("malformed prefix (missing '/'): '" + std::string(text) + "'");
  Ipv4Address address = Ipv4Address::parse(text.substr(0, slash));
  unsigned long length = util::parse_uint(text.substr(slash + 1), 32);
  return Ipv4Prefix(address, static_cast<unsigned>(length));
}

Ipv4Prefix Ipv4Prefix::from_netmask(Ipv4Address address, Ipv4Address netmask) {
  std::uint32_t m = netmask.value();
  unsigned length = 0;
  while (length < 32 && (m & (1u << 31))) {
    ++length;
    m <<= 1;
  }
  if (m != 0)
    throw util::ParseError("non-contiguous netmask: " + netmask.to_string());
  return Ipv4Prefix(address, length);
}

Ipv4Address Ipv4Prefix::netmask() const { return Ipv4Address(mask_bits(length_)); }

Ipv4Address Ipv4Prefix::wildcard() const { return Ipv4Address(~mask_bits(length_)); }

Ipv4Address Ipv4Prefix::broadcast() const {
  return Ipv4Address(network_.value() | ~mask_bits(length_));
}

bool Ipv4Prefix::contains(Ipv4Address address) const {
  return (address.value() & mask_bits(length_)) == network_.value();
}

bool Ipv4Prefix::contains(const Ipv4Prefix& other) const {
  return other.length_ >= length_ && contains(other.network_);
}

bool Ipv4Prefix::overlaps(const Ipv4Prefix& other) const {
  return contains(other) || other.contains(*this);
}

std::string Ipv4Prefix::to_string() const {
  return network_.to_string() + "/" + std::to_string(length_);
}

InterfaceAddress InterfaceAddress::parse(std::string_view text) {
  auto slash = text.find('/');
  if (slash == std::string_view::npos)
    throw util::ParseError("malformed interface address (missing '/'): '" + std::string(text) + "'");
  Ipv4Address ip = Ipv4Address::parse(text.substr(0, slash));
  unsigned long length = util::parse_uint(text.substr(slash + 1), 32);
  return InterfaceAddress{ip, static_cast<unsigned>(length)};
}

}  // namespace heimdall::net
