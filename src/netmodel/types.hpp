// Strong identifier types for network objects.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace heimdall::net {

/// Device name, e.g. "r3" or "host2". Kept as a distinct type so device and
/// interface names cannot be swapped silently at call sites.
class DeviceId {
 public:
  DeviceId() = default;
  explicit DeviceId(std::string name) : name_(std::move(name)) {}
  const std::string& str() const { return name_; }
  bool empty() const { return name_.empty(); }
  auto operator<=>(const DeviceId&) const = default;

 private:
  std::string name_;
};

/// Interface name local to a device, e.g. "GigabitEthernet0/1".
class InterfaceId {
 public:
  InterfaceId() = default;
  explicit InterfaceId(std::string name) : name_(std::move(name)) {}
  const std::string& str() const { return name_; }
  bool empty() const { return name_.empty(); }
  auto operator<=>(const InterfaceId&) const = default;

 private:
  std::string name_;
};

/// A (device, interface) endpoint of a link.
struct Endpoint {
  DeviceId device;
  InterfaceId iface;

  auto operator<=>(const Endpoint&) const = default;

  std::string to_string() const { return device.str() + ":" + iface.str(); }
};

/// IEEE 802.1Q VLAN number (1-4094).
using VlanId = std::uint16_t;

}  // namespace heimdall::net

namespace std {

template <>
struct hash<heimdall::net::DeviceId> {
  size_t operator()(const heimdall::net::DeviceId& id) const noexcept {
    return hash<string>()(id.str());
  }
};

template <>
struct hash<heimdall::net::InterfaceId> {
  size_t operator()(const heimdall::net::InterfaceId& id) const noexcept {
    return hash<string>()(id.str());
  }
};

}  // namespace std
