#include "netmodel/topology.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <map>

#include "util/error.hpp"

namespace heimdall::net {

const Endpoint& Link::other(const Endpoint& endpoint) const {
  if (a == endpoint) return b;
  if (b == endpoint) return a;
  throw util::InvariantError("Link::other: endpoint " + endpoint.to_string() +
                             " is not on link " + to_string());
}

void Topology::add_link(Link link) {
  util::require(!(link.a == link.b), "self-link at " + link.a.to_string());
  util::require(link_at(link.a) == nullptr, "endpoint already wired: " + link.a.to_string());
  util::require(link_at(link.b) == nullptr, "endpoint already wired: " + link.b.to_string());
  links_.push_back(std::move(link));
}

const Link* Topology::link_at(const Endpoint& endpoint) const {
  for (const Link& link : links_)
    if (link.touches(endpoint)) return &link;
  return nullptr;
}

std::optional<Endpoint> Topology::peer_of(const Endpoint& endpoint) const {
  const Link* link = link_at(endpoint);
  if (!link) return std::nullopt;
  return link->other(endpoint);
}

std::vector<DeviceId> Topology::neighbors(const DeviceId& device) const {
  std::set<DeviceId> out;
  for (const Link& link : links_) {
    if (link.a.device == device && link.b.device != device) out.insert(link.b.device);
    if (link.b.device == device && link.a.device != device) out.insert(link.a.device);
  }
  return {out.begin(), out.end()};
}

std::vector<DeviceId> Topology::devices() const {
  std::set<DeviceId> out;
  for (const Link& link : links_) {
    out.insert(link.a.device);
    out.insert(link.b.device);
  }
  return {out.begin(), out.end()};
}

std::vector<DeviceId> Topology::shortest_path(const DeviceId& from, const DeviceId& to) const {
  if (from == to) return {from};
  std::map<DeviceId, DeviceId> parent;
  std::deque<DeviceId> frontier{from};
  parent[from] = from;
  while (!frontier.empty()) {
    DeviceId current = frontier.front();
    frontier.pop_front();
    for (const DeviceId& next : neighbors(current)) {
      if (parent.count(next)) continue;
      parent[next] = current;
      if (next == to) {
        std::vector<DeviceId> path{to};
        DeviceId walk = to;
        while (!(walk == from)) {
          walk = parent[walk];
          path.push_back(walk);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push_back(next);
    }
  }
  return {};
}

std::set<DeviceId> Topology::devices_on_shortest_paths(const DeviceId& from,
                                                       const DeviceId& to) const {
  // BFS distances from both endpoints; a device v is on some shortest path
  // iff dist(from, v) + dist(v, to) == dist(from, to).
  auto bfs = [this](const DeviceId& source) {
    std::map<DeviceId, unsigned> dist;
    std::deque<DeviceId> frontier{source};
    dist[source] = 0;
    while (!frontier.empty()) {
      DeviceId current = frontier.front();
      frontier.pop_front();
      for (const DeviceId& next : neighbors(current)) {
        if (dist.count(next)) continue;
        dist[next] = dist[current] + 1;
        frontier.push_back(next);
      }
    }
    return dist;
  };

  std::set<DeviceId> out;
  auto dist_from = bfs(from);
  auto dist_to = bfs(to);
  auto it = dist_from.find(to);
  if (it == dist_from.end()) return out;  // disconnected
  unsigned total = it->second;
  for (const auto& [device, df] : dist_from) {
    auto dt = dist_to.find(device);
    if (dt != dist_to.end() && df + dt->second == total) out.insert(device);
  }
  return out;
}

}  // namespace heimdall::net
