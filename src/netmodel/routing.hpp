// Routing configuration: static routes and the OSPF process.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "netmodel/ipv4.hpp"
#include "netmodel/types.hpp"

namespace heimdall::net {

/// A configured static route ("ip route <prefix> <mask> <next-hop>").
struct StaticRoute {
  Ipv4Prefix prefix;
  Ipv4Address next_hop;
  unsigned admin_distance = 1;

  auto operator<=>(const StaticRoute&) const = default;
};

/// An OSPF "network <addr> <wildcard> area <n>" statement: interfaces whose
/// address falls inside `prefix` participate in `area`.
struct OspfNetwork {
  Ipv4Prefix prefix;
  unsigned area = 0;

  auto operator<=>(const OspfNetwork&) const = default;
};

/// The device's OSPF process configuration ("router ospf <pid>").
struct OspfProcess {
  unsigned process_id = 1;
  std::optional<Ipv4Address> router_id;
  std::vector<OspfNetwork> networks;
  /// Prefixes of passive interfaces (advertised but no adjacency formed).
  std::vector<InterfaceId> passive_interfaces;

  bool operator==(const OspfProcess&) const = default;

  /// Area for an interface address; nullopt when OSPF is not enabled there.
  std::optional<unsigned> area_for(Ipv4Address address) const {
    for (const OspfNetwork& network : networks) {
      if (network.prefix.contains(address)) return network.area;
    }
    return std::nullopt;
  }

  bool is_passive(const InterfaceId& iface) const {
    for (const InterfaceId& p : passive_interfaces)
      if (p == iface) return true;
    return false;
  }
};

}  // namespace heimdall::net
