// Network: the complete model of one production (or twin) network —
// devices plus topology, with cross-object validation and lookups.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "netmodel/device.hpp"
#include "netmodel/topology.hpp"

namespace heimdall::net {

/// A whole network. Value semantics: copying a Network yields an independent
/// clone (the twin network's emulation layer relies on this).
class Network {
 public:
  Network() = default;
  explicit Network(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // -- Devices ------------------------------------------------------------

  /// Adds a device; throws InvariantError on duplicate ids.
  Device& add_device(Device device);

  /// Removes a device and all links touching it.
  void remove_device(const DeviceId& id);

  Device& device(const DeviceId& id);
  const Device& device(const DeviceId& id) const;

  Device* find_device(const DeviceId& id);
  const Device* find_device(const DeviceId& id) const;

  bool has_device(const DeviceId& id) const { return find_device(id) != nullptr; }

  /// Devices in insertion order.
  const std::vector<Device>& devices() const { return devices_; }
  std::vector<Device>& devices() { return devices_; }

  std::vector<DeviceId> device_ids() const;
  std::vector<DeviceId> device_ids(DeviceKind kind) const;

  std::size_t count(DeviceKind kind) const;

  // -- Topology -----------------------------------------------------------

  Topology& topology() { return topology_; }
  const Topology& topology() const { return topology_; }

  /// Wires two interfaces; validates both endpoints exist.
  void connect(const Endpoint& a, const Endpoint& b);

  // -- Lookups ------------------------------------------------------------

  /// The device owning the interface configured with exactly `address`.
  std::optional<Endpoint> endpoint_of_ip(Ipv4Address address) const;

  /// All host devices with their primary IP (first L3 interface address).
  std::vector<std::pair<DeviceId, Ipv4Address>> host_addresses() const;

  /// Primary IP of `device` (first interface with an address); nullopt when
  /// the device has no L3 address.
  std::optional<Ipv4Address> primary_ip(const DeviceId& device) const;

  /// Checks structural invariants (links reference real interfaces, ACL
  /// references resolve, access VLANs are declared). Throws InvariantError
  /// describing the first violation.
  void validate() const;

  bool operator==(const Network&) const = default;

 private:
  std::string name_;
  std::vector<Device> devices_;
  Topology topology_;
};

}  // namespace heimdall::net
