#include "netmodel/network.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/error.hpp"

namespace heimdall::net {

Device& Network::add_device(Device device) {
  util::require(!device.id().empty(), "device must have an id");
  util::require(!has_device(device.id()), "duplicate device '" + device.id().str() + "'");
  devices_.push_back(std::move(device));
  return devices_.back();
}

void Network::remove_device(const DeviceId& id) {
  auto it = std::remove_if(devices_.begin(), devices_.end(),
                           [&](const Device& d) { return d.id() == id; });
  devices_.erase(it, devices_.end());
  // Drop links touching the removed device.
  Topology pruned;
  for (const Link& link : topology_.links()) {
    if (link.a.device == id || link.b.device == id) continue;
    pruned.add_link(link);
  }
  topology_ = std::move(pruned);
}

Device& Network::device(const DeviceId& id) {
  Device* found = find_device(id);
  if (!found) throw util::NotFoundError("no device '" + id.str() + "' in network '" + name_ + "'");
  return *found;
}

const Device& Network::device(const DeviceId& id) const {
  return const_cast<Network*>(this)->device(id);
}

Device* Network::find_device(const DeviceId& id) {
  for (Device& d : devices_)
    if (d.id() == id) return &d;
  return nullptr;
}

const Device* Network::find_device(const DeviceId& id) const {
  return const_cast<Network*>(this)->find_device(id);
}

std::vector<DeviceId> Network::device_ids() const {
  std::vector<DeviceId> out;
  out.reserve(devices_.size());
  for (const Device& d : devices_) out.push_back(d.id());
  return out;
}

std::vector<DeviceId> Network::device_ids(DeviceKind kind) const {
  std::vector<DeviceId> out;
  for (const Device& d : devices_)
    if (d.kind() == kind) out.push_back(d.id());
  return out;
}

std::size_t Network::count(DeviceKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(devices_.begin(), devices_.end(),
                    [&](const Device& d) { return d.kind() == kind; }));
}

void Network::connect(const Endpoint& a, const Endpoint& b) {
  device(a.device).interface(a.iface);  // throws when missing
  device(b.device).interface(b.iface);
  topology_.add_link(Link{a, b});
}

std::optional<Endpoint> Network::endpoint_of_ip(Ipv4Address address) const {
  for (const Device& d : devices_) {
    const Interface* iface = d.interface_with_address(address);
    if (iface) return Endpoint{d.id(), iface->id};
  }
  return std::nullopt;
}

std::vector<std::pair<DeviceId, Ipv4Address>> Network::host_addresses() const {
  std::vector<std::pair<DeviceId, Ipv4Address>> out;
  for (const Device& d : devices_) {
    if (!d.is_host()) continue;
    auto ip = primary_ip(d.id());
    if (ip) out.emplace_back(d.id(), *ip);
  }
  return out;
}

std::optional<Ipv4Address> Network::primary_ip(const DeviceId& id) const {
  const Device* d = find_device(id);
  if (!d) return std::nullopt;
  for (const Interface& iface : d->interfaces()) {
    if (iface.address) return iface.address->ip;
  }
  return std::nullopt;
}

void Network::validate() const {
  // One id -> device map up front: resolving every link endpoint through
  // find_device's linear scan is quadratic at fabric scale.
  std::unordered_map<std::string, const Device*> by_id;
  by_id.reserve(devices_.size());
  for (const Device& d : devices_) by_id.emplace(d.id().str(), &d);
  for (const Link& link : topology_.links()) {
    for (const Endpoint& endpoint : {link.a, link.b}) {
      auto it = by_id.find(endpoint.device.str());
      util::require(it != by_id.end(),
                    "link references unknown device '" + endpoint.device.str() + "'");
      util::require(it->second->find_interface(endpoint.iface) != nullptr,
                    "link references unknown interface " + endpoint.to_string());
    }
  }
  for (const Device& d : devices_) {
    for (const Interface& iface : d.interfaces()) {
      for (const std::string& acl_name : {iface.acl_in, iface.acl_out}) {
        if (!acl_name.empty()) {
          util::require(d.find_acl(acl_name) != nullptr,
                        "interface " + d.id().str() + ":" + iface.id.str() +
                            " references unknown ACL '" + acl_name + "'");
        }
      }
      if (iface.mode == SwitchportMode::Access) {
        util::require(d.has_vlan(iface.access_vlan) || iface.access_vlan == 1,
                      "interface " + d.id().str() + ":" + iface.id.str() +
                          " uses undeclared VLAN " + std::to_string(iface.access_vlan));
      }
    }
  }
}

}  // namespace heimdall::net
