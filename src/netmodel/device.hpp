// Device model: routers, switches and hosts with their full configuration.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "netmodel/acl.hpp"
#include "netmodel/interface.hpp"
#include "netmodel/routing.hpp"
#include "netmodel/types.hpp"

namespace heimdall::net {

enum class DeviceKind : std::uint8_t { Router, Switch, Host };

std::string to_string(DeviceKind kind);
DeviceKind parse_device_kind(std::string_view text);

/// Secrets stored in a device configuration. These are exactly the fields the
/// twin-network scrubber removes before a technician can see a config
/// (paper §4.2: a cloned config "can expose sensitive data (e.g., an IPSec
/// key)").
struct DeviceSecrets {
  std::string enable_password;
  std::string snmp_community;
  std::string ipsec_key;

  bool operator==(const DeviceSecrets&) const = default;

  bool empty() const {
    return enable_password.empty() && snmp_community.empty() && ipsec_key.empty();
  }
};

/// A configured network device. This is a value type: cloning a Device gives
/// an independent configuration, which is how the twin network's emulation
/// layer obtains its state.
class Device {
 public:
  Device() = default;
  Device(DeviceId id, DeviceKind kind) : id_(std::move(id)), kind_(kind) {}

  const DeviceId& id() const { return id_; }
  DeviceKind kind() const { return kind_; }

  bool is_router() const { return kind_ == DeviceKind::Router; }
  bool is_switch() const { return kind_ == DeviceKind::Switch; }
  bool is_host() const { return kind_ == DeviceKind::Host; }

  // -- Interfaces ---------------------------------------------------------

  /// Adds an interface; throws InvariantError on duplicate names.
  Interface& add_interface(Interface iface);

  /// Lookup; throws NotFoundError when absent.
  Interface& interface(const InterfaceId& id);
  const Interface& interface(const InterfaceId& id) const;

  /// Lookup; nullptr when absent.
  Interface* find_interface(const InterfaceId& id);
  const Interface* find_interface(const InterfaceId& id) const;

  /// Interfaces in insertion order (stable across runs).
  const std::vector<Interface>& interfaces() const { return interfaces_; }
  std::vector<Interface>& interfaces() { return interfaces_; }

  /// First interface owning `address`, or nullptr.
  const Interface* interface_with_address(Ipv4Address address) const;

  // -- ACLs ---------------------------------------------------------------

  Acl& add_acl(Acl acl);
  Acl* find_acl(std::string_view name);
  const Acl* find_acl(std::string_view name) const;
  void remove_acl(std::string_view name);
  const std::vector<Acl>& acls() const { return acls_; }
  std::vector<Acl>& acls() { return acls_; }

  // -- Routing ------------------------------------------------------------

  std::vector<StaticRoute>& static_routes() { return static_routes_; }
  const std::vector<StaticRoute>& static_routes() const { return static_routes_; }

  std::optional<OspfProcess>& ospf() { return ospf_; }
  const std::optional<OspfProcess>& ospf() const { return ospf_; }

  // -- L2 -----------------------------------------------------------------

  /// VLANs declared on this device ("vlan <n>").
  std::vector<VlanId>& vlans() { return vlans_; }
  const std::vector<VlanId>& vlans() const { return vlans_; }
  bool has_vlan(VlanId vlan) const;

  // -- Secrets ------------------------------------------------------------

  DeviceSecrets& secrets() { return secrets_; }
  const DeviceSecrets& secrets() const { return secrets_; }

  bool operator==(const Device&) const = default;

 private:
  DeviceId id_;
  DeviceKind kind_ = DeviceKind::Router;
  std::vector<Interface> interfaces_;
  std::vector<Acl> acls_;
  std::vector<StaticRoute> static_routes_;
  std::optional<OspfProcess> ospf_;
  std::vector<VlanId> vlans_;
  DeviceSecrets secrets_;
};

}  // namespace heimdall::net
