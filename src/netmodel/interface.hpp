// Network interface model.
#pragma once

#include <optional>
#include <string>

#include "netmodel/ipv4.hpp"
#include "netmodel/types.hpp"

namespace heimdall::net {

/// Layer-2 role of a switch port.
enum class SwitchportMode : std::uint8_t {
  None,    ///< routed port / host NIC (L3)
  Access,  ///< carries a single untagged VLAN
  Trunk,   ///< carries multiple tagged VLANs
};

std::string to_string(SwitchportMode mode);

/// One interface on a device. An interface may be L3 (has `address`), L2
/// (switchport access/trunk) or both disabled (shutdown).
struct Interface {
  InterfaceId id;
  std::string description;

  /// L3 address with its subnet, e.g. 10.0.1.1/24. Empty on pure L2 ports.
  std::optional<InterfaceAddress> address;

  bool shutdown = false;

  SwitchportMode mode = SwitchportMode::None;
  VlanId access_vlan = 1;                 ///< meaningful when mode == Access
  std::vector<VlanId> trunk_allowed;      ///< meaningful when mode == Trunk

  /// Names of ACLs applied to traffic entering / leaving this interface.
  std::string acl_in;
  std::string acl_out;

  /// OSPF interface cost override; defaults to 10 when OSPF runs here.
  std::optional<unsigned> ospf_cost;

  bool operator==(const Interface&) const = default;

  /// True when the interface is administratively and operationally usable.
  bool is_up() const { return !shutdown; }
};

}  // namespace heimdall::net
