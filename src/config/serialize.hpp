// Cisco-IOS-style configuration rendering.
//
// The serializer and parser round-trip the device model, which is what lets
// the twin network hand a technician textual configs, accept edited configs
// back, and diff them semantically.
#pragma once

#include <string>

#include "netmodel/network.hpp"

namespace heimdall::cfg {

/// Renders one device's running configuration (IOS-style).
std::string serialize_device(const net::Device& device);

/// Renders every device config concatenated, separated by banner comments.
std::string serialize_network(const net::Network& network);

/// Renders the physical topology as "link devA:ifaceA devB:ifaceB" lines.
std::string serialize_topology(const net::Topology& topology);

/// Counts configuration lines across the whole network (Table 1's
/// "lines of configs" column). Blank lines and '!' separators excluded.
std::size_t config_line_count(const net::Network& network);

}  // namespace heimdall::cfg
