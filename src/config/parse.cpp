#include "config/parse.hpp"

#include <optional>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace heimdall::cfg {

using namespace heimdall::net;

namespace {

using util::ParseError;
using util::split;
using util::split_ws;
using util::starts_with;
using util::trim;

/// Parses "<addr> <wildcard-or-any>" from token stream position `i`.
/// Accepts: "any" | "host <ip>" | "<ip> <wildcard>".
Ipv4Prefix parse_acl_prefix(const std::vector<std::string>& tokens, size_t& i) {
  if (i >= tokens.size()) throw ParseError("ACL entry truncated: missing address");
  if (tokens[i] == "any") {
    ++i;
    return Ipv4Prefix(Ipv4Address(0), 0);
  }
  if (tokens[i] == "host") {
    if (i + 1 >= tokens.size()) throw ParseError("ACL entry truncated after 'host'");
    Ipv4Address address = Ipv4Address::parse(tokens[i + 1]);
    i += 2;
    return Ipv4Prefix(address, 32);
  }
  if (i + 1 >= tokens.size()) throw ParseError("ACL entry truncated: missing wildcard");
  Ipv4Address address = Ipv4Address::parse(tokens[i]);
  Ipv4Address wildcard = Ipv4Address::parse(tokens[i + 1]);
  i += 2;
  // Wildcard is the inverted mask.
  return Ipv4Prefix::from_netmask(address, Ipv4Address(~wildcard.value()));
}

/// Parses an optional "eq <port>" / "range <lo> <hi>" selector.
PortRange parse_acl_ports(const std::vector<std::string>& tokens, size_t& i) {
  if (i < tokens.size() && tokens[i] == "eq") {
    if (i + 1 >= tokens.size()) throw ParseError("ACL entry truncated after 'eq'");
    auto port = static_cast<std::uint16_t>(util::parse_uint(tokens[i + 1], 65535));
    i += 2;
    return PortRange::exactly(port);
  }
  if (i < tokens.size() && tokens[i] == "range") {
    if (i + 2 >= tokens.size()) throw ParseError("ACL entry truncated after 'range'");
    auto lo = static_cast<std::uint16_t>(util::parse_uint(tokens[i + 1], 65535));
    auto hi = static_cast<std::uint16_t>(util::parse_uint(tokens[i + 2], 65535));
    i += 3;
    if (lo > hi) throw ParseError("ACL port range reversed");
    return PortRange{lo, hi};
  }
  return PortRange::any();
}

class DeviceParser {
 public:
  explicit DeviceParser(std::string_view text) : lines_(split(text, '\n')) {}

  Device parse() {
    while (line_no_ < lines_.size()) {
      std::string_view line = trim(lines_[line_no_]);
      if (line.empty()) {
        ++line_no_;
        continue;
      }
      if (line == "!") {
        ++line_no_;
        continue;
      }
      if (starts_with(line, "! heimdall-device-kind:")) {
        kind_ = parse_device_kind(trim(line.substr(std::string_view("! heimdall-device-kind:").size())));
        ++line_no_;
        continue;
      }
      if (line[0] == '!') {
        ++line_no_;
        continue;
      }
      parse_top_level(line);
    }
    Device device(DeviceId(hostname_), kind_);
    device.secrets() = secrets_;
    for (VlanId vlan : vlans_) device.vlans().push_back(vlan);
    for (Interface& iface : interfaces_) device.add_interface(std::move(iface));
    for (Acl& acl : acls_) device.add_acl(std::move(acl));
    device.static_routes() = static_routes_;
    device.ospf() = ospf_;
    return device;
  }

 private:
  [[noreturn]] void fail(const std::string& message) {
    throw ParseError("config line " + std::to_string(line_no_ + 1) + ": " + message);
  }

  /// Operational boilerplate lines that carry no modeled semantics.
  static bool is_boilerplate(std::string_view line, const std::string& head) {
    static const char* const kSkippable[] = {
        "version", "service",       "logging",   "ntp",  "clock",
        "line",    "spanning-tree", "login",     "transport", "banner",
        "boot",    "exec-timeout",  "aaa",
    };
    for (const char* prefix : kSkippable) {
      if (head == prefix) return true;
    }
    // "ip cef/ssh/tcp ..." are boilerplate; "ip route"/"ip access-list" are
    // dispatched before this check ever runs.
    if (head == "ip")
      return util::starts_with(line, "ip cef") || util::starts_with(line, "ip ssh") ||
             util::starts_with(line, "ip tcp");
    // "no ip ..." hardening knobs and "no exec".
    if (head == "no")
      return util::starts_with(line, "no ip ") || line == "no exec";
    return false;
  }

  void parse_top_level(std::string_view line) {
    auto tokens = split_ws(line);
    const std::string& head = tokens[0];
    if (head == "hostname") {
      if (tokens.size() != 2) fail("hostname expects one argument");
      hostname_ = tokens[1];
      ++line_no_;
    } else if (head == "enable") {
      // "enable secret 5 <hash>"
      if (tokens.size() < 4) fail("malformed enable secret");
      secrets_.enable_password = tokens[3];
      ++line_no_;
    } else if (head == "snmp-server") {
      if (tokens.size() < 3) fail("malformed snmp-server line");
      secrets_.snmp_community = tokens[2];
      ++line_no_;
    } else if (head == "crypto") {
      if (tokens.size() < 4) fail("malformed crypto isakmp line");
      secrets_.ipsec_key = tokens[3];
      ++line_no_;
    } else if (head == "vlan") {
      if (tokens.size() != 2) fail("vlan expects one argument");
      vlans_.push_back(static_cast<VlanId>(util::parse_uint(tokens[1], 4094)));
      ++line_no_;
    } else if (head == "interface") {
      if (tokens.size() != 2) fail("interface expects one argument");
      parse_interface(tokens[1]);
    } else if (head == "ip" && tokens.size() >= 2 && tokens[1] == "access-list") {
      if (tokens.size() != 4 || tokens[2] != "extended") fail("malformed ip access-list line");
      parse_acl(tokens[3]);
    } else if (head == "ip" && tokens.size() >= 2 && tokens[1] == "route") {
      if (tokens.size() < 5) fail("malformed ip route line");
      Ipv4Address network = Ipv4Address::parse(tokens[2]);
      Ipv4Address mask = Ipv4Address::parse(tokens[3]);
      StaticRoute route;
      route.prefix = Ipv4Prefix::from_netmask(network, mask);
      route.next_hop = Ipv4Address::parse(tokens[4]);
      if (tokens.size() >= 6) route.admin_distance = static_cast<unsigned>(util::parse_uint(tokens[5], 255));
      static_routes_.push_back(route);
      ++line_no_;
    } else if (head == "router") {
      if (tokens.size() != 3 || tokens[1] != "ospf") fail("only 'router ospf <pid>' is supported");
      parse_ospf(static_cast<unsigned>(util::parse_uint(tokens[2], 65535)));
    } else if (head == "end") {
      ++line_no_;
    } else if (is_boilerplate(line, head)) {
      ++line_no_;
    } else {
      fail("unrecognized configuration line: '" + std::string(line) + "'");
    }
  }

  /// Consumes indented block lines following a section header. Returns each
  /// trimmed non-empty, non-'!' line.
  std::vector<std::string> take_block() {
    ++line_no_;  // skip header
    std::vector<std::string> block;
    while (line_no_ < lines_.size()) {
      const std::string& raw = lines_[line_no_];
      if (raw.empty() || raw[0] != ' ') break;  // block ends at column-0 line
      std::string_view line = trim(raw);
      ++line_no_;
      if (line.empty() || line[0] == '!') continue;
      block.emplace_back(line);
    }
    return block;
  }

  void parse_interface(const std::string& name) {
    Interface iface;
    iface.id = InterfaceId(name);
    for (const std::string& line : take_block()) {
      auto tokens = split_ws(line);
      if (tokens[0] == "description") {
        iface.description = std::string(trim(line.substr(std::string("description").size())));
      } else if (tokens[0] == "ip" && tokens.size() >= 2 && tokens[1] == "address") {
        if (tokens.size() != 4) fail("malformed ip address line");
        Ipv4Address ip = Ipv4Address::parse(tokens[2]);
        Ipv4Prefix subnet = Ipv4Prefix::from_netmask(ip, Ipv4Address::parse(tokens[3]));
        iface.address = InterfaceAddress{ip, subnet.length()};
      } else if (tokens[0] == "ip" && tokens.size() >= 2 && tokens[1] == "access-group") {
        if (tokens.size() != 4) fail("malformed ip access-group line");
        if (tokens[3] == "in")
          iface.acl_in = tokens[2];
        else if (tokens[3] == "out")
          iface.acl_out = tokens[2];
        else
          fail("access-group direction must be 'in' or 'out'");
      } else if (tokens[0] == "ip" && tokens.size() >= 2 && tokens[1] == "ospf") {
        if (tokens.size() != 4 || tokens[2] != "cost") fail("malformed ip ospf line");
        iface.ospf_cost = static_cast<unsigned>(util::parse_uint(tokens[3], 65535));
      } else if (tokens[0] == "switchport") {
        if (tokens.size() >= 3 && tokens[1] == "mode") {
          iface.mode = tokens[2] == "access" ? SwitchportMode::Access
                       : tokens[2] == "trunk" ? SwitchportMode::Trunk
                                              : SwitchportMode::None;
        } else if (tokens.size() == 4 && tokens[1] == "access" && tokens[2] == "vlan") {
          iface.access_vlan = static_cast<VlanId>(util::parse_uint(tokens[3], 4094));
        } else if (tokens.size() == 5 && tokens[1] == "trunk" && tokens[2] == "allowed" &&
                   tokens[3] == "vlan") {
          for (const std::string& v : split(tokens[4], ','))
            iface.trunk_allowed.push_back(static_cast<VlanId>(util::parse_uint(v, 4094)));
        } else {
          fail("malformed switchport line: '" + line + "'");
        }
      } else if (line == "shutdown") {
        iface.shutdown = true;
      } else if (line == "no shutdown") {
        iface.shutdown = false;
      } else {
        fail("unrecognized interface line: '" + line + "'");
      }
    }
    interfaces_.push_back(std::move(iface));
  }

  void parse_acl(const std::string& name) {
    Acl acl;
    acl.name = name;
    for (const std::string& line : take_block()) acl.entries.push_back(parse_acl_entry(line));
    acls_.push_back(std::move(acl));
  }

  void parse_ospf(unsigned process_id) {
    OspfProcess ospf;
    ospf.process_id = process_id;
    for (const std::string& line : take_block()) {
      auto tokens = split_ws(line);
      if (tokens[0] == "router-id") {
        if (tokens.size() != 2) fail("malformed router-id");
        ospf.router_id = Ipv4Address::parse(tokens[1]);
      } else if (tokens[0] == "network") {
        if (tokens.size() != 5 || tokens[3] != "area") fail("malformed network statement");
        Ipv4Address address = Ipv4Address::parse(tokens[1]);
        Ipv4Address wildcard = Ipv4Address::parse(tokens[2]);
        OspfNetwork network;
        network.prefix = Ipv4Prefix::from_netmask(address, Ipv4Address(~wildcard.value()));
        network.area = static_cast<unsigned>(util::parse_uint(tokens[4], 4294967294UL));
        ospf.networks.push_back(network);
      } else if (tokens[0] == "passive-interface") {
        if (tokens.size() != 2) fail("malformed passive-interface");
        ospf.passive_interfaces.emplace_back(tokens[1]);
      } else {
        fail("unrecognized ospf line: '" + line + "'");
      }
    }
    ospf_ = ospf;
  }

  std::vector<std::string> lines_;
  size_t line_no_ = 0;

  std::string hostname_ = "unnamed";
  DeviceKind kind_ = DeviceKind::Router;
  DeviceSecrets secrets_;
  std::vector<VlanId> vlans_;
  std::vector<Interface> interfaces_;
  std::vector<Acl> acls_;
  std::vector<StaticRoute> static_routes_;
  std::optional<OspfProcess> ospf_;
};

}  // namespace

AclEntry parse_acl_entry(std::string_view line) {
  auto tokens = split_ws(line);
  if (tokens.size() < 3) throw ParseError("ACL entry too short: '" + std::string(line) + "'");
  AclEntry entry;
  size_t i = 0;
  if (tokens[i] == "permit")
    entry.action = AclEntry::Action::Permit;
  else if (tokens[i] == "deny")
    entry.action = AclEntry::Action::Deny;
  else
    throw ParseError("ACL entry must start with permit/deny: '" + std::string(line) + "'");
  ++i;
  entry.protocol = parse_protocol(tokens[i]);
  ++i;
  entry.src = parse_acl_prefix(tokens, i);
  entry.src_ports = parse_acl_ports(tokens, i);
  entry.dst = parse_acl_prefix(tokens, i);
  entry.dst_ports = parse_acl_ports(tokens, i);
  if (i != tokens.size())
    throw ParseError("trailing tokens in ACL entry: '" + std::string(line) + "'");
  return entry;
}

Device parse_device(std::string_view text) { return DeviceParser(text).parse(); }

Network parse_network(std::string_view text) {
  Network network;
  std::vector<std::string> chunks;
  std::string current;
  bool in_device = false;
  for (const std::string& line : split(text, '\n')) {
    if (starts_with(line, "!=== device ")) {
      if (in_device) chunks.push_back(std::move(current));
      current.clear();
      in_device = true;
      continue;
    }
    if (in_device) {
      current += line;
      current += '\n';
    }
  }
  if (in_device) chunks.push_back(std::move(current));
  if (chunks.empty() && !util::trim(text).empty()) chunks.emplace_back(text);
  for (const std::string& chunk : chunks) network.add_device(parse_device(chunk));
  return network;
}

void parse_topology(std::string_view text, Network& network) {
  for (const std::string& raw : split(text, '\n')) {
    std::string_view line = trim(raw);
    if (line.empty() || line[0] == '!' || line[0] == '#') continue;
    auto tokens = split_ws(line);
    if (tokens.size() != 3 || tokens[0] != "link")
      throw ParseError("malformed topology line: '" + std::string(line) + "'");
    auto parse_endpoint = [](const std::string& token) {
      auto colon = token.find(':');
      if (colon == std::string::npos)
        throw ParseError("malformed endpoint (missing ':'): '" + token + "'");
      return Endpoint{DeviceId(token.substr(0, colon)), InterfaceId(token.substr(colon + 1))};
    };
    network.connect(parse_endpoint(tokens[1]), parse_endpoint(tokens[2]));
  }
}

}  // namespace heimdall::cfg
