// Cisco-IOS-style configuration parsing (the inverse of serialize.hpp).
#pragma once

#include <string_view>

#include "netmodel/network.hpp"

namespace heimdall::cfg {

/// Parses one device configuration. Throws util::ParseError with the line
/// number on malformed input.
net::Device parse_device(std::string_view text);

/// Parses a multi-device dump produced by serialize_network().
net::Network parse_network(std::string_view text);

/// Parses "link a:ifA b:ifB" lines into `network`'s topology; devices and
/// interfaces must already exist.
void parse_topology(std::string_view text, net::Network& network);

/// Parses one ACL entry line, e.g. "permit tcp 10.0.1.0 0.0.0.255 any eq 80".
net::AclEntry parse_acl_entry(std::string_view line);

}  // namespace heimdall::cfg
