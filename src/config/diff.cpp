#include "config/diff.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace heimdall::cfg {

using namespace heimdall::net;

std::string to_string(AclDirection direction) {
  return direction == AclDirection::In ? "in" : "out";
}

namespace {

std::string render_optional_address(const std::optional<InterfaceAddress>& address) {
  return address ? address->to_string() : "(none)";
}

std::string render_optional_cost(const std::optional<unsigned>& cost) {
  return cost ? std::to_string(*cost) : "(default)";
}

struct SummaryVisitor {
  std::string operator()(const InterfaceAdminChange& c) const {
    return "interface " + c.iface.str() + (c.new_shutdown ? " shutdown" : " no shutdown");
  }
  std::string operator()(const InterfaceAddressChange& c) const {
    return "interface " + c.iface.str() + " address " + render_optional_address(c.old_address) +
           " -> " + render_optional_address(c.new_address);
  }
  std::string operator()(const InterfaceAclBindingChange& c) const {
    return "interface " + c.iface.str() + " access-group " + to_string(c.direction) + " '" +
           c.old_acl + "' -> '" + c.new_acl + "'";
  }
  std::string operator()(const SwitchportChange& c) const {
    return "interface " + c.iface.str() + " switchport " + net::to_string(c.old_mode) + "/vlan" +
           std::to_string(c.old_access_vlan) + " -> " + net::to_string(c.new_mode) + "/vlan" +
           std::to_string(c.new_access_vlan);
  }
  std::string operator()(const OspfCostChange& c) const {
    return "interface " + c.iface.str() + " ospf cost " + render_optional_cost(c.old_cost) +
           " -> " + render_optional_cost(c.new_cost);
  }
  std::string operator()(const AclEntryAdd& c) const {
    return "acl " + c.acl + " insert@" + std::to_string(c.index) + " '" + c.entry.to_string() + "'";
  }
  std::string operator()(const AclEntryRemove& c) const {
    return "acl " + c.acl + " remove@" + std::to_string(c.index) + " '" + c.entry.to_string() + "'";
  }
  std::string operator()(const AclCreate& c) const {
    return "acl " + c.acl.name + " created (" + std::to_string(c.acl.entries.size()) + " entries)";
  }
  std::string operator()(const AclDelete& c) const { return "acl " + c.name + " deleted"; }
  std::string operator()(const StaticRouteAdd& c) const {
    return "static route add " + c.route.prefix.to_string() + " via " + c.route.next_hop.to_string();
  }
  std::string operator()(const StaticRouteRemove& c) const {
    return "static route remove " + c.route.prefix.to_string() + " via " +
           c.route.next_hop.to_string();
  }
  std::string operator()(const OspfNetworkAdd& c) const {
    return "ospf network add " + c.network.prefix.to_string() + " area " +
           std::to_string(c.network.area);
  }
  std::string operator()(const OspfNetworkRemove& c) const {
    return "ospf network remove " + c.network.prefix.to_string() + " area " +
           std::to_string(c.network.area);
  }
  std::string operator()(const OspfProcessChange& c) const {
    if (c.new_process && !c.old_process) return "ospf process enabled";
    if (!c.new_process && c.old_process) return "ospf process disabled";
    return "ospf process reconfigured";
  }
  std::string operator()(const VlanDeclare& c) const {
    return "vlan " + std::to_string(c.vlan) + " declared";
  }
  std::string operator()(const VlanRemove& c) const {
    return "vlan " + std::to_string(c.vlan) + " removed";
  }
  std::string operator()(const SecretChange& c) const {
    return (c.revert ? "secret rotation reverted: " : "secret changed: ") + c.field;
  }
};

void diff_interface(const DeviceId& device, const Interface& before, const Interface& after,
                    std::vector<ConfigChange>& out) {
  if (before.shutdown != after.shutdown) {
    out.push_back({device, InterfaceAdminChange{before.id, before.shutdown, after.shutdown}});
  }
  if (before.address != after.address) {
    out.push_back({device, InterfaceAddressChange{before.id, before.address, after.address}});
  }
  if (before.acl_in != after.acl_in) {
    out.push_back(
        {device, InterfaceAclBindingChange{before.id, AclDirection::In, before.acl_in, after.acl_in}});
  }
  if (before.acl_out != after.acl_out) {
    out.push_back({device, InterfaceAclBindingChange{before.id, AclDirection::Out, before.acl_out,
                                                     after.acl_out}});
  }
  if (before.mode != after.mode || before.access_vlan != after.access_vlan ||
      before.trunk_allowed != after.trunk_allowed) {
    out.push_back({device, SwitchportChange{before.id, before.mode, after.mode, before.access_vlan,
                                            after.access_vlan, before.trunk_allowed,
                                            after.trunk_allowed}});
  }
  if (before.ospf_cost != after.ospf_cost) {
    out.push_back({device, OspfCostChange{before.id, before.ospf_cost, after.ospf_cost}});
  }
}

void diff_acls(const DeviceId& device, const Device& before, const Device& after,
               std::vector<ConfigChange>& out) {
  for (const Acl& old_acl : before.acls()) {
    const Acl* new_acl = after.find_acl(old_acl.name);
    if (!new_acl) {
      out.push_back({device, AclDelete{old_acl.name}});
      continue;
    }
    if (old_acl.entries == new_acl->entries) continue;
    // Entry-level diff via LCS so that a single inserted/removed/modified line
    // yields a minimal change list (a modified line becomes remove+add).
    const auto& a = old_acl.entries;
    const auto& b = new_acl->entries;
    std::vector<std::vector<std::size_t>> lcs(a.size() + 1, std::vector<std::size_t>(b.size() + 1, 0));
    for (std::size_t i = a.size(); i-- > 0;) {
      for (std::size_t j = b.size(); j-- > 0;) {
        lcs[i][j] = a[i] == b[j] ? lcs[i + 1][j + 1] + 1 : std::max(lcs[i + 1][j], lcs[i][j + 1]);
      }
    }
    // Walk the LCS emitting removals (at the *current* index, accounting for
    // previously-applied edits) and insertions. `cursor` tracks the index in
    // the list as it exists after the edits emitted so far.
    std::size_t i = 0, j = 0, cursor = 0;
    while (i < a.size() || j < b.size()) {
      if (i < a.size() && j < b.size() && a[i] == b[j]) {
        ++i;
        ++j;
        ++cursor;
      } else if (j < b.size() && (i == a.size() || lcs[i][j + 1] >= lcs[i + 1][j])) {
        out.push_back({device, AclEntryAdd{old_acl.name, cursor, b[j]}});
        ++j;
        ++cursor;
      } else {
        out.push_back({device, AclEntryRemove{old_acl.name, cursor, a[i]}});
        ++i;
      }
    }
  }
  for (const Acl& new_acl : after.acls()) {
    if (!before.find_acl(new_acl.name)) out.push_back({device, AclCreate{new_acl}});
  }
}

template <typename T, typename MakeAdd, typename MakeRemove>
void diff_sets(const DeviceId& device, const std::vector<T>& before, const std::vector<T>& after,
               MakeAdd make_add, MakeRemove make_remove, std::vector<ConfigChange>& out) {
  for (const T& item : before) {
    if (std::find(after.begin(), after.end(), item) == after.end())
      out.push_back({device, make_remove(item)});
  }
  for (const T& item : after) {
    if (std::find(before.begin(), before.end(), item) == before.end())
      out.push_back({device, make_add(item)});
  }
}

}  // namespace

std::string ConfigChange::summary() const {
  return device.str() + ": " + std::visit(SummaryVisitor{}, detail);
}

std::vector<ConfigChange> diff_devices(const Device& before, const Device& after) {
  util::require(before.id() == after.id(),
                "diff_devices: device ids differ (" + before.id().str() + " vs " +
                    after.id().str() + ")");
  const DeviceId& device = before.id();
  std::vector<ConfigChange> out;

  // Interfaces: same set expected (twin sessions cannot add hardware).
  for (const Interface& old_iface : before.interfaces()) {
    const Interface* new_iface = after.find_interface(old_iface.id);
    util::require(new_iface != nullptr,
                  "diff_devices: interface removed: " + old_iface.id.str());
    diff_interface(device, old_iface, *new_iface, out);
  }
  for (const Interface& new_iface : after.interfaces()) {
    util::require(before.find_interface(new_iface.id) != nullptr,
                  "diff_devices: interface added: " + new_iface.id.str());
  }

  diff_acls(device, before, after, out);

  diff_sets(
      device, before.static_routes(), after.static_routes(),
      [](const StaticRoute& r) { return StaticRouteAdd{r}; },
      [](const StaticRoute& r) { return StaticRouteRemove{r}; }, out);

  // OSPF process.
  const auto& old_ospf = before.ospf();
  const auto& new_ospf = after.ospf();
  if (old_ospf.has_value() != new_ospf.has_value()) {
    out.push_back({device, OspfProcessChange{old_ospf, new_ospf}});
  } else if (old_ospf && new_ospf && !(*old_ospf == *new_ospf)) {
    // Same process present on both sides: decompose into network-statement
    // add/removes when only those differ; otherwise a wholesale change.
    OspfProcess old_stripped = *old_ospf;
    OspfProcess new_stripped = *new_ospf;
    old_stripped.networks.clear();
    new_stripped.networks.clear();
    if (old_stripped == new_stripped) {
      diff_sets(
          device, old_ospf->networks, new_ospf->networks,
          [](const OspfNetwork& n) { return OspfNetworkAdd{n}; },
          [](const OspfNetwork& n) { return OspfNetworkRemove{n}; }, out);
    } else {
      out.push_back({device, OspfProcessChange{old_ospf, new_ospf}});
    }
  }

  diff_sets(
      device, before.vlans(), after.vlans(), [](VlanId v) { return VlanDeclare{v}; },
      [](VlanId v) { return VlanRemove{v}; }, out);

  // Secrets: record *which* field changed, never the value.
  if (before.secrets().enable_password != after.secrets().enable_password)
    out.push_back({device, SecretChange{"enable_password"}});
  if (before.secrets().snmp_community != after.secrets().snmp_community)
    out.push_back({device, SecretChange{"snmp_community"}});
  if (before.secrets().ipsec_key != after.secrets().ipsec_key)
    out.push_back({device, SecretChange{"ipsec_key"}});

  return out;
}

std::vector<ConfigChange> diff_networks(const Network& before, const Network& after) {
  std::vector<ConfigChange> out;
  for (const Device& old_device : before.devices()) {
    const Device* new_device = after.find_device(old_device.id());
    if (!new_device) continue;  // device absent from twin slice: unchanged
    auto changes = diff_devices(old_device, *new_device);
    out.insert(out.end(), changes.begin(), changes.end());
  }
  for (const Device& new_device : after.devices()) {
    util::require(before.find_device(new_device.id()) != nullptr,
                  "diff_networks: device added: " + new_device.id().str());
  }
  return out;
}

namespace {

struct ApplyVisitor {
  Network& network;
  const DeviceId& device_id;

  Device& device() { return network.device(device_id); }

  void operator()(const InterfaceAdminChange& c) {
    device().interface(c.iface).shutdown = c.new_shutdown;
  }
  void operator()(const InterfaceAddressChange& c) {
    device().interface(c.iface).address = c.new_address;
  }
  void operator()(const InterfaceAclBindingChange& c) {
    Interface& iface = device().interface(c.iface);
    (c.direction == AclDirection::In ? iface.acl_in : iface.acl_out) = c.new_acl;
  }
  void operator()(const SwitchportChange& c) {
    Interface& iface = device().interface(c.iface);
    iface.mode = c.new_mode;
    iface.access_vlan = c.new_access_vlan;
    iface.trunk_allowed = c.new_trunk;
  }
  void operator()(const OspfCostChange& c) {
    device().interface(c.iface).ospf_cost = c.new_cost;
  }
  void operator()(const AclEntryAdd& c) {
    Acl* acl = device().find_acl(c.acl);
    if (!acl) throw util::NotFoundError("apply_change: no ACL '" + c.acl + "'");
    // Clamp: when sibling edits were filtered out (enforcer quarantine) the
    // recorded index can exceed the current size; appending preserves the
    // change's content semantics.
    std::size_t index = std::min(c.index, acl->entries.size());
    acl->entries.insert(acl->entries.begin() + static_cast<std::ptrdiff_t>(index), c.entry);
  }
  void operator()(const AclEntryRemove& c) {
    Acl* acl = device().find_acl(c.acl);
    if (!acl) throw util::NotFoundError("apply_change: no ACL '" + c.acl + "'");
    // Prefer the recorded index when it still matches; otherwise fall back
    // to content addressing (mirrors IOS, where ACL edits target sequence
    // content, and keeps sibling edits replayable after quarantine).
    if (c.index < acl->entries.size() && acl->entries[c.index] == c.entry) {
      acl->entries.erase(acl->entries.begin() + static_cast<std::ptrdiff_t>(c.index));
      return;
    }
    auto it = std::find(acl->entries.begin(), acl->entries.end(), c.entry);
    util::require(it != acl->entries.end(),
                  "apply_change: ACL entry not present: '" + c.entry.to_string() + "'");
    acl->entries.erase(it);
  }
  void operator()(const AclCreate& c) {
    if (!c.at) {
      device().add_acl(c.acl);
      return;
    }
    Device& dev = device();
    util::require(!c.acl.name.empty(), "ACL must have a name");
    util::require(dev.find_acl(c.acl.name) == nullptr,
                  "duplicate ACL '" + c.acl.name + "' on device '" + dev.id().str() + "'");
    auto& acls = dev.acls();
    std::size_t index = std::min(*c.at, acls.size());
    acls.insert(acls.begin() + static_cast<std::ptrdiff_t>(index), c.acl);
  }
  void operator()(const AclDelete& c) {
    util::require(device().find_acl(c.name) != nullptr, "apply_change: no ACL '" + c.name + "'");
    device().remove_acl(c.name);
  }
  void operator()(const StaticRouteAdd& c) {
    auto& routes = device().static_routes();
    util::require(std::find(routes.begin(), routes.end(), c.route) == routes.end(),
                  "apply_change: duplicate static route");
    std::size_t index = c.at ? std::min(*c.at, routes.size()) : routes.size();
    routes.insert(routes.begin() + static_cast<std::ptrdiff_t>(index), c.route);
  }
  void operator()(const StaticRouteRemove& c) {
    auto& routes = device().static_routes();
    auto it = std::find(routes.begin(), routes.end(), c.route);
    util::require(it != routes.end(), "apply_change: static route not present");
    routes.erase(it);
  }
  void operator()(const OspfNetworkAdd& c) {
    auto& ospf = device().ospf();
    util::require(ospf.has_value(), "apply_change: device has no OSPF process");
    auto& networks = ospf->networks;
    std::size_t index = c.at ? std::min(*c.at, networks.size()) : networks.size();
    networks.insert(networks.begin() + static_cast<std::ptrdiff_t>(index), c.network);
  }
  void operator()(const OspfNetworkRemove& c) {
    auto& ospf = device().ospf();
    util::require(ospf.has_value(), "apply_change: device has no OSPF process");
    auto& networks = ospf->networks;
    if (c.at && *c.at < networks.size() && networks[*c.at] == c.network) {
      networks.erase(networks.begin() + static_cast<std::ptrdiff_t>(*c.at));
      return;
    }
    auto it = std::find(networks.begin(), networks.end(), c.network);
    util::require(it != networks.end(), "apply_change: ospf network not present");
    networks.erase(it);
  }
  void operator()(const OspfProcessChange& c) { device().ospf() = c.new_process; }
  void operator()(const VlanDeclare& c) {
    util::require(!device().has_vlan(c.vlan), "apply_change: vlan already declared");
    auto& vlans = device().vlans();
    std::size_t index = c.at ? std::min(*c.at, vlans.size()) : vlans.size();
    vlans.insert(vlans.begin() + static_cast<std::ptrdiff_t>(index), c.vlan);
  }
  void operator()(const VlanRemove& c) {
    auto& vlans = device().vlans();
    auto it = std::find(vlans.begin(), vlans.end(), c.vlan);
    util::require(it != vlans.end(), "apply_change: vlan not declared");
    vlans.erase(it);
  }
  void operator()(const SecretChange& c) {
    // Secret values are not carried in change records; replaying one marks
    // the field as rotated with a placeholder so diffs remain visible. The
    // revert form pops one rotation marker so undo replay is exact.
    DeviceSecrets& secrets = device().secrets();
    std::string* field = nullptr;
    if (c.field == "enable_password")
      field = &secrets.enable_password;
    else if (c.field == "snmp_community")
      field = &secrets.snmp_community;
    else if (c.field == "ipsec_key")
      field = &secrets.ipsec_key;
    else
      throw util::InvariantError("apply_change: unknown secret field '" + c.field + "'");
    if (c.revert) {
      util::require(!field->empty() && field->back() == '*',
                    "apply_change: secret field '" + c.field + "' has no rotation to revert");
      field->pop_back();
    } else {
      *field += "*";
    }
  }
};

}  // namespace

void apply_change(Network& network, const ConfigChange& change) {
  ApplyVisitor visitor{network, change.device};
  std::visit(visitor, change.detail);
}

void apply_changes(Network& network, const std::vector<ConfigChange>& changes) {
  for (const ConfigChange& change : changes) apply_change(network, change);
}

namespace {

// Builds the exact inverse of each change against the pre-state. The rule
// throughout: the inverse's "old" side is the value the forward change wrote
// and its "new" side is the value actually observed in the pre-state (not
// the possibly-stale old_* recorded in the forward change), so that
// apply(forward); apply(inverse) restores the pre-state bit-for-bit.
struct InvertVisitor {
  const Network& pre_state;
  const DeviceId& device_id;

  const Device& device() const { return pre_state.device(device_id); }

  ChangeDetail operator()(const InterfaceAdminChange& c) const {
    const Interface& iface = device().interface(c.iface);
    return InterfaceAdminChange{c.iface, c.new_shutdown, iface.shutdown};
  }
  ChangeDetail operator()(const InterfaceAddressChange& c) const {
    const Interface& iface = device().interface(c.iface);
    return InterfaceAddressChange{c.iface, c.new_address, iface.address};
  }
  ChangeDetail operator()(const InterfaceAclBindingChange& c) const {
    const Interface& iface = device().interface(c.iface);
    const std::string& current = c.direction == AclDirection::In ? iface.acl_in : iface.acl_out;
    return InterfaceAclBindingChange{c.iface, c.direction, c.new_acl, current};
  }
  ChangeDetail operator()(const SwitchportChange& c) const {
    const Interface& iface = device().interface(c.iface);
    return SwitchportChange{c.iface,        c.new_mode,   iface.mode,
                            c.new_access_vlan, iface.access_vlan, c.new_trunk,
                            iface.trunk_allowed};
  }
  ChangeDetail operator()(const OspfCostChange& c) const {
    const Interface& iface = device().interface(c.iface);
    return OspfCostChange{c.iface, c.new_cost, iface.ospf_cost};
  }
  ChangeDetail operator()(const AclEntryAdd& c) const {
    const Acl* acl = device().find_acl(c.acl);
    if (!acl) throw util::NotFoundError("apply_change: no ACL '" + c.acl + "'");
    // Mirror the apply-side clamp so the inverse targets the index where the
    // entry actually lands.
    std::size_t index = std::min(c.index, acl->entries.size());
    return AclEntryRemove{c.acl, index, c.entry};
  }
  ChangeDetail operator()(const AclEntryRemove& c) const {
    const Acl* acl = device().find_acl(c.acl);
    if (!acl) throw util::NotFoundError("apply_change: no ACL '" + c.acl + "'");
    // Mirror the apply-side resolution (recorded index if it still matches,
    // otherwise content addressing) to find the index the entry leaves from.
    std::size_t index;
    if (c.index < acl->entries.size() && acl->entries[c.index] == c.entry) {
      index = c.index;
    } else {
      auto it = std::find(acl->entries.begin(), acl->entries.end(), c.entry);
      util::require(it != acl->entries.end(),
                    "apply_change: ACL entry not present: '" + c.entry.to_string() + "'");
      index = static_cast<std::size_t>(it - acl->entries.begin());
    }
    return AclEntryAdd{c.acl, index, acl->entries[index]};
  }
  ChangeDetail operator()(const AclCreate& c) const { return AclDelete{c.acl.name}; }
  ChangeDetail operator()(const AclDelete& c) const {
    const auto& acls = device().acls();
    for (std::size_t i = 0; i < acls.size(); ++i) {
      if (acls[i].name == c.name) return AclCreate{acls[i], i};
    }
    throw util::NotFoundError("apply_change: no ACL '" + c.name + "'");
  }
  ChangeDetail operator()(const StaticRouteAdd& c) const {
    // apply rejects duplicates, so content addressing on the remove side is
    // position-exact.
    return StaticRouteRemove{c.route};
  }
  ChangeDetail operator()(const StaticRouteRemove& c) const {
    const auto& routes = device().static_routes();
    auto it = std::find(routes.begin(), routes.end(), c.route);
    util::require(it != routes.end(), "apply_change: static route not present");
    return StaticRouteAdd{c.route, static_cast<std::size_t>(it - routes.begin())};
  }
  ChangeDetail operator()(const OspfNetworkAdd& c) const {
    const auto& ospf = device().ospf();
    util::require(ospf.has_value(), "apply_change: device has no OSPF process");
    // Network statements may repeat, so the inverse must remove by position.
    std::size_t index = c.at ? std::min(*c.at, ospf->networks.size()) : ospf->networks.size();
    return OspfNetworkRemove{c.network, index};
  }
  ChangeDetail operator()(const OspfNetworkRemove& c) const {
    const auto& ospf = device().ospf();
    util::require(ospf.has_value(), "apply_change: device has no OSPF process");
    const auto& networks = ospf->networks;
    std::size_t index;
    if (c.at && *c.at < networks.size() && networks[*c.at] == c.network) {
      index = *c.at;
    } else {
      auto it = std::find(networks.begin(), networks.end(), c.network);
      util::require(it != networks.end(), "apply_change: ospf network not present");
      index = static_cast<std::size_t>(it - networks.begin());
    }
    return OspfNetworkAdd{networks[index], index};
  }
  ChangeDetail operator()(const OspfProcessChange& c) const {
    return OspfProcessChange{c.new_process, device().ospf()};
  }
  ChangeDetail operator()(const VlanDeclare& c) const {
    // apply rejects duplicate declarations, so content addressing is exact.
    return VlanRemove{c.vlan};
  }
  ChangeDetail operator()(const VlanRemove& c) const {
    const auto& vlans = device().vlans();
    auto it = std::find(vlans.begin(), vlans.end(), c.vlan);
    util::require(it != vlans.end(), "apply_change: vlan not declared");
    return VlanDeclare{c.vlan, static_cast<std::size_t>(it - vlans.begin())};
  }
  ChangeDetail operator()(const SecretChange& c) const {
    util::require(c.field == "enable_password" || c.field == "snmp_community" ||
                      c.field == "ipsec_key",
                  "apply_change: unknown secret field '" + c.field + "'");
    return SecretChange{c.field, !c.revert};
  }
};

}  // namespace

ConfigChange invert_change(const Network& pre_state, const ConfigChange& change) {
  pre_state.device(change.device);  // unknown device: NotFoundError, like apply_change
  InvertVisitor visitor{pre_state, change.device};
  return ConfigChange{change.device, std::visit(visitor, change.detail)};
}

}  // namespace heimdall::cfg
