// Semantic configuration diff.
//
// The policy enforcer does not look at raw text diffs: it extracts *typed*
// changes (an ACL entry flipped, an interface brought up, a route added) so
// it can (1) map each change to a privilege Action x Resource for compliance
// checking, (2) replay changes onto a shadow network for verification, and
// (3) order them safely (scheduler).
#pragma once

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "netmodel/network.hpp"

namespace heimdall::cfg {

/// Direction of an interface ACL binding.
enum class AclDirection : std::uint8_t { In, Out };

std::string to_string(AclDirection direction);

// -- Change payloads --------------------------------------------------------

/// Interface shutdown / no shutdown.
struct InterfaceAdminChange {
  net::InterfaceId iface;
  bool old_shutdown = false;
  bool new_shutdown = false;
  bool operator==(const InterfaceAdminChange&) const = default;
};

/// Interface IP address (re)assignment or removal.
struct InterfaceAddressChange {
  net::InterfaceId iface;
  std::optional<net::InterfaceAddress> old_address;
  std::optional<net::InterfaceAddress> new_address;
  bool operator==(const InterfaceAddressChange&) const = default;
};

/// ACL bound to / unbound from an interface direction.
struct InterfaceAclBindingChange {
  net::InterfaceId iface;
  AclDirection direction = AclDirection::In;
  std::string old_acl;
  std::string new_acl;
  bool operator==(const InterfaceAclBindingChange&) const = default;
};

/// Switchport mode / access VLAN / trunk set change.
struct SwitchportChange {
  net::InterfaceId iface;
  net::SwitchportMode old_mode = net::SwitchportMode::None;
  net::SwitchportMode new_mode = net::SwitchportMode::None;
  net::VlanId old_access_vlan = 1;
  net::VlanId new_access_vlan = 1;
  std::vector<net::VlanId> old_trunk;
  std::vector<net::VlanId> new_trunk;
  bool operator==(const SwitchportChange&) const = default;
};

/// OSPF interface cost change.
struct OspfCostChange {
  net::InterfaceId iface;
  std::optional<unsigned> old_cost;
  std::optional<unsigned> new_cost;
  bool operator==(const OspfCostChange&) const = default;
};

/// One ACL entry inserted at `index`.
struct AclEntryAdd {
  std::string acl;
  std::size_t index = 0;
  net::AclEntry entry;
  bool operator==(const AclEntryAdd&) const = default;
};

/// One ACL entry removed from `index`.
struct AclEntryRemove {
  std::string acl;
  std::size_t index = 0;
  net::AclEntry entry;  ///< the removed entry, for audit readability
  bool operator==(const AclEntryRemove&) const = default;
};

/// A whole ACL created (with its entries).
struct AclCreate {
  net::Acl acl;
  /// Insertion position among the device's ACLs for exact undo replay
  /// (invert_change only); absent appends.
  std::optional<std::size_t> at = std::nullopt;
  bool operator==(const AclCreate&) const = default;
};

/// A whole ACL deleted.
struct AclDelete {
  std::string name;
  bool operator==(const AclDelete&) const = default;
};

struct StaticRouteAdd {
  net::StaticRoute route;
  /// Insertion position for exact undo replay (set by invert_change, never
  /// by diffing); absent appends, preserving the historical semantics.
  std::optional<std::size_t> at = std::nullopt;
  bool operator==(const StaticRouteAdd&) const = default;
};

struct StaticRouteRemove {
  net::StaticRoute route;
  bool operator==(const StaticRouteRemove&) const = default;
};

struct OspfNetworkAdd {
  net::OspfNetwork network;
  /// Insertion position for exact undo replay (invert_change only).
  std::optional<std::size_t> at = std::nullopt;
  bool operator==(const OspfNetworkAdd&) const = default;
};

struct OspfNetworkRemove {
  net::OspfNetwork network;
  /// Removal position for exact undo replay (invert_change only); absent
  /// removes the first value-equal network statement.
  std::optional<std::size_t> at = std::nullopt;
  bool operator==(const OspfNetworkRemove&) const = default;
};

/// OSPF process enabled/disabled wholesale.
struct OspfProcessChange {
  std::optional<net::OspfProcess> old_process;
  std::optional<net::OspfProcess> new_process;
  bool operator==(const OspfProcessChange&) const = default;
};

struct VlanDeclare {
  net::VlanId vlan = 1;
  /// Insertion position for exact undo replay (invert_change only).
  std::optional<std::size_t> at = std::nullopt;
  bool operator==(const VlanDeclare&) const = default;
};

struct VlanRemove {
  net::VlanId vlan = 1;
  bool operator==(const VlanRemove&) const = default;
};

/// A credential / secret changed. `field` is one of "enable_password",
/// "snmp_community", "ipsec_key". Secret *values* never appear in a change
/// record (they would leak into audit logs).
struct SecretChange {
  std::string field;
  /// When true, undoes one rotation of `field` (invert_change only). A
  /// rotation is modeled as appending a '*' to the stored placeholder, so
  /// the revert pops one and throws if there is nothing to pop.
  bool revert = false;
  bool operator==(const SecretChange&) const = default;
};

using ChangeDetail =
    std::variant<InterfaceAdminChange, InterfaceAddressChange, InterfaceAclBindingChange,
                 SwitchportChange, OspfCostChange, AclEntryAdd, AclEntryRemove, AclCreate,
                 AclDelete, StaticRouteAdd, StaticRouteRemove, OspfNetworkAdd, OspfNetworkRemove,
                 OspfProcessChange, VlanDeclare, VlanRemove, SecretChange>;

/// One semantic change on one device.
struct ConfigChange {
  net::DeviceId device;
  ChangeDetail detail;

  bool operator==(const ConfigChange&) const = default;

  /// One-line human-readable rendering for audit trails and reports.
  std::string summary() const;
};

// -- Diff and replay ---------------------------------------------------------

/// Computes the semantic changes turning `before` into `after` for a single
/// device. Both must have the same id.
std::vector<ConfigChange> diff_devices(const net::Device& before, const net::Device& after);

/// Diffs every device present in both networks. Devices present in only one
/// network are rejected (twin workflows never add/remove devices).
std::vector<ConfigChange> diff_networks(const net::Network& before, const net::Network& after);

/// Replays one change onto `network`. Throws NotFoundError / InvariantError
/// when the change does not apply (e.g. removing an absent route).
void apply_change(net::Network& network, const ConfigChange& change);

/// Replays a list of changes in order.
void apply_changes(net::Network& network, const std::vector<ConfigChange>& changes);

/// Computes the exact inverse of `change` against `pre_state`, the network
/// state the change is about to be applied to. Applying `change` and then
/// the returned inverse restores `pre_state` bit-for-bit — including vector
/// positions of VLANs, routes, OSPF networks and ACLs, so config
/// fingerprints (and therefore analysis::Engine memoization) line up.
///
/// Throws the same NotFoundError / InvariantError family as apply_change
/// when the change cannot apply to `pre_state` (no inverse exists).
ConfigChange invert_change(const net::Network& pre_state, const ConfigChange& change);

}  // namespace heimdall::cfg
