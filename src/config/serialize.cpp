#include "config/serialize.hpp"

#include "util/strings.hpp"

namespace heimdall::cfg {

using namespace heimdall::net;

namespace {

void render_interface(std::string& out, const Interface& iface) {
  out += "interface " + iface.id.str() + "\n";
  if (!iface.description.empty()) out += " description " + iface.description + "\n";
  if (iface.address) {
    out += " ip address " + iface.address->ip.to_string() + " " +
           iface.address->subnet().netmask().to_string() + "\n";
  }
  if (iface.mode == SwitchportMode::Access) {
    out += " switchport mode access\n";
    out += " switchport access vlan " + std::to_string(iface.access_vlan) + "\n";
  } else if (iface.mode == SwitchportMode::Trunk) {
    out += " switchport mode trunk\n";
    std::vector<std::string> vlans;
    for (VlanId v : iface.trunk_allowed) vlans.push_back(std::to_string(v));
    out += " switchport trunk allowed vlan " + util::join(vlans, ",") + "\n";
  }
  if (!iface.acl_in.empty()) out += " ip access-group " + iface.acl_in + " in\n";
  if (!iface.acl_out.empty()) out += " ip access-group " + iface.acl_out + " out\n";
  if (iface.ospf_cost) out += " ip ospf cost " + std::to_string(*iface.ospf_cost) + "\n";
  out += iface.shutdown ? " shutdown\n" : " no shutdown\n";
  out += "!\n";
}

void render_acl(std::string& out, const Acl& acl) {
  out += "ip access-list extended " + acl.name + "\n";
  for (const AclEntry& entry : acl.entries) out += " " + entry.to_string() + "\n";
  out += "!\n";
}

void render_ospf(std::string& out, const OspfProcess& ospf) {
  out += "router ospf " + std::to_string(ospf.process_id) + "\n";
  if (ospf.router_id) out += " router-id " + ospf.router_id->to_string() + "\n";
  for (const OspfNetwork& network : ospf.networks) {
    out += " network " + network.prefix.network().to_string() + " " +
           network.prefix.wildcard().to_string() + " area " + std::to_string(network.area) + "\n";
  }
  for (const InterfaceId& iface : ospf.passive_interfaces)
    out += " passive-interface " + iface.str() + "\n";
  out += "!\n";
}

}  // namespace

namespace {

/// Standard operational boilerplate real router configs carry. Emitted for
/// routers/switches and skipped (not modeled) by the parser; keeps rendered
/// configs at a realistic line volume.
const char* const kBoilerplate =
    "version 15.2\n"
    "service timestamps debug datetime msec\n"
    "service timestamps log datetime msec\n"
    "service password-encryption\n"
    "service tcp-keepalives-in\n"
    "service tcp-keepalives-out\n"
    "no ip domain-lookup\n"
    "ip cef\n"
    "ip ssh version 2\n"
    "ip ssh time-out 60\n"
    "login block-for 120 attempts 3 within 60\n"
    "login on-failure log\n"
    "login on-success log\n"
    "logging buffered 64000\n"
    "logging console warnings\n"
    "logging trap informational\n"
    "logging host 10.255.0.5\n"
    "ntp server 10.255.0.1\n"
    "ntp server 10.255.0.2\n"
    "clock timezone UTC 0 0\n"
    "spanning-tree mode rapid-pvst\n"
    "spanning-tree extend system-id\n"
    "no ip http server\n"
    "no ip http secure-server\n"
    "ip tcp synwait-time 10\n"
    "no ip source-route\n"
    "no ip bootp server\n"
    "line con 0\n"
    " logging synchronous\n"
    " exec-timeout 15 0\n"
    "line aux 0\n"
    " no exec\n"
    " transport output none\n"
    "line vty 0 4\n"
    " login local\n"
    " transport input ssh\n"
    " exec-timeout 30 0\n"
    "line vty 5 15\n"
    " login local\n"
    " transport input ssh\n";

}  // namespace

std::string serialize_device(const Device& device) {
  std::string out;
  out += "hostname " + device.id().str() + "\n";
  out += "! heimdall-device-kind: " + to_string(device.kind()) + "\n";
  if (!device.is_host()) out += kBoilerplate;
  const DeviceSecrets& secrets = device.secrets();
  if (!secrets.enable_password.empty()) out += "enable secret 5 " + secrets.enable_password + "\n";
  if (!secrets.snmp_community.empty())
    out += "snmp-server community " + secrets.snmp_community + " RO\n";
  if (!secrets.ipsec_key.empty())
    out += "crypto isakmp key " + secrets.ipsec_key + " address 0.0.0.0\n";
  out += "!\n";
  for (VlanId vlan : device.vlans()) out += "vlan " + std::to_string(vlan) + "\n";
  if (!device.vlans().empty()) out += "!\n";
  for (const Interface& iface : device.interfaces()) render_interface(out, iface);
  for (const Acl& acl : device.acls()) render_acl(out, acl);
  if (device.ospf()) render_ospf(out, *device.ospf());
  for (const StaticRoute& route : device.static_routes()) {
    out += "ip route " + route.prefix.network().to_string() + " " +
           route.prefix.netmask().to_string() + " " + route.next_hop.to_string();
    if (route.admin_distance != 1) out += " " + std::to_string(route.admin_distance);
    out += "\n";
  }
  out += "end\n";
  return out;
}

std::string serialize_network(const net::Network& network) {
  std::string out;
  for (const Device& device : network.devices()) {
    out += "!=== device " + device.id().str() + " ===\n";
    out += serialize_device(device);
  }
  return out;
}

std::string serialize_topology(const net::Topology& topology) {
  std::string out;
  for (const Link& link : topology.links()) {
    out += "link " + link.a.device.str() + ":" + link.a.iface.str() + " " + link.b.device.str() +
           ":" + link.b.iface.str() + "\n";
  }
  return out;
}

std::size_t config_line_count(const net::Network& network) {
  std::size_t count = 0;
  for (const Device& device : network.devices()) {
    std::string text = serialize_device(device);
    for (const std::string& line : util::split(text, '\n')) {
      auto trimmed = util::trim(line);
      if (trimmed.empty() || trimmed[0] == '!') continue;
      ++count;
    }
  }
  return count;
}

}  // namespace heimdall::cfg
