#include "service/queue.hpp"

#include "config/serialize.hpp"
#include "obs/flight.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/rolling.hpp"
#include "obs/trace.hpp"

namespace heimdall::service {

namespace {

util::Sha256Digest config_fingerprint(const net::Device& device) {
  return util::Sha256::hash(cfg::serialize_device(device));
}

obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& gauge = obs::Registry::global().gauge("service.queue_depth");
  return gauge;
}

/// "quarantine", or "replay_failure" when any interception was a replay
/// error — the flight-recorder trigger reason for this report.
const char* anomaly_reason(const enforce::QuarantineReport& report) {
  for (const auto& [change, reason] : report.quarantined) {
    if (reason.rfind("replay", 0) == 0) return "replay_failure";
  }
  return "quarantine";
}

}  // namespace

EnforcementQueue::EnforcementQueue(enforce::PolicyEnforcer& enforcer, net::Network& production,
                                   std::shared_mutex& production_mutex,
                                   util::VirtualClock& clock, Options options)
    : enforcer_(enforcer),
      production_(production),
      production_mutex_(production_mutex),
      clock_(clock),
      options_(options) {
  if (options_.max_batch == 0) options_.max_batch = 1;
  worker_ = std::thread([this] { worker_loop(); });
}

EnforcementQueue::~EnforcementQueue() { shutdown(); }

std::future<SubmitOutcome> EnforcementQueue::submit(PendingSubmission submission) {
  std::future<SubmitOutcome> future = submission.promise.get_future();
  submission.enqueued_us = obs::steady_now_us();
  obs::EventJournal& journal = obs::EventJournal::global();
  if (journal.enabled()) {
    journal.append(obs::EventType::QueueEnqueue, submission.ticket, submission.session_id,
                   submission.actor, std::to_string(submission.changes.size()) + " changes");
  }
  queue_depth_gauge().add(1);
  {
    std::lock_guard<std::mutex> lock(progress_mutex_);
    ++enqueued_;
  }
  if (!queue_.push(std::move(submission))) {
    queue_depth_gauge().add(-1);
    // Shut down: the dropped submission's promise died with it, so the
    // future above reports broken_promise. Rebalance the drain counter.
    std::lock_guard<std::mutex> lock(progress_mutex_);
    --enqueued_;
    progress_.notify_all();
  }
  return future;
}

void EnforcementQueue::set_paused(bool paused) { queue_.set_paused(paused); }

void EnforcementQueue::drain() {
  std::unique_lock<std::mutex> lock(progress_mutex_);
  progress_.wait(lock, [&] { return completed_ >= enqueued_; });
}

void EnforcementQueue::shutdown() {
  queue_.close();
  if (worker_.joinable()) worker_.join();
}

void EnforcementQueue::worker_loop() {
  obs::ScopedContext worker_context("thread", "enforcement-worker");
  for (;;) {
    std::vector<PendingSubmission> batch = queue_.pop_some(options_.max_batch);
    if (batch.empty()) return;  // closed and drained
    process_batch(batch);
  }
}

void EnforcementQueue::process_batch(std::vector<PendingSubmission>& batch) {
  std::uint64_t batch_id = batches_.fetch_add(1, std::memory_order_relaxed) + 1;
  obs::ScopedSpan span("service.batch", "service",
                       {{"batch", std::to_string(batch_id)},
                        {"submissions", std::to_string(batch.size())}});
  submissions_.fetch_add(batch.size(), std::memory_order_relaxed);
  std::size_t observed = max_observed_batch_.load(std::memory_order_relaxed);
  while (batch.size() > observed &&
         !max_observed_batch_.compare_exchange_weak(observed, batch.size())) {
  }
  obs::Registry::global().histogram("service.batch_size").observe(
      static_cast<double>(batch.size()));
  queue_depth_gauge().add(-static_cast<std::int64_t>(batch.size()));

  // Queue-wait decomposition: how long each submission sat before its batch
  // started. Feeds the per-ticket timeline, the rolling window and the
  // queue-wait SLO.
  std::uint64_t dequeued_us = obs::steady_now_us();
  std::vector<std::uint64_t> queue_wait_us(batch.size(), 0);
  obs::EventJournal& journal = obs::EventJournal::global();
  obs::RollingHistogram& rolling_wait = obs::RollingRegistry::global().histogram(
      "service.queue_wait_ms");
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const PendingSubmission& pending = batch[i];
    queue_wait_us[i] =
        dequeued_us >= pending.enqueued_us ? dequeued_us - pending.enqueued_us : 0;
    if (journal.enabled()) {
      journal.append(obs::EventType::QueueDequeue, pending.ticket, pending.session_id,
                     pending.actor, "batch #" + std::to_string(batch_id), queue_wait_us[i]);
    }
    double wait_ms = static_cast<double>(queue_wait_us[i]) / 1000.0;
    rolling_wait.observe(wait_ms);
    obs::SloTracker::global().observe("queue_wait_ms", wait_ms);
  }
  obs::SloTracker::global().observe("queue_depth",
                                    static_cast<double>(queue_depth_gauge().value()));

  // Session events staged before this batch reach the chain first, so the
  // sealed log reads open -> ... -> enforcement for every submission.
  enforcer_.flush_audit();

  std::vector<enforce::BatchSubmission> submissions;
  submissions.reserve(batch.size());
  std::vector<std::vector<net::DeviceId>> stale(batch.size());
  std::vector<enforce::QuarantineReport> reports;
  {
    std::unique_lock<std::shared_mutex> lock(production_mutex_);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      PendingSubmission& pending = batch[i];
      for (const auto& [device, fingerprint] : pending.baseline) {
        const net::Device* current = production_.find_device(device);
        if (!current || config_fingerprint(*current) != fingerprint)
          stale[i].push_back(device);
      }
      enforce::BatchSubmission submission;
      submission.actor = pending.actor;
      submission.changes = pending.changes;
      submission.privileges = pending.privileges;
      submission.approvals = pending.approvals;
      submission.context = pending.context;
      submissions.push_back(std::move(submission));
    }
    reports = enforcer_.enforce_with_quarantine_batch(production_, submissions, clock_);
    clock_.advance(1);
  }
  enforcer_.flush_audit();

  if (options_.keep_journal) {
    BatchRecord record;
    record.batch_id = batch_id;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      BatchRecord::Entry entry;
      entry.session_id = batch[i].session_id;
      entry.actor = batch[i].actor;
      entry.changes = batch[i].changes;
      entry.privileges = batch[i].privileges;
      entry.approvals = batch[i].approvals;
      record.entries.push_back(std::move(entry));
    }
    journal_.push_back(std::move(record));
  }

  obs::RollingHistogram& rolling_enforce =
      obs::RollingRegistry::global().histogram("service.enforce_ms");
  for (std::size_t i = 0; i < batch.size(); ++i) {
    SubmitOutcome outcome;
    outcome.report = std::move(reports[i]);
    outcome.stale_devices = std::move(stale[i]);
    outcome.batch_id = batch_id;
    outcome.batch_size = batch.size();
    outcome.queue_wait_us = queue_wait_us[i];

    const enforce::QuarantineReport::StageTimes& stages = outcome.report.stages;
    double enforce_ms = static_cast<double>(stages.analyze_us + stages.verify_us +
                                            stages.audit_us) /
                        1000.0;
    rolling_enforce.observe(enforce_ms);
    obs::SloTracker::global().observe("enforce_ms", enforce_ms);

    // Anomaly hook: an intercepted change is exactly the moment an operator
    // wants the service's recent history frozen.
    if (!outcome.report.quarantined.empty() && obs::FlightRecorder::global().enabled()) {
      obs::FlightRecorder::global().trigger(anomaly_reason(outcome.report), batch[i].ticket);
    }
    batch[i].promise.set_value(std::move(outcome));
  }
  {
    std::lock_guard<std::mutex> lock(progress_mutex_);
    completed_ += batch.size();
  }
  progress_.notify_all();
}

}  // namespace heimdall::service
