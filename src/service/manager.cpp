#include "service/manager.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "spec/verify.hpp"

namespace heimdall::service {

SessionManager::SessionManager(net::Network production, std::vector<spec::Policy> policies,
                               ServiceOptions options)
    : options_(options),
      production_(std::move(production)),
      enforcer_(spec::PolicyVerifier(std::move(policies), options.engine_options),
                enforce::SimulatedEnclave("heimdall-serve-v1", "hw-root"),
                enforce::EnforcerOptions{.attribution_threads = 1,
                                         .audit_shards = options.audit_shards,
                                         .coalesce_waves = options.coalesce_waves}),
      queue_(enforcer_, production_, production_mutex_, clock_,
             EnforcementQueue::Options{.max_batch = options.max_batch,
                                       .keep_journal = options.keep_journal}) {}

SessionManager::~SessionManager() { shutdown(); }

void SessionManager::record_event(const std::string& actor, enforce::AuditCategory category,
                                  std::string message) {
  enforcer_.audit_sink().record(now_ms_.fetch_add(1, std::memory_order_relaxed) + 1, actor,
                                category, std::move(message));
}

std::pair<std::shared_ptr<const twin::TwinArtifacts>, bool> SessionManager::artifacts_for(
    const msp::Ticket& ticket) {
  std::lock_guard<std::mutex> artifact_lock(artifact_mutex_);
  std::shared_lock<std::shared_mutex> production_lock(production_mutex_);
  // The cache key pins the exact production state the slice was computed
  // from: any applied batch changes the fingerprint and naturally retires
  // every stale entry (they age out of the LRU).
  std::string key = twin_engine_.fingerprint(production_) + '|' +
                    twin::ticket_content_hash(ticket) + '|' + twin::to_string(options_.strategy);
  if (auto it = artifact_cache_.find(key); it != artifact_cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru);
    artifact_hits_.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::global().counter("service.artifact_hits").add();
    return {it->second.artifacts, true};
  }
  artifact_misses_.fetch_add(1, std::memory_order_relaxed);
  obs::Registry::global().counter("service.artifact_misses").add();
  // The dataplane analysis is memoized by the same fingerprint, so a burst
  // of opens against unchanged production pays for it once.
  analysis::Snapshot snapshot = twin_engine_.analyze_dataplane(production_);
  auto artifacts = std::make_shared<const twin::TwinArtifacts>(
      twin::build_twin_artifacts(production_, *snapshot.dataplane, ticket, options_.strategy));
  production_lock.unlock();
  if (options_.artifact_cache_capacity > 0) {
    lru_.push_front(key);
    artifact_cache_[key] = CacheEntry{lru_.begin(), artifacts};
    while (artifact_cache_.size() > options_.artifact_cache_capacity) {
      artifact_cache_.erase(lru_.back());
      lru_.pop_back();
    }
  }
  return {artifacts, false};
}

std::unique_ptr<TicketSession> SessionManager::open(const msp::Ticket& ticket,
                                                    const std::string& actor) {
  std::uint64_t id = next_session_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  obs::ScopedContext session_context("session", std::to_string(id));
  obs::ScopedContext ticket_context("ticket", std::to_string(ticket.id));
  obs::ScopedSpan span("service.open", "service", {{"actor", actor}});
  auto [artifacts, from_cache] = artifacts_for(ticket);
  sessions_opened_.fetch_add(1, std::memory_order_relaxed);
  obs::Registry::global().counter("service.sessions_opened").add();
  record_event(actor, enforce::AuditCategory::Session,
               "session #" + std::to_string(id) + " opened for ticket #" +
                   std::to_string(ticket.id) + " (" +
                   std::to_string(artifacts->slice.devices.size()) + " devices, " +
                   (from_cache ? "cached artifacts" : "fresh artifacts") + ")");
  return std::unique_ptr<TicketSession>(
      new TicketSession(*this, id, actor, std::move(artifacts), ticket, from_cache));
}

std::future<SubmitOutcome> SessionManager::submit_changes(TicketSession& session,
                                                          std::vector<cfg::ConfigChange> changes,
                                                          obs::SpanArgs context) {
  record_event(session.actor(), enforce::AuditCategory::Session,
               "session #" + std::to_string(session.id()) + " submitted " +
                   std::to_string(changes.size()) + " changes");
  PendingSubmission submission;
  submission.session_id = session.id();
  submission.actor = session.actor();
  submission.changes = std::move(changes);
  submission.privileges = session.twin().privileges();
  submission.baseline = session.twin().baseline_fingerprints();
  submission.context = std::move(context);
  return queue_.submit(std::move(submission));
}

void SessionManager::note_closed(TicketSession& session) {
  sessions_closed_.fetch_add(1, std::memory_order_relaxed);
  obs::Registry::global().counter("service.sessions_closed").add();
  record_event(session.actor(), enforce::AuditCategory::Session,
               "session #" + std::to_string(session.id()) + " closed");
}

void SessionManager::drain() {
  queue_.drain();
  enforcer_.flush_audit();
}

void SessionManager::shutdown() {
  queue_.drain();
  queue_.shutdown();
  enforcer_.flush_audit();
}

void SessionManager::set_queue_paused(bool paused) { queue_.set_paused(paused); }

net::Network SessionManager::production_copy() const {
  std::shared_lock<std::shared_mutex> lock(production_mutex_);
  return production_;
}

ServiceStats SessionManager::stats() const {
  ServiceStats stats;
  stats.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  stats.sessions_closed = sessions_closed_.load(std::memory_order_relaxed);
  stats.submissions = queue_.submissions();
  stats.batches = queue_.batches();
  stats.max_observed_batch = queue_.max_observed_batch();
  stats.artifact_hits = artifact_hits_.load(std::memory_order_relaxed);
  stats.artifact_misses = artifact_misses_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace heimdall::service
