#include "service/manager.hpp"

#include <chrono>

#include "obs/flight.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/rolling.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "spec/verify.hpp"

namespace heimdall::service {

namespace {

obs::Gauge& active_sessions_gauge() {
  static obs::Gauge& gauge = obs::Registry::global().gauge("service.active_sessions");
  return gauge;
}

obs::Gauge& pooled_artifacts_gauge() {
  static obs::Gauge& gauge = obs::Registry::global().gauge("service.pooled_artifacts");
  return gauge;
}

obs::Gauge& cache_hit_rate_gauge() {
  static obs::Gauge& gauge = obs::Registry::global().gauge("service.cache_hit_rate");
  return gauge;
}

}  // namespace

SessionManager::SessionManager(net::Network production, std::vector<spec::Policy> policies,
                               ServiceOptions options)
    : options_(options),
      production_(std::move(production)),
      enforcer_(spec::PolicyVerifier(std::move(policies), options.engine_options),
                enforce::SimulatedEnclave("heimdall-serve-v1", "hw-root"),
                enforce::EnforcerOptions{.attribution_threads = 1,
                                         .audit_shards = options.audit_shards,
                                         .coalesce_waves = options.coalesce_waves,
                                         .audit_replicas = options.audit_replicas}),
      queue_(enforcer_, production_, production_mutex_, clock_,
             EnforcementQueue::Options{.max_batch = options.max_batch,
                                       .keep_journal = options.keep_journal}) {
  if (options_.journal_enabled) {
    obs::EventJournal& journal = obs::EventJournal::global();
    journal.set_enabled(true);
    if (options_.journal_capacity > 0) journal.set_capacity(options_.journal_capacity);
  }
  obs::SloTracker& slo = obs::SloTracker::global();
  if (options_.slo_queue_wait_ms > 0) slo.define("queue_wait_ms", options_.slo_queue_wait_ms);
  if (options_.slo_enforce_ms > 0) slo.define("enforce_ms", options_.slo_enforce_ms);
  if (options_.slo_queue_depth > 0) slo.define("queue_depth", options_.slo_queue_depth);
}

SessionManager::~SessionManager() { shutdown(); }

void SessionManager::record_event(const std::string& actor, enforce::AuditCategory category,
                                  std::string message) {
  enforcer_.audit_sink().record(now_ms_.fetch_add(1, std::memory_order_relaxed) + 1, actor,
                                category, std::move(message));
}

std::pair<std::shared_ptr<const twin::TwinArtifacts>, bool> SessionManager::artifacts_for(
    const msp::Ticket& ticket) {
  std::lock_guard<std::mutex> artifact_lock(artifact_mutex_);
  std::shared_lock<std::shared_mutex> production_lock(production_mutex_);
  // The cache key pins the exact production state the slice was computed
  // from: any applied batch changes the fingerprint and naturally retires
  // every stale entry (they age out of the LRU).
  std::string key = twin_engine_.fingerprint(production_) + '|' +
                    twin::ticket_content_hash(ticket) + '|' + twin::to_string(options_.strategy);
  auto refresh_hit_rate = [&] {
    std::uint64_t hits = artifact_hits_.load(std::memory_order_relaxed);
    std::uint64_t total = hits + artifact_misses_.load(std::memory_order_relaxed);
    cache_hit_rate_gauge().set(
        total == 0 ? 0 : static_cast<std::int64_t>(hits * 100 / total));
  };
  if (auto it = artifact_cache_.find(key); it != artifact_cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru);
    artifact_hits_.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::global().counter("service.artifact_hits").add();
    refresh_hit_rate();
    return {it->second.artifacts, true};
  }
  artifact_misses_.fetch_add(1, std::memory_order_relaxed);
  obs::Registry::global().counter("service.artifact_misses").add();
  refresh_hit_rate();
  // The dataplane analysis is memoized by the same fingerprint, so a burst
  // of opens against unchanged production pays for it once.
  analysis::Snapshot snapshot = twin_engine_.analyze_dataplane(production_);
  auto artifacts = std::make_shared<const twin::TwinArtifacts>(
      twin::build_twin_artifacts(production_, *snapshot.dataplane, ticket, options_.strategy));
  production_lock.unlock();
  if (options_.artifact_cache_capacity > 0) {
    lru_.push_front(key);
    artifact_cache_[key] = CacheEntry{lru_.begin(), artifacts};
    while (artifact_cache_.size() > options_.artifact_cache_capacity) {
      artifact_cache_.erase(lru_.back());
      lru_.pop_back();
    }
    pooled_artifacts_gauge().set(static_cast<std::int64_t>(artifact_cache_.size()));
  }
  return {artifacts, false};
}

std::unique_ptr<TicketSession> SessionManager::open(const msp::Ticket& ticket,
                                                    const std::string& actor) {
  std::uint64_t id = next_session_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  obs::ScopedContext session_context("session", std::to_string(id));
  obs::ScopedContext ticket_context("ticket", std::to_string(ticket.id));
  obs::ScopedSpan span("service.open", "service", {{"actor", actor}});
  auto [artifacts, from_cache] = artifacts_for(ticket);
  sessions_opened_.fetch_add(1, std::memory_order_relaxed);
  obs::Registry::global().counter("service.sessions_opened").add();
  active_sessions_gauge().add(1);
  std::string detail = std::to_string(artifacts->slice.devices.size()) + " devices, " +
                       (from_cache ? "cached artifacts" : "fresh artifacts");
  obs::EventJournal& journal = obs::EventJournal::global();
  if (journal.enabled()) {
    journal.append(obs::EventType::SessionOpen, ticket.id, id, actor, detail);
  }
  record_event(actor, enforce::AuditCategory::Session,
               "session #" + std::to_string(id) + " opened for ticket #" +
                   std::to_string(ticket.id) + " (" + detail + ")");
  return std::unique_ptr<TicketSession>(
      new TicketSession(*this, id, actor, std::move(artifacts), ticket, from_cache));
}

std::future<SubmitOutcome> SessionManager::submit_changes(TicketSession& session,
                                                          std::vector<cfg::ConfigChange> changes,
                                                          obs::SpanArgs context) {
  record_event(session.actor(), enforce::AuditCategory::Session,
               "session #" + std::to_string(session.id()) + " submitted " +
                   std::to_string(changes.size()) + " changes for ticket #" +
                   std::to_string(session.ticket().id));
  obs::EventJournal& journal = obs::EventJournal::global();
  if (journal.enabled()) {
    journal.append(obs::EventType::SessionSubmit, session.ticket().id, session.id(),
                   session.actor(), std::to_string(changes.size()) + " changes");
  }
  PendingSubmission submission;
  submission.session_id = session.id();
  submission.ticket = session.ticket().id;
  submission.actor = session.actor();
  submission.changes = std::move(changes);
  submission.privileges = session.twin().privileges();
  submission.approvals.gate = options_.approval_gate;
  submission.approvals.task = session.ticket().task;
  submission.approvals.subject = twin::ticket_content_hash(session.ticket());
  submission.approvals.min_required = options_.min_approvals;
  submission.approvals.approvals = session.approvals();
  submission.baseline = session.twin().baseline_fingerprints();
  submission.context = std::move(context);
  return queue_.submit(std::move(submission));
}

priv::Approval SessionManager::attest_approval(const std::string& principal,
                                               priv::PrincipalRole role,
                                               const msp::Ticket& ticket) const {
  return enforce::make_attested_approval(enforcer_.enclave(), principal, role,
                                         twin::ticket_content_hash(ticket));
}

priv::ApprovalCheck SessionManager::verify_approvals(const priv::ApprovalSet& approvals,
                                                     const std::string& requester,
                                                     const msp::Ticket& ticket) const {
  enforce::SubmissionApprovals context;
  context.gate = true;
  context.task = ticket.task;
  context.subject = twin::ticket_content_hash(ticket);
  context.min_required = options_.min_approvals;
  context.approvals = approvals;
  return enforce::check_submission_approvals(enforcer_.enclave(), context, requester);
}

std::vector<SessionManager::MediatedEscalation> SessionManager::mediate_escalations(
    const std::vector<EscalationPetition>& petitions) {
  std::vector<priv::PendingApproval> pending;
  std::vector<priv::ApprovalCheck> checks;
  pending.reserve(petitions.size());
  checks.reserve(petitions.size());
  std::vector<std::size_t> valid_counts;
  for (const EscalationPetition& petition : petitions) {
    TicketSession& session = *petition.session;
    checks.push_back(verify_approvals(petition.approvals, session.actor(), session.ticket()));
    pending.push_back(priv::PendingApproval{session.actor(), petition.request.resource,
                                            twin::ticket_content_hash(session.ticket()),
                                            petition.approvals});
    valid_counts.push_back(checks.back().valid);
  }
  std::vector<priv::MediationResult> mediations = priv::mediate_conflicts(pending, valid_counts);

  std::vector<MediatedEscalation> results(petitions.size());
  for (std::size_t i = 0; i < petitions.size(); ++i) {
    TicketSession& session = *petitions[i].session;
    results[i].mediation = mediations[i];
    if (mediations[i].verdict == priv::MediationVerdict::Proceed) {
      results[i].escalation = session.twin().request_escalation(petitions[i].request, checks[i]);
    } else {
      // Deferred: the request stays pending (no privilege change) and the
      // technician retries once the winning change lands.
      results[i].escalation = {priv::EscalationVerdict::RequiresAdmin, mediations[i].reason};
    }
    record_event(session.actor(), enforce::AuditCategory::Escalation,
                 "session #" + std::to_string(session.id()) + " mediated escalation " +
                     priv::to_string(results[i].escalation.verdict) + ": " +
                     mediations[i].reason);
  }
  return results;
}

void SessionManager::note_closed(TicketSession& session) {
  sessions_closed_.fetch_add(1, std::memory_order_relaxed);
  obs::Registry::global().counter("service.sessions_closed").add();
  active_sessions_gauge().add(-1);
  obs::EventJournal& journal = obs::EventJournal::global();
  if (journal.enabled()) {
    journal.append(obs::EventType::SessionClose, session.ticket().id, session.id(),
                   session.actor(), {});
  }
  record_event(session.actor(), enforce::AuditCategory::Session,
               "session #" + std::to_string(session.id()) + " closed (ticket #" +
                   std::to_string(session.ticket().id) + ")");
}

void SessionManager::check_audit_integrity() {
  obs::EventJournal& journal = obs::EventJournal::global();
  if (!journal.enabled()) return;  // observability off: callers check themselves
  std::vector<std::string> problems = enforcer_.audit_problems();
  if (problems.empty()) return;
  std::string detail = "audit ledger integrity failure after drain: ";
  for (std::size_t i = 0; i < problems.size(); ++i) {
    if (i != 0) detail += "; ";
    detail += problems[i];
  }
  journal.append(obs::EventType::TamperAlert, 0, 0, "service", detail);
  obs::FlightRecorder::global().trigger("audit_tamper", 0);
}

void SessionManager::drain() {
  queue_.drain();
  enforcer_.flush_audit();
  check_audit_integrity();
}

void SessionManager::shutdown() {
  queue_.drain();
  queue_.shutdown();
  enforcer_.flush_audit();
  check_audit_integrity();
}

void SessionManager::set_queue_paused(bool paused) { queue_.set_paused(paused); }

net::Network SessionManager::production_copy() const {
  std::shared_lock<std::shared_mutex> lock(production_mutex_);
  return production_;
}

ServiceStats SessionManager::stats() const {
  ServiceStats stats;
  stats.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  stats.sessions_closed = sessions_closed_.load(std::memory_order_relaxed);
  stats.submissions = queue_.submissions();
  stats.batches = queue_.batches();
  stats.max_observed_batch = queue_.max_observed_batch();
  stats.artifact_hits = artifact_hits_.load(std::memory_order_relaxed);
  stats.artifact_misses = artifact_misses_.load(std::memory_order_relaxed);
  return stats;
}

std::string SessionManager::statusz_json() const {
  ServiceStats stats = this->stats();
  obs::Registry& registry = obs::Registry::global();
  obs::EventJournal& journal = obs::EventJournal::global();
  obs::FlightRecorder& flight = obs::FlightRecorder::global();
  std::size_t pooled = 0;
  {
    std::lock_guard<std::mutex> lock(artifact_mutex_);
    pooled = artifact_cache_.size();
  }
  std::string out = "{";
  out += "\"t_us\":" + std::to_string(obs::steady_now_us());
  out += ",\"sessions_opened\":" + std::to_string(stats.sessions_opened);
  out += ",\"sessions_closed\":" + std::to_string(stats.sessions_closed);
  out += ",\"active_sessions\":" +
         std::to_string(registry.gauge("service.active_sessions").value());
  out += ",\"queue_depth\":" + std::to_string(registry.gauge("service.queue_depth").value());
  out += ",\"submissions\":" + std::to_string(stats.submissions);
  out += ",\"batches\":" + std::to_string(stats.batches);
  out += ",\"max_observed_batch\":" + std::to_string(stats.max_observed_batch);
  out += ",\"pooled_artifacts\":" + std::to_string(pooled);
  out += ",\"artifact_hits\":" + std::to_string(stats.artifact_hits);
  out += ",\"artifact_misses\":" + std::to_string(stats.artifact_misses);
  out += ",\"cache_hit_rate\":" +
         std::to_string(registry.gauge("service.cache_hit_rate").value());
  out += ",\"audit_entries\":" + std::to_string(registry.counter("audit.entries").value());
  enforce::PolicyEnforcer::LedgerStats ledger = enforcer_.ledger_stats();
  out += ",\"audit_ledger\":{\"replicas\":" + std::to_string(ledger.replicas);
  out += ",\"quorum_commits\":" + std::to_string(ledger.commits);
  out += ",\"quorum_failures\":" + std::to_string(ledger.quorum_failures);
  out += ",\"rejected_acks\":" + std::to_string(ledger.rejected_acks);
  out += "}";
  // The heimdall.fabric_probe gauge set: scenario shape (scen::fabric_probe)
  // and the compressed reachability footprint (ShardedReachability::compute).
  out += ",\"fabric_probe\":{\"scenario_routers\":" +
         std::to_string(registry.gauge("scenario.routers").value());
  out += ",\"scenario_hosts\":" + std::to_string(registry.gauge("scenario.hosts").value());
  out += ",\"matrix_bytes\":" + std::to_string(registry.gauge("matrix.bytes").value());
  out += ",\"matrix_equiv_classes\":" +
         std::to_string(registry.gauge("matrix.equiv_classes").value());
  out += "}";
  out += ",\"slo\":" + obs::SloTracker::global().to_json();
  out += ",\"slo_breaches\":" + std::to_string(obs::SloTracker::global().total_breaches());
  out += ",\"rolling\":" + obs::RollingRegistry::global().to_json();
  out += ",\"journal\":{\"enabled\":";
  out += journal.enabled() ? "true" : "false";
  out += ",\"size\":" + std::to_string(journal.size());
  out += ",\"appended\":" + std::to_string(journal.appended());
  out += ",\"dropped\":" + std::to_string(journal.dropped());
  out += "},\"flight\":{\"dumps\":" + std::to_string(flight.dumps());
  out += ",\"suppressed\":" + std::to_string(flight.suppressed());
  out += "}}";
  return out;
}

StatuszWriter::StatuszWriter(const SessionManager& manager, std::string path,
                             std::uint64_t period_ms)
    : manager_(manager), path_(std::move(path)), period_ms_(period_ms ? period_ms : 200) {
  thread_ = std::thread([this] { loop(); });
}

StatuszWriter::~StatuszWriter() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Final snapshot, so even a run shorter than one period leaves a file.
  obs::write_string_file(path_, manager_.statusz_json(), "statusz");
}

void StatuszWriter::loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (stop_cv_.wait_for(lock, std::chrono::milliseconds(period_ms_), [&] { return stop_; }))
      return;
    lock.unlock();
    obs::write_string_file(path_, manager_.statusz_json(), "statusz");
    lock.lock();
  }
}

}  // namespace heimdall::service
