// SessionManager: owns the production network, the policy enforcer and the
// enforcement queue, and pools twin-construction artifacts so concurrent
// ticket sessions are cheap to open.
//
// Ownership layout (ISSUE: "session-owned service architecture"):
//   SessionManager
//     ├── production network + shared_mutex   (worker writes, readers copy)
//     ├── PolicyEnforcer (audit chain + sink + enclave)
//     ├── artifact cache: (production digest, ticket content hash, strategy)
//     │     -> TwinArtifacts, LRU-evicted
//     └── EnforcementQueue (one worker thread, batches submissions)
//   TicketSession (handed to callers) owns its twin and shares the cached
//   artifacts it was instantiated from.
#pragma once

#include <atomic>
#include <condition_variable>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "analysis/engine.hpp"
#include "service/session.hpp"
#include "spec/policy.hpp"
#include "util/clock.hpp"

namespace heimdall::service {

struct ServiceOptions {
  twin::SliceStrategy strategy = twin::SliceStrategy::TaskDriven;
  /// Largest submission batch handed to the enforcer at once.
  std::size_t max_batch = 16;
  /// Mutex stripes in the enforcer's audit staging sink.
  std::size_t audit_shards = 8;
  /// Cached TwinArtifacts entries (0 disables the cache).
  std::size_t artifact_cache_capacity = 32;
  /// Record batch inputs for serialized-oracle replay (tests).
  bool keep_journal = false;
  /// Coalesce disjoint submissions' joint verification (ablation knob).
  bool coalesce_waves = true;
  /// Enable the global event journal for this service run (the statusz /
  /// flight-recorder / obs_report plumbing assumes it). Off by default so
  /// the disabled instrumentation floor stays a relaxed atomic load.
  bool journal_enabled = false;
  /// Retained-event budget for the journal (0 keeps its current capacity).
  std::size_t journal_capacity = 0;
  /// SLO thresholds for the live health plane; <= 0 skips that objective.
  /// Breaches count (they never reject work) and are journaled with the
  /// breaching ticket's context.
  double slo_queue_wait_ms = 250;
  double slo_enforce_ms = 1000;
  double slo_queue_depth = 128;
  /// Tuning for the verifier's analysis engine.
  analysis::Options engine_options;
  /// Gate high-impact / out-of-class changes on m-of-n approvals at
  /// enforcement time (the enclave re-verifies every signature).
  bool approval_gate = true;
  /// Policy floor for m — approval sets declaring fewer are rejected
  /// outright (an m=1 downgrade never passes, satellite bugfix).
  std::size_t min_approvals = 2;
  /// Replicas in the enforcer's quorum-appended audit ledger.
  std::size_t audit_replicas = 3;
};

/// Point-in-time service counters.
struct ServiceStats {
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_closed = 0;
  std::uint64_t submissions = 0;
  std::uint64_t batches = 0;
  std::size_t max_observed_batch = 0;
  std::uint64_t artifact_hits = 0;
  std::uint64_t artifact_misses = 0;
};

class SessionManager {
 public:
  SessionManager(net::Network production, std::vector<spec::Policy> policies,
                 ServiceOptions options = {});
  /// Shuts the queue down; outstanding futures resolve first (drain-then-
  /// stop). Sessions must not outlive their manager.
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Opens a session for `ticket`: reuses cached artifacts when an
  /// equivalent ticket was sliced against this exact production state,
  /// otherwise builds them fresh. Thread-safe.
  std::unique_ptr<TicketSession> open(const msp::Ticket& ticket, const std::string& actor);

  /// Blocks until every submission so far is enforced, then seals any
  /// staged audit events into the chain.
  void drain();

  /// drain() + stop the worker; further submissions fail. Idempotent.
  void shutdown();

  /// Pause/resume the enforcement worker (deterministic batches in tests
  /// and benchmarks).
  void set_queue_paused(bool paused);

  /// Snapshot of the current production network (shared lock + copy).
  net::Network production_copy() const;

  enforce::PolicyEnforcer& enforcer() { return enforcer_; }
  const enforce::PolicyEnforcer& enforcer() const { return enforcer_; }

  /// Batch journal for oracle replay; quiesce (drain/shutdown) first.
  const std::vector<BatchRecord>& journal() const { return queue_.journal(); }

  ServiceStats stats() const;

  /// One-line-of-JSON health snapshot: service counters + live gauges +
  /// rolling-window latencies + SLO status + journal/flight-recorder state.
  /// Thread-safe; what --statusz-out serves.
  std::string statusz_json() const;

  /// Mints an enclave-attested approval by `principal` over `ticket`'s
  /// content hash — the signature the enforcer later re-verifies. In a real
  /// deployment this runs in the principal's attested approval UI; here the
  /// manager's enclave stands in for that channel.
  priv::Approval attest_approval(const std::string& principal, priv::PrincipalRole role,
                                 const msp::Ticket& ticket) const;

  /// Evaluates `approvals` for a request by `requester` against `ticket`'s
  /// content hash under the service's m-of-n floor.
  priv::ApprovalCheck verify_approvals(const priv::ApprovalSet& approvals,
                                       const std::string& requester,
                                       const msp::Ticket& ticket) const;

  /// One approval-gated escalation competing in a mediation round.
  struct EscalationPetition {
    TicketSession* session = nullptr;
    priv::EscalationRequest request;
    priv::ApprovalSet approvals;
  };
  struct MediatedEscalation {
    priv::MediationResult mediation;
    priv::EscalationResult escalation;
  };

  /// Deterministic mediation of concurrent approval-gated escalations with
  /// overlapping resource footprints: within each overlapping group only
  /// the petition holding the most valid approvals is applied; the rest
  /// come back RequiresAdmin with a "deferred" reason and an unchanged
  /// privilege spec. Outcomes depend only on petition content, never on
  /// arrival order (property-tested).
  std::vector<MediatedEscalation> mediate_escalations(
      const std::vector<EscalationPetition>& petitions);

 private:
  friend class TicketSession;

  std::future<SubmitOutcome> submit_changes(TicketSession& session,
                                            std::vector<cfg::ConfigChange> changes,
                                            obs::SpanArgs context);
  void note_closed(TicketSession& session);
  /// Staged (sink) audit record with a monotonic service timestamp.
  void record_event(const std::string& actor, enforce::AuditCategory category,
                    std::string message);
  /// Post-drain audit verification: a broken chain or stale sealed head
  /// journals a TamperAlert and fires the flight recorder.
  void check_audit_integrity();
  std::pair<std::shared_ptr<const twin::TwinArtifacts>, bool> artifacts_for(
      const msp::Ticket& ticket);

  ServiceOptions options_;
  mutable std::shared_mutex production_mutex_;
  net::Network production_;
  enforce::PolicyEnforcer enforcer_;
  util::VirtualClock clock_;  // enforcement-worker only (not thread-safe)
  /// Monotonic virtual time for session-side (sink) audit records; kept
  /// separate because VirtualClock itself is single-threaded.
  std::atomic<std::int64_t> now_ms_{0};
  std::atomic<std::uint64_t> next_session_id_{0};

  /// Guards the twin engine + artifact cache (open() path + statusz reads).
  mutable std::mutex artifact_mutex_;
  analysis::Engine twin_engine_;
  struct CacheEntry {
    std::list<std::string>::iterator lru;
    std::shared_ptr<const twin::TwinArtifacts> artifacts;
  };
  std::list<std::string> lru_;  // most recent at front
  std::map<std::string, CacheEntry> artifact_cache_;

  std::atomic<std::uint64_t> sessions_opened_{0};
  std::atomic<std::uint64_t> sessions_closed_{0};
  std::atomic<std::uint64_t> artifact_hits_{0};
  std::atomic<std::uint64_t> artifact_misses_{0};

  /// Declared last: its worker thread must start after (and die before)
  /// every member it borrows.
  EnforcementQueue queue_;
};

/// RAII periodic statusz exporter: rewrites `path` with the manager's
/// statusz_json() every `period_ms` until destroyed, then writes one final
/// snapshot (so short runs still leave a complete file behind). The manager
/// must outlive the writer.
class StatuszWriter {
 public:
  StatuszWriter(const SessionManager& manager, std::string path, std::uint64_t period_ms = 200);
  ~StatuszWriter();

  StatuszWriter(const StatuszWriter&) = delete;
  StatuszWriter& operator=(const StatuszWriter&) = delete;

 private:
  void loop();

  const SessionManager& manager_;
  std::string path_;
  std::uint64_t period_ms_;
  std::mutex mutex_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace heimdall::service
