// TicketSession: one technician's owned twin session inside the
// enforcement service.
//
// Lifecycle: SessionManager::open() builds (or cache-hits) the twin
// artifacts and instantiates a twin the session owns exclusively — run
// commands, request escalations, then submit() the extracted changeset to
// the shared enforcement queue and close(). Sessions are single-technician
// objects: each individual session must be driven from one thread at a
// time, but any number of *different* sessions run concurrently.
//
// Every operation runs under the session's observability context
// ("session" + "ticket" keys), and submit() ships that context with the
// changeset so the enforcement worker's spans and audit records stay
// correlated with the session that caused them.
#pragma once

#include <future>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "msp/ticket.hpp"
#include "service/queue.hpp"
#include "twin/twin.hpp"

namespace heimdall::service {

class SessionManager;

class TicketSession {
 public:
  enum class State : std::uint8_t { Open, Submitted, Closed };

  /// Closes the session if the owner forgot to (audited like close()).
  ~TicketSession();

  TicketSession(const TicketSession&) = delete;
  TicketSession& operator=(const TicketSession&) = delete;

  std::uint64_t id() const { return id_; }
  const std::string& actor() const { return actor_; }
  const msp::Ticket& ticket() const { return twin_.ticket(); }
  State state() const { return state_; }
  /// True when the twin was instantiated from cached artifacts instead of
  /// a fresh slice/scrub/privilege build.
  bool from_cache() const { return from_cache_; }

  twin::TwinNetwork& twin() { return twin_; }
  const twin::TwinNetwork& twin() const { return twin_; }

  /// Presentation-layer passthroughs, under the session's trace context.
  twin::CommandResult run(std::string_view command_line);
  std::vector<twin::CommandResult> run_script(const std::vector<std::string>& commands);
  priv::EscalationResult request_escalation(const priv::EscalationRequest& request,
                                            bool admin_approved = false);

  /// Multi-party escalation: the manager verifies `approvals` (enclave
  /// attestation, distinct principals, subject == this ticket's content
  /// hash, m-of-n floor) and a RequiresAdmin verdict only grants when the
  /// check is satisfied. The audit record carries the approval summary.
  priv::EscalationResult request_escalation(const priv::EscalationRequest& request,
                                            const priv::ApprovalSet& approvals);

  /// Attaches the m-of-n approval set submit() ships with the changeset —
  /// the enforcer re-verifies it inside the enclave before letting any
  /// high-impact / out-of-class change through.
  void set_approvals(priv::ApprovalSet approvals) { approvals_ = std::move(approvals); }
  const priv::ApprovalSet& approvals() const { return approvals_; }

  /// The changes a submit() would ship right now.
  std::vector<cfg::ConfigChange> pending_changes() const;

  /// Extracts the session's changeset and enqueues it for enforcement.
  /// Returns the future outcome (report + staleness + batch identity).
  /// One submission per session: throws util::Error when not Open.
  std::future<SubmitOutcome> submit();

  /// Ends the session (idempotent). Audited via the manager's sink.
  void close();

 private:
  friend class SessionManager;
  TicketSession(SessionManager& manager, std::uint64_t id, std::string actor,
                std::shared_ptr<const twin::TwinArtifacts> artifacts, const msp::Ticket& ticket,
                bool from_cache);

  SessionManager* manager_;
  std::uint64_t id_;
  std::string actor_;
  /// Shared with the manager's cache; keeps the slice/privilege artifacts
  /// alive for the session's lifetime even across cache eviction.
  std::shared_ptr<const twin::TwinArtifacts> artifacts_;
  twin::TwinNetwork twin_;
  priv::ApprovalSet approvals_;
  bool from_cache_ = false;
  State state_ = State::Open;
};

}  // namespace heimdall::service
