// Scripted multi-technician load for the enforcement service: N technician
// threads work M tickets through open -> script -> submit -> close against
// a scenario network. Shared by tools/load_gen and the service benchmarks.
#pragma once

#include <cstdint>
#include <string>

namespace heimdall::service {

enum class LoadNetwork : std::uint8_t { Enterprise, University };

std::string to_string(LoadNetwork network);

struct LoadSpec {
  LoadNetwork network = LoadNetwork::University;
  /// Concurrent technician threads (each owns its sessions).
  std::size_t technicians = 8;
  /// Total tickets worked across all technicians.
  std::size_t tickets = 1000;
  /// Largest enforcement batch (1 + serialized=true reproduces the
  /// one-enforcement-per-ticket baseline).
  std::size_t max_batch = 16;
  /// Disable batching AND wave coalescing — the pre-service pipeline.
  bool serialized = false;
  std::size_t artifact_cache_capacity = 32;
  /// Rotates which routers the scripted tickets target.
  unsigned seed = 1;
  /// Every violating_every-th ticket attempts a policy-violating permit
  /// into the scenario's guarded ACL (0 = never).
  std::size_t violating_every = 20;
  /// Enable the structured event journal for this run (obs_report input).
  bool journal = false;
  /// When non-empty, a StatuszWriter rewrites this file every
  /// statusz_period_ms during the run (and once at the end).
  std::string statusz_out;
  std::uint64_t statusz_period_ms = 200;
  /// When non-empty, the replicated audit ledger (all replica chains) is
  /// exported here as JSON after the drain (obs_report re-verifies every
  /// replica and joins the leader chain against the journal/trace).
  std::string audit_out;
};

struct LoadReport {
  std::size_t tickets = 0;
  std::size_t applied_changes = 0;
  std::size_t quarantined_changes = 0;
  std::size_t violating_tickets = 0;
  std::size_t stale_sessions = 0;
  double wall_seconds = 0.0;
  double throughput_tps = 0.0;  ///< tickets per wall-clock second
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
  std::uint64_t batches = 0;
  double mean_batch = 0.0;
  std::size_t max_batch_observed = 0;
  std::uint64_t artifact_hits = 0;
  std::uint64_t artifact_misses = 0;
  bool audit_intact = false;
  std::size_t audit_entries = 0;
  /// Mean per-ticket stage decomposition (microseconds), from the
  /// QuarantineReport stage times + queue wait the service recorded.
  double mean_queue_wait_us = 0.0;
  double mean_analyze_us = 0.0;
  double mean_verify_us = 0.0;
  double mean_audit_us = 0.0;
  std::uint64_t slo_breaches = 0;
  std::uint64_t flight_dumps = 0;
  std::uint64_t journal_events = 0;
  /// Replicated audit ledger health: replica count, quorum-committed
  /// appends, appends that missed quorum, and follower acks refused.
  std::size_t audit_replicas = 0;
  std::uint64_t quorum_commits = 0;
  std::uint64_t quorum_failures = 0;
  std::uint64_t rejected_acks = 0;
};

/// Runs the load to completion (drains the service, verifies the audit
/// chain) and reports per-ticket latency percentiles + throughput.
LoadReport run_load(const LoadSpec& spec);

}  // namespace heimdall::service
