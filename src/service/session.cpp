#include "service/session.hpp"

#include "obs/trace.hpp"
#include "service/manager.hpp"
#include "util/error.hpp"

namespace heimdall::service {

TicketSession::TicketSession(SessionManager& manager, std::uint64_t id, std::string actor,
                             std::shared_ptr<const twin::TwinArtifacts> artifacts,
                             const msp::Ticket& ticket, bool from_cache)
    : manager_(&manager),
      id_(id),
      actor_(std::move(actor)),
      artifacts_(std::move(artifacts)),
      twin_(twin::TwinNetwork::instantiate(*artifacts_, ticket)),
      from_cache_(from_cache) {}

TicketSession::~TicketSession() {
  try {
    close();
  } catch (...) {
    // Destructors don't throw; a failed close-audit is not worth a crash.
  }
}

twin::CommandResult TicketSession::run(std::string_view command_line) {
  obs::ScopedContext session_context("session", std::to_string(id_));
  obs::ScopedContext ticket_context("ticket", std::to_string(ticket().id));
  return twin_.run(command_line);
}

std::vector<twin::CommandResult> TicketSession::run_script(
    const std::vector<std::string>& commands) {
  obs::ScopedContext session_context("session", std::to_string(id_));
  obs::ScopedContext ticket_context("ticket", std::to_string(ticket().id));
  return twin_.run_script(commands);
}

priv::EscalationResult TicketSession::request_escalation(const priv::EscalationRequest& request,
                                                         bool admin_approved) {
  obs::ScopedContext session_context("session", std::to_string(id_));
  obs::ScopedContext ticket_context("ticket", std::to_string(ticket().id));
  return twin_.request_escalation(request, admin_approved);
}

priv::EscalationResult TicketSession::request_escalation(const priv::EscalationRequest& request,
                                                         const priv::ApprovalSet& approvals) {
  obs::ScopedContext session_context("session", std::to_string(id_));
  obs::ScopedContext ticket_context("ticket", std::to_string(ticket().id));
  priv::ApprovalCheck check = manager_->verify_approvals(approvals, actor_, ticket());
  priv::EscalationResult result = twin_.request_escalation(request, check);
  manager_->record_event(actor_, enforce::AuditCategory::Escalation,
                         "session #" + std::to_string(id_) + " escalation " +
                             priv::to_string(result.verdict) + ": " + result.reason);
  return result;
}

std::vector<cfg::ConfigChange> TicketSession::pending_changes() const {
  return twin_.extract_changes();
}

std::future<SubmitOutcome> TicketSession::submit() {
  if (state_ != State::Open)
    throw util::Error("session #" + std::to_string(id_) + " is not open for submission");
  obs::ScopedContext session_context("session", std::to_string(id_));
  obs::ScopedContext ticket_context("ticket", std::to_string(ticket().id));
  obs::SpanArgs context = {{"session", std::to_string(id_)},
                           {"ticket", std::to_string(ticket().id)},
                           {"actor", actor_}};
  state_ = State::Submitted;
  return manager_->submit_changes(*this, twin_.extract_changes(), std::move(context));
}

void TicketSession::close() {
  if (state_ == State::Closed) return;
  state_ = State::Closed;
  manager_->note_closed(*this);
}

}  // namespace heimdall::service
