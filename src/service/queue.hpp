// EnforcementQueue: the single chokepoint between concurrent ticket
// sessions and the production network.
//
// Sessions submit their extracted changesets from any thread; one worker
// thread drains the queue in FIFO batches and hands each batch to
// PolicyEnforcer::enforce_with_quarantine_batch, which amortizes the full
// baseline analysis across the batch and coalesces the joint verification
// of submissions with disjoint device/pair footprints. Batching is therefore
// not just a concurrency valve — it is where the service's throughput win
// over one-enforcement-per-ticket comes from.
//
// The worker is the only thread that mutates production (under the writer
// side of the shared mutex) and the only user of the virtual clock.
#pragma once

#include <atomic>
#include <condition_variable>
#include <future>
#include <map>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "enforcer/enforcer.hpp"
#include "util/queue.hpp"
#include "util/sha256.hpp"

namespace heimdall::service {

/// What a session gets back for one submitted changeset.
struct SubmitOutcome {
  enforce::QuarantineReport report;
  /// Slice devices whose production config changed between twin creation
  /// and enforcement (paper §3 staleness). Informational: the enforcer
  /// verified against the *current* production either way, so a non-empty
  /// list means "your twin was stale but the verdict is still sound".
  std::vector<net::DeviceId> stale_devices;
  std::uint64_t batch_id = 0;
  std::size_t batch_size = 0;
  /// Time the submission sat in the queue before its batch started —
  /// together with report.stages this completes the per-ticket latency
  /// decomposition (queue wait -> analyze -> verify -> audit).
  std::uint64_t queue_wait_us = 0;
};

/// One session's submission traveling through the queue.
struct PendingSubmission {
  std::uint64_t session_id = 0;
  std::int64_t ticket = 0;  ///< originating ticket id (journal correlation)
  std::string actor;
  std::vector<cfg::ConfigChange> changes;
  priv::PrivilegeSpec privileges;
  /// m-of-n authorization context the enforcer's approval gate evaluates.
  enforce::SubmissionApprovals approvals;
  /// Twin-creation fingerprints of the slice devices (staleness check).
  std::map<net::DeviceId, util::Sha256Digest> baseline;
  /// The session's trace context, replayed on the worker thread.
  obs::SpanArgs context;
  std::uint64_t enqueued_us = 0;  ///< stamped by EnforcementQueue::submit
  std::promise<SubmitOutcome> promise;
};

/// Journal of one processed batch (exact inputs, in enforcement order) —
/// enough to replay the whole run serially against a fresh enforcer, which
/// is how the stress tests prove batched == serialized.
struct BatchRecord {
  std::uint64_t batch_id = 0;
  struct Entry {
    std::uint64_t session_id = 0;
    std::string actor;
    std::vector<cfg::ConfigChange> changes;
    priv::PrivilegeSpec privileges;
    enforce::SubmissionApprovals approvals;
  };
  std::vector<Entry> entries;
};

class EnforcementQueue {
 public:
  struct Options {
    /// Largest batch handed to the enforcer in one drain.
    std::size_t max_batch = 16;
    /// Record every batch's inputs for serialized-oracle replay.
    bool keep_journal = false;
  };

  /// The queue borrows everything: the caller (SessionManager) owns the
  /// enforcer, production network, its mutex and the clock, and must
  /// outlive this object. The worker thread starts immediately.
  EnforcementQueue(enforce::PolicyEnforcer& enforcer, net::Network& production,
                   std::shared_mutex& production_mutex, util::VirtualClock& clock,
                   Options options);
  ~EnforcementQueue();

  EnforcementQueue(const EnforcementQueue&) = delete;
  EnforcementQueue& operator=(const EnforcementQueue&) = delete;

  /// Enqueues a submission; the future resolves when its batch has been
  /// enforced. After shutdown() the future fails with broken_promise.
  std::future<SubmitOutcome> submit(PendingSubmission submission);

  /// While paused the worker sleeps and submissions accumulate; resuming
  /// releases them as one batch (tests and benchmarks build deterministic
  /// batches this way).
  void set_paused(bool paused);

  /// Blocks until every submission enqueued so far has been enforced.
  void drain();

  /// Drains, stops the worker and rejects future submissions. Idempotent.
  void shutdown();

  std::uint64_t batches() const { return batches_.load(std::memory_order_relaxed); }
  std::uint64_t submissions() const { return submissions_.load(std::memory_order_relaxed); }
  std::size_t max_observed_batch() const {
    return max_observed_batch_.load(std::memory_order_relaxed);
  }

  /// The batch journal (empty unless Options::keep_journal). Only safe to
  /// read after drain()/shutdown() quiesced the worker.
  const std::vector<BatchRecord>& journal() const { return journal_; }

 private:
  void worker_loop();
  void process_batch(std::vector<PendingSubmission>& batch);

  enforce::PolicyEnforcer& enforcer_;
  net::Network& production_;
  std::shared_mutex& production_mutex_;
  util::VirtualClock& clock_;  // worker-thread only
  Options options_;

  util::BlockingQueue<PendingSubmission> queue_;
  std::mutex progress_mutex_;
  std::condition_variable progress_;
  std::uint64_t enqueued_ = 0;
  std::uint64_t completed_ = 0;

  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> submissions_{0};
  std::atomic<std::size_t> max_observed_batch_{0};
  std::vector<BatchRecord> journal_;  // worker-thread only until quiesced

  std::thread worker_;
};

}  // namespace heimdall::service
